(** Automatic language-bias generation (Section 3): predicate definitions
    from the type graph, mode definitions from attribute cardinalities. *)

module Schema = Relational.Schema
module String_set = Bias.Util.String_set

(** Constant-threshold hyper-parameter (Section 3.2): an attribute may appear
    as a constant if its number of distinct values is below an absolute
    bound, or if its distinct-to-cardinality ratio is below a relative bound.
    The paper's experiments use [Relative 0.18]. *)
type threshold =
  | Absolute of int
  | Relative of float

let threshold_to_string = function
  | Absolute n -> Printf.sprintf "absolute %d" n
  | Relative r -> Printf.sprintf "relative %.0f%%" (100. *. r)

(** [constant_positions ~threshold rel] is the column indexes of [rel] that
    qualify as constants under [threshold]. Empty relations yield none. *)
let constant_positions ~threshold rel =
  let card = Relational.Relation.cardinality rel in
  if card = 0 then []
  else
    List.init (Relational.Relation.arity rel) (fun i -> i)
    |> List.filter (fun i ->
           let distinct = Relational.Relation.distinct_count rel i in
           match threshold with
           | Absolute n -> distinct < n
           | Relative r -> float_of_int distinct /. float_of_int card < r)

(** [predicate_defs ~graph ~relation_schemas ~product_cap] produces, for each
    relation, one predicate definition per member of the Cartesian product of
    its attributes' type sets (Section 3.1). Attributes the type graph left
    untyped (no IND touches them — possible for constant-only columns) get a
    private fallback type so the relation still has definitions. The product
    is truncated at [product_cap] per relation (reported via [Logs.warn]). *)
let predicate_defs ?(product_cap = 64) ~graph relation_schemas =
  List.concat_map
    (fun (rs : Schema.relation_schema) ->
      let per_attr =
        List.mapi
          (fun pos name ->
            let tys = Type_graph.types_of graph (Schema.attr rs.Schema.rel_name name) in
            if String_set.is_empty tys then
              [ Printf.sprintf "T_%s_%d" rs.Schema.rel_name pos ]
            else String_set.elements tys)
          (Array.to_list rs.Schema.attrs)
      in
      (* Cartesian product, truncated at product_cap. *)
      let product =
        List.fold_left
          (fun acc tys ->
            List.concat_map (fun prefix -> List.map (fun t -> t :: prefix) tys) acc)
          [ [] ] per_attr
        |> List.map List.rev
      in
      let n = List.length product in
      let product =
        if n > product_cap then begin
          Logs.warn (fun m ->
              m "predicate_defs: %s has %d type combinations, capping at %d"
                rs.Schema.rel_name n product_cap);
          List.filteri (fun i _ -> i < product_cap) product
        end
        else product
      in
      List.map
        (fun tys -> Bias.Predicate_def.make rs.Schema.rel_name (Array.of_list tys))
        product)
    relation_schemas

(** [mode_defs ~threshold ~power_set_cap db] produces the mode definitions of
    Section 3.2: per relation, one mode per attribute with [+] there and [-]
    elsewhere, plus, for every non-empty subset of the constant-able
    attributes, the same modes with [#] on the subset. *)
let mode_defs ?(power_set_cap = 8) ~threshold db =
  List.concat_map
    (fun rel ->
      let consts = constant_positions ~threshold rel in
      Bias.Language.modes_for_relation ~power_set_cap
        (Relational.Relation.name rel)
        (Relational.Relation.arity rel)
        consts)
    (Relational.Database.relations db)

type result = {
  bias : Bias.Language.t;
  graph : Type_graph.t;
  inds : Ind.t list;  (** after symmetric-pair reduction *)
  ind_time : float;  (** seconds spent discovering INDs *)
}

(** [induce ?ind_config ?threshold ?power_set_cap ?product_cap db ~target
    ~positive_examples] is the full AutoBias pipeline of Section 3: discover
    exact and approximate INDs over [db] plus the positive-example relation,
    reduce symmetric approximate pairs, build the type graph, and generate
    predicate and mode definitions. The positive examples participate so the
    target's attributes are typed by the INDs from example columns into
    database attributes. *)
let induce ?(ind_config = Ind.default_config) ?(threshold = Relative 0.18)
    ?(power_set_cap = 8) ?(product_cap = 64) db
    ~(target : Schema.relation_schema) ~positive_examples =
  Obs.Trace.span ~cat:"discovery" "induce" @@ fun () ->
  let example_rel = Relational.Relation.of_tuples target positive_examples in
  let inds, ind_time =
    Obs.Trace.time (fun () ->
        Obs.Trace.span ~cat:"discovery" "ind_discovery" (fun () ->
            Ind.discover ~config:ind_config db ~extra:[ example_rel ]
            |> Ind.keep_lower_of_symmetric))
  in
  let schema = Relational.Database.schema db in
  let attributes = Schema.all_attributes (target :: schema) in
  let graph =
    Obs.Trace.span ~cat:"discovery" "type_graph" (fun () ->
        Type_graph.build ~attributes inds)
  in
  let predicate_defs =
    Obs.Trace.span ~cat:"discovery" "predicate_defs" (fun () ->
        predicate_defs ~product_cap ~graph (target :: schema))
  in
  let modes =
    Obs.Trace.span ~cat:"discovery" "mode_defs" (fun () ->
        mode_defs ~power_set_cap ~threshold db)
  in
  let bias = Bias.Language.make ~schema ~target ~predicate_defs ~modes in
  { bias; graph; inds; ind_time }
