(* The daemon's line protocol. See protocol.mli for the contract.

   One request per line, one JSON response per line: the simplest shape a
   load generator, a shell pipe and a CI smoke test can all speak. Parsing
   is total — every malformed line becomes a typed [Error], never an
   exception — because the daemon must stay up whatever a client sends. *)

type common = {
  dataset : string;
  method_ : string;
  strategy : string;
  scale : float;
  seed : int;
  timeout : float;
  deadline : float option;
}

type request =
  | Induce_bias of common
  | Learn of common
  | Infer of common * int
  | Explain of common * int

type rejection = Overloaded of { retry_after : float } | Draining

type payload = (string * Obs.Json.t) list

type outcome =
  | Completed of payload
  | Degraded of payload * Budget.degradation
  | Quarantined of { attempts : int; exn : string; backtrace : string }
  | Failed of string

type response = {
  id : int;
  outcome : outcome;
  latency_s : float;
  attempts : int;
}

let default_common dataset =
  {
    dataset;
    method_ = "autobias";
    strategy = "naive";
    scale = 1.0;
    seed = 42;
    timeout = 30.;
    deadline = None;
  }

let common_of_request = function
  | Induce_bias c | Learn c | Infer (c, _) | Explain (c, _) -> c

let verb_of_request = function
  | Induce_bias _ -> "bias"
  | Learn _ -> "learn"
  | Infer _ -> "infer"
  | Explain _ -> "explain"

(* ---------------- parsing ---------------- *)

let ( let* ) = Result.bind

let parse_float key v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: not a number: %S" key v)

let parse_int key v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" key v)

let parse_request line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match words with
  | [] -> Error "empty request"
  | verb :: rest ->
      let* dataset, opts =
        match rest with
        | [] -> Error (verb ^ ": missing dataset name")
        | d :: opts when not (String.contains d '=') -> Ok (d, opts)
        | _ -> Error (verb ^ ": missing dataset name")
      in
      let* kvs =
        List.fold_left
          (fun acc opt ->
            let* acc = acc in
            match String.index_opt opt '=' with
            | Some i when i > 0 ->
                Ok
                  (( String.sub opt 0 i,
                     String.sub opt (i + 1) (String.length opt - i - 1) )
                  :: acc)
            | _ -> Error (Printf.sprintf "malformed option %S (want key=value)" opt))
          (Ok []) opts
      in
      let* limit, common =
        List.fold_left
          (fun acc (k, v) ->
            let* limit, c = acc in
            match k with
            | "method" -> Ok (limit, { c with method_ = v })
            | "strategy" -> Ok (limit, { c with strategy = v })
            | "scale" ->
                let* f = parse_float k v in
                Ok (limit, { c with scale = f })
            | "seed" ->
                let* i = parse_int k v in
                Ok (limit, { c with seed = i })
            | "timeout" ->
                let* f = parse_float k v in
                Ok (limit, { c with timeout = f })
            | "deadline" ->
                let* f = parse_float k v in
                Ok (limit, { c with deadline = Some f })
            | "limit" ->
                let* i = parse_int k v in
                Ok (i, c)
            | _ -> Error (Printf.sprintf "unknown option %S" k))
          (Ok (10, default_common dataset))
          kvs
      in
      (match verb with
      | "bias" -> Ok (Induce_bias common)
      | "learn" -> Ok (Learn common)
      | "infer" -> Ok (Infer (common, limit))
      | "explain" -> Ok (Explain (common, limit))
      | v -> Error (Printf.sprintf "unknown verb %S (want bias|learn|infer|explain)" v))

(* ---------------- rendering ---------------- *)

let request_to_string r =
  let c = common_of_request r in
  let limit =
    match r with
    | Infer (_, n) | Explain (_, n) -> Printf.sprintf " limit=%d" n
    | _ -> ""
  in
  Printf.sprintf "%s %s method=%s strategy=%s scale=%g seed=%d timeout=%g%s%s"
    (verb_of_request r) c.dataset c.method_ c.strategy c.scale c.seed c.timeout
    (match c.deadline with
    | Some d -> Printf.sprintf " deadline=%g" d
    | None -> "")
    limit

let degradation_to_json (d : Budget.degradation) =
  Obs.Json.Obj
    [
      ("status", Obs.Json.Str (Budget.status_to_string d.Budget.status));
      ( "counters",
        Obs.Json.Obj
          (List.filter_map
             (fun (k, v) ->
               if v = 0 then None else Some (k, Obs.Json.Int v))
             (Budget.counters_to_assoc d.Budget.counters)) );
    ]

let status_of_outcome = function
  | Completed _ -> "completed"
  | Degraded _ -> "degraded"
  | Quarantined _ -> "quarantined"
  | Failed _ -> "failed"

let response_to_json r =
  let base =
    [
      ("id", Obs.Json.Int r.id);
      ("status", Obs.Json.Str (status_of_outcome r.outcome));
      ("latency_s", Obs.Json.Float r.latency_s);
      ("attempts", Obs.Json.Int r.attempts);
    ]
  in
  let rest =
    match r.outcome with
    | Completed payload -> [ ("result", Obs.Json.Obj payload) ]
    | Degraded (payload, d) ->
        [
          ("result", Obs.Json.Obj payload);
          ("degradation", degradation_to_json d);
        ]
    | Quarantined { attempts = _; exn; backtrace } ->
        [ ("exn", Obs.Json.Str exn); ("backtrace", Obs.Json.Str backtrace) ]
    | Failed msg -> [ ("error", Obs.Json.Str msg) ]
  in
  Obs.Json.Obj (base @ rest)

let rejection_to_json = function
  | Overloaded { retry_after } ->
      Obs.Json.Obj
        [
          ("status", Obs.Json.Str "rejected");
          ("reason", Obs.Json.Str "overloaded");
          ("retry_after_s", Obs.Json.Float retry_after);
        ]
  | Draining ->
      Obs.Json.Obj
        [
          ("status", Obs.Json.Str "rejected");
          ("reason", Obs.Json.Str "draining");
        ]

let rejection_to_string = function
  | Overloaded { retry_after } ->
      Printf.sprintf "overloaded (retry after %.3fs)" retry_after
  | Draining -> "draining"
