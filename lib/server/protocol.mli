(** The daemon's line protocol: typed requests, typed rejections, typed
    responses — and a total parser, because a serving process must survive
    any line a client sends.

    Request grammar (one request per line):

    {v
    <verb> <dataset> [key=value ...]
    verb    ::= bias | learn | infer | explain
    keys    ::= method | strategy | scale | seed | timeout | deadline | limit
    v}

    e.g. [learn uw method=autobias scale=0.5 seed=7 timeout=10 deadline=30].
    Responses are single-line JSON ({!response_to_json}); a submission the
    daemon refuses gets a typed {!rejection} instead of a silent drop. *)

(** The knobs shared by every request verb; defaults mirror the CLI
    ([method=autobias], [strategy=naive], [scale=1.0], [seed=42],
    [timeout=30], no deadline). *)
type common = {
  dataset : string;  (** uw | imdb | hiv | flt | sys *)
  method_ : string;  (** parsed by [Autobias.method_of_string] at execution *)
  strategy : string;  (** parsed by [Sampling.Strategy.of_string] *)
  scale : float;
  seed : int;
  timeout : float;  (** learner timeout, seconds *)
  deadline : float option;  (** whole-job deadline, seconds (admission only) *)
}

type request =
  | Induce_bias of common  (** the Section 3 pipeline, bias only *)
  | Learn of common  (** full learn, definition in the payload *)
  | Infer of common * int  (** learn + materialize predictions (limit) *)
  | Explain of common * int  (** learn + explain examples (limit) *)

(** Why a submission was refused. [Overloaded] carries the backpressure
    hint (an estimate from recent job latency and queue depth). *)
type rejection = Overloaded of { retry_after : float } | Draining

type payload = (string * Obs.Json.t) list

type outcome =
  | Completed of payload
  | Degraded of payload * Budget.degradation
      (** the job's budget expired: best-so-far result + how degraded *)
  | Quarantined of { attempts : int; exn : string; backtrace : string }
      (** the job failed [max_attempts] times (worker kills, injected
          faults); the final exception and backtrace ship in the response *)
  | Failed of string  (** non-retryable: malformed request, unknown data *)

type response = {
  id : int;  (** the daemon's job id *)
  outcome : outcome;
  latency_s : float;  (** submission to completion, seconds *)
  attempts : int;  (** attempts consumed (1 = first try succeeded) *)
}

val default_common : string -> common
val common_of_request : request -> common
val verb_of_request : request -> string

(** [parse_request line] — total: every malformed line is a typed [Error]. *)
val parse_request : string -> (request, string) result

(** [request_to_string r] re-renders [r] in the request grammar
    ([parse_request (request_to_string r) = Ok r] up to defaulted keys). *)
val request_to_string : request -> string

val status_of_outcome : outcome -> string
val degradation_to_json : Budget.degradation -> Obs.Json.t
val response_to_json : response -> Obs.Json.t
val rejection_to_json : rejection -> Obs.Json.t
val rejection_to_string : rejection -> string
