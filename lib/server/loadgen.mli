(** Closed-loop load generator for the serving daemon: [clients] domains
    each submit-await-record one job at a time until [jobs] indices are
    consumed, so offered load adapts to service rate and admission
    control is exercised exactly when clients outnumber
    [max_in_flight + max_queue].

    The summary accounts for {e every} job index: completed + degraded +
    rejected + quarantined + failed = jobs ([accounted]) — the soak-test
    invariant that no submission is ever silently dropped. *)

type summary = {
  jobs : int;
  clients : int;
  completed : int;
  degraded : int;
  rejected : int;  (** terminally rejected jobs (retries spent / draining) *)
  reject_events : int;  (** every typed rejection seen, incl. retried ones *)
  quarantined : int;
  failed : int;
  retries : int;  (** daemon-side failed attempts that were re-run *)
  wall_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;  (** exact nearest-rank percentiles of job latency *)
  reject_rate : float;  (** terminally rejected / jobs *)
  accounted : bool;  (** every job ended in exactly one bucket *)
}

(** [run ?clients ?jobs ?reject_retries ?max_backoff_s daemon requests]
    drives [requests i] for [i] in [0..jobs-1] through the daemon. On an
    [Overloaded] rejection the client resubmits the {e same} request up to
    [reject_retries] times (default 0: one shot), sleeping the rejection's
    [retry_after] hint clamped to [\[10ms, max_backoff_s\]] in between —
    the well-behaved-client shape that keeps a closed loop applying
    pressure instead of burning its job budget on instant rejections. *)
val run :
  ?clients:int ->
  ?jobs:int ->
  ?reject_retries:int ->
  ?max_backoff_s:float ->
  Daemon.t ->
  (int -> Protocol.request) ->
  summary

val summary_to_json : summary -> Obs.Json.t
