(** Shared read-mostly catalog of loaded databases, keyed by
    (dataset, scale, seed).

    The serving daemon's jobs all resolve their dataset here: the first
    request for a triple generates (loads) it — serialized, so concurrent
    first requests do the work once — and every later request is an atomic
    read of an immutable entry, safe from any domain. Load failures are
    typed, never exceptions: a bad request must produce a typed error
    response, not a dead worker. *)

type t

type error =
  | Unknown_dataset of string
  | Generation_failed of { dataset : string; message : string }
      (** the generator itself raised; the message ships to the client *)

val error_to_string : error -> string

val create : unit -> t

(** [load t ~name ~scale ~seed] returns the cached dataset or generates and
    publishes it. Thread-safe; generation for one key happens once. *)
val load :
  t -> name:string -> scale:float -> seed:int ->
  (Datasets.Dataset.t, error) result

(** [loaded t] lists the published (name, scale, seed) keys, sorted. *)
val loaded : t -> (string * float * int) list
