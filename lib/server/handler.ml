(* Request execution. See handler.mli.

   One invariant matters above all: the served learn path is the CLI learn
   path — same config defaults, same [Random.State.make [| seed |]], same
   full-training-set call — so a fixed-seed request through the daemon is
   bit-identical to the same run via [autobias learn]. Handlers therefore
   run with [pool = None]: the daemon parallelizes across jobs, not inside
   them, which is both the serving-throughput shape and the only shape
   whose determinism is already pinned by the existing test suite. *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let method_of_string m =
  try Autobias.method_of_string m
  with Invalid_argument msg -> raise (Bad_request msg)

let strategy_of_string s =
  try Sampling.Strategy.of_string s
  with Invalid_argument msg | Failure msg -> raise (Bad_request msg)

let dataset_of catalog (c : Protocol.common) =
  if c.Protocol.scale <= 0. then bad "scale must be positive";
  match
    Catalog.load catalog ~name:c.Protocol.dataset ~scale:c.Protocol.scale
      ~seed:c.Protocol.seed
  with
  | Ok d -> d
  | Error e -> raise (Bad_request (Catalog.error_to_string e))

let config_of ~budget (c : Protocol.common) =
  {
    Autobias.default_config with
    strategy = strategy_of_string c.Protocol.strategy;
    timeout = Some c.Protocol.timeout;
    budget = Some budget;
    pool = None;
  }

(* The CLI learn path, verbatim: full training split, seed-derived RNG. *)
let learn ~budget catalog (c : Protocol.common) =
  let dataset = dataset_of catalog c in
  let method_ = method_of_string c.Protocol.method_ in
  let config = config_of ~budget c in
  let rng = Random.State.make [| c.Protocol.seed |] in
  let r =
    Autobias.learn_once ~config method_ dataset ~rng
      ~train_pos:dataset.Datasets.Dataset.positives
      ~train_neg:dataset.Datasets.Dataset.negatives
  in
  (dataset, config, rng, r)

let learn_payload (r : Autobias.run_result) =
  [
    ( "definition",
      Obs.Json.Str (Logic.Clause.definition_to_string r.Autobias.definition) );
    ("clauses", Obs.Json.Int (List.length r.Autobias.definition));
    ("learn_time_s", Obs.Json.Float r.Autobias.learn_time);
    ("timed_out", Obs.Json.Bool r.Autobias.timed_out);
    ( "bias_size",
      Obs.Json.Int (Bias.Language.size r.Autobias.bias_info.Autobias.bias) );
  ]

let default catalog ~budget request =
  match request with
  | Protocol.Induce_bias c ->
      let dataset = dataset_of catalog c in
      let method_ = method_of_string c.Protocol.method_ in
      let config = config_of ~budget c in
      let bi =
        Autobias.bias_for method_ config dataset
          ~train_pos:dataset.Datasets.Dataset.positives
      in
      ( [
          ("method", Obs.Json.Str c.Protocol.method_);
          ("bias_size", Obs.Json.Int (Bias.Language.size bi.Autobias.bias));
          ("bias_time_s", Obs.Json.Float bi.Autobias.bias_time);
          ("bias", Obs.Json.Str (Fmt.str "%a" Bias.Language.pp bi.Autobias.bias));
        ],
        None )
  | Protocol.Learn c ->
      let _, _, _, r = learn ~budget catalog c in
      (learn_payload r, r.Autobias.degradation)
  | Protocol.Infer (c, limit) ->
      let dataset, _, _, r = learn ~budget catalog c in
      let derived =
        Learning.Inference.derive_definition dataset.Datasets.Dataset.db
          r.Autobias.definition
      in
      let tuples =
        List.filteri (fun i _ -> i < limit) derived
        |> List.map (fun t ->
               Obs.Json.Str (Relational.Relation.tuple_to_string t))
      in
      ( learn_payload r
        @ [
            ("derived", Obs.Json.Int (List.length derived));
            ("tuples", Obs.Json.List tuples);
          ],
        r.Autobias.degradation )
  | Protocol.Explain (c, limit) ->
      let dataset, config, rng, r = learn ~budget catalog c in
      let cov =
        Autobias.coverage_context config dataset
          r.Autobias.bias_info.Autobias.bias ~rng
      in
      let explain_some examples =
        List.filteri (fun i _ -> i < limit) examples
        |> List.map (fun e ->
               Obs.Json.Obj
                 [
                   ( "example",
                     Obs.Json.Str (Relational.Relation.tuple_to_string e) );
                   ( "explanation",
                     Obs.Json.Str
                       (Fmt.str "%a" Learning.Explain.pp_definition_result
                          (Learning.Explain.explain_definition cov
                             r.Autobias.definition e)) );
                 ])
      in
      ( learn_payload r
        @ [
            ( "positives",
              Obs.Json.List (explain_some dataset.Datasets.Dataset.positives) );
            ( "negatives",
              Obs.Json.List (explain_some dataset.Datasets.Dataset.negatives) );
          ],
        r.Autobias.degradation )
