(** The learning-as-a-service daemon: a bounded job queue of
    {!Protocol.request}s multiplexed onto one supervised {!Parallel.Pool}.

    Every admitted job terminates in exactly one {!Protocol.outcome}:

    - [Completed] — the handler returned with no degradation;
    - [Degraded] — the job's per-request deadline expired (or drain
      cancelled it) and the anytime learner answered best-so-far, with the
      {!Budget.degradation} counters attached;
    - [Quarantined] — the job failed [max_attempts] attempts (injected
      faults, worker kills, handler crashes), each retried after a seeded
      backoff; the final exception and backtrace ship in the response;
    - [Failed] — the request itself was bad ({!Handler.Bad_request});
      never retried.

    Submissions past the admission limits are rejected {e immediately} with
    a typed {!Protocol.rejection} — [Overloaded] carries a [retry_after]
    backpressure hint derived from observed job latency; nothing ever
    blocks or silently drops at admission. *)

type config = {
  max_in_flight : int;  (** jobs running concurrently (≥ 1) *)
  max_queue : int;  (** jobs waiting beyond that before rejection *)
  default_deadline : float option;
      (** per-job deadline (s) for requests that don't set [deadline=] *)
  max_attempts : int;  (** attempts before quarantine (≥ 1) *)
  policy : Resilience.Policy.t;  (** seeds/caps the retry backoff *)
}

(** 2 in flight, queue of 8, no default deadline, 3 attempts,
    {!Resilience.Policy.default}. *)
val default_config : config

type job

(** The submission id, echoed as [Protocol.response.id]. *)
val job_id : job -> int

(** What executes a request; see {!Handler.default}. Runs on a pool worker
    (or inline when the daemon has no pool); must be self-contained. *)
type handler =
  budget:Budget.t ->
  Protocol.request ->
  Protocol.payload * Budget.degradation option

type t

(** [create ?pool ?on_complete ?config handler] builds a daemon. Without a
    [pool], jobs run inline during {!submit} — the deterministic
    single-client mode the bit-identity checks use. [on_complete] fires
    (outside all daemon locks) once per job with its final response. *)
val create :
  ?pool:Parallel.Pool.t ->
  ?on_complete:(Protocol.response -> unit) ->
  ?config:config ->
  handler ->
  t

(** [submit t request] admits or rejects immediately (never blocks on job
    execution — though with no pool the job itself runs inline before
    returning). Rejections are typed: [Overloaded] when both the in-flight
    budget and the queue are full, [Draining] after {!drain} began. *)
val submit : t -> Protocol.request -> (job, Protocol.rejection) result

(** [await t job] blocks until [job]'s response is ready. *)
val await : t -> job -> Protocol.response

(** [peek t job] is the response if the job already finished. *)
val peek : t -> job -> Protocol.response option

(** [submit_and_wait t request] = submit then await. *)
val submit_and_wait :
  t -> Protocol.request -> (Protocol.response, Protocol.rejection) result

type stats = {
  submitted : int;  (** admitted jobs *)
  completed : int;
  degraded : int;
  rejected : int;  (** typed [Overloaded] rejections *)
  rejected_draining : int;
  quarantined : int;
  failed : int;
  retries : int;  (** failed attempts that were re-run *)
  in_flight : int;
  waiting : int;
}

val stats : t -> stats
val stats_to_json : stats -> Obs.Json.t

(** [deep_stats_json ?catalog t] — the introspection snapshot behind the
    protocol's [stats deep]: the flat tallies plus every outstanding job
    (id, request, queued/running, live learner phase from its budget's
    phase cell, elapsed seconds, attempts), current queue depth, the EWMA
    latency backpressure hint, the loaded catalog keys (when [catalog] is
    given), a full metrics snapshot, and the wide-event drop count. *)
val deep_stats_json : ?catalog:Catalog.t -> t -> Obs.Json.t

(** [latencies t] — wall-clock seconds of every completed/degraded job, in
    completion order; feed {!Obs.Metrics.percentile}. *)
val latencies : t -> float array

(** [drain ?deadline t] stops admitting (subsequent submits get
    [Draining]) and blocks until every outstanding job has answered. Past
    [deadline] seconds it cancels each outstanding job's budget once, so
    anytime jobs wind down and answer best-so-far rather than being
    killed mid-write. *)
val drain : ?deadline:float -> t -> unit

(** [run_report ?name t] snapshots stats + exact latency percentiles into
    an {!Obs.Run_report} for the shutdown flush. *)
val run_report : ?name:string -> t -> Obs.Run_report.t
