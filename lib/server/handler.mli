(** Request execution: one function from a typed {!Protocol.request} to a
    response payload, threaded through the job's {!Budget}.

    The served learn path is the CLI learn path — identical config
    defaults, identical seed-derived RNG, full training split — so a
    fixed-seed request through the daemon is bit-identical to the same run
    via [autobias learn]. Handlers run sequentially inside ([pool = None]);
    the daemon multiplexes whole jobs onto the worker pool instead. *)

exception Bad_request of string
(** Raised for malformed/unsatisfiable requests (unknown dataset, method,
    strategy, non-positive scale). The daemon maps it to a [Failed]
    response and never retries it. *)

(** [default catalog ~budget request] executes [request], resolving its
    dataset through [catalog]. Returns the response payload plus the
    learner's degradation record ([None] for bias-only requests) — the
    daemon decides Completed vs Degraded from the latter.

    The budget is the {e job's} budget: its deadline makes the learner
    anytime (expiry returns the best-so-far definition), and cancelling it
    (drain timeout) winds the job down cooperatively. *)
val default :
  Catalog.t ->
  budget:Budget.t ->
  Protocol.request ->
  Protocol.payload * Budget.degradation option
