(* Closed-loop load generator. See loadgen.mli.

   Closed-loop means each client domain holds at most one job open: it
   submits, awaits the response (or the rejection), records, and only then
   takes the next job index off the shared counter. Offered load therefore
   adapts to service rate — the shape that makes admission control
   observable: with C clients against a daemon admitting I in flight and Q
   queued, at most C jobs are ever outstanding, and rejections appear
   exactly when C > I + Q.

   A well-behaved client honors the rejection's [retry_after] hint:
   [reject_retries] resubmits the same request after backing off, so under
   transient overload most jobs eventually run and the daemon sees
   sustained pressure rather than a stampede that burns every job index in
   the first second. A job is terminally rejected only once its retries
   are spent (or the daemon is draining). *)

type summary = {
  jobs : int;
  clients : int;
  completed : int;
  degraded : int;
  rejected : int;
  reject_events : int;
  quarantined : int;
  failed : int;
  retries : int;
  wall_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  reject_rate : float;
  accounted : bool;
}

type tally = {
  mutable t_completed : int;
  mutable t_degraded : int;
  mutable t_rejected : int;
  mutable t_reject_events : int;
  mutable t_quarantined : int;
  mutable t_failed : int;
  lats : float list ref;
}

let run ?(clients = 4) ?(jobs = 50) ?(reject_retries = 0)
    ?(max_backoff_s = 0.5) daemon requests =
  let clients = max 1 clients in
  let next = Atomic.make 0 in
  let tallies =
    Array.init clients (fun _ ->
        {
          t_completed = 0;
          t_degraded = 0;
          t_rejected = 0;
          t_reject_events = 0;
          t_quarantined = 0;
          t_failed = 0;
          lats = ref [];
        })
  in
  let client k =
    let tally = tallies.(k) in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < jobs then begin
        let request = requests i in
        let rec attempt tries =
          match Daemon.submit daemon request with
          | Error Protocol.Draining ->
              (* no point retrying: the daemon is shutting down *)
              tally.t_reject_events <- tally.t_reject_events + 1;
              tally.t_rejected <- tally.t_rejected + 1
          | Error (Protocol.Overloaded { retry_after }) ->
              tally.t_reject_events <- tally.t_reject_events + 1;
              if tries >= reject_retries then
                tally.t_rejected <- tally.t_rejected + 1
              else begin
                Unix.sleepf (Float.max 0.01 (Float.min retry_after max_backoff_s));
                attempt (tries + 1)
              end
          | Ok job -> (
              let r = Daemon.await daemon job in
              tally.lats := r.Protocol.latency_s :: !(tally.lats);
              match r.Protocol.outcome with
              | Protocol.Completed _ ->
                  tally.t_completed <- tally.t_completed + 1
              | Protocol.Degraded _ -> tally.t_degraded <- tally.t_degraded + 1
              | Protocol.Quarantined _ ->
                  tally.t_quarantined <- tally.t_quarantined + 1
              | Protocol.Failed _ -> tally.t_failed <- tally.t_failed + 1)
        in
        attempt 0;
        loop ()
      end
    in
    loop ()
  in
  let started = Budget.now () in
  let doms =
    Array.init clients (fun k -> Domain.spawn (fun () -> client k))
  in
  Array.iter Domain.join doms;
  let wall_s = Budget.now () -. started in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let completed = sum (fun t -> t.t_completed) in
  let degraded = sum (fun t -> t.t_degraded) in
  let rejected = sum (fun t -> t.t_rejected) in
  let reject_events = sum (fun t -> t.t_reject_events) in
  let quarantined = sum (fun t -> t.t_quarantined) in
  let failed = sum (fun t -> t.t_failed) in
  let lats =
    Array.of_list
      (Array.fold_left (fun acc t -> !(t.lats) @ acc) [] tallies)
  in
  let pct = Obs.Metrics.percentile lats in
  {
    jobs;
    clients;
    completed;
    degraded;
    rejected;
    reject_events;
    quarantined;
    failed;
    retries = (Daemon.stats daemon).Daemon.retries;
    wall_s;
    p50_s = pct 0.50;
    p95_s = pct 0.95;
    p99_s = pct 0.99;
    reject_rate =
      (if jobs = 0 then 0. else float_of_int rejected /. float_of_int jobs);
    accounted = completed + degraded + rejected + quarantined + failed = jobs;
  }

let summary_to_json s =
  Obs.Json.Obj
    [
      ("jobs", Obs.Json.Int s.jobs);
      ("clients", Obs.Json.Int s.clients);
      ("completed", Obs.Json.Int s.completed);
      ("degraded", Obs.Json.Int s.degraded);
      ("rejected", Obs.Json.Int s.rejected);
      ("reject_events", Obs.Json.Int s.reject_events);
      ("quarantined", Obs.Json.Int s.quarantined);
      ("failed", Obs.Json.Int s.failed);
      ("retries", Obs.Json.Int s.retries);
      ("wall_s", Obs.Json.Float s.wall_s);
      ("p50_latency_s", Obs.Json.Float s.p50_s);
      ("p95_latency_s", Obs.Json.Float s.p95_s);
      ("p99_latency_s", Obs.Json.Float s.p99_s);
      ("reject_rate", Obs.Json.Float s.reject_rate);
      ("outcomes_accounted", Obs.Json.Bool s.accounted);
    ]
