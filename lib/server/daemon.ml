(* The learning-as-a-service daemon. See daemon.mli for the contract.

   Concurrency shape: one daemon mutex guards the waiting queue, the
   in-flight count, the outstanding-job table and the tally counters; a
   condition variable wakes [await]ers when any job finishes. Job bodies
   run on the caller-supplied {!Parallel.Pool} (or inline when there is
   none), and everything a pool worker calls back into — completion,
   retry accounting, relaunch — takes the daemon lock only while the pool
   lock is NOT held (the pool invokes [on_fault]/[on_quarantine] outside
   its own lock for exactly this reason), so the two locks never nest in
   both orders.

   Job lifecycle (every admitted job ends in exactly one [`Done]):

     submit --admitted--> Queued/Running --ok--> Completed | Degraded
        |                     | handler raised (injected fault, kill, ...)
        +--> Rejected         v
             (typed,      attempt_failed --< max_attempts --> backoff+retry
              never            |
              blocks)          +--= max_attempts --> Quarantined (backtrace)

   A dropped pool task (worker absorbed an injected fault before the task
   ran) re-enters through [on_fault]; a pool-level quarantine (the task
   killed [job_retries] workers) re-enters through [on_quarantine]. Both
   land in the same retry path, so no admitted job can hang its waiter. *)

type config = {
  max_in_flight : int;
  max_queue : int;
  default_deadline : float option;
  max_attempts : int;
  policy : Resilience.Policy.t;
}

let default_config =
  {
    max_in_flight = 2;
    max_queue = 8;
    default_deadline = None;
    max_attempts = 3;
    policy = Resilience.Policy.default;
  }

type job = {
  id : int;
  request : Protocol.request;
  submitted_at : float;
  budget : Budget.t;
  mutable attempts : int;  (** failed attempts so far; guarded by [lock] *)
  mutable state : [ `Pending | `Done of Protocol.response ];
}

type handler =
  budget:Budget.t ->
  Protocol.request ->
  Protocol.payload * Budget.degradation option

type stats = {
  submitted : int;
  completed : int;
  degraded : int;
  rejected : int;
  rejected_draining : int;
  quarantined : int;
  failed : int;
  retries : int;
  in_flight : int;
  waiting : int;
}

type t = {
  config : config;
  handler : handler;
  pool : Parallel.Pool.t option;
  on_complete : (Protocol.response -> unit) option;
  lock : Mutex.t;
  job_done : Condition.t;
  waiting_q : job Queue.t;
  outstanding : (int, job) Hashtbl.t;  (** admitted, not yet [`Done] *)
  next_id : int Atomic.t;
  mutable in_flight : int;
  mutable draining : bool;
  mutable ewma_latency : float;  (** backpressure hint for [retry_after] *)
  mutable latencies : float list;  (** completed/degraded, newest first *)
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_degraded : int;
  mutable n_rejected : int;
  mutable n_rejected_draining : int;
  mutable n_quarantined : int;
  mutable n_failed : int;
  mutable n_retries : int;
}

let m_submitted = Obs.Metrics.counter "server.submitted"
let m_completed = Obs.Metrics.counter "server.completed"
let m_degraded = Obs.Metrics.counter "server.degraded"
let m_rejected = Obs.Metrics.counter "server.rejected"
let m_quarantined = Obs.Metrics.counter "server.quarantined"
let m_failed = Obs.Metrics.counter "server.failed"
let m_retries = Obs.Metrics.counter "server.retries"
let m_in_flight = Obs.Metrics.gauge "server.in_flight"
let m_waiting = Obs.Metrics.gauge "server.waiting"
let m_latency = Obs.Metrics.histogram "server.job_latency_s"

let create ?pool ?on_complete ?(config = default_config) handler =
  let config =
    {
      config with
      max_in_flight = max 1 config.max_in_flight;
      max_queue = max 0 config.max_queue;
      max_attempts = max 1 config.max_attempts;
    }
  in
  {
    config;
    handler;
    pool;
    on_complete;
    lock = Mutex.create ();
    job_done = Condition.create ();
    waiting_q = Queue.create ();
    outstanding = Hashtbl.create 64;
    next_id = Atomic.make 0;
    in_flight = 0;
    draining = false;
    ewma_latency = 0.;
    latencies = [];
    n_submitted = 0;
    n_completed = 0;
    n_degraded = 0;
    n_rejected = 0;
    n_rejected_draining = 0;
    n_quarantined = 0;
    n_failed = 0;
    n_retries = 0;
  }

(* ---------------- job lifecycle ---------------- *)

(* Wide events about a job are emitted under its trace context, so they
   carry the same ["job"] tag the job's spans do — the offline analyzer
   joins the two streams on it. *)
let job_event job name fields =
  if Obs.Events.enabled () then
    Obs.Trace.with_context ?job:(Budget.job job.budget) (fun () ->
        Obs.Events.emit name ~fields)

(* Complete [job] with [outcome]: record the tally, free the in-flight slot
   and hand it straight to the next waiting job (under one lock hold, so
   the cap can never be transiently exceeded), then launch that job and
   notify outside the lock. *)
let rec finish t job outcome =
  let latency = Budget.now () -. job.submitted_at in
  let attempts =
    match outcome with
    | Protocol.Quarantined q -> q.attempts
    | _ -> job.attempts + 1
  in
  let response =
    { Protocol.id = job.id; outcome; latency_s = latency; attempts }
  in
  Mutex.lock t.lock;
  (match job.state with
  | `Done _ ->
      (* double completion would corrupt the slot accounting; it cannot
         happen (each attempt ends in exactly one transition), but if a
         bug ever introduced one, keeping the first response is the
         conservative failure mode *)
      Mutex.unlock t.lock
  | `Pending ->
      (* emitted before the response is published: a drain that returns
         (and then flushes the event log) is guaranteed to see every
         finished job's lifecycle line. Events.emit is a leaf lock with no
         I/O, so holding t.lock across it is safe and cheap. *)
      job_event job "job.finished"
        [
          ( "outcome",
            Obs.Json.Str
              (match outcome with
              | Protocol.Completed _ -> "completed"
              | Protocol.Degraded _ -> "degraded"
              | Protocol.Quarantined _ -> "quarantined"
              | Protocol.Failed _ -> "failed") );
          ("latency_s", Obs.Json.Float latency);
          ("attempts", Obs.Json.Int attempts);
        ];
      job.state <- `Done response;
      Hashtbl.remove t.outstanding job.id;
      (match outcome with
      | Protocol.Completed _ ->
          t.n_completed <- t.n_completed + 1;
          Obs.Metrics.bump m_completed;
          t.latencies <- latency :: t.latencies
      | Protocol.Degraded _ ->
          t.n_degraded <- t.n_degraded + 1;
          Obs.Metrics.bump m_degraded;
          t.latencies <- latency :: t.latencies
      | Protocol.Quarantined _ ->
          t.n_quarantined <- t.n_quarantined + 1;
          Obs.Metrics.bump m_quarantined
      | Protocol.Failed _ ->
          t.n_failed <- t.n_failed + 1;
          Obs.Metrics.bump m_failed);
      Obs.Metrics.observe m_latency latency;
      t.ewma_latency <-
        (if t.ewma_latency = 0. then latency
         else (0.8 *. t.ewma_latency) +. (0.2 *. latency));
      let next =
        match Queue.take_opt t.waiting_q with
        | Some j -> Some j
        | None ->
            t.in_flight <- t.in_flight - 1;
            None
      in
      Obs.Metrics.gauge_set m_in_flight t.in_flight;
      Obs.Metrics.gauge_set m_waiting (Queue.length t.waiting_q);
      Condition.broadcast t.job_done;
      Mutex.unlock t.lock;
      (match t.on_complete with
      | Some f -> ( try f response with _ -> ())
      | None -> ());
      Option.iter (fun j -> launch t j) next)

(* One failed attempt: retry with seeded backoff until the attempt budget
   is spent, then quarantine with the final exception and backtrace. *)
and attempt_failed t job ~exn ~backtrace =
  Mutex.lock t.lock;
  job.attempts <- job.attempts + 1;
  let attempts = job.attempts in
  let quarantine = attempts >= t.config.max_attempts in
  if not quarantine then begin
    t.n_retries <- t.n_retries + 1;
    Obs.Metrics.bump m_retries
  end;
  Mutex.unlock t.lock;
  if quarantine then begin
    job_event job "job.quarantined"
      [ ("attempts", Obs.Json.Int attempts); ("exn", Obs.Json.Str exn) ];
    finish t job (Protocol.Quarantined { attempts; exn; backtrace })
  end
  else begin
    job_event job "job.retried"
      [ ("attempt", Obs.Json.Int attempts); ("exn", Obs.Json.Str exn) ];
    let delay =
      Resilience.Policy.backoff t.config.policy ~attempt:attempts
        ~salt:(Hashtbl.hash job.id)
    in
    launch t ~delay job
  end

and run_attempt t ?(delay = 0.) job =
  (* The backoff sleep respects the job's budget: a cancelled or expired
     job is not held hostage, its attempt just runs (and degrades) now. *)
  if delay > 0. then Budget.sleepf ~budget:job.budget delay;
  match
    (* Establish the job's trace context for the whole attempt: every span
       and wide event the handler (and the learner under it) emits on this
       domain — and, via the pool's context capture, on every worker it
       fans out to — is tagged with this job's id. *)
    Obs.Trace.with_context ?job:(Budget.job job.budget) @@ fun () ->
    Obs.Events.emit "job.started"
      ~fields:[ ("attempt", Obs.Json.Int (job.attempts + 1)) ];
    try
      Chaos.tick_layer "server";
      let payload, degradation = t.handler ~budget:job.budget job.request in
      `Done
        (match degradation with
        | Some d when not (Budget.equal_status d.Budget.status Budget.Completed)
          ->
            Protocol.Degraded (payload, d)
        | _ ->
            if Budget.expired job.budget then
              Protocol.Degraded (payload, Budget.degradation job.budget)
            else Protocol.Completed payload)
    with
    | Handler.Bad_request msg -> `Done (Protocol.Failed msg)
    | e -> `Retry (e, Printexc.get_raw_backtrace ())
  with
  | `Done outcome -> finish t job outcome
  | `Retry (e, bt) ->
      attempt_failed t job ~exn:(Printexc.to_string e)
        ~backtrace:(Printexc.raw_backtrace_to_string bt)

(* Hand the job to a pool worker (or run it inline). The callbacks cover
   the two ways a pool can eat a task: a dropped exception and a
   supervision quarantine — both feed the daemon's own retry accounting so
   the waiter always gets a response. *)
and launch t ?delay job =
  match t.pool with
  | None -> run_attempt t ?delay job
  | Some pool -> (
      try
        Parallel.Pool.submit pool
          ~on_fault:(fun e ->
            attempt_failed t job ~exn:(Printexc.to_string e)
              ~backtrace:(Printexc.get_backtrace ()))
          ~on_quarantine:(fun q ->
            attempt_failed t job ~exn:q.Parallel.Pool.exn
              ~backtrace:q.Parallel.Pool.backtrace)
          (fun () -> run_attempt t ?delay job)
      with Invalid_argument _ ->
        (* pool already shut down under us: answer rather than hang *)
        finish t job (Protocol.Failed "server: worker pool is shut down"))

(* ---------------- admission ---------------- *)

let retry_after_estimate t =
  (* queue position / service rate: how long until a slot should free up
     if the client comes back — a hint, not a promise *)
  let per_job = Float.max 0.05 t.ewma_latency in
  per_job
  *. float_of_int (Queue.length t.waiting_q + 1)
  /. float_of_int t.config.max_in_flight

let submit t request =
  Mutex.lock t.lock;
  if t.draining then begin
    t.n_rejected_draining <- t.n_rejected_draining + 1;
    Mutex.unlock t.lock;
    Obs.Events.emit "job.rejected"
      ~fields:[ ("reason", Obs.Json.Str "draining") ];
    Error Protocol.Draining
  end
  else if
    t.in_flight >= t.config.max_in_flight
    && Queue.length t.waiting_q >= t.config.max_queue
  then begin
    t.n_rejected <- t.n_rejected + 1;
    Obs.Metrics.bump m_rejected;
    let retry_after = retry_after_estimate t in
    Mutex.unlock t.lock;
    Obs.Events.emit "job.rejected"
      ~fields:
        [
          ("reason", Obs.Json.Str "overloaded");
          ("retry_after_s", Obs.Json.Float retry_after);
        ];
    Error (Protocol.Overloaded { retry_after })
  end
  else begin
    t.n_submitted <- t.n_submitted + 1;
    Obs.Metrics.bump m_submitted;
    let deadline =
      match (Protocol.common_of_request request).Protocol.deadline with
      | Some _ as d -> d
      | None -> t.config.default_deadline
    in
    (* The trace/job id is minted here, at admission, and threaded through
       the budget: every observability stream downstream (spans, wide
       events, live phase) keys on it. *)
    let id = Atomic.fetch_and_add t.next_id 1 in
    let job =
      {
        id;
        request;
        submitted_at = Budget.now ();
        budget =
          Budget.create ~job:(Printf.sprintf "job-%d" id) ?deadline ();
        attempts = 0;
        state = `Pending;
      }
    in
    Hashtbl.replace t.outstanding job.id job;
    let run_now = t.in_flight < t.config.max_in_flight in
    if run_now then t.in_flight <- t.in_flight + 1
    else Queue.push job t.waiting_q;
    Obs.Metrics.gauge_set m_in_flight t.in_flight;
    Obs.Metrics.gauge_set m_waiting (Queue.length t.waiting_q);
    Mutex.unlock t.lock;
    job_event job "job.admitted"
      [
        ("verb", Obs.Json.Str (Protocol.verb_of_request request));
        ("queued", Obs.Json.Bool (not run_now));
      ];
    if run_now then launch t job;
    Ok job
  end

let await t job =
  Mutex.lock t.lock;
  let rec wait () =
    match job.state with
    | `Done r -> r
    | `Pending ->
        Condition.wait t.job_done t.lock;
        wait ()
  in
  let r = wait () in
  Mutex.unlock t.lock;
  r

let peek _t job = match job.state with `Done r -> Some r | `Pending -> None

let job_id (job : job) = job.id

let submit_and_wait t request =
  match submit t request with
  | Error _ as e -> e
  | Ok job -> Ok (await t job)

(* ---------------- stats, drain ---------------- *)

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      submitted = t.n_submitted;
      completed = t.n_completed;
      degraded = t.n_degraded;
      rejected = t.n_rejected;
      rejected_draining = t.n_rejected_draining;
      quarantined = t.n_quarantined;
      failed = t.n_failed;
      retries = t.n_retries;
      in_flight = t.in_flight;
      waiting = Queue.length t.waiting_q;
    }
  in
  Mutex.unlock t.lock;
  s

let latencies t =
  Mutex.lock t.lock;
  let l = t.latencies in
  Mutex.unlock t.lock;
  Array.of_list (List.rev l)

let stats_to_json (s : stats) =
  Obs.Json.Obj
    [
      ("submitted", Obs.Json.Int s.submitted);
      ("completed", Obs.Json.Int s.completed);
      ("degraded", Obs.Json.Int s.degraded);
      ("rejected", Obs.Json.Int s.rejected);
      ("rejected_draining", Obs.Json.Int s.rejected_draining);
      ("quarantined", Obs.Json.Int s.quarantined);
      ("failed", Obs.Json.Int s.failed);
      ("retries", Obs.Json.Int s.retries);
      ("in_flight", Obs.Json.Int s.in_flight);
      ("waiting", Obs.Json.Int s.waiting);
    ]

(* The deep stats snapshot: everything a "what is the daemon doing right
   now" question needs, in one JSON object. In-flight jobs expose their
   live learner phase through the budget's phase cell (an atomic string the
   worker updates and this coordinator read races benignly with). *)
let deep_stats_json ?catalog t =
  let now = Budget.now () in
  Mutex.lock t.lock;
  let queued = Hashtbl.create 8 in
  Queue.iter (fun j -> Hashtbl.replace queued j.id ()) t.waiting_q;
  let jobs =
    Hashtbl.fold (fun _ j acc -> j :: acc) t.outstanding []
    |> List.sort (fun a b -> compare a.id b.id)
  in
  let queue_depth = Queue.length t.waiting_q in
  let ewma = t.ewma_latency in
  Mutex.unlock t.lock;
  let job_json j =
    Obs.Json.Obj
      [
        ("id", Obs.Json.Int j.id);
        ( "job",
          Obs.Json.Str (Option.value ~default:"" (Budget.job j.budget)) );
        ("request", Obs.Json.Str (Protocol.request_to_string j.request));
        ( "state",
          Obs.Json.Str (if Hashtbl.mem queued j.id then "queued" else "running")
        );
        ("phase", Obs.Json.Str (Budget.phase j.budget));
        ("elapsed_s", Obs.Json.Float (now -. j.submitted_at));
        ("attempts", Obs.Json.Int j.attempts);
      ]
  in
  let catalog_json =
    match catalog with
    | None -> Obs.Json.Null
    | Some c ->
        Obs.Json.List
          (List.map
             (fun (name, scale, seed) ->
               Obs.Json.Obj
                 [
                   ("data", Obs.Json.Str name);
                   ("scale", Obs.Json.Float scale);
                   ("seed", Obs.Json.Int seed);
                 ])
             (Catalog.loaded c))
  in
  Obs.Json.Obj
    [
      ("stats", stats_to_json (stats t));
      ("in_flight_jobs", Obs.Json.List (List.map job_json jobs));
      ("queue_depth", Obs.Json.Int queue_depth);
      ("ewma_latency_s", Obs.Json.Float ewma);
      ("catalog", catalog_json);
      ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
      ("events_dropped", Obs.Json.Int (Obs.Events.dropped ()));
    ]

let drain ?deadline t =
  Mutex.lock t.lock;
  t.draining <- true;
  Mutex.unlock t.lock;
  let cancel_at = Option.map (fun s -> Budget.now () +. s) deadline in
  let cancelled = ref false in
  let rec wait () =
    Mutex.lock t.lock;
    let pending = Hashtbl.length t.outstanding in
    if pending > 0 then begin
      (match cancel_at with
      | Some at when (not !cancelled) && Budget.now () > at ->
          (* past the drain deadline: cancel every outstanding job's budget
             so the anytime learners wind down and answer best-so-far *)
          cancelled := true;
          Hashtbl.iter (fun _ j -> Budget.cancel j.budget) t.outstanding
      | _ -> ());
      Mutex.unlock t.lock;
      Unix.sleepf 0.005;
      wait ()
    end
    else Mutex.unlock t.lock
  in
  wait ()

let run_report ?(name = "server") t =
  let s = stats t in
  let lat = latencies t in
  let pct = Obs.Metrics.percentile lat in
  Obs.Run_report.make ~name
    ~config:
      [
        ("max_in_flight", Obs.Json.Int t.config.max_in_flight);
        ("max_queue", Obs.Json.Int t.config.max_queue);
        ("max_attempts", Obs.Json.Int t.config.max_attempts);
        ( "default_deadline_s",
          match t.config.default_deadline with
          | Some d -> Obs.Json.Float d
          | None -> Obs.Json.Null );
      ]
    ~extra:
      [
        ("server", stats_to_json s);
        ( "latency",
          Obs.Json.Obj
            [
              ("jobs", Obs.Json.Int (Array.length lat));
              ("p50_s", Obs.Json.Float (pct 0.50));
              ("p95_s", Obs.Json.Float (pct 0.95));
              ("p99_s", Obs.Json.Float (pct 0.99));
            ] );
      ]
    ()
