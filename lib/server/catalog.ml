(* Shared read-mostly catalog of loaded databases. See catalog.mli.

   Reads are one atomic load plus an assoc walk — the hot path, since every
   job resolves its dataset here. Loads (rare: first request for a
   (dataset, scale, seed) triple) serialize on a mutex and double-check the
   map under it, so concurrent first requests generate the dataset once.
   Entries are immutable once published; jobs on other domains can hold a
   dataset across the whole run without further coordination. *)

type key = { name : string; scale : float; seed : int }

type error =
  | Unknown_dataset of string
  | Generation_failed of { dataset : string; message : string }

let error_to_string = function
  | Unknown_dataset d ->
      Printf.sprintf "unknown dataset %S (known: uw, imdb, hiv, flt, sys)" d
  | Generation_failed { dataset; message } ->
      Printf.sprintf "generating %S failed: %s" dataset message

type t = {
  entries : (key * Datasets.Dataset.t) list Atomic.t;
  load_lock : Mutex.t;
}

let create () = { entries = Atomic.make []; load_lock = Mutex.create () }

let known = [ "uw"; "imdb"; "hiv"; "flt"; "sys" ]

let generate ~name ~scale ~seed =
  match name with
  | "uw" -> Ok (Datasets.Uw.generate ~seed ~scale ())
  | "imdb" -> Ok (Datasets.Imdb.generate ~seed ~scale ())
  | "hiv" -> Ok (Datasets.Hiv.generate ~seed ~scale ())
  | "flt" -> Ok (Datasets.Flt.generate ~seed ~scale ())
  | "sys" -> Ok (Datasets.Sys_data.generate ~seed ~scale ())
  | _ -> Error (Unknown_dataset name)

let find t key = List.assoc_opt key (Atomic.get t.entries)

let load t ~name ~scale ~seed =
  let key = { name; scale; seed } in
  match find t key with
  | Some d -> Ok d
  | None ->
      if not (List.mem name known) then Error (Unknown_dataset name)
      else begin
        Mutex.lock t.load_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.load_lock)
          (fun () ->
            (* double-check: another domain may have published it while we
               waited for the load lock *)
            match find t key with
            | Some d -> Ok d
            | None -> (
                match
                  try generate ~name ~scale ~seed
                  with e ->
                    Error
                      (Generation_failed
                         { dataset = name; message = Printexc.to_string e })
                with
                | Error _ as e -> e
                | Ok d ->
                    (* the load lock is held: a plain read-modify-write
                       cannot race another publisher *)
                    Atomic.set t.entries ((key, d) :: Atomic.get t.entries);
                    Ok d))
      end

let loaded t =
  List.map
    (fun ({ name; scale; seed }, _) -> (name, scale, seed))
    (Atomic.get t.entries)
  |> List.sort compare
