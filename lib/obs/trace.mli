(** Structured span tracing for the learner: scoped begin/end spans with
    categories and key=value args, one track per domain, recorded into a
    bounded in-memory ring buffer and exported as Chrome trace-event JSON
    (loadable in [chrome://tracing] / Perfetto) or as a plain-text per-phase
    summary tree.

    The tracer is a process-wide singleton, disabled by default. A span site
    on a disabled tracer costs exactly one atomic load — the learner's hot
    paths (per-candidate evaluation, per-job pool lifecycle) are permanently
    instrumented and pay nothing until someone passes [--trace]. Spans never
    touch any RNG, so enabling the tracer cannot change a learned
    definition.

    Thread-model: spans nest per domain (a scoped [span] call always closes
    in LIFO order on its own domain); the ring buffer is multi-producer.
    {!export_json}/{!summary} read the buffer and should be called when the
    traced work is quiescent (after pool jobs drained). *)

(** [enable ?capacity ()] turns tracing on with a fresh buffer of at most
    [capacity] spans (default [2^18]); once full, the ring wraps and the
    oldest spans are overwritten ({!dropped} counts them). *)
val enable : ?capacity:int -> unit -> unit

(** [disable ()] turns tracing off and drops the buffer. *)
val disable : unit -> unit

val enabled : unit -> bool

(** [span ?args ~cat name f] runs [f ()] inside a span. On the disabled
    tracer this is [f ()] after one atomic load. The span is recorded when
    [f] returns {e or raises} (a {!Budget.Expired} unwinding through the
    learner still closes every span on the way out). *)
val span : ?args:(string * string) list -> cat:string -> string -> (unit -> 'a) -> 'a

(** [arg key value] attaches [key=value] to the innermost open span of the
    calling domain (no-op when disabled or outside any span) — for values
    only known at the end of the work, e.g. memo hits observed during a
    coverage pass. *)
val arg : string -> string -> unit

(** [time f] is a plain stopwatch — [(f (), elapsed-seconds)] on the
    monotonized clock. Works with the tracer disabled; the bench harness
    uses it instead of hand-rolled [Unix.gettimeofday] pairs. *)
val time : (unit -> 'a) -> 'a * float

(** {1 Trace context}

    The ambient per-domain job label. A daemon worker entering a job wraps
    the work in {!with_context}; every span closed inside (and every
    {!Events} line emitted inside) is tagged with that label, so a
    multi-job trace can be sliced per job. The context is orthogonal to the
    tracer's enabled state and never touches any RNG — setting it cannot
    change a learned definition. *)

(** [with_context ?job f] runs [f ()] with the calling domain's trace
    context set to [job] (saved and restored around [f], exception-safe);
    [with_context ?job:None f] is just [f ()]. *)
val with_context : ?job:string -> (unit -> 'a) -> 'a

(** [context ()] is the calling domain's current job label, if any. *)
val context : unit -> string option

(** One recorded (completed) span. Timestamps are microseconds since
    {!enable}; [track] is the runtime domain id that ran the span; [path]
    is the names of the span's ancestors on its domain, outermost first,
    ending with the span itself; [job] is the trace context the span closed
    under, exported as a ["job"] arg. *)
type event = {
  name : string;
  cat : string;
  track : int;
  path : string list;
  t_start_us : float;
  t_end_us : float;
  args : (string * string) list;
  job : string option;
}

(** [events ()] is the buffer's completed spans, oldest first. *)
val events : unit -> event list

(** [dropped ()] — spans overwritten after the ring wrapped. *)
val dropped : unit -> int

(** [to_json ()] is the Chrome trace-event JSON object
    ([{"traceEvents": [...], ...}]): balanced B/E duration events with
    monotone timestamps per track, plus thread-name metadata per track. *)
val to_json : unit -> Json.t

(** [export_json path] writes {!to_json} to [path]. *)
val export_json : string -> unit

(** {1 Per-phase summary} *)

(** Aggregation of spans by path: call count, cumulative wall-clock and
    self time (cumulative minus the cumulative of direct children). *)
type summary_row = {
  row_path : string list;
  calls : int;
  total_s : float;
  self_s : float;
}

(** [summary_rows ()] — rows sorted by path (parents before children). *)
val summary_rows : unit -> summary_row list

(** [pp_summary ppf ()] renders the summary tree: indented span names with
    call counts, cumulative and self time. *)
val pp_summary : Format.formatter -> unit -> unit

val summary_string : unit -> string
