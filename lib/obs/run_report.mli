(** Machine-readable run reports: one structured record tying together the
    run configuration, the {!Budget} degradation record (status + the
    shared degradation counters — memo hits/misses/inherited, subsumption
    tries, ... — of which {!Budget} stays the single source of truth), the
    {!Metrics} snapshot, and the {!Trace} per-phase timing rows. The CLI
    writes one as [--metrics FILE.json]; the bench harness embeds one into
    [BENCH_autobias.json]. *)

type t = {
  name : string;
  config : (string * Json.t) list;  (** free-form run parameters *)
  degradation : Budget.degradation option;
  metrics : Metrics.snapshot;
  phases : Trace.summary_row list;
  funnel : Funnel.row list;
      (** the search-funnel rows ({!Funnel.snapshot}) — per-beam-step
          candidate accounting *)
  extra : (string * Json.t) list;
      (** extra top-level report entries (chaos snapshot, pool quarantine,
          CSV skip statistics, checkpoint info, ...) *)
}

(** [make ~name ?config ?degradation ?extra ()] snapshots the global
    metrics registry and tracer now; [extra] entries are appended at the
    top level of the JSON object. *)
val make :
  name:string ->
  ?config:(string * Json.t) list ->
  ?degradation:Budget.degradation ->
  ?extra:(string * Json.t) list ->
  unit ->
  t

val to_json : t -> Json.t

(** [write t path] writes [to_json t] to [path]. *)
val write : t -> string -> unit
