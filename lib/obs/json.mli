(** A minimal JSON tree: emitter for the observability exports (trace files,
    metrics snapshots, run reports) and a strict parser used by the tests
    and CI smoke to validate that what we wrote is actually JSON. Kept
    dependency-free on purpose — the repo bakes in no JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string j] is compact single-line JSON. Non-finite floats emit
    [null] (JSON has no NaN/Infinity). Strings escape ['"'], ['\\'] and
    every control character (U+0000–U+001F) as [\uXXXX]; remaining bytes
    are validated as UTF-8, ill-formed sequences replaced by U+FFFD, so the
    output is always valid UTF-8 JSON whatever bytes the input held. *)
val to_string : t -> string

(** [utf8_valid s] — [s] is well-formed UTF-8 (no overlong encodings,
    surrogates, or codepoints past U+10FFFF). Every string {!to_string}
    emits satisfies this. *)
val utf8_valid : string -> bool

(** [to_buffer buf j] appends [to_string j] to [buf] without intermediate
    strings (trace files hold hundreds of thousands of events). *)
val to_buffer : Buffer.t -> t -> unit

(** [write path j] writes [to_string j] (plus a trailing newline) to
    [path]. *)
val write : string -> t -> unit

(** [parse s] parses strict JSON. Numbers with a fraction or exponent
    become [Float], the rest [Int]. *)
val parse : string -> (t, string) result

(** [member key j] is the value under [key] when [j] is an object. *)
val member : string -> t -> t option
