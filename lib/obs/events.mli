(** Structured wide-event log: a bounded, lock-safe, process-global JSONL
    sink for the system's discrete lifecycle events — job admitted /
    started / retried / quarantined, clause accepted, checkpoint written,
    chaos injection fired — each line a self-contained JSON object with a
    timestamp, the event name, the emitting domain's trace context (the
    owning job, see {!Trace.with_context}) and arbitrary fields.

    Like the tracer, the sink is disabled by default and an [emit] site on
    a disabled sink costs one atomic load, so emit sites are permanently
    wired through the daemon and learner and pay nothing until someone
    passes [--events]. Events are queued in memory (bounded, oldest dropped
    with an accounting line) and only written by {!flush}, which writes the
    whole queue to a temp file and atomically renames it into place — a
    flush racing a crash or signal never leaves a truncated file. *)

(** [configure ?capacity path] turns the sink on, directing {!flush} to
    [path]. At most [capacity] (default 8192) events are retained; beyond
    that the oldest are dropped and counted. *)
val configure : ?capacity:int -> string -> unit

(** [disable ()] turns the sink off and drops queued events. *)
val disable : unit -> unit

val enabled : unit -> bool

(** [emit ?fields name] queues one event. No-op when disabled; never does
    I/O; safe from any domain. The emitting domain's {!Trace.context} is
    recorded as a ["job"] field when set. *)
val emit : ?fields:(string * Json.t) list -> string -> unit

(** [snapshot ()] is the queued events, oldest first (tests). *)
val snapshot : unit -> Json.t list

(** [dropped ()] — events evicted since {!configure}. *)
val dropped : unit -> int

(** [flush ()] atomically (re)writes the configured path with every queued
    event, one JSON object per line, appending an ["events.dropped"]
    accounting line when the queue overflowed. Safe to call repeatedly;
    each call rewrites the full (bounded) queue. *)
val flush : unit -> unit
