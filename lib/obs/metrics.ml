(** Lock-free metrics registry. See metrics.mli for the contract.

    Registration takes the registry mutex (cold path, idempotent by name);
    bumps touch only atomics owned by the handle. Histograms keep a count
    per fixed bucket plus sum/count/max; float cells are updated by CAS
    retry loops (OCaml atomics compare boxed floats by physical identity,
    so the loop re-reads the exact box it is replacing). *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; g_cell : int Atomic.t }

(* Log-spaced bucket upper bounds, seconds: 1µs · 2^k. The last bound is
   ~67s; observations beyond it land in the overflow bucket and percentile
   estimates above it fall back to the exact max. *)
let bucket_bounds =
  Array.init 27 (fun k -> 1e-6 *. Float.of_int (1 lsl k))

type histogram = {
  h_name : string;
  buckets : int Atomic.t array;  (** length = Array.length bucket_bounds + 1 *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_max : float Atomic.t;
}

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
        let h = make () in
        Hashtbl.replace tbl name h;
        h
  in
  Mutex.unlock lock;
  h

let counter name =
  registered counters name (fun () -> { c_name = name; cell = Atomic.make 0 })

let bump c = Atomic.incr c.cell
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.cell n)
let counter_value c = Atomic.get c.cell

let gauge name =
  registered gauges name (fun () -> { g_name = name; g_cell = Atomic.make 0 })

let gauge_set g v = Atomic.set g.g_cell v
let gauge_add g n = ignore (Atomic.fetch_and_add g.g_cell n)
let gauge_value g = Atomic.get g.g_cell

let histogram name =
  registered histograms name (fun () ->
      {
        h_name = name;
        buckets =
          Array.init (Array.length bucket_bounds + 1) (fun _ -> Atomic.make 0);
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0.;
        h_max = Atomic.make 0.;
      })

let rec atomic_add_float cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then
    atomic_add_float cell x

let rec atomic_max_float cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then
    atomic_max_float cell x

(* Bucket index by binary search over the fixed bounds (first bound >= v);
   the overflow bucket is the final slot. *)
let bucket_index v =
  let n = Array.length bucket_bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bucket_bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  let v = Float.max 0. v in
  Atomic.incr h.buckets.(bucket_index v);
  Atomic.incr h.h_count;
  atomic_add_float h.h_sum v;
  atomic_max_float h.h_max v

let time h f =
  let t0 = Budget.now () in
  Fun.protect ~finally:(fun () -> observe h (Budget.now () -. t0)) f

type histogram_snapshot = {
  count : int;
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histogram_snapshot) list;
}

let quantile ~counts ~total ~max_ q =
  if total = 0 then 0.
  else begin
    let target = Float.to_int (Float.round (q *. Float.of_int total)) in
    let target = Stdlib.max 1 target in
    let acc = ref 0 and i = ref 0 and result = ref max_ in
    let n = Array.length counts in
    (try
       while !i < n do
         acc := !acc + counts.(!i);
         if !acc >= target then begin
           result :=
             (if !i < Array.length bucket_bounds then bucket_bounds.(!i)
              else max_);
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    Float.min !result max_
  end

let snapshot_histogram h =
  let counts = Array.map Atomic.get h.buckets in
  let total = Atomic.get h.h_count in
  let max_ = Atomic.get h.h_max in
  {
    count = total;
    sum = Atomic.get h.h_sum;
    p50 = quantile ~counts ~total ~max_ 0.50;
    p95 = quantile ~counts ~total ~max_ 0.95;
    p99 = quantile ~counts ~total ~max_ 0.99;
    max = max_;
  }

let snapshot () =
  Mutex.lock lock;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
  let gs = Hashtbl.fold (fun _ g acc -> g :: acc) gauges [] in
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
  Mutex.unlock lock;
  {
    counters =
      List.map (fun c -> (c.c_name, Atomic.get c.cell)) cs
      |> List.sort compare;
    gauges =
      List.map (fun g -> (g.g_name, Atomic.get g.g_cell)) gs
      |> List.sort compare;
    histograms =
      List.map (fun h -> (h.h_name, snapshot_histogram h)) hs
      |> List.sort compare;
  }

let counters_leq a b =
  List.for_all
    (fun (name, v) ->
      match List.assoc_opt name b.counters with
      | Some v' -> v <= v'
      | None -> false)
    a.counters

(* Exact sample percentile (nearest-rank on a sorted copy), unlike the
   registry histograms whose estimates carry one log-bucket of error — the
   serving bench reports its p50/p95/p99 latencies from raw samples. *)
let percentile samples q =
  let n = Array.length samples in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.count);
                     ("sum_s", Json.Float h.sum);
                     ("p50_s", Json.Float h.p50);
                     ("p95_s", Json.Float h.p95);
                     ("p99_s", Json.Float h.p99);
                     ("max_s", Json.Float h.max);
                   ] ))
             s.histograms) );
    ]

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun b -> Atomic.set b 0) h.buckets;
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0.;
      Atomic.set h.h_max 0.)
    histograms;
  Mutex.unlock lock
