(** Structured run reports. See run_report.mli. *)

type t = {
  name : string;
  config : (string * Json.t) list;
  degradation : Budget.degradation option;
  metrics : Metrics.snapshot;
  phases : Trace.summary_row list;
  funnel : Funnel.row list;
  extra : (string * Json.t) list;
}

let make ~name ?(config = []) ?degradation ?(extra = []) () =
  {
    name;
    config;
    degradation;
    metrics = Metrics.snapshot ();
    phases = Trace.summary_rows ();
    funnel = Funnel.snapshot ();
    extra;
  }

let degradation_json (d : Budget.degradation) =
  Json.Obj
    [
      ("status", Json.Str (Budget.status_to_string d.Budget.status));
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             (Budget.counters_to_assoc d.Budget.counters)) );
    ]

let phase_json (r : Trace.summary_row) =
  Json.Obj
    [
      ("path", Json.Str (String.concat "/" r.Trace.row_path));
      ("calls", Json.Int r.Trace.calls);
      ("total_s", Json.Float r.Trace.total_s);
      ("self_s", Json.Float r.Trace.self_s);
    ]

let to_json t =
  Json.Obj
    ([
      ("name", Json.Str t.name);
      ("config", Json.Obj t.config);
      ( "degradation",
        match t.degradation with
        | Some d -> degradation_json d
        | None -> Json.Null );
      ("metrics", Metrics.to_json t.metrics);
      ("phases", Json.List (List.map phase_json t.phases));
      ("funnel", Funnel.to_json t.funnel);
    ]
    @ t.extra)

let write t path = Json.write path (to_json t)
