(** Search-funnel accounting. See funnel.mli.

    Storage is a fixed grid of atomics (steps × buckets): the learner's
    coordinator adds a step's tallies with one [fetch_and_add] per bucket,
    so recording is lock-free and safe from concurrent learns (a daemon
    serving several jobs aggregates, exactly like {!Metrics}). Recording is
    pure accounting over decisions the search already made — it never runs
    a coverage test or touches an RNG, so the funnel cannot change a
    learned definition. *)

type row = {
  step : int;
  generated : int;
  prune_hit : int;
  memo_hit : int;
  inherited : int;
  evaluated : int;
  accepted : int;
}

let max_steps = 64
let n_buckets = 6

(* grid.(step * n_buckets + bucket); step >= max_steps folds into the last
   row so deep beams never index out of bounds. *)
let grid = Array.init (max_steps * n_buckets) (fun _ -> Atomic.make 0)

let slot step bucket =
  let step = if step < 1 then 1 else if step > max_steps then max_steps else step in
  ((step - 1) * n_buckets) + bucket

let add step bucket n =
  if n > 0 then ignore (Atomic.fetch_and_add grid.(slot step bucket) n)

let record ~step ~generated ~prune_hit ~memo_hit ~inherited ~evaluated
    ~accepted =
  add step 0 generated;
  add step 1 prune_hit;
  add step 2 memo_hit;
  add step 3 inherited;
  add step 4 evaluated;
  add step 5 accepted

let reset () = Array.iter (fun c -> Atomic.set c 0) grid

let snapshot () =
  let rows = ref [] in
  for step = max_steps downto 1 do
    let get b = Atomic.get grid.(slot step b) in
    let r =
      {
        step;
        generated = get 0;
        prune_hit = get 1;
        memo_hit = get 2;
        inherited = get 3;
        evaluated = get 4;
        accepted = get 5;
      }
    in
    if
      r.generated <> 0 || r.prune_hit <> 0 || r.memo_hit <> 0
      || r.inherited <> 0 || r.evaluated <> 0 || r.accepted <> 0
    then rows := r :: !rows
  done;
  !rows

let invariant_holds r =
  r.generated = r.prune_hit + r.memo_hit + r.inherited + r.evaluated

let total rows =
  List.fold_left
    (fun acc r ->
      {
        step = 0;
        generated = acc.generated + r.generated;
        prune_hit = acc.prune_hit + r.prune_hit;
        memo_hit = acc.memo_hit + r.memo_hit;
        inherited = acc.inherited + r.inherited;
        evaluated = acc.evaluated + r.evaluated;
        accepted = acc.accepted + r.accepted;
      })
    { step = 0; generated = 0; prune_hit = 0; memo_hit = 0; inherited = 0;
      evaluated = 0; accepted = 0 }
    rows

let row_to_json r =
  Json.Obj
    [
      ("step", Json.Int r.step);
      ("generated", Json.Int r.generated);
      ("prune_hit", Json.Int r.prune_hit);
      ("memo_hit", Json.Int r.memo_hit);
      ("inherited", Json.Int r.inherited);
      ("evaluated", Json.Int r.evaluated);
      ("accepted", Json.Int r.accepted);
    ]

let to_json rows = Json.List (List.map row_to_json rows)

let pct part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let pp_row ppf label r =
  Format.fprintf ppf "  %-7s generated %6d@." label r.generated;
  let branch sym name v =
    Format.fprintf ppf "          %s %-10s %6d (%5.1f%%)" sym name v
      (pct v r.generated)
  in
  branch "\xe2\x94\x9c\xe2\x94\x80" "prune-hit" r.prune_hit;
  Format.fprintf ppf "@.";
  branch "\xe2\x94\x9c\xe2\x94\x80" "memo-hit" r.memo_hit;
  Format.fprintf ppf "@.";
  branch "\xe2\x94\x9c\xe2\x94\x80" "inherited" r.inherited;
  Format.fprintf ppf "@.";
  branch "\xe2\x94\x94\xe2\x94\x80" "evaluated" r.evaluated;
  Format.fprintf ppf " \xe2\x86\x92 accepted %d@." r.accepted

let pp ppf rows =
  match rows with
  | [] -> Format.fprintf ppf "(no funnel data recorded)@."
  | rows ->
      Format.fprintf ppf
        "search funnel (candidates per beam step; generated = prune-hit + \
         memo-hit + inherited + evaluated):@.";
      List.iter
        (fun r -> pp_row ppf (Printf.sprintf "step %d:" r.step) r)
        rows;
      if List.length rows > 1 then pp_row ppf "total:" (total rows)

let to_string rows = Format.asprintf "%a" pp rows
