(** Search-funnel accounting: where each generated candidate clause went,
    per beam step — the "where did my budget go" answer for the learner's
    search.

    Each candidate a beam step produces is resolved by exactly one
    mechanism, so per step

    {[ generated = prune_hit + memo_hit + inherited + evaluated ]}

    and [accepted <= evaluated] (the beam keeps at most [beam_width] of
    them). The registry is process-global like {!Metrics}: steps aggregate
    across clause searches (and across jobs in a daemon); {!reset} starts a
    fresh window. Recording is lock-free ([fetch_and_add] per bucket) and
    purely observational — it cannot change a learned definition. *)

type row = {
  step : int;  (** 1-based beam step; [0] only in {!total} *)
  generated : int;  (** candidates produced (after dedup) and resolved *)
  prune_hit : int;  (** rejected wholesale by the failure-constraint store *)
  memo_hit : int;  (** scored with every coverage verdict memo-served *)
  inherited : int;  (** scored entirely from parent-inherited coverage *)
  evaluated : int;  (** needed at least one real subsumption evaluation *)
  accepted : int;  (** entered the beam at this step *)
}

(** [record ~step ...] adds one step's tallies (non-negative; [step]
    clamps into [1..64], deeper steps folding into the last row). *)
val record :
  step:int ->
  generated:int ->
  prune_hit:int ->
  memo_hit:int ->
  inherited:int ->
  evaluated:int ->
  accepted:int ->
  unit

(** [snapshot ()] is the non-empty rows, in step order. *)
val snapshot : unit -> row list

(** [reset ()] zeroes the registry (tests and per-run CLI windows). *)
val reset : unit -> unit

(** [invariant_holds r] — the partition invariant above. *)
val invariant_holds : row -> bool

(** [total rows] sums rows into one row with [step = 0]. *)
val total : row list -> row

val to_json : row list -> Json.t

(** [pp ppf rows] renders the human funnel tree the CLI prints. *)
val pp : Format.formatter -> row list -> unit

val to_string : row list -> string
