(** Structured wide-event log. See events.mli.

    One mutex guards the bounded in-memory queue; [emit] on a disabled sink
    is a single atomic load, and an enabled [emit] is one lock + queue push
    (no I/O). [flush] serializes the whole queue to a temp file and renames
    it over the target, so readers never observe a truncated file — the
    property the signal-path tests assert. *)

type sink = {
  path : string;
  capacity : int;
  queue : Json.t Queue.t;
  mutable dropped : int;
  lock : Mutex.t;
}

let state : sink option Atomic.t = Atomic.make None

let default_capacity = 8192

let configure ?(capacity = default_capacity) path =
  Atomic.set state
    (Some
       {
         path;
         capacity = max 1 capacity;
         queue = Queue.create ();
         dropped = 0;
         lock = Mutex.create ();
       })

let disable () = Atomic.set state None

let enabled () = Atomic.get state <> None

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let emit ?(fields = []) name =
  match Atomic.get state with
  | None -> ()
  | Some s ->
      let line =
        Json.Obj
          (("ts_s", Json.Float (Budget.now ()))
          :: ("event", Json.Str name)
          :: (match Trace.context () with
             | Some j -> [ ("job", Json.Str j) ]
             | None -> [])
          @ fields)
      in
      locked s (fun () ->
          if Queue.length s.queue >= s.capacity then begin
            ignore (Queue.pop s.queue);
            s.dropped <- s.dropped + 1
          end;
          Queue.push line s.queue)

let snapshot () =
  match Atomic.get state with
  | None -> []
  | Some s -> locked s (fun () -> List.of_seq (Queue.to_seq s.queue))

let dropped () =
  match Atomic.get state with
  | None -> 0
  | Some s -> locked s (fun () -> s.dropped)

let flush () =
  match Atomic.get state with
  | None -> ()
  | Some s ->
      let lines, n_dropped =
        locked s (fun () -> (List.of_seq (Queue.to_seq s.queue), s.dropped))
      in
      let lines =
        if n_dropped = 0 then lines
        else
          lines
          @ [
              Json.Obj
                [
                  ("ts_s", Json.Float (Budget.now ()));
                  ("event", Json.Str "events.dropped");
                  ("count", Json.Int n_dropped);
                ];
            ]
      in
      let dir = Filename.dirname s.path in
      let tmp = Filename.temp_file ~temp_dir:dir "events" ".jsonl.tmp" in
      let oc = open_out tmp in
      (try
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () ->
             List.iter
               (fun line ->
                 output_string oc (Json.to_string line);
                 output_char oc '\n')
               lines);
         Sys.rename tmp s.path
       with e ->
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e)
