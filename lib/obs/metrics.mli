(** Process-wide lock-free metrics registry: monotone counters, gauges and
    fixed-bucket latency histograms, all safe to bump from pool workers on
    any domain.

    Handles are registered once (typically at module initialization — the
    registry lock is only taken on registration and snapshot, never on the
    bump path) and bumped through plain atomics, so a metric update on a hot
    path costs a few atomic read-modify-writes and no allocation. The
    registry is global on purpose, like {!Logs}: threading a registry value
    through every layer the learner touches would dwarf the subsystem it
    observes.

    The shared degradation events (memo hits/misses, subsumption tries, ...)
    stay in {!Budget} — the single source of truth — and are merged into
    exported snapshots by {!Run_report}, not double-counted here. *)

type counter
type gauge
type histogram

(** [counter name] registers (or retrieves) the monotone counter [name]. *)
val counter : string -> counter

val bump : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** [gauge name] registers (or retrieves) the gauge [name] — a value that
    can move both ways (queue depth, pool utilization). *)
val gauge : string -> gauge

val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val gauge_value : gauge -> int

(** [histogram name] registers (or retrieves) a latency histogram. Values
    are observed in {e seconds}; buckets are fixed log-spaced bounds from
    1µs to ~1 minute, so percentile estimates carry at most one bucket
    (×2) of error. *)
val histogram : string -> histogram

val observe : histogram -> float -> unit

(** [time h f] runs [f ()] and observes its wall-clock duration in [h]. *)
val time : histogram -> (unit -> 'a) -> 'a

type histogram_snapshot = {
  count : int;
  sum : float;  (** seconds *)
  p50 : float;
  p95 : float;
  p99 : float;  (** bucket-upper-bound estimates, seconds *)
  max : float;  (** exact, seconds *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram_snapshot) list;  (** sorted by name *)
}

(** [snapshot ()] reads every registered metric. Each cell is read
    atomically; cells are independent (same consistency contract as
    {!Budget.counters}). *)
val snapshot : unit -> snapshot

(** [percentile samples q] is the exact nearest-rank [q]-percentile
    ([q] in [\[0, 1\]]) of [samples] (a copy is sorted; [0.] on empty) —
    for latency reports that need exact numbers rather than the
    log-bucketed histogram estimates. *)
val percentile : float array -> float -> float

(** [counters_leq a b] — every counter present in [a] is [<=] its value in
    [b] (and present); the monotonicity the qcheck property asserts across
    concurrent bumps. *)
val counters_leq : snapshot -> snapshot -> bool

val to_json : snapshot -> Json.t

(** [reset ()] zeroes every registered metric (tests only — the bump path
    assumes it never races a reset). *)
val reset : unit -> unit
