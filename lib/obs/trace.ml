(** Span tracer with Chrome trace-event export. See trace.mli.

    State is one atomic holding [tracer option]: the disabled fast path is a
    single [Atomic.get] returning [None]. Each domain keeps its own stack of
    open frames in domain-local storage, so nesting needs no locks; closed
    spans go into a shared ring buffer via one [fetch_and_add] per span. *)

type event = {
  name : string;
  cat : string;
  track : int;
  path : string list;
  t_start_us : float;
  t_end_us : float;
  args : (string * string) list;
  job : string option;
}

type tracer = {
  buf : event option array;
  cursor : int Atomic.t;  (** total spans recorded; slot = i mod capacity *)
  epoch : float;  (** Budget.now at enable; timestamps are µs since this *)
}

let state : tracer option Atomic.t = Atomic.make None

let default_capacity = 1 lsl 18

let enable ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  Atomic.set state
    (Some
       {
         buf = Array.make capacity None;
         cursor = Atomic.make 0;
         epoch = Budget.now ();
       })

let disable () = Atomic.set state None

let enabled () = Atomic.get state <> None

let now_us t = (Budget.now () -. t.epoch) *. 1e6

(* Per-domain stack of open frames. [args] is mutable so [arg] can attach
   pairs discovered mid-span; only the owning domain touches its frames. *)
type frame = {
  f_name : string;
  f_cat : string;
  f_path : string list;  (** reversed: self first *)
  f_start : float;
  mutable f_args : (string * string) list;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Ambient per-domain trace context: the job label every span (and wide
   event) recorded on this domain is tagged with. Independent of the
   tracer's enabled state — {!Events} reads it too — and saved/restored
   around [f], so nested contexts unwind correctly even on exceptions. *)
let context_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let context () = !(Domain.DLS.get context_key)

let with_context ?job f =
  match job with
  | None -> f ()
  | Some _ ->
      let cell = Domain.DLS.get context_key in
      let saved = !cell in
      cell := job;
      Fun.protect ~finally:(fun () -> cell := saved) f

let record t ev =
  let i = Atomic.fetch_and_add t.cursor 1 in
  t.buf.(i mod Array.length t.buf) <- Some ev

let span ?(args = []) ~cat name f =
  match Atomic.get state with
  | None -> f ()
  | Some t ->
      let stack = Domain.DLS.get stack_key in
      let parent_path = match !stack with [] -> [] | fr :: _ -> fr.f_path in
      let fr =
        {
          f_name = name;
          f_cat = cat;
          f_path = name :: parent_path;
          f_start = now_us t;
          f_args = List.rev args;
        }
      in
      stack := fr :: !stack;
      let close () =
        (match !stack with
        | fr' :: tl when fr' == fr -> stack := tl
        | _ -> () (* unbalanced close: a frame was lost; drop silently *));
        record t
          {
            name;
            cat;
            track = (Domain.self () :> int);
            path = List.rev fr.f_path;
            t_start_us = fr.f_start;
            t_end_us = now_us t;
            args = List.rev fr.f_args;
            job = context ();
          }
      in
      Fun.protect ~finally:close f

let arg key value =
  match Atomic.get state with
  | None -> ()
  | Some _ -> (
      let stack = Domain.DLS.get stack_key in
      match !stack with
      | [] -> ()
      | fr :: _ -> fr.f_args <- (key, value) :: fr.f_args)

let time f =
  let t0 = Budget.now () in
  let x = f () in
  (x, Budget.now () -. t0)

let events () =
  match Atomic.get state with
  | None -> []
  | Some t ->
      let cap = Array.length t.buf in
      let total = Atomic.get t.cursor in
      let n = min total cap in
      let first = if total <= cap then 0 else total mod cap in
      List.init n (fun k -> t.buf.((first + k) mod cap))
      |> List.filter_map Fun.id

let dropped () =
  match Atomic.get state with
  | None -> 0
  | Some t -> max 0 (Atomic.get t.cursor - Array.length t.buf)

(* {2 Chrome trace-event export}

   Completed spans are replayed per track as balanced B/E pairs: spans of a
   track are sorted by (start, depth, record order) and swept with a stack —
   before opening a span every open span that ends at or before its start is
   closed. Scoped spans on one domain are properly nested under a monotone
   clock, so this emits per-track event streams whose timestamps never
   decrease and whose B/E events balance by construction (one B and one E
   per span). *)

let args_json args =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)

let to_json () =
  let evs = events () in
  let by_track = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let cur = try Hashtbl.find by_track ev.track with Not_found -> [] in
      Hashtbl.replace by_track ev.track ((i, ev) :: cur))
    evs;
  let tracks =
    Hashtbl.fold (fun tid evs acc -> (tid, evs) :: acc) by_track []
    |> List.sort compare
  in
  let out = ref [] in
  let emit j = out := j :: !out in
  List.iter
    (fun (tid, tevs) ->
      emit
        (Json.Obj
           [
             ("ph", Json.Str "M");
             ("name", Json.Str "thread_name");
             ("pid", Json.Int 1);
             ("tid", Json.Int tid);
             ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain-%d" tid)) ]);
           ]);
      let sorted =
        List.sort
          (fun (i, a) (j, b) ->
            match compare a.t_start_us b.t_start_us with
            | 0 -> (
                match compare (List.length a.path) (List.length b.path) with
                | 0 -> compare i j
                | c -> c)
            | c -> c)
          tevs
      in
      let open_stack = ref [] in
      let emit_end ev =
        emit
          (Json.Obj
             [
               ("ph", Json.Str "E");
               ("name", Json.Str ev.name);
               ("cat", Json.Str ev.cat);
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("ts", Json.Float ev.t_end_us);
             ])
      in
      let emit_begin ev =
        let args =
          match ev.job with
          | None -> ev.args
          | Some j -> ("job", j) :: ev.args
        in
        emit
          (Json.Obj
             [
               ("ph", Json.Str "B");
               ("name", Json.Str ev.name);
               ("cat", Json.Str ev.cat);
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("ts", Json.Float ev.t_start_us);
               ("args", args_json args);
             ])
      in
      List.iter
        (fun (_, ev) ->
          let rec close_finished () =
            match !open_stack with
            | top :: rest when top.t_end_us <= ev.t_start_us ->
                emit_end top;
                open_stack := rest;
                close_finished ()
            | _ -> ()
          in
          close_finished ();
          emit_begin ev;
          open_stack := ev :: !open_stack)
        sorted;
      List.iter emit_end !open_stack)
    tracks;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !out));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped_spans", Json.Int (dropped ())) ]);
    ]

let export_json path = Json.write path (to_json ())

(* {2 Per-phase summary tree} *)

type summary_row = {
  row_path : string list;
  calls : int;
  total_s : float;
  self_s : float;
}

let summary_rows () =
  let totals : (string list, int * float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let dur = (ev.t_end_us -. ev.t_start_us) /. 1e6 in
      let calls, total =
        try Hashtbl.find totals ev.path with Not_found -> (0, 0.)
      in
      Hashtbl.replace totals ev.path (calls + 1, total +. dur))
    (events ());
  (* self = total - Σ direct children's totals *)
  let child_time : (string list, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun path (_, total) ->
      match List.rev path with
      | [] -> ()
      | _ :: parent_rev when parent_rev <> [] ->
          let parent = List.rev parent_rev in
          let cur = try Hashtbl.find child_time parent with Not_found -> 0. in
          Hashtbl.replace child_time parent (cur +. total)
      | _ -> ())
    totals;
  Hashtbl.fold
    (fun path (calls, total) acc ->
      let children = try Hashtbl.find child_time path with Not_found -> 0. in
      {
        row_path = path;
        calls;
        total_s = total;
        self_s = Float.max 0. (total -. children);
      }
      :: acc)
    totals []
  |> List.sort (fun a b -> compare a.row_path b.row_path)

let pp_summary ppf () =
  let rows = summary_rows () in
  if rows = [] then Format.fprintf ppf "(no spans recorded)@."
  else begin
    Format.fprintf ppf "%-44s %9s %12s %12s@." "span" "calls" "total" "self";
    List.iter
      (fun r ->
        let depth = List.length r.row_path - 1 in
        let name =
          match List.rev r.row_path with n :: _ -> n | [] -> "?"
        in
        Format.fprintf ppf "%-44s %9d %11.3fs %11.3fs@."
          (String.make (2 * depth) ' ' ^ name)
          r.calls r.total_s r.self_s)
      rows;
    let d = dropped () in
    if d > 0 then
      Format.fprintf ppf "(+ %d spans dropped after the ring wrapped)@." d
  end

let summary_string () = Format.asprintf "%a" pp_summary ()
