(** Minimal JSON tree — emitter and strict parser. See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* [utf8_seq_len s i] is the length of the valid UTF-8 sequence starting at
   byte [i] of [s] (1–4), or 0 when the bytes there are not well-formed
   UTF-8 (truncated sequence, bad continuation byte, overlong encoding,
   surrogate, or a codepoint past U+10FFFF). *)
let utf8_seq_len s i =
  let n = String.length s in
  let b k = Char.code s.[k] in
  let cont k = k < n && b k land 0xC0 = 0x80 in
  let b0 = b i in
  if b0 < 0x80 then 1
  else if b0 < 0xC2 then 0 (* continuation byte or overlong 2-byte lead *)
  else if b0 < 0xE0 then if cont (i + 1) then 2 else 0
  else if b0 < 0xF0 then
    if
      cont (i + 1) && cont (i + 2)
      && not (b0 = 0xE0 && b (i + 1) < 0xA0) (* overlong *)
      && not (b0 = 0xED && b (i + 1) >= 0xA0) (* surrogates *)
    then 3
    else 0
  else if b0 < 0xF5 then
    if
      cont (i + 1) && cont (i + 2) && cont (i + 3)
      && not (b0 = 0xF0 && b (i + 1) < 0x90) (* overlong *)
      && not (b0 = 0xF4 && b (i + 1) >= 0x90) (* > U+10FFFF *)
    then 4
    else 0
  else 0

let utf8_valid s =
  let n = String.length s in
  let rec go i =
    if i >= n then true
    else match utf8_seq_len s i with 0 -> false | k -> go (i + k)
  in
  go 0

(* Escapes '"', '\\' and every control character (U+0000–U+001F); all other
   bytes must form valid UTF-8 to pass through — an ill-formed sequence is
   replaced by U+FFFD so the emitted document is always valid UTF-8 (and
   thus valid JSON), whatever bytes a caller smuggled into a string. *)
let escape buf s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' ->
        Buffer.add_string buf "\\\"";
        incr i
    | '\\' ->
        Buffer.add_string buf "\\\\";
        incr i
    | '\n' ->
        Buffer.add_string buf "\\n";
        incr i
    | '\t' ->
        Buffer.add_string buf "\\t";
        incr i
    | '\r' ->
        Buffer.add_string buf "\\r";
        incr i
    | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c));
        incr i
    | c when Char.code c < 0x80 ->
        Buffer.add_char buf c;
        incr i
    | _ -> (
        match utf8_seq_len s !i with
        | 0 ->
            Buffer.add_string buf "\xef\xbf\xbd" (* U+FFFD *);
            incr i
        | k ->
            Buffer.add_substring buf s !i k;
            i := !i + k))
  done

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g round-trips; trim the noise for the common short cases *)
        let s = Printf.sprintf "%.12g" f in
        Buffer.add_string buf s
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let write path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf j;
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* {2 Parser} — recursive descent over a string cursor. *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "short \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* keep it simple: only BMP codepoints, emitted as UTF-8 *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
