(** Deterministic data-parallel combinators over a {!Pool}.

    Every combinator takes [?pool]. With [None] it runs the plain sequential
    code path ([List.map] / [List.iter] / a fold), bit-identical to the
    pre-parallel implementation; with [Some p] the items are fanned out
    across [p]'s worker domains {e and the calling domain}, which claims
    items too — so a pool of size 1 uses two domains' worth of compute and,
    more importantly, a worker that itself calls a combinator on the same
    pool can never deadlock: the caller always makes progress on its own
    job.

    Determinism guarantees, regardless of pool size and scheduling:
    - results land in input order ([parallel_map] is observationally
      [List.map] whenever [f] is pure per item);
    - if any application raises, the exception of the {e lowest input
      index} is re-raised in the caller after all claimed items finish —
      the same exception the sequential path would surface first. *)

(** [parallel_map ?pool f xs] maps [f] over [xs]; results are in input
    order. *)
val parallel_map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_map_anytime ?pool ~budget f xs] is the cancellation-aware
    {!parallel_map}: each claimed item first checks [budget]; once it is
    expired (deadline passed or cancelled) the remaining items are skipped
    — [f] is not called, the slot is [None], no new helper tasks are
    dispatched, and each skip bumps the budget's [Job_skipped] counter.
    Items already in flight finish, so a cancelled call returns within one
    item granularity, with the typed per-slot outcome instead of an
    exception. With a budget that never expires the result is
    [List.map (fun x -> Some (f x)) xs]. *)
val parallel_map_anytime :
  ?pool:Pool.t -> budget:Budget.t -> ('a -> 'b) -> 'a list -> 'b option list

(** [parallel_iter ?pool f xs] applies [f] to every element; [f]'s side
    effects must be thread-safe under [Some _]. *)
val parallel_iter : ?pool:Pool.t -> ('a -> unit) -> 'a list -> unit

(** [parallel_filter_count ?pool pred xs] counts the elements satisfying
    [pred]. *)
val parallel_filter_count : ?pool:Pool.t -> ('a -> bool) -> 'a list -> int

(** [parallel_filter ?pool pred xs] is [List.filter pred xs], with the
    predicate applications fanned out; result order is input order. *)
val parallel_filter : ?pool:Pool.t -> ('a -> bool) -> 'a list -> 'a list
