(** Seeded fault injection for the domain pool (chaos testing).

    A [Fault.t] attached to a {!Pool} probabilistically raises {!Injected}
    or sleeps before a queued task runs, driven by a counter-hashed seeded
    decision — deterministic per (seed, ticket), independent of domain
    scheduling, and safe to call from any worker domain (no shared
    [Random.State]). Because {!Par} combinators treat pool tasks as pure
    acceleration (the calling domain always drains the whole job itself), a
    killed task loses parallelism, never results: the tests use this to
    prove the learner survives worker faults and still terminates with the
    identical definition. *)

type t

exception Injected of int
(** Raised by a firing fault; the payload is the ticket number. *)

(** [create ?p_fault ?p_delay ?delay ?seed ()] — [p_fault] (default [0.])
    is the probability a tick raises, [p_delay] (default [0.]) the
    probability it first sleeps [delay] seconds (default [0.001]); [seed]
    (default [0]) fixes every decision. Probabilities are clamped to
    [\[0, 1\]]. *)
val create :
  ?p_fault:float -> ?p_delay:float -> ?delay:float -> ?seed:int -> unit -> t

(** [tick t] consumes one ticket: possibly sleeps, then possibly raises
    {!Injected}. Thread-safe. *)
val tick : t -> unit

(** [tickets t] — ticks consumed so far. *)
val tickets : t -> int

(** [injected t] — ticks that raised. *)
val injected : t -> int

(** [delayed t] — ticks that slept. *)
val delayed : t -> int

(** [from_env ?var ()] reads a fault probability from the environment
    (default variable [AUTOBIAS_CHAOS], seed from [AUTOBIAS_CHAOS_SEED],
    default 0) — the hook the CI chaos job uses to run the whole test suite
    under injection. [None] when unset, empty, unparsable, or [<= 0]. *)
val from_env : ?var:string -> unit -> t option
