(** Seeded fault injection for the domain pool (chaos testing).

    A [Fault.t] attached to a {!Pool} probabilistically raises {!Injected}
    (a survivable fault: the job is dropped and counted), raises
    {!Chaos.Killed} (fatal: the worker domain dies and the pool's
    supervisor takes over — restart, retry, quarantine), or sleeps before a
    queued task runs, driven by a counter-hashed seeded decision —
    deterministic per (seed, ticket), independent of domain scheduling, and
    safe to call from any worker domain. Because {!Par} combinators treat
    pool tasks as pure acceleration (the calling domain always drains the
    whole job itself), a killed task loses parallelism, never results: the
    tests use this to prove the learner survives worker faults and still
    terminates with the identical definition.

    This module is now an alias over the layer-wide {!Chaos} injector; it
    remains the pool's named entry point. *)

type t = Chaos.t

exception Injected of int
(** Raised by a firing fault; the payload is the ticket number. The same
    exception as {!Chaos.Injected}. *)

(** [create ?p_fault ?p_delay ?delay ?p_kill ?seed ()] — [p_fault] (default
    [0.]) is the probability a tick raises {!Injected}, [p_kill] (default
    [0.]) the probability it raises {!Chaos.Killed} (worker death) instead,
    [p_delay] (default [0.]) the probability it first sleeps [delay]
    seconds (default [0.001]); [seed] (default [0]) fixes every decision.
    Probabilities are clamped to [\[0, 1\]]. *)
val create :
  ?p_fault:float ->
  ?p_delay:float ->
  ?delay:float ->
  ?p_kill:float ->
  ?seed:int ->
  unit ->
  t

(** [tick t] consumes one ticket: possibly sleeps, then possibly raises.
    Thread-safe. *)
val tick : t -> unit

(** [tickets t] — ticks consumed so far. *)
val tickets : t -> int

(** [injected t] — ticks that raised {!Injected}. *)
val injected : t -> int

(** [delayed t] — ticks that slept. *)
val delayed : t -> int

(** [killed t] — ticks that raised {!Chaos.Killed}. *)
val killed : t -> int

(** [from_env ?var ()] reads a fault probability from the environment
    (default variable [AUTOBIAS_CHAOS], seed from [AUTOBIAS_CHAOS_SEED],
    worker-kill probability from [AUTOBIAS_CHAOS_KILL], both defaulting to
    0) — the hook the CI chaos job uses to run the whole test suite under
    injection. [None] when unset, empty, unparsable, or [<= 0]. *)
val from_env : ?var:string -> unit -> t option
