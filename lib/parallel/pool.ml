(** Fixed-size domain pool. See pool.mli for the contract.

    One mutex guards the queue and the shutdown flag; workers sleep on a
    condition variable when the queue is empty. Tasks are [unit -> unit]
    thunks that must not raise: a stray exception would kill its worker
    domain silently, so the worker loop drops exceptions defensively (the
    {!Par} combinators never let one through in the first place). *)

type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let max_size = 128

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let clamp size = max 1 (min max_size size)

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.lock
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?size () =
  let size = clamp (Option.value size ~default:(default_size ())) in
  let t =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size

let submit t task =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Parallel.Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  let workers = t.workers in
  t.stopping <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
