(** Supervised fixed-size domain pool. See pool.mli for the contract.

    One mutex guards the queue, the quarantine list and the shutdown flag;
    workers sleep on a condition variable when the queue is empty. Tasks
    are [unit -> unit] thunks that should not raise: the {!Par}
    combinators carry per-item exceptions back to the caller themselves,
    so anything escaping a task is a harness bug or an injected fault. The
    worker loop survives ordinary escapees — never silently: drops are
    counted in an atomic, the first offender's backtrace is kept and
    logged, and {!stats} exposes the tally.

    {!Chaos.Killed} is the one exception treated as {e worker death}: the
    dying worker hands its task back (retry on another worker, or
    quarantine with the backtrace once the task has killed
    [policy.job_retries] workers), then — bounded by
    [policy.worker_restarts] and after a seeded exponential backoff —
    spawns its own replacement domain at the same worker index. The pool
    therefore keeps its full width through worker crashes instead of
    silently running narrower until shutdown; when the restart budget is
    exhausted it degrades to fewer workers, and {!Par} callers still drain
    every job themselves, so results are never lost either way.

    Observability: each queued task carries its enqueue timestamp, so the
    worker that dequeues it can attribute queue-wait vs. run time (the
    [pool.queue_wait_s] / [pool.task_run_s] histograms), the current queue
    depth is mirrored into the [pool.queue_depth] gauge, per-worker
    dequeued-task counts are kept for the utilization view in {!stats}, and
    each task runs inside an [Obs.Trace] span on its worker's own track —
    one trace row per domain in Perfetto. All of it is atomics or
    already-locked counter updates; a pool without tracing enabled pays one
    atomic load per task for the span site. *)

type fault = { exn : exn; backtrace : Printexc.raw_backtrace }

type quarantine = {
  job_id : int;
  attempts : int;
  exn : string;
  backtrace : string;
}

type task = {
  run : unit -> unit;
  enqueued_at : float;
  id : int;
  ctx : string option;
      (** trace/job context captured at submit; the worker re-establishes
          it, so spans and wide events a task emits on its worker domain
          stay tagged with the owning job *)
  mutable kills : int;  (** workers this task has taken down so far *)
  on_fault : (exn -> unit) option;
      (** told when the pool drops this task's exception — the hook a
          daemon layer uses so no submitted job can vanish silently *)
  on_quarantine : (quarantine -> unit) option;
      (** told when this task is quarantined (outside the pool lock) *)
}

type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  chaos : Fault.t option;
  budget : Budget.t option;
      (** bounds supervision backoff sleeps: a cancelled budget ends them *)
  policy : Resilience.Policy.t;
  tasks_run : int Atomic.t;
  dropped : int Atomic.t;
  restarts : int Atomic.t;
  quarantined : int Atomic.t;
  next_id : int Atomic.t;
  per_worker : int Atomic.t array;  (** jobs completed, by worker index *)
  mutable first_fault : fault option;  (** guarded by [lock] *)
  mutable quarantine : quarantine list;  (** guarded by [lock], newest first *)
}

type stats = {
  size : int;
  tasks_run : int;
  dropped : int;
  restarts : int;
  quarantined : int;
  queue_depth : int;
  per_worker : int array;
}

let max_size = 128

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let clamp size = max 1 (min max_size size)

let m_queue_depth = Obs.Metrics.gauge "pool.queue_depth"
let m_queue_wait = Obs.Metrics.histogram "pool.queue_wait_s"
let m_task_run = Obs.Metrics.histogram "pool.task_run_s"
let m_tasks = Obs.Metrics.counter "pool.tasks_run"
let m_restarts = Obs.Metrics.counter "pool.worker_restarts"
let m_quarantined = Obs.Metrics.counter "pool.jobs_quarantined"

let note_fault (t : t) e =
  let backtrace = Printexc.get_raw_backtrace () in
  Atomic.incr t.dropped;
  Mutex.lock t.lock;
  let first = t.first_fault = None in
  if first then t.first_fault <- Some { exn = e; backtrace };
  Mutex.unlock t.lock;
  if first then
    Logs.err (fun m ->
        m "Parallel.Pool: worker dropped %s@.%s" (Printexc.to_string e)
          (Printexc.raw_backtrace_to_string backtrace))

(* Worker death: retry-or-quarantine the poisoned task, then (policy and
   shutdown permitting) respawn a replacement domain at the same index.
   Runs on the dying domain itself, which then returns cleanly — so
   [Domain.join] at shutdown never re-raises. *)
let rec die t w task e bt =
  note_fault t e;
  Mutex.lock t.lock;
  task.kills <- task.kills + 1;
  let quarantined =
    if task.kills >= max 1 t.policy.Resilience.Policy.job_retries then begin
      let record =
        {
          job_id = task.id;
          attempts = task.kills;
          exn = Printexc.to_string e;
          backtrace = Printexc.raw_backtrace_to_string bt;
        }
      in
      t.quarantine <- record :: t.quarantine;
      Atomic.incr t.quarantined;
      Obs.Metrics.bump m_quarantined;
      Logs.warn (fun m ->
          m "Parallel.Pool: job %d quarantined after killing %d workers (%s)"
            task.id task.kills (Printexc.to_string e));
      Some record
    end
    else begin
      Queue.push task t.queue;
      Condition.signal t.nonempty;
      None
    end
  in
  (* Reserve the restart slot under the lock so concurrent deaths cannot
     oversubscribe the budget; the backoff sleep and the spawn run outside
     it (the spawn re-checks [stopping]). *)
  let restart_no =
    if t.stopping || Atomic.get t.restarts >= t.policy.Resilience.Policy.worker_restarts
    then None
    else begin
      Atomic.incr t.restarts;
      Some (Atomic.get t.restarts)
    end
  in
  Mutex.unlock t.lock;
  (* Quarantine callbacks run outside the pool lock so the receiving layer
     (the serving daemon) can take its own locks or resubmit freely. *)
  (match quarantined with
  | Some record -> (
      match task.on_quarantine with
      | Some f -> ( try f record with _ -> ())
      | None -> ())
  | None -> ());
  match restart_no with
  | None ->
      Logs.warn (fun m ->
          m "Parallel.Pool: worker %d died and the restart budget is spent; \
             pool continues with fewer workers" w)
  | Some n ->
      Obs.Metrics.bump m_restarts;
      Budget.sleepf ?budget:t.budget
        ~stop:(fun () -> t.stopping)
        (Resilience.Policy.backoff t.policy ~attempt:(min n 16) ~salt:(Hashtbl.hash (w, n)));
      Mutex.lock t.lock;
      if t.stopping then Mutex.unlock t.lock
      else begin
        let d = Domain.spawn (worker_loop t w) in
        t.workers <- d :: t.workers;
        Mutex.unlock t.lock
      end

and worker_loop t w () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.lock
    else begin
      let task = Queue.pop t.queue in
      Obs.Metrics.gauge_set m_queue_depth (Queue.length t.queue);
      Mutex.unlock t.lock;
      let dequeued_at = Budget.now () in
      let wait = dequeued_at -. task.enqueued_at in
      Obs.Metrics.observe m_queue_wait wait;
      Atomic.incr t.tasks_run;
      (* counted at dequeue, like [tasks_run]: once a caller has observed a
         batch complete (every task body returned), both tallies are final
         and sum(per_worker) = tasks_run *)
      Atomic.incr t.per_worker.(w);
      Obs.Metrics.bump m_tasks;
      let outcome =
        Obs.Trace.with_context ?job:task.ctx @@ fun () ->
        Obs.Trace.span ~cat:"pool"
          ~args:
            [
              ("worker", string_of_int w);
              ("queue_wait_us", Printf.sprintf "%.1f" (wait *. 1e6));
            ]
          "pool_task"
          (fun () ->
            try
              (match t.chaos with Some f -> Fault.tick f | None -> ());
              task.run ();
              `Ok
            with
            | Chaos.Killed _ as e -> `Died (e, Printexc.get_raw_backtrace ())
            | e ->
                note_fault t e;
                (match task.on_fault with
                | Some f -> ( try f e with _ -> ())
                | None -> ());
                `Ok)
      in
      Obs.Metrics.observe m_task_run (Budget.now () -. dequeued_at);
      match outcome with
      | `Ok -> loop ()
      | `Died (e, bt) -> die t w task e bt
    end
  in
  loop ()

let create ?size ?chaos ?budget ?(policy = Resilience.Policy.default) () =
  let size = clamp (Option.value size ~default:(default_size ())) in
  let t =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      chaos;
      budget;
      policy;
      tasks_run = Atomic.make 0;
      dropped = Atomic.make 0;
      restarts = Atomic.make 0;
      quarantined = Atomic.make 0;
      next_id = Atomic.make 0;
      per_worker = Array.init size (fun _ -> Atomic.make 0);
      first_fault = None;
      quarantine = [];
    }
  in
  t.workers <- List.init size (fun w -> Domain.spawn (worker_loop t w));
  t

let size (t : t) = t.size

let stats (t : t) =
  Mutex.lock t.lock;
  let queue_depth = Queue.length t.queue in
  Mutex.unlock t.lock;
  {
    size = t.size;
    tasks_run = Atomic.get t.tasks_run;
    dropped = Atomic.get t.dropped;
    restarts = Atomic.get t.restarts;
    quarantined = Atomic.get t.quarantined;
    queue_depth;
    per_worker = Array.map Atomic.get t.per_worker;
  }

let first_fault t =
  Mutex.lock t.lock;
  let f = t.first_fault in
  Mutex.unlock t.lock;
  f

let quarantine_records t =
  Mutex.lock t.lock;
  let q = t.quarantine in
  Mutex.unlock t.lock;
  List.rev q

let submit ?on_fault ?on_quarantine t task =
  let task =
    {
      run = task;
      enqueued_at = Budget.now ();
      id = Atomic.fetch_and_add t.next_id 1;
      (* the submitting domain's job context rides along with the task *)
      ctx = Obs.Trace.context ();
      kills = 0;
      on_fault;
      on_quarantine;
    }
  in
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Parallel.Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Obs.Metrics.gauge_set m_queue_depth (Queue.length t.queue);
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  let workers = t.workers in
  t.stopping <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  (* Respawns append to [t.workers] under the lock before [stopping] is
     set, so this list holds every domain ever spawned for the pool —
     terminated ones join immediately. *)
  List.iter Domain.join workers

let with_pool ?size ?chaos ?budget ?policy f =
  let t = create ?size ?chaos ?budget ?policy () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
