(** Fixed-size domain pool. See pool.mli for the contract.

    One mutex guards the queue and the shutdown flag; workers sleep on a
    condition variable when the queue is empty. Tasks are [unit -> unit]
    thunks that should not raise: the {!Par} combinators carry per-item
    exceptions back to the caller themselves, so anything escaping a task is
    a harness bug or an injected fault. The worker loop survives either —
    but never silently: drops are counted in an atomic, the first offender's
    backtrace is kept and logged, and {!stats} exposes the tally so a run
    can report nonzero worker-fault counters instead of quietly losing
    domains. *)

type fault = { exn : exn; backtrace : Printexc.raw_backtrace }

type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  chaos : Fault.t option;
  tasks_run : int Atomic.t;
  dropped : int Atomic.t;
  mutable first_fault : fault option;  (** guarded by [lock] *)
}

type stats = { size : int; tasks_run : int; dropped : int }

let max_size = 128

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let clamp size = max 1 (min max_size size)

let note_fault (t : t) e =
  let backtrace = Printexc.get_raw_backtrace () in
  Atomic.incr t.dropped;
  Mutex.lock t.lock;
  let first = t.first_fault = None in
  if first then t.first_fault <- Some { exn = e; backtrace };
  Mutex.unlock t.lock;
  if first then
    Logs.err (fun m ->
        m "Parallel.Pool: worker dropped %s@.%s" (Printexc.to_string e)
          (Printexc.raw_backtrace_to_string backtrace))

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.lock
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      Atomic.incr t.tasks_run;
      (try
         (match t.chaos with Some f -> Fault.tick f | None -> ());
         task ()
       with e -> note_fault t e);
      loop ()
    end
  in
  loop ()

let create ?size ?chaos () =
  let size = clamp (Option.value size ~default:(default_size ())) in
  let t =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      chaos;
      tasks_run = Atomic.make 0;
      dropped = Atomic.make 0;
      first_fault = None;
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (worker_loop t));
  t

let size (t : t) = t.size

let stats (t : t) =
  {
    size = t.size;
    tasks_run = Atomic.get t.tasks_run;
    dropped = Atomic.get t.dropped;
  }

let first_fault t =
  Mutex.lock t.lock;
  let f = t.first_fault in
  Mutex.unlock t.lock;
  f

let submit t task =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Parallel.Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  let workers = t.workers in
  t.stopping <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let with_pool ?size ?chaos f =
  let t = create ?size ?chaos () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
