(** Deterministic data-parallel combinators. See par.mli for the contract.

    A job over [n] items keeps a shared [next] index counter (work
    stealing at item granularity — coverage tests vary wildly in cost, so
    static chunking would leave domains idle) and a mutex-guarded count of
    finished items. The caller enqueues at most [Pool.size] helper tasks,
    then claims items itself until none remain, then sleeps on the job's
    condition until the stragglers land. Results and exceptions are written
    into per-index slots: distinct array cells, so no two domains ever race
    on one location, and the output order is the input order by
    construction.

    Cancellation ([?budget]) is cooperative at item granularity: a claimed
    index first checks the budget; once expired, remaining indices are
    marked skipped without calling the user function, and no new helper
    tasks are dispatched — items already in flight finish, so a cancelled
    job terminates within one item's worth of work per domain. *)

type job = {
  inputs_len : int;
  next : int Atomic.t;
  errors : exn option array;
  lock : Mutex.t;
  all_done : Condition.t;
  mutable finished : int;
}

let run_job ?budget pool n run_one =
  let job =
    {
      inputs_len = n;
      next = Atomic.make 0;
      errors = Array.make n None;
      lock = Mutex.create ();
      all_done = Condition.create ();
      finished = 0;
    }
  in
  let expired () =
    match budget with Some b -> Budget.expired b | None -> false
  in
  let step () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.inputs_len then false
    else begin
      (* The expiry check happens per claimed item: after cancellation the
         remaining indices drain without running, so [finished] still
         reaches [n] and the caller's wait terminates. *)
      if not (expired ()) then
        (try run_one i with e -> job.errors.(i) <- Some e);
      Mutex.lock job.lock;
      job.finished <- job.finished + 1;
      if job.finished = job.inputs_len then Condition.broadcast job.all_done;
      Mutex.unlock job.lock;
      true
    end
  in
  let drain () = while step () do () done in
  (* [n - 1] helpers at most: the caller claims at least one item itself.
     An already-expired budget dispatches no helpers at all. *)
  if not (expired ()) then
    for _ = 1 to min (Pool.size pool) (n - 1) do
      Pool.submit pool drain
    done;
  drain ();
  Mutex.lock job.lock;
  while job.finished < job.inputs_len do
    Condition.wait job.all_done job.lock
  done;
  Mutex.unlock job.lock;
  (* Deterministic exception propagation: lowest input index wins. *)
  Array.iter (function Some e -> raise e | None -> ()) job.errors

let parallel_map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some p ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      if n = 0 then []
      else begin
        let results = Array.make n None in
        run_job p n (fun i -> results.(i) <- Some (f inputs.(i)));
        Array.to_list
          (Array.map
             (function Some v -> v | None -> assert false)
             results)
      end

(* Anytime variant: a [None] slot is an item skipped after budget expiry
   (recorded as [Job_skipped]); with a never-expiring budget the result is
   [List.map f xs] with every element wrapped in [Some]. *)
let parallel_map_anytime ?pool ~budget f xs =
  let results =
    match pool with
    | None ->
        List.map
          (fun x -> if Budget.expired budget then None else Some (f x))
          xs
    | Some p ->
        let inputs = Array.of_list xs in
        let n = Array.length inputs in
        if n = 0 then []
        else begin
          let results = Array.make n None in
          run_job ~budget p n (fun i -> results.(i) <- Some (f inputs.(i)));
          Array.to_list results
        end
  in
  let skipped =
    List.fold_left (fun k r -> if r = None then k + 1 else k) 0 results
  in
  Budget.add budget Budget.Job_skipped skipped;
  results

let parallel_iter ?pool f xs =
  match pool with
  | None -> List.iter f xs
  | Some p ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      if n = 0 then () else run_job p n (fun i -> f inputs.(i))

let parallel_filter_count ?pool pred xs =
  match pool with
  | None ->
      List.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 xs
  | Some _ ->
      parallel_map ?pool pred xs
      |> List.fold_left (fun acc b -> if b then acc + 1 else acc) 0

let parallel_filter ?pool pred xs =
  match pool with
  | None -> List.filter pred xs
  | Some _ ->
      let flags = parallel_map ?pool pred xs in
      List.map2 (fun x keep -> (x, keep)) xs flags
      |> List.filter_map (fun (x, keep) -> if keep then Some x else None)
