(** Seeded fault injection for the domain pool. See fault.mli.

    Decisions hash (seed, salt, ticket) rather than drawing from a shared
    [Random.State]: workers on different domains take tickets with one
    [fetch_and_add], and the verdict for ticket [k] is a pure function of
    the seed — the fault {e count} is reproducible even though which worker
    draws which ticket is not. *)

type t = {
  p_fault : float;
  p_delay : float;
  delay : float;
  seed : int;
  tickets : int Atomic.t;
  injected : int Atomic.t;
  delayed : int Atomic.t;
}

exception Injected of int

let clamp01 p = Float.min 1. (Float.max 0. p)

let create ?(p_fault = 0.) ?(p_delay = 0.) ?(delay = 0.001) ?(seed = 0) () =
  {
    p_fault = clamp01 p_fault;
    p_delay = clamp01 p_delay;
    delay = Float.max 0. delay;
    seed;
    tickets = Atomic.make 0;
    injected = Atomic.make 0;
    delayed = Atomic.make 0;
  }

(* Uniform-ish draw in [0, 1) from the low 24 bits of the structural hash;
   [salt] decouples the delay and fault verdicts of one ticket. *)
let draw t ~salt k =
  float_of_int (Hashtbl.hash (t.seed, salt, k) land 0xFFFFFF) /. 16777216.

let tick t =
  let k = Atomic.fetch_and_add t.tickets 1 in
  if draw t ~salt:1 k < t.p_delay then begin
    Atomic.incr t.delayed;
    Unix.sleepf t.delay
  end;
  if draw t ~salt:2 k < t.p_fault then begin
    Atomic.incr t.injected;
    raise (Injected k)
  end

let tickets t = Atomic.get t.tickets
let injected t = Atomic.get t.injected
let delayed t = Atomic.get t.delayed

let from_env ?(var = "AUTOBIAS_CHAOS") () =
  match Sys.getenv_opt var with
  | None | Some "" -> None
  | Some v -> (
      match float_of_string_opt v with
      | None | Some 0. -> None
      | Some p when p < 0. -> None
      | Some p ->
          let seed =
            Option.bind (Sys.getenv_opt "AUTOBIAS_CHAOS_SEED") int_of_string_opt
            |> Option.value ~default:0
          in
          Some (create ~p_fault:p ~seed ()))
