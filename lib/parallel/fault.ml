(** Seeded fault injection for the domain pool. See fault.mli.

    Since the chaos layer grew registry-wide ({!Chaos}), this module is the
    pool-facing alias: the injector type, the tick, and the historical
    [AUTOBIAS_CHAOS] environment hook all delegate to {!Chaos}, so existing
    call sites and test patterns ([Fault.Injected _]) keep working while
    every layer of the stack shares one injection mechanism. *)

type t = Chaos.t

exception Injected = Chaos.Injected

let create ?p_fault ?p_delay ?delay ?p_kill ?seed () =
  Chaos.create ?p_fault ?p_delay ?delay ?p_kill ?seed ()

let tick = Chaos.tick
let tickets = Chaos.tickets
let injected = Chaos.injected
let delayed = Chaos.delayed
let killed = Chaos.killed

let from_env ?(var = "AUTOBIAS_CHAOS") () =
  match Sys.getenv_opt var with
  | None | Some "" -> None
  | Some v -> (
      match float_of_string_opt v with
      | None | Some 0. -> None
      | Some p when p < 0. -> None
      | Some p ->
          let seed =
            Option.bind (Sys.getenv_opt "AUTOBIAS_CHAOS_SEED") int_of_string_opt
            |> Option.value ~default:0
          in
          let p_kill =
            Option.bind (Sys.getenv_opt "AUTOBIAS_CHAOS_KILL")
              float_of_string_opt
            |> Option.value ~default:0.
          in
          Some (create ~p_fault:p ~p_kill ~seed ()))
