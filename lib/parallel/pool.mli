(** A supervised fixed-size pool of worker domains (OCaml 5 shared-memory
    parallelism).

    The pool is created once and reused across the whole run: spawning a
    domain costs hundreds of microseconds, far more than one coverage test,
    so the learner's hot loops must amortize it. Workers block on a
    mutex/condition-guarded task queue; {!submit} never blocks.

    Tasks should not raise — higher-level combinators ({!Par}) wrap user
    functions and carry exceptions back to the caller themselves. An
    ordinary exception that escapes a task anyway (a harness bug, or an
    injected {!Fault}) does not kill the worker: it is counted, the first
    one's backtrace is logged and kept for {!first_fault}, and the tally is
    visible in {!stats} — faults are survived loudly, never silently.

    {!Chaos.Killed} is different: it takes the worker domain down, and the
    supervision {!Resilience.Policy} takes over — the task is retried on another
    worker, or {e quarantined} with its backtrace once it has killed
    [job_retries] workers; the dead domain is replaced (after seeded
    exponential backoff, up to [worker_restarts] times per pool), so the
    pool keeps its width through crashes instead of quietly narrowing. *)

type t

type fault = { exn : exn; backtrace : Printexc.raw_backtrace }

type quarantine = {
  job_id : int;  (** submission id of the poisoned task *)
  attempts : int;  (** workers it took down before quarantine *)
  exn : string;  (** printed final exception *)
  backtrace : string;  (** backtrace of the final death *)
}

type stats = {
  size : int;  (** worker domains *)
  tasks_run : int;  (** tasks dequeued by workers so far *)
  dropped : int;  (** tasks whose exception the pool had to drop *)
  restarts : int;  (** worker domains respawned after a fatal fault *)
  quarantined : int;  (** jobs quarantined after repeated worker kills *)
  queue_depth : int;  (** tasks currently waiting in the queue *)
  per_worker : int array;
      (** tasks dequeued per worker, by spawn index — the utilization view;
          sums to [tasks_run] once submitted work has finished *)
}

(** [create ?size ?chaos ?budget ?policy ()] spawns [size] worker domains.
    [size] defaults to [Domain.recommended_domain_count () - 1] (the
    caller's domain participates in {!Par} jobs, so [n] workers saturate
    [n + 1] cores) and is clamped to [\[1, 128\]]. [chaos] injects seeded
    faults/delays/kills before each task runs (testing only). [budget]
    bounds the supervision machinery's backoff sleeps: cancelling it cuts
    any in-progress restart backoff short instead of holding the worker
    (and whatever job it will retry) hostage. [policy] (default
    {!Resilience.Policy.default}) governs restart/retry/quarantine. *)
val create :
  ?size:int -> ?chaos:Fault.t -> ?budget:Budget.t ->
  ?policy:Resilience.Policy.t -> unit -> t

(** [size t] is the number of worker domains. *)
val size : t -> int

(** [stats t] is a snapshot of the pool's counters. *)
val stats : t -> stats

(** [first_fault t] is the first exception a worker dropped (with its
    backtrace), if any — kept so a crash is diagnosable after the fact. *)
val first_fault : t -> fault option

(** [quarantine_records t] lists quarantined jobs, oldest first — surfaced
    into the run report so a poisoned input is auditable after the run. *)
val quarantine_records : t -> quarantine list

(** [default_size ()] is the size {!create} picks when none is given. *)
val default_size : unit -> int

(** [submit ?on_fault ?on_quarantine t task] enqueues [task] for some
    worker. Never blocks. Raises [Invalid_argument] if the pool was shut
    down.

    [on_fault] is invoked (never holding the pool lock) when an exception
    escaping [task] is dropped by the worker loop — without it the task
    simply never "completes" from the submitter's point of view, which a
    layer awaiting the task (the serving daemon) cannot afford.
    [on_quarantine] is invoked (outside the pool lock) when the task is
    quarantined after repeatedly killing workers. Exceptions raised by
    either callback are swallowed. *)
val submit :
  ?on_fault:(exn -> unit) ->
  ?on_quarantine:(quarantine -> unit) ->
  t -> (unit -> unit) -> unit

(** [shutdown t] drains the queue, joins every worker (including respawned
    ones) and frees the pool. Idempotent. Submitting after shutdown
    raises. *)
val shutdown : t -> unit

(** [with_pool ?size ?chaos ?budget ?policy f] runs [f pool] and shuts the
    pool down afterwards, also on exceptions. *)
val with_pool :
  ?size:int -> ?chaos:Fault.t -> ?budget:Budget.t ->
  ?policy:Resilience.Policy.t -> (t -> 'a) -> 'a
