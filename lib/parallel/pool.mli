(** A fixed-size pool of worker domains (OCaml 5 shared-memory parallelism).

    The pool is created once and reused across the whole run: spawning a
    domain costs hundreds of microseconds, far more than one coverage test,
    so the learner's hot loops must amortize it. Workers block on a
    mutex/condition-guarded task queue; {!submit} never blocks.

    Tasks must not raise — higher-level combinators ({!Par}) wrap user
    functions and carry exceptions back to the caller themselves. *)

type t

(** [create ?size ()] spawns [size] worker domains. [size] defaults to
    [Domain.recommended_domain_count () - 1] (the caller's domain
    participates in {!Par} jobs, so [n] workers saturate [n + 1] cores) and
    is clamped to [\[1, 128\]]. *)
val create : ?size:int -> unit -> t

(** [size t] is the number of worker domains. *)
val size : t -> int

(** [default_size ()] is the size {!create} picks when none is given. *)
val default_size : unit -> int

(** [submit t task] enqueues [task] for some worker. Never blocks. Raises
    [Invalid_argument] if the pool was shut down. *)
val submit : t -> (unit -> unit) -> unit

(** [shutdown t] drains the queue, joins every worker and frees the pool.
    Idempotent. Submitting after shutdown raises. *)
val shutdown : t -> unit

(** [with_pool ?size f] runs [f pool] and shuts the pool down afterwards,
    also on exceptions. *)
val with_pool : ?size:int -> (t -> 'a) -> 'a
