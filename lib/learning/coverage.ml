(** Coverage testing via θ-subsumption against ground bottom clauses
    (Section 5).

    A clause [C] covers example [e] iff, after binding [C]'s head variables
    to [e]'s constants, the body of [C] θ-subsumes the ground bottom clause
    of [e]. Ground BCs are built once per example — with the same sampling
    strategy used for bottom clauses, as the paper prescribes — and cached
    here for the many coverage tests generalization performs.

    The context is shared across domains by the parallel learner, so the
    cache is read-mostly behind a mutex: lookups and inserts hold the lock
    only for the table operation itself, while the expensive RNG-driven BC
    construction runs outside it (a racing duplicate build keeps the first
    inserted result). Construction draws from a {e per-example}
    [Random.State] derived from the master seed captured at {!create}, so a
    ground BC is a pure function of (master seed, example) — identical no
    matter which domain builds it, in what order, or whether a pool is used
    at all. That per-example derivation is what makes the learner's
    sequential and 1-domain-pool runs produce identical definitions. *)

module Value = Relational.Value

(* Observability handles, registered once at module init. The histogram
   tracks real (uncached) subsumption evaluations; memo traffic and
   inheritance stay in the Budget counters — the single source of truth for
   degradation accounting — and show up as span args here. *)
let m_eval = Obs.Metrics.histogram "coverage.eval_s"
let m_tests = Obs.Metrics.counter "coverage.tests"
let m_ground_bcs = Obs.Metrics.counter "coverage.ground_bcs_built"

(* {2 The coverage memo}

   Coverage verdicts are pure: [eval] is a function of (clause, ground BC)
   and the ground BC of an example is a pure function of (master seed,
   example). The memo therefore caches verdicts keyed by (clause key,
   example) — the clause key is the compiled plan's canonical int-id array
   (or the printed clause under [--no-compiled-eval]); both are injective
   on the clauses the learner builds (ARMG and reduction never rename
   variables) — and a cached verdict is bit-identical to a recomputed one,
   so enabling the cache cannot change any learned definition.

   The table is {e lock-striped}: the domain pool hammers it from every
   worker during beam evaluation, and a single mutex would serialize the
   hot path the pool exists to parallelize. A stripe is picked by key hash;
   locks are held only for the table probe / insert. Misses compute the
   verdict outside any lock (racing duplicates insert the same value).
   Stripes are capped so a long run cannot grow the table without bound:
   once a stripe is full, new verdicts are simply not remembered — which is
   deterministic, verdicts being pure. *)

let memo_stripes = 16
let memo_stripe_cap = 1 lsl 14  (** per stripe; ~256k entries in total *)

(* The memo key: the compiled path keys by the plan's canonical int-id
   array (injective exactly where the printed clause is, with no printing
   per test); the symbolic escape hatch keeps the printed key. Both are
   injective on learner clauses, so the two modes see identical hit/miss
   traffic — the parity the cache A/B test asserts. *)
type memo_key =
  | K_ids of int array  (** compiled: canonical plan key *)
  | K_str of string  (** symbolic: printed clause *)

type memo = {
  tables :
    (memo_key * Relational.Relation.tuple, Logic.Subsumption.verdict) Hashtbl.t
    array;
  locks : Mutex.t array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

type cache_stats = { hits : int; misses : int; entries : int }

(* Both representations of a ground BC are built together (outside the
   cache lock, like the symbolic one always was): the compiled form drives
   coverage, the symbolic form stays authoritative for ARMG's frontier
   sweep and the [ground_of] API. *)
type ground_entry = {
  sym : Logic.Subsumption.ground;
  comp : Logic.Compiled.ground option;  (** [Some] iff compiled eval is on *)
}

type t = {
  db : Relational.Database.t;
  bias : Bias.Language.t;
  bc_config : Bottom_clause.config;
  sub_config : Logic.Subsumption.config;
  seed_base : int;  (** master seed for per-example ground-BC RNGs *)
  grounds : (Relational.Relation.tuple, ground_entry) Hashtbl.t;
  lock : Mutex.t;  (** guards [grounds] *)
  memo : memo option;  (** [None] = caching disabled ([--no-coverage-cache]) *)
  compiled : Eval_plan.t option;
      (** [None] = symbolic evaluation ([--no-compiled-eval]); the compiled
          engine is bit-identical, so the switch never changes results *)
  prune : Prune.t option;
      (** failure-constraint store ([None] = [--no-prune], or symbolic
          evaluation — signatures are compiled-key prefixes); a probe hit
          returns the exact verdict evaluation would compute, so pruning
          never changes results either *)
  budget : Budget.t option;
      (** sink for degradation counters (frontier truncations, memo
          hits/misses); never changes any coverage verdict *)
}

let create ?(sub_config = Logic.Subsumption.default_config)
    ?(bc_config = Bottom_clause.default_config) ?budget ?(use_cache = true)
    ?(use_compiled = true) ?(use_pruning = true) db bias ~rng =
  {
    db;
    bias;
    bc_config;
    sub_config;
    seed_base = Random.State.bits rng;
    grounds = Hashtbl.create 256;
    lock = Mutex.create ();
    memo =
      (if use_cache then
         Some
           {
             tables = Array.init memo_stripes (fun _ -> Hashtbl.create 512);
             locks = Array.init memo_stripes (fun _ -> Mutex.create ());
             hits = Atomic.make 0;
             misses = Atomic.make 0;
           }
       else None);
    compiled = (if use_compiled then Some (Eval_plan.create ()) else None);
    prune = (if use_pruning && use_compiled then Some (Prune.create ()) else None);
    budget;
  }

let cache_enabled t = t.memo <> None
let compiled_enabled t = t.compiled <> None
let pruning_enabled t = t.prune <> None

type prune_stats = Prune.stats = { probes : int; hits : int; constraints : int }

let prune_stats t =
  match t.prune with
  | None -> { probes = 0; hits = 0; constraints = 0 }
  | Some ps -> Prune.stats ps

let cache_stats t =
  match t.memo with
  | None -> { hits = 0; misses = 0; entries = 0 }
  | Some m ->
      let entries = ref 0 in
      Array.iteri
        (fun i tbl ->
          Mutex.lock m.locks.(i);
          entries := !entries + Hashtbl.length tbl;
          Mutex.unlock m.locks.(i))
        m.tables;
      {
        hits = Atomic.get m.hits;
        misses = Atomic.get m.misses;
        entries = !entries;
      }

(** [with_budget t budget] is [t] reporting into [budget]: a shallow copy
    sharing the ground-BC cache (and its mutex), so concurrent learns — CV
    folds on one scoring context — each get their own counters without
    duplicating cached work. *)
let with_budget t budget = { t with budget = Some budget }

let bias t = t.bias
let database t = t.db

(* A stable structural hash of the example tuple: the per-example RNG must
   not depend on physical identity or insertion order. *)
let example_hash (example : Relational.Relation.tuple) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 example

let example_rng t example =
  Random.State.make [| t.seed_base; example_hash example |]

let ground_entry_of t example =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.grounds example with
  | Some g ->
      Mutex.unlock t.lock;
      g
  | None ->
      Mutex.unlock t.lock;
      let g =
        Obs.Trace.span ~cat:"coverage" "ground_bc" (fun () ->
            Obs.Metrics.bump m_ground_bcs;
            let clause =
              Bottom_clause.build_ground ~config:t.bc_config t.db t.bias
                ~rng:(example_rng t example) ~example
            in
            let body = Logic.Clause.body clause in
            {
              sym = Logic.Subsumption.ground_of_literals body;
              comp =
                Option.map
                  (fun ep ->
                    Logic.Compiled.compile_ground (Eval_plan.symtab ep)
                      ~example body)
                  t.compiled;
            })
      in
      Mutex.lock t.lock;
      let g =
        match Hashtbl.find_opt t.grounds example with
        | Some g' -> g' (* lost a build race; keep the first insert *)
        | None ->
            Hashtbl.replace t.grounds example g;
            g
      in
      Mutex.unlock t.lock;
      g

(** [ground_of t example] is the cached ground bottom clause of [example]. *)
let ground_of t example = (ground_entry_of t example).sym

(* Batch entry points run inside a span carrying the batch size and the memo
   traffic the batch generated (hit/miss deltas read from the memo's own
   atomics). Checking [enabled] first keeps the disabled path at one atomic
   load before the real work. *)
let traced_batch t name ~examples f =
  if not (Obs.Trace.enabled ()) then f ()
  else
    Obs.Trace.span ~cat:"coverage"
      ~args:[ ("examples", string_of_int examples) ]
      name
      (fun () ->
        match t.memo with
        | None -> f ()
        | Some m ->
            let h0 = Atomic.get m.hits and m0 = Atomic.get m.misses in
            let r = f () in
            Obs.Trace.arg "memo_hits" (string_of_int (Atomic.get m.hits - h0));
            Obs.Trace.arg "memo_misses"
              (string_of_int (Atomic.get m.misses - m0));
            r)

(** [warm ?pool t examples] precomputes ground BCs for [examples] (the paper
    builds them once, up front), fanning construction out across [pool] when
    given. Per-example RNG derivation makes the result independent of the
    pool size and of scheduling. *)
let warm ?pool t examples =
  traced_batch t "warm" ~examples:(List.length examples) (fun () ->
      Parallel.Par.parallel_iter ?pool (fun e -> ignore (ground_of t e)) examples)

(** [head_subst clause example] binds the head of [clause] to [example]:
    variables map to the example's constants; constant head arguments must
    match. [None] when the head cannot produce the example. *)
let head_subst clause (example : Relational.Relation.tuple) =
  let head = Logic.Clause.head clause in
  let args = Logic.Literal.args head in
  if Array.length args <> Array.length example then None
  else begin
    let rec go i subst =
      if i >= Array.length args then Some subst
      else
        match args.(i) with
        | Logic.Term.Const c ->
            if Value.equal c example.(i) then go (i + 1) subst else None
        | Logic.Term.Var v -> (
            match Logic.Substitution.extend subst v example.(i) with
            | Some subst -> go (i + 1) subst
            | None -> None)
    in
    go 0 Logic.Substitution.empty
  end

(* One real frontier evaluation. Counts as a subsumption try so the Budget
   counters expose exactly how many tests the memo and ARMG inheritance
   avoided. *)
let eval_uncached t clause example =
  Budget.hit_opt t.budget Budget.Subsumption_try;
  Obs.Metrics.bump m_tests;
  Obs.Metrics.time m_eval (fun () ->
      (* The head check runs symbolically in both modes: it is tiny, and
         keeping it ahead of [ground_entry_of] means a head-blocked example
         never triggers a ground-BC build under either engine. *)
      match head_subst clause example with
      | None -> Logic.Subsumption.Blocked 0
      | Some subst -> (
          let ge = ground_entry_of t example in
          match (t.compiled, ge.comp) with
          | Some ep, Some cg -> Eval_plan.eval ?budget:t.budget ep clause cg
          | _ ->
              Logic.Subsumption.eval_prefix ?budget:t.budget ~subst clause
                ge.sym))

(* One verdict, cheapest honest route: probe the failure-constraint store
   first (a trie walk instead of a frontier evaluation — a hit returns the
   exact verdict evaluation would compute), fall back to the real
   evaluator, and turn any fresh blocked verdict into a stored constraint
   for the next candidate that shares the failing prefix. *)
let compute t clause example =
  match (t.prune, t.compiled) with
  | Some ps, Some ep -> (
      let key = Eval_plan.key ep clause in
      match Prune.probe ps ~example ~key with
      | Some i -> Logic.Subsumption.Blocked i
      | None ->
          let v = eval_uncached t clause example in
          (match v with
          | Logic.Subsumption.Blocked i ->
              if Prune.learn ps ~example ~key ~blocked:i then
                Budget.hit_opt t.budget Budget.Constraint_learned
          | Logic.Subsumption.Covered _ -> ());
          v)
  | _ -> eval_uncached t clause example

(** [probe_pruned t clause example] — the verdict the failure-constraint
    store already knows for [(clause, example)], if any (always a
    [Blocked _]). Probe-only: never evaluates, never stores. *)
let probe_pruned t clause example =
  match (t.prune, t.compiled) with
  | Some ps, Some ep -> (
      match Prune.probe ps ~example ~key:(Eval_plan.key ep clause) with
      | Some i -> Some (Logic.Subsumption.Blocked i)
      | None -> None)
  | _ -> None

(** [blocking_key t clause i] — the canonical compiled key segment of the
    literal that [Blocked i] points at (the head for [i = 0]); [None] under
    [--no-compiled-eval]. The same segment arithmetic the prune store's
    failure signatures use. *)
let blocking_key t clause i =
  match t.compiled with
  | Some ep ->
      let key = Eval_plan.key ep clause in
      Some (Logic.Compiled.key_segment key ~index:i)
  | None -> None

(** [eval_src t clause example] evaluates [clause] against [example] with
    the substitution-set prefix evaluator: [Covered w] with a witness, or
    [Blocked i] with the 1-based index of the blocking body literal — the
    primitive ARMG needs (Section 2.3.2). [Blocked 0] means the head itself
    cannot be bound to the example. Verdicts are served from the memo when
    enabled; a memoized verdict is identical to a recomputed one. The
    second component reports whether the memo served it — the search-funnel
    accounting wants to know, the verdict itself never depends on it. *)
let eval_src t clause example =
  match t.memo with
  | None -> (compute t clause example, false)
  (* "memo" chaos: pretend the cache lost this entry — bypass the probe
     and the insert and recompute. Purity of verdicts means the answer is
     identical, so chaos here degrades throughput, never correctness. *)
  | Some _ when Chaos.fires "memo" -> (compute t clause example, false)
  | Some m -> (
      let clause_key =
        match t.compiled with
        | Some ep -> K_ids (Eval_plan.key ep clause)
        | None -> K_str (Logic.Clause.to_string clause)
      in
      let key = (clause_key, example) in
      let s = Hashtbl.hash key mod memo_stripes in
      let lock = m.locks.(s) and tbl = m.tables.(s) in
      Mutex.lock lock;
      let cached = Hashtbl.find_opt tbl key in
      Mutex.unlock lock;
      match cached with
      | Some v ->
          Atomic.incr m.hits;
          Budget.hit_opt t.budget Budget.Coverage_memo_hit;
          (v, true)
      | None ->
          Atomic.incr m.misses;
          Budget.hit_opt t.budget Budget.Coverage_memo_miss;
          let v = compute t clause example in
          Mutex.lock lock;
          if Hashtbl.length tbl < memo_stripe_cap && not (Hashtbl.mem tbl key)
          then Hashtbl.add tbl key v;
          Mutex.unlock lock;
          (v, false))

let eval t clause example = fst (eval_src t clause example)

(** [covers t clause example] tests whether [clause] covers [example]. *)
let covers t clause example =
  match eval t clause example with
  | Logic.Subsumption.Covered _ -> true
  | Logic.Subsumption.Blocked _ -> false

(** [covers_src t clause example] — {!covers} plus whether the verdict came
    out of the verdict memo. *)
let covers_src t clause example =
  let v, memo = eval_src t clause example in
  ((match v with
    | Logic.Subsumption.Covered _ -> true
    | Logic.Subsumption.Blocked _ -> false),
   memo)

(** [covers_prefix t clause k example] is [covers] restricted to the first
    [k] body literals. *)
let covers_prefix t clause k example =
  let prefix =
    Logic.Clause.make (Logic.Clause.head clause)
      (Logic.Util.take k (Logic.Clause.body clause))
  in
  covers t prefix example

(** [covered t clause examples] is the sublist of [examples] covered by
    [clause]. *)
let covered t clause examples = List.filter (covers t clause) examples

(** [count t clause examples] is [List.length (covered t clause examples)]. *)
let count t clause examples =
  traced_batch t "coverage_count" ~examples:(List.length examples) (fun () ->
      List.fold_left
        (fun acc e -> if covers t clause e then acc + 1 else acc)
        0 examples)

(** [covered_many ?pool t clause examples] is {!covered} with the per-example
    tests fanned out across [pool]; result order is input order. *)
let covered_many ?pool t clause examples =
  traced_batch t "covered_many" ~examples:(List.length examples) (fun () ->
      Parallel.Par.parallel_filter ?pool (covers t clause) examples)

(** [count_many ?pool t clause examples] is {!count} with the per-example
    tests fanned out across [pool]. *)
let count_many ?pool t clause examples =
  traced_batch t "count_many" ~examples:(List.length examples) (fun () ->
      Parallel.Par.parallel_filter_count ?pool (covers t clause) examples)

(** [definition_covers t def example] holds iff some clause of [def] covers
    [example] (Horn-definition coverage, Definition 2.4). *)
let definition_covers t def example =
  List.exists (fun c -> covers t c example) def

(* {2 Constraint persistence} — the failure-constraint store rides along in
   learner checkpoints as an opaque string (interned ids decoded to symbols
   so another process can re-encode them). Constraints are monotone facts
   of (seed, example, prefix): importing them restores pruning power but
   cannot change a verdict, so resumed runs stay bit-identical. *)

let export_constraints t =
  match (t.prune, t.compiled) with
  | Some ps, Some ep ->
      Marshal.to_string (Prune.export ps (Eval_plan.symtab ep)) []
  | _ -> ""

let import_constraints t s =
  if String.length s > 0 then
    match (t.prune, t.compiled) with
    | Some ps, Some ep -> (
        match (Marshal.from_string s 0 : Prune.exported) with
        | exported -> Prune.import ps (Eval_plan.symtab ep) exported
        (* A checkpoint from a binary with a different payload layout: the
           version gate should have caught it, but constraints are a pure
           accelerant, so the safe degradation is to start cold. *)
        | exception _ -> ())
    | _ -> ()
