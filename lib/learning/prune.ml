(** Failure-constraint store: learn where {e not} to search.

    Every blocked coverage verdict the evaluator computes is a reusable
    fact. [Blocked i] for clause [C] on example [e] means the substitution
    frontier of the prefix [head ← L_1, …, L_i] died at [L_i] against [e]'s
    ground bottom clause — and the frontier evaluator is a deterministic
    function of exactly that prefix (later literals are never looked at
    before the frontier reaches them, and truncation subsampling is
    deterministic). So the verdict transfers to {e every} clause sharing
    that prefix: any candidate whose canonical key starts with the failure
    signature is [Blocked i] on [e], no evaluation required.

    The signature is the canonical int-coded key ({!Logic.Compiled.key}) cut
    at the end of the blocking literal's segment: cheap to extract (one
    array prefix), cheap to probe (a walk down an int trie), and exact —
    a probe hit returns the {e very verdict} the evaluator would compute,
    which is what makes pruning invisible to learned definitions
    (bit-identity at fixed seed, the same argument as the coverage memo).
    Note this is deliberately {e not} general θ-subsumption of failure
    signatures: under the capped (approximate) frontier evaluator, "body
    extends a zero-coverage clause" would not be an exact predictor, and
    exactness is what the bit-identity bar demands.

    Constraints are indexed per example in a shared-prefix trie, striped by
    example hash like the coverage memo so pool workers probing different
    examples do not contend. Contents are monotone facts (a signature once
    true stays true for the context's fixed seed and cap), so sharing the
    store across sequential-covering iterations, CV folds and resumed runs
    is safe — it can only save work, never change an answer. *)

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash = Hashtbl.hash
end)

let m_probes = Obs.Metrics.counter "prune.probes"
let m_hits = Obs.Metrics.counter "prune.hits"
let m_constraints = Obs.Metrics.counter "prune.constraints"

(* Trie node over key elements. [blocked >= 0] marks a stored signature
   ending here: the prefix walked so far is blocked at literal [blocked].
   Terminals only ever sit at literal-segment boundaries, and boundaries of
   keys sharing a raw prefix always align (segments are prefix-free:
   pred, arity, then exactly arity args), so a terminal found during a walk
   is a valid verdict for the probing clause too. *)
type node = { mutable blocked : int; children : node Int_tbl.t }

let new_node () = { blocked = -1; children = Int_tbl.create 4 }

type stripe = {
  lock : Mutex.t;
  roots : (Relational.Relation.tuple, node) Hashtbl.t;
  mutable entries : int;  (** stored signatures (terminals) in this stripe *)
}

let n_stripes = 16

(* Per-stripe constraint cap: like the memo's stripe cap, it bounds memory
   on long runs; a full stripe stops learning new constraints but keeps
   serving the ones it has (deterministically: insertion order under a
   fixed seed is fixed). *)
let stripe_cap = 1 lsl 12

(* Signatures longer than this are not worth storing: the trie walk to
   probe them costs about as much as the frontier steps they save, and deep
   bottom-clause prefixes almost never recur exactly. *)
let max_signature = 2048

type t = {
  stripes : stripe array;
  probes : int Atomic.t;
  hits : int Atomic.t;
}

type stats = { probes : int; hits : int; constraints : int }

let create () =
  {
    stripes =
      Array.init n_stripes (fun _ ->
          {
            lock = Mutex.create ();
            roots = Hashtbl.create 64;
            entries = 0;
          });
    probes = Atomic.make 0;
    hits = Atomic.make 0;
  }

(* Same stable structural hash the coverage context derives per-example
   RNGs from: independent of physical identity and insertion order. *)
let example_hash (example : Relational.Relation.tuple) =
  Array.fold_left (fun acc v -> (acc * 31) + Relational.Value.hash v) 17 example

let stripe_of (t : t) example =
  t.stripes.(example_hash example land max_int mod n_stripes)

let stats (t : t) =
  let constraints =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let n = acc + s.entries in
        Mutex.unlock s.lock;
        n)
      0 t.stripes
  in
  { probes = Atomic.get t.probes; hits = Atomic.get t.hits; constraints }

(** [probe t ~example ~key] — [Some i] when a stored failure signature is a
    prefix of [key]: the clause is [Blocked i] on [example], no evaluation
    needed. Walks the trie until the first terminal, a missing edge, or the
    key ends. *)
let probe (t : t) ~example ~key =
  Atomic.incr t.probes;
  Obs.Metrics.bump m_probes;
  let s = stripe_of t example in
  Mutex.lock s.lock;
  let r =
    match Hashtbl.find_opt s.roots example with
    | None -> None
    | Some root ->
        let n = Array.length key in
        (* [seg_end] is the offset one past the current literal segment;
           stepping onto it means a literal boundary was just crossed. *)
        let rec walk node p seg_end =
          if p >= n then None
          else
            match Int_tbl.find_opt node.children key.(p) with
            | None -> None
            | Some child ->
                let p = p + 1 in
                if p = seg_end then
                  if child.blocked >= 0 then Some child.blocked
                  else if p >= n then None
                  else walk child p (p + 2 + key.(p + 1))
                else walk child p seg_end
        in
        if n < 2 then None else walk root 0 (2 + key.(1))
  in
  Mutex.unlock s.lock;
  if r <> None then begin
    Atomic.incr t.hits;
    Obs.Metrics.bump m_hits
  end;
  r

(* End offset of literal segment [index] (head = 0) in a canonical key. *)
let segment_end key index =
  let p = ref 0 in
  for _ = 0 to index do
    p := !p + 2 + key.(!p + 1)
  done;
  !p

(** [learn t ~example ~key ~blocked] stores the failure signature of a
    [Blocked blocked] verdict: the prefix of [key] through the blocking
    literal's segment ([blocked = 0] means the head segment alone — the head
    cannot bind to [example] at all). Returns [true] iff a new constraint
    was stored (false: already known, subsumed by a shorter one, stripe
    full, or signature over length cap). *)
let learn (t : t) ~example ~key ~blocked =
  let stop = segment_end key blocked in
  if stop > max_signature then false
  else begin
    let s = stripe_of t example in
    Mutex.lock s.lock;
    let added =
      if s.entries >= stripe_cap then false
      else begin
        let root =
          match Hashtbl.find_opt s.roots example with
          | Some r -> r
          | None ->
              let r = new_node () in
              Hashtbl.add s.roots example r;
              r
        in
        (* Walk/extend the path; bail if an existing shorter signature
           already subsumes this one (a probe would hit it first). *)
        let rec walk node p seg_end =
          if node.blocked >= 0 && p < stop then None
          else if p >= stop then Some node
          else begin
            let child =
              match Int_tbl.find_opt node.children key.(p) with
              | Some c -> c
              | None ->
                  let c = new_node () in
                  Int_tbl.add node.children key.(p) c;
                  c
            in
            let p = p + 1 in
            if p = seg_end && p < stop then walk child p (p + 2 + key.(p + 1))
            else walk child p seg_end
          end
        in
        match walk root 0 (2 + key.(1)) with
        | None -> false
        | Some last ->
            if last.blocked >= 0 then false
            else begin
              last.blocked <- blocked;
              s.entries <- s.entries + 1;
              true
            end
      end
    in
    Mutex.unlock s.lock;
    if added then Obs.Metrics.bump m_constraints;
    added
  end

(** {1 Persistence}

    Interned ids are process-local, so checkpointed signatures are decoded
    back to symbols/values against the {!Logic.Compiled.Symtab} that minted
    them and re-encoded against the resuming context's table. Constraints
    are facts about (seed, example, prefix), so importing them into a run
    with the same fingerprint only restores pruning power — it cannot
    change a verdict. *)

type sig_elem =
  | E_pred of string
  | E_int of int  (** an arity, or an original variable id encoded < 0 *)
  | E_const of Relational.Value.t

type exported =
  (Relational.Relation.tuple * (sig_elem array * int) list) list

let decode_signature symtab elems =
  let n = Array.length elems in
  let out = Array.make n (E_int 0) in
  let p = ref 0 in
  while !p < n do
    out.(!p) <- E_pred (Logic.Compiled.Symtab.pred_name symtab elems.(!p));
    let arity = elems.(!p + 1) in
    out.(!p + 1) <- E_int arity;
    for i = !p + 2 to !p + 1 + arity do
      let a = elems.(i) in
      out.(i) <-
        (if a >= 0 then E_const (Logic.Compiled.Symtab.value symtab a)
         else E_int a)
    done;
    p := !p + 2 + arity
  done;
  out

let encode_signature symtab elems =
  Array.map
    (function
      | E_pred p -> Logic.Compiled.Symtab.pred_id symtab p
      | E_int n -> n
      | E_const v -> Logic.Compiled.Symtab.const_id symtab v)
    elems

(** [export t symtab] — every stored constraint, decoded symtab-independent
    (checkpoint payload). *)
let export (t : t) symtab =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let out =
        Hashtbl.fold
          (fun example root acc ->
            (* DFS collecting root-to-terminal element paths. *)
            let sigs = ref [] in
            let rec dfs node path =
              if node.blocked >= 0 then
                sigs :=
                  ( decode_signature symtab
                      (Array.of_list (List.rev path)),
                    node.blocked )
                  :: !sigs;
              Int_tbl.iter (fun e child -> dfs child (e :: path)) node.children
            in
            dfs root [];
            if !sigs = [] then acc else (example, !sigs) :: acc)
          s.roots acc
      in
      Mutex.unlock s.lock;
      out)
    [] t.stripes

(** [import t symtab exported] re-encodes and stores checkpointed
    constraints (idempotent; respects the stripe caps). *)
let import t symtab exported =
  List.iter
    (fun (example, sigs) ->
      List.iter
        (fun (elems, blocked) ->
          let key = encode_signature symtab elems in
          ignore (learn t ~example ~key ~blocked))
        sigs)
    exported
