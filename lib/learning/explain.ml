(** Explaining coverage decisions.

    Interpretability is the selling point of relational models (the paper's
    introduction leads with it — the SYS company chose relational learning
    for exactly this). This module turns a coverage decision into something
    a person can read: for a covered example, the witness substitution and
    the ground atoms supporting each body literal; for an uncovered one, the
    blocking literal — the first condition of the rule the example fails. *)

type support = {
  literal : Logic.Literal.t;  (** the clause's body literal *)
  grounded : Logic.Literal.t;  (** that literal under the witness *)
}

type t =
  | Covered of {
      witness : Logic.Substitution.t;
      supports : support list;  (** one per body literal, in clause order *)
    }
  | Not_covered of {
      blocking : Logic.Literal.t option;
          (** the paper's blocking atom; [None] when the head itself cannot
              bind to the example *)
      blocking_index : int;  (** 1-based; 0 when the head fails *)
      blocking_key : int array option;
          (** the failing literal's canonical compiled key segment (the head
              segment when the head fails) — the same int-coding the
              failure-constraint store's signatures are prefixes of; [None]
              under [--no-compiled-eval] *)
    }

(** [explain cov clause example] explains [clause]'s decision on [example],
    using the same evaluation the learner uses. *)
let explain cov clause example =
  match Coverage.eval cov clause example with
  | Logic.Subsumption.Covered witness ->
      let supports =
        List.map
          (fun literal ->
            { literal; grounded = Logic.Substitution.apply_literal witness literal })
          (Logic.Clause.body clause)
      in
      Covered { witness; supports }
  | Logic.Subsumption.Blocked 0 ->
      Not_covered
        {
          blocking = None;
          blocking_index = 0;
          blocking_key = Coverage.blocking_key cov clause 0;
        }
  | Logic.Subsumption.Blocked i ->
      Not_covered
        {
          blocking = List.nth_opt (Logic.Clause.body clause) (i - 1);
          blocking_index = i;
          blocking_key = Coverage.blocking_key cov clause i;
        }

let pp ppf = function
  | Covered { witness; supports } ->
      Fmt.pf ppf "@[<v>COVERED with %a@,%a@]" Logic.Substitution.pp witness
        Fmt.(
          list ~sep:cut (fun ppf s ->
              pf ppf "  %a  ⇐  %a" Logic.Literal.pp s.literal Logic.Literal.pp
                s.grounded))
        supports
  | Not_covered { blocking = None; _ } ->
      Fmt.pf ppf "NOT COVERED: the head cannot be bound to the example"
  | Not_covered { blocking = Some l; blocking_index; _ } ->
      Fmt.pf ppf "NOT COVERED: blocked at body literal %d: %a" blocking_index
        Logic.Literal.pp l

(** [explain_definition cov def example] explains the definition's decision:
    the first covering clause's explanation, or every clause's blocking
    literal when nothing covers. *)
let explain_definition cov def example =
  let rec go acc = function
    | [] -> Error (List.rev acc)
    | c :: tl -> (
        match explain cov c example with
        | Covered _ as e -> Ok (c, e)
        | Not_covered _ as e -> go ((c, e) :: acc) tl)
  in
  go [] def

let pp_definition_result ppf = function
  | Ok (clause, e) ->
      Fmt.pf ppf "@[<v>by clause: %a@,%a@]" Logic.Clause.pp clause pp e
  | Error failures ->
      Fmt.pf ppf "@[<v>no clause covers the example:@,%a@]"
        Fmt.(
          list ~sep:cut (fun ppf (c, e) ->
              pf ppf "  %a@,    %a" Logic.Clause.pp c pp e))
        failures
