(** The sequential-covering learner (Algorithm 1) with beam-search
    generalization over ARMG (Section 2.3.2), candidate ranking on bounded
    example subsamples, score-based reduction of the winning clause (in the
    spirit of Golem's negative-based reduction), and a wall-clock budget
    that returns partial definitions with [timed_out = true] — mirroring the
    paper's ">10h" rows. *)

type config = {
  bc : Bottom_clause.config;
  subsumption : Logic.Subsumption.config;
  beam_width : int;
  generalization_sample : int;
      (** positives sampled per beam step to drive ARMG (the paper's E+_S) *)
  max_beam_steps : int;
  eval_positives : int;  (** positives subsampled for candidate ranking *)
  eval_negatives : int;  (** negatives subsampled for candidate ranking *)
  min_positives : int;  (** minimum criterion: positives a clause must cover *)
  min_precision : float;  (** minimum criterion: training precision *)
  max_clauses : int;
  clause_timeout : float option;
      (** wall-clock budget for a single clause search (one seed's beam) *)
  max_consecutive_skips : int;
      (** once a clause has been accepted, stop after this many consecutive
          unproductive seeds (pre-acceptance, all seeds are tried) *)
  timeout : float option;  (** wall-clock seconds for the whole run *)
  pool : Parallel.Pool.t option;
      (** domain pool for candidate evaluation, acceptance counting and
          ground-BC warming; [None] (the default) runs sequentially. The
          learned definition is identical for every pool size on a fixed
          seed — coverage testing is deterministic per example — so the
          pool only changes wall-clock time. *)
}

val default_config : config

type stats = {
  clauses : int;
  candidates_evaluated : int;
  seeds_skipped : int;  (** positives whose best clause failed the criterion *)
  elapsed : float;
  timed_out : bool;
}

type result = {
  definition : Logic.Clause.definition;
  stats : stats;
}

(** [learn ?config cov ~rng ~positives ~negatives] runs Algorithm 1.
    Clause acceptance is always checked on the full training sets. *)
val learn :
  ?config:config ->
  Coverage.t ->
  rng:Random.State.t ->
  positives:Relational.Relation.tuple list ->
  negatives:Relational.Relation.tuple list ->
  result
