(** The sequential-covering learner (Algorithm 1) with beam-search
    generalization over ARMG (Section 2.3.2), candidate ranking on bounded
    example subsamples, and score-based reduction of the winning clause (in
    the spirit of Golem's negative-based reduction).

    The learner is {e anytime}: a {!Budget.t} (deadline + cancellation
    token) governs the whole run at item granularity, and on expiry the
    search winds down cooperatively — the definition accumulated so far is
    returned, tagged with a {!Budget.degradation} record saying why the run
    ended and which corners were cut (candidates abandoned, beam rounds
    truncated, subsumption give-ups, …). The legacy [timed_out] flag
    mirrors the paper's ">10h" rows. *)

type config = {
  bc : Bottom_clause.config;
  subsumption : Logic.Subsumption.config;
  beam_width : int;
  generalization_sample : int;
      (** positives sampled per beam step to drive ARMG (the paper's E+_S) *)
  max_beam_steps : int;
  eval_positives : int;  (** positives subsampled for candidate ranking *)
  eval_negatives : int;  (** negatives subsampled for candidate ranking *)
  min_positives : int;  (** minimum criterion: positives a clause must cover *)
  min_precision : float;  (** minimum criterion: training precision *)
  max_clauses : int;
  clause_timeout : float option;
      (** wall-clock budget for a single clause search (one seed's beam) *)
  max_consecutive_skips : int;
      (** once a clause has been accepted, stop after this many consecutive
          unproductive seeds (pre-acceptance, all seeds are tried) *)
  timeout : float option;  (** wall-clock seconds for the whole run *)
  budget : Budget.t option;
      (** externally supplied governance: cancelling it stops the run
          cooperatively from any domain; counters aggregate across runs
          sharing it (e.g. CV folds). [learn] scopes a per-call child, so
          [timeout] still bounds each call. [None] (the default) gives each
          call a private budget — behavior identical to pre-governance. *)
  pool : Parallel.Pool.t option;
      (** domain pool for candidate evaluation, acceptance counting and
          ground-BC warming; [None] (the default) runs sequentially. The
          learned definition is identical for every pool size on a fixed
          seed — coverage testing is deterministic per example — so the
          pool only changes wall-clock time. *)
  checkpoint : (Resilience.Checkpoint.t -> [ `Written | `Skipped ]) option;
      (** sink invoked at clause boundaries (every [checkpoint_every]-th
          covering iteration) with a complete snapshot of learner progress
          — typically [Resilience.Checkpoint.save] partially applied to a
          path. The snapshot hands the sink copies, so writing cannot
          perturb the run; a raising sink counts as [`Skipped]. Outcomes
          are tallied as [Budget.Checkpoint_written] /
          [Budget.Checkpoint_skipped]. [None] (the default) disables
          checkpointing. *)
  checkpoint_every : int;
      (** invoke the sink every [n]-th clause boundary (clamped to ≥ 1;
          default 1 — every boundary) *)
  fingerprint : string;
      (** configuration fingerprint stamped into emitted checkpoints (see
          {!Resilience.Checkpoint.validate}); [""] (the default) stamps
          nothing *)
  resume : Resilience.Checkpoint.t option;
      (** continue a prior run from its snapshot. [positives] and
          [negatives] must be the same lists in the same order as the
          original run (the snapshot stores uncovered positives as indices
          into [positives]); the restored RNG then replays the exact
          continuation, so kill-at-boundary + resume is bit-identical to
          the uninterrupted run at the same seed. Validate the checkpoint
          with {!Resilience.Checkpoint.validate} first — [learn] trusts
          it. *)
}

val default_config : config

type stats = {
  clauses : int;
  candidates_evaluated : int;
  seeds_skipped : int;  (** positives whose best clause failed the criterion *)
  elapsed : float;
  timed_out : bool;
}

type result = {
  definition : Logic.Clause.definition;
  stats : stats;
  degradation : Budget.degradation;
      (** why the run ended ([Completed] / [Deadline_hit] / [Cancelled])
          and the degradation counters accumulated getting there *)
}

(** [learn ?config cov ~rng ~positives ~negatives] runs Algorithm 1.
    Clause acceptance is always checked on the full training sets.

    Anytime guarantees: with an already-elapsed deadline the call returns
    immediately with the empty definition and
    [degradation.status = Deadline_hit]; cancelling [config.budget] from
    another domain stops the run within one coverage-test granularity; with
    a generous deadline the result is identical to an unbudgeted run on the
    same seed. *)
val learn :
  ?config:config ->
  Coverage.t ->
  rng:Random.State.t ->
  positives:Relational.Relation.tuple list ->
  negatives:Relational.Relation.tuple list ->
  result
