(** The sequential-covering learner (Algorithm 1) with beam-search
    generalization over ARMG (Section 2.3.2).

    [learn_clause] builds the bottom clause of a seed positive example, then
    runs a beam search: each step generalizes every beam clause against a
    random subset of the still-uncovered positive examples with ARMG, scores
    candidates by (positives covered − negatives covered), and keeps the best
    [beam_width]. Candidate scoring runs against bounded random subsamples of
    the training examples ([eval_positives]/[eval_negatives]) — coverage
    testing is the dominant cost (Section 5) and ranking only needs relative
    scores; the {e accept/reject} decision for a finished clause always uses
    the full training set. Scoring is {e incremental}: ARMG and literal
    removal only generalize, so each candidate inherits its parent's
    verified-covered examples and retests only the rest (monotone
    propagation), while {!Coverage} memoizes verdicts across candidates
    that repeat a (clause, example) pair. The winning clause then goes through
    negative-based reduction (as in Golem/Castor): body literals whose
    removal does not let any more training negatives in are dropped, which
    strips the always-satisfiable by-catch a bottom clause carries.

    [learn] wraps this in the covering loop: accepted clauses must meet the
    minimum criterion (enough positives, high-enough training precision);
    their covered positives are removed; seeds whose best clause fails the
    criterion are set aside so learning always progresses.

    The whole run is governed by a {!Budget.t}: a wall-clock deadline plus a
    cooperative cancellation token, checked at item granularity (one
    candidate evaluation, one reduction step, one covering iteration). On
    expiry the search {e winds down} instead of aborting — in-flight
    coverage tests finish, skipped candidates are counted, and the
    definition accumulated so far comes back tagged with a structured
    {!Budget.degradation} record saying why the run ended
    (completed / deadline_hit / cancelled) and exactly what was cut. The
    legacy [timed_out] flag mirrors the paper's ">10h" rows. *)

type config = {
  bc : Bottom_clause.config;  (** bottom-clause depth/sample/strategy *)
  subsumption : Logic.Subsumption.config;
  beam_width : int;
  generalization_sample : int;
      (** positives sampled per beam step to drive ARMG (the paper's E+_S) *)
  max_beam_steps : int;
  eval_positives : int;  (** positives subsampled for candidate ranking *)
  eval_negatives : int;  (** negatives subsampled for candidate ranking *)
  min_positives : int;  (** minimum criterion: positives a clause must cover *)
  min_precision : float;  (** minimum criterion: training precision *)
  max_clauses : int;
  clause_timeout : float option;
      (** wall-clock budget for a single clause search (one seed's beam) —
          keeps one hard seed from eating the whole run's budget *)
  max_consecutive_skips : int;
      (** once at least one clause has been accepted, stop after this many
          seeds in a row yield no further acceptable clause — the remaining
          uncovered positives are almost surely label noise. Before the
          first acceptance every seed is tried (the timeout still bounds
          the run). *)
  timeout : float option;  (** seconds of wall clock for the whole run *)
  budget : Budget.t option;
      (** externally supplied governance: cancelling it stops the run
          cooperatively from any domain, and its counters aggregate across
          runs that share it (e.g. CV folds). [learn] always scopes a
          per-call child from it, so [timeout] still bounds each call;
          [None] gives every call a private budget. *)
  pool : Parallel.Pool.t option;
      (** domain pool for candidate evaluation, acceptance counting and
          ground-BC warming; [None] runs the sequential code path. Results
          are identical for every pool size (coverage is deterministic per
          example), so the pool only changes wall-clock time. *)
  checkpoint : (Resilience.Checkpoint.t -> [ `Written | `Skipped ]) option;
      (** sink invoked at clause boundaries (every [checkpoint_every]-th
          covering iteration) with a complete snapshot of learner progress.
          The sink must not perturb learner state — [learn] hands it copies.
          A raising sink is absorbed as [`Skipped]; outcomes are tallied as
          [Budget.Checkpoint_written] / [Checkpoint_skipped]. *)
  checkpoint_every : int;  (** boundary stride for the sink; min 1 *)
  fingerprint : string;
      (** configuration fingerprint stamped into checkpoints so a resume
          against a different dataset/config is rejected; [""] disables the
          check *)
  resume : Resilience.Checkpoint.t option;
      (** continue a prior run from its snapshot: the learner restores the
          accepted clauses, the surviving uncovered positives (as indices
          into [positives], which must be the same list in the same order),
          the RNG and the progress counters, then proceeds exactly as the
          uninterrupted run would — bit-identical definitions at the same
          seed. *)
}

let default_config =
  {
    bc = Bottom_clause.default_config;
    subsumption = Logic.Subsumption.default_config;
    beam_width = 3;
    generalization_sample = 8;
    max_beam_steps = 8;
    eval_positives = 20;
    eval_negatives = 30;
    min_positives = 2;
    min_precision = 0.7;
    max_clauses = 20;
    clause_timeout = Some 10.;
    max_consecutive_skips = 8;
    timeout = Some 600.;
    budget = None;
    pool = None;
    checkpoint = None;
    checkpoint_every = 1;
    fingerprint = "";
    resume = None;
  }

type stats = {
  clauses : int;
  candidates_evaluated : int;
  seeds_skipped : int;
  elapsed : float;
  timed_out : bool;
}

type result = {
  definition : Logic.Clause.definition;
  stats : stats;
  degradation : Budget.degradation;
      (** why the run ended and what was cut getting there *)
}

type scored = {
  clause : Logic.Clause.t;
  pos_covered : int;  (** on the positive ranking sample *)
  neg_covered : int;  (** on the negative ranking sample *)
  score : float;
      (** rate-corrected (Horvitz–Thompson) estimate of the full-training
          (positives − negatives) count: subsampling positives and negatives
          at different rates would otherwise bias ranking toward clauses
          that sneak past the thin negative sample *)
  pos_cov : bool array;
      (** verified coverage over the positive ranking sample, by index;
          [false] means not covered {e or} not tested (staged scoring may
          return early) — only [true] entries are inherited *)
  neg_cov : bool array;
      (** verified coverage over the negative ranking sample; [false] again
          conflates "tested uncovered" with "untested" (the early abort
          leaves a suffix untested), which is the conservative direction *)
}

let clause_key c = Logic.Clause.to_string c

(* Search-funnel classification of one scored candidate: how was its
   verdict settled? Exactly one class per resolved candidate, so the
   per-step funnel invariant
   [generated = prune_hit + memo_hit + inherited + evaluated] holds by
   construction. The classes are mutually exclusive by precedence: a
   prune-store shortcut wins (no coverage call at all), then "every example
   inherited from the ARMG parent", then "every coverage call served by the
   verdict memo", and anything that cost at least one real subsumption
   evaluation counts as evaluated. *)
type funnel_class = F_pruned | F_inherited | F_memo | F_evaluated

(* Observability handles (module-init registration; see lib/obs). Candidate
   and acceptance totals overlap with the per-run [stats] record on purpose:
   these aggregate across every learn call in the process, which is what a
   metrics snapshot wants. *)
let m_candidates = Obs.Metrics.counter "learn.candidates_evaluated"
let m_clauses = Obs.Metrics.counter "learn.clauses_accepted"
let m_clause_search = Obs.Metrics.histogram "learn.clause_search_s"

(* Uniform sample without replacement of at most [n] elements. *)
let sample_list rng n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  if len <= n then l
  else begin
    for i = len - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 n)
  end

(* Beam ordering: higher score first, smaller clause on ties — a tie that
   shrinks the clause is progress. *)
let better a b =
  a.score > b.score
  || (a.score = b.score && Logic.Clause.size a.clause < Logic.Clause.size b.clause)

(* Inclusion rate of a subsample; 1. when nothing was dropped. *)
let rate sample full =
  let s = List.length sample and f = List.length full in
  if f = 0 then 1. else float_of_int s /. float_of_int f

let take = Logic.Util.take

(* Score-based reduction (in the spirit of Golem's negative-based
   reduction): drop a body literal when the clause's sampled, rate-corrected
   score (positives − negatives covered) does not decrease. Removal only
   generalizes, so every example the current clause is known to cover is
   covered by every candidate too — each reduction step inherits the current
   covered sets and retests only the examples not yet known covered, instead
   of rescoring both full samples per candidate. Takes and returns a
   {!scored}: the result carries {e complete} covered sets (no staged
   early-outs here), so the caller needs no re-evaluation pass. *)
let reduce ~cov ~budget ~pos_weight ~neg_weight ~eval_pos ~eval_neg best =
  Budget.set_phase budget "reduce";
  Obs.Trace.span ~cat:"learn" "reduce" @@ fun () ->
  Obs.Trace.arg "body_lits_in" (string_of_int (Logic.Clause.size best.clause));
  (* Full evaluation of [clause], inheriting the verified-covered entries of
     the generalization parent. *)
  let eval_full ~parent_pos ~parent_neg clause =
    let inherited = ref 0 in
    let count parent examples =
      let cov_arr = Array.make (Array.length examples) false in
      let c = ref 0 in
      Array.iteri
        (fun i e ->
          let covered =
            if parent.(i) then begin
              incr inherited;
              true
            end
            else Coverage.covers cov clause e
          in
          if covered then begin
            cov_arr.(i) <- true;
            incr c
          end)
        examples;
      (!c, cov_arr)
    in
    let p, pos_cov = count parent_pos eval_pos in
    let n, neg_cov = count parent_neg eval_neg in
    Budget.add budget Budget.Coverage_inherited !inherited;
    {
      clause;
      pos_covered = p;
      neg_covered = n;
      score =
        (pos_weight *. float_of_int p) -. (neg_weight *. float_of_int n);
      pos_cov;
      neg_cov;
    }
  in
  (* Re-score the winner on the full samples first: its staged score may
     have aborted negative counting early, and a truncated baseline would
     let reduction accept removals that only look score-preserving. *)
  let current =
    ref (eval_full ~parent_pos:best.pos_cov ~parent_neg:best.neg_cov
           best.clause)
  in
  let head = Logic.Clause.head best.clause in
  (* One backward pass over the original literals (by-catch accumulates
     toward the end of a bottom clause). Pruning may remove further literals
     that lost their head connection — those are skipped when their turn
     comes. *)
  List.iter
    (fun lit ->
      (* Expiry mid-reduction keeps whatever is already pruned: removal only
         generalizes, so the partially reduced clause is still valid. *)
      let body = Logic.Clause.body !current.clause in
      if List.memq lit body && not (Budget.expired budget) then begin
        let candidate_body = List.filter (fun l -> not (l == lit)) body in
        let candidate =
          eval_full ~parent_pos:!current.pos_cov ~parent_neg:!current.neg_cov
            (Logic.Clause.prune_head_connected
               (Logic.Clause.make head candidate_body))
        in
        if candidate.score >= !current.score then current := candidate
      end)
    (List.rev (Logic.Clause.body best.clause));
  Obs.Trace.arg "body_lits_out"
    (string_of_int (Logic.Clause.size !current.clause));
  !current

let learn_clause ~config ~cov ~rng ~budget ~candidates_evaluated ~uncovered
    ~negatives ~seed =
  (* Fixed ranking subsamples for this clause search: relative scores stay
     comparable across candidates. The seed always participates. *)
  let eval_pos =
    seed :: sample_list rng config.eval_positives (List.filter (fun e -> e != seed) uncovered)
    |> take config.eval_positives
  in
  let eval_neg = sample_list rng config.eval_negatives negatives in
  let pos_weight = 1. /. rate eval_pos uncovered in
  let neg_weight = 1. /. rate eval_neg negatives in
  let eval_pos_arr = Array.of_list eval_pos in
  let eval_neg_arr = Array.of_list eval_neg in
  let n_pos = Array.length eval_pos_arr in
  let n_neg = Array.length eval_neg_arr in
  let n_probe = min 6 n_pos in
  (* Staged scoring. Stage 1: a handful of positives — candidates that are
     still too specific to cover even two of them need no further testing
     (their score cannot enter the beam's top on merit; they survive only
     through the smaller-is-better tie-break, which is exactly what lets
     them keep shrinking). Stage 2: the full ranking samples; negative
     counting aborts once the score cannot stay positive.

     Monotone propagation: ARMG children and reduction candidates only
     generalize their [parent], so every example the parent verifiably
     covers is covered by the child — those entries are {e inherited}
     (counted as [Coverage_inherited]) and only the remaining examples are
     actually retested. Inheritance is independent of the verdict memo, so
     it is on in both cache modes and never changes a verdict. *)
  let evaluate ?parent clause =
    Atomic.incr candidates_evaluated;
    Obs.Metrics.bump m_candidates;
    Obs.Trace.span ~cat:"learn" "evaluate_candidate" @@ fun () ->
    if Obs.Trace.enabled () then
      Obs.Trace.arg "body_lits" (string_of_int (Logic.Clause.size clause));
    let pos_cov = Array.make n_pos false in
    let neg_cov = Array.make n_neg false in
    let inherited = ref 0 in
    (* Funnel bookkeeping: coverage calls made for this candidate, and how
       many the verdict memo served. Local refs — [evaluate] runs whole on
       one domain, so no coordination, and recording happens later on the
       coordinator. *)
    let calls = ref 0 in
    let memo_calls = ref 0 in
    let covers_counted clause e =
      incr calls;
      let covered, from_memo = Coverage.covers_src cov clause e in
      if from_memo then incr memo_calls;
      covered
    in
    let finish ?(pruned = false) s =
      Budget.add budget Budget.Coverage_inherited !inherited;
      let cls =
        if pruned then F_pruned
        else if !calls = 0 then F_inherited
        else if !memo_calls = !calls then F_memo
        else F_evaluated
      in
      (s, cls)
    in
    let count_pos lo hi =
      let c = ref 0 in
      for i = lo to hi - 1 do
        let covered =
          match parent with
          | Some p when p.pos_cov.(i) ->
              incr inherited;
              true
          | _ -> covers_counted clause eval_pos_arr.(i)
        in
        if covered then begin
          pos_cov.(i) <- true;
          incr c
        end
      done;
      !c
    in
    (* Failure-constraint short-circuit: when every probe positive the
       parent does not already cover is known-blocked by the prune store,
       and inheritance alone cannot reach the stage-1 bar, the staged
       early-exit record below is fully determined — synthesize it without
       spending a single coverage test on this candidate. A store hit is
       the exact verdict evaluation would return, so the record (and hence
       the beam) is bit-identical to the unpruned run. *)
    let prune_shortcut () =
      if not (Coverage.pruning_enabled cov) then None
      else begin
        let inh = ref 0 and all_blocked = ref true in
        for i = 0 to n_probe - 1 do
          match parent with
          | Some p when p.pos_cov.(i) -> incr inh
          | _ ->
              if
                !all_blocked
                && Coverage.probe_pruned cov clause eval_pos_arr.(i) = None
              then all_blocked := false
        done;
        if !all_blocked && !inh < 2 then Some !inh else None
      end
    in
    match prune_shortcut () with
    | Some p_probe ->
        Budget.hit budget Budget.Candidate_pruned;
        for i = 0 to n_probe - 1 do
          match parent with
          | Some p when p.pos_cov.(i) ->
              pos_cov.(i) <- true;
              incr inherited
          | _ -> ()
        done;
        finish ~pruned:true
          { clause; pos_covered = p_probe; neg_covered = 0;
            score = pos_weight *. float_of_int p_probe; pos_cov; neg_cov }
    | None ->
    let p_probe = count_pos 0 n_probe in
    if p_probe < 2 then
      finish
        { clause; pos_covered = p_probe; neg_covered = 0;
          score = pos_weight *. float_of_int p_probe; pos_cov; neg_cov }
    else begin
      let pos_covered = p_probe + count_pos n_probe n_pos in
      (* abort negative counting once the weighted score goes negative *)
      let weighted_pos = pos_weight *. float_of_int pos_covered in
      let neg_covered = ref 0 in
      (try
         for i = 0 to n_neg - 1 do
           let covered =
             match parent with
             | Some p when p.neg_cov.(i) ->
                 incr inherited;
                 true
             | _ -> covers_counted clause eval_neg_arr.(i)
           in
           if covered then begin
             neg_cov.(i) <- true;
             incr neg_covered;
             if neg_weight *. float_of_int !neg_covered > weighted_pos then
               raise Exit
           end
         done
       with Exit -> ());
      let neg_covered = !neg_covered in
      finish
        {
          clause;
          pos_covered;
          neg_covered;
          score = weighted_pos -. (neg_weight *. float_of_int neg_covered);
          pos_cov;
          neg_cov;
        }
    end
  in
  Budget.set_phase budget "bottom_clause";
  let bottom =
    Bottom_clause.build ~config:config.bc (Coverage.database cov)
      (Coverage.bias cov) ~rng ~example:seed
  in
  (* The raw bottom clause is maximally specific: by construction it covers
     (about) its own seed and nothing else; a full evaluation of a clause
     with hundreds of literals would only burn the subsumption budget. *)
  (* Nothing is verified about the bottom clause yet, so its covered sets
     start all-false: children inherit nothing and verify from scratch. *)
  let beam =
    ref
      [ { clause = bottom; pos_covered = 1; neg_covered = 0;
          score = pos_weight; pos_cov = Array.make n_pos false;
          neg_cov = Array.make n_neg false } ]
  in
  let best = ref (List.hd !beam) in
  let continue = ref true in
  let steps = ref 0 in
  let clause_deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) config.clause_timeout
  in
  let clause_time_left () =
    match clause_deadline with
    | Some d -> Unix.gettimeofday () < d
    | None -> true
  in
  while
    !continue && !steps < config.max_beam_steps && clause_time_left ()
    && not (Budget.expired budget)
  do
    incr steps;
    Budget.set_phase budget (Printf.sprintf "beam_step %d" !steps);
    Obs.Trace.span ~cat:"learn" "beam_step" @@ fun () ->
    Obs.Trace.arg "step" (string_of_int !steps);
    let targets = sample_list rng config.generalization_sample uncovered in
    let seen = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace seen (clause_key s.clause) ()) !beam;
    let collected = ref [] in
    (* Pair the targets and chain ARMG through both (as in ProGolem's
       iterated armg): coverage evaluation dominates the cost, so fewer,
       more-general candidates beat many one-step ones — especially when
       the bias floods bottom clauses with generic by-catch. *)
    let rec pairs = function
      | a :: b :: tl -> (a, Some b) :: pairs tl
      | [ a ] -> [ (a, None) ]
      | [] -> []
    in
    (* Candidate generation (ARMG chaining + dedup) stays sequential: it is
       cheap next to evaluation and its RNG-free frontier sweeps need no
       coordination. The generated candidates are then scored through
       [parallel_map] — evaluation is the beam step's dominant cost. *)
    List.iter
      (fun entry ->
        List.iter
          (fun (ea, eb) ->
            let chained =
              match Armg.generalize cov entry.clause ~example:ea with
              | None -> None
              | Some c -> (
                  match eb with
                  | None -> Some c
                  | Some eb -> (
                      match Armg.generalize cov c ~example:eb with
                      | None -> Some c
                      | Some c2 -> Some c2))
            in
            match chained with
            | None -> ()
            | Some clause ->
                let key = clause_key clause in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  (* keep the ARMG parent: the child inherits its verified
                     covered sets during evaluation *)
                  collected := (clause, entry) :: !collected
                end)
          (pairs targets))
      !beam;
    (* Anytime evaluation: on expiry mid-round, candidates already being
       scored finish (one-job granularity) and the rest come back [None] —
       counted as abandoned, never half-scored. With a live budget this is
       exactly the old [parallel_map], so generous-deadline runs are
       bit-identical to pre-governance ones. *)
    let outcomes =
      Parallel.Par.parallel_map_anytime ?pool:config.pool ~budget
        (fun (clause, parent) -> evaluate ~parent clause)
        (List.rev !collected)
    in
    let resolved = List.filter_map Fun.id outcomes in
    let candidates = List.rev (List.map fst resolved) in
    Obs.Trace.arg "candidates" (string_of_int (List.length candidates));
    Budget.add budget Budget.Candidate_abandoned
      (List.length outcomes - List.length candidates);
    let merged = candidates @ !beam in
    let sorted = List.sort (fun a b -> if better a b then -1 else 1) merged in
    let min_size_before =
      List.fold_left (fun acc s -> min acc (Logic.Clause.size s.clause)) max_int !beam
    in
    beam := take config.beam_width sorted;
    (* Funnel accounting, folded here on the coordinator from the class tag
       each evaluation carried back — no shared state in the scoring hot
       path. [generated] counts only resolved outcomes (abandoned
       candidates have no class), so the per-step invariant
       [generated = prune_hit + memo_hit + inherited + evaluated] holds
       unconditionally; [accepted] is how many of this step's candidates
       made the new beam. *)
    let n_class want =
      List.fold_left
        (fun acc (_, c) -> if c = want then acc + 1 else acc)
        0 resolved
    in
    Obs.Funnel.record ~step:!steps
      ~generated:(List.length resolved)
      ~prune_hit:(n_class F_pruned) ~memo_hit:(n_class F_memo)
      ~inherited:(n_class F_inherited) ~evaluated:(n_class F_evaluated)
      ~accepted:
        (List.fold_left
           (fun acc s -> if List.memq s !beam then acc + 1 else acc)
           0 candidates);
    let new_best = List.hd !beam in
    let score_improved = better new_best !best in
    if score_improved then best := new_best;
    (* Keep iterating while the search still makes progress of either kind:
       a better score, or a strictly smaller clause in the beam — ARMG
       chains shrink clauses toward generality for several steps before
       coverage (and hence the score) moves, and stopping at the first score
       plateau strands over-specific clauses. When both stall (or no fresh
       candidates appeared), the seed has converged. *)
    let min_size_after =
      List.fold_left (fun acc s -> min acc (Logic.Clause.size s.clause)) max_int !beam
    in
    (* An expiring budget starves this round of candidates; that is a cut
       beam, not convergence — leave [continue] set so the wind-down below
       attributes the stop to the deadline. *)
    if
      (not (Budget.expired budget))
      && (candidates = []
         || ((not score_improved) && min_size_after >= min_size_before))
    then continue := false
  done;
  (* A beam that still wanted to iterate but lost its clock (global budget
     or per-clause timeout) was cut short of convergence; the counter is
     what distinguishes "this seed converged" from "we ran out of time". *)
  if
    !continue && !steps < config.max_beam_steps
    && (Budget.expired budget || not (clause_time_left ()))
  then Budget.hit budget Budget.Beam_cut;
  (* If the raw bottom clause survived as the winner, give it a real
     evaluation: its placeholder score assumed it covers only its seed, but
     on small example sets a bottom clause can legitimately cover several
     positives. Failing evaluations die on the first blocked literal, so
     this is cheap for genuinely hopeless seeds. *)
  if !best.clause == bottom && not (Budget.expired budget) then
    best := fst (evaluate bottom);
  (* Reduce the winner; {!reduce} re-scores it fully on the ranking samples
     (inheriting the verified entries accumulated so far), so callers see
     consistent numbers; acceptance re-checks on the full sets anyway.
     Winners that already fail the minimum criterion on the ranking sample
     (rate-corrected, so the thin negative sample does not flatter them)
     are returned as-is — they will be rejected, reduction would be wasted
     work. *)
  let sample_precision s =
    let wp = pos_weight *. float_of_int s.pos_covered in
    let wn = neg_weight *. float_of_int s.neg_covered in
    if wp +. wn = 0. then 0. else wp /. (wp +. wn)
  in
  let final =
    if
      Budget.expired budget
      || !best.pos_covered < config.min_positives
      || sample_precision !best < config.min_precision
    then !best
    else
      reduce ~cov ~budget ~pos_weight ~neg_weight ~eval_pos:eval_pos_arr
        ~eval_neg:eval_neg_arr !best
  in
  (final, sample_precision final)

(* Map the surviving [uncovered] sublist to indices into the original
   [positives]. The covering loop only ever [List.filter]s the list, so it
   is an order- and identity-preserving subsequence — one lockstep walk
   with physical equality recovers the positions. *)
let indices_of ~positives l =
  let rec go i ps ls acc =
    match (ps, ls) with
    | _, [] -> List.rev acc
    | p :: ptl, x :: ltl when p == x -> go (i + 1) ptl ltl (i :: acc)
    | _ :: ptl, _ -> go (i + 1) ptl ls acc
    | [], _ :: _ ->
        invalid_arg "Learn.indices_of: uncovered is not a sublist of positives"
  in
  go 0 positives l []

let restore_uncovered ~positives idxs =
  let keep = Hashtbl.create (List.length idxs) in
  List.iter (fun i -> Hashtbl.replace keep i ()) idxs;
  List.filteri (fun i _ -> Hashtbl.mem keep i) positives

let meets_criterion ~config ~pos_covered ~neg_covered =
  pos_covered >= config.min_positives
  &&
  let covered = pos_covered + neg_covered in
  covered > 0
  && float_of_int pos_covered /. float_of_int covered >= config.min_precision

(** [learn ?config cov ~rng ~positives ~negatives] runs Algorithm 1 and
    returns the learned Horn definition with run statistics and the
    degradation record saying why the run ended. *)
let learn ?(config = default_config) cov ~rng ~positives ~negatives =
  let t0 = Unix.gettimeofday () in
  (* Always scope a per-call child: [config.timeout] bounds this call even
     when the caller's budget is shared across many (e.g. CV folds), while
     cancellation and counters stay aggregated on the shared cells. *)
  let budget =
    match config.budget with
    | Some b -> Budget.scope ?deadline:config.timeout b
    | None -> Budget.create ?deadline:config.timeout ()
  in
  let cov = Coverage.with_budget cov budget in
  let faults_before, restarts_before, quarantined_before =
    match config.pool with
    | Some p ->
        let s = Parallel.Pool.stats p in
        (s.dropped, s.restarts, s.quarantined)
    | None -> (0, 0, 0)
  in
  (* Resume: re-anchor every piece of loop state from the snapshot. The RNG
     is the checkpoint's (copied — the caller's snapshot stays reusable), so
     from the first post-resume draw the run replays the uninterrupted
     continuation exactly. *)
  let rng =
    match config.resume with
    | Some ck -> Random.State.copy ck.Resilience.Checkpoint.rng
    | None -> rng
  in
  let candidates_evaluated = Atomic.make 0 in
  let definition = ref [] in
  let seeds_skipped = ref 0 in
  let uncovered = ref positives in
  let consecutive_skips = ref 0 in
  let boundary = ref 0 in
  let base_elapsed = ref 0. in
  (match config.resume with
  | None -> ()
  | Some ck ->
      (* [definition] is kept newest-first in the loop; checkpoints store it
         oldest-first (the user-facing order). *)
      definition := List.rev ck.Resilience.Checkpoint.definition;
      uncovered :=
        restore_uncovered ~positives ck.Resilience.Checkpoint.uncovered;
      seeds_skipped := ck.Resilience.Checkpoint.seeds_skipped;
      consecutive_skips := ck.Resilience.Checkpoint.consecutive_skips;
      Atomic.set candidates_evaluated
        ck.Resilience.Checkpoint.candidates_evaluated;
      boundary := ck.Resilience.Checkpoint.boundary;
      base_elapsed := ck.Resilience.Checkpoint.elapsed_s;
      (* Credit the prior run's degradation counters so the resumed run's
         report covers the whole logical run, not just the tail. *)
      Budget.add_assoc budget ck.Resilience.Checkpoint.counters;
      (* Re-arm the failure-constraint store: the snapshot's constraints
         are facts of (seed, example, prefix), so importing them only
         restores pruning power — verdicts cannot change. *)
      Coverage.import_constraints cov ck.Resilience.Checkpoint.constraints);
  let emit_checkpoint () =
    match config.checkpoint with
    | Some sink when !boundary mod max 1 config.checkpoint_every = 0 ->
        let ck =
          {
            Resilience.Checkpoint.version = Resilience.Checkpoint.version;
            fingerprint = config.fingerprint;
            boundary = !boundary;
            definition = List.rev !definition;
            uncovered = indices_of ~positives !uncovered;
            seeds_skipped = !seeds_skipped;
            consecutive_skips = !consecutive_skips;
            candidates_evaluated = Atomic.get candidates_evaluated;
            rng = Random.State.copy rng;
            counters = Budget.counters_to_assoc (Budget.counters budget);
            elapsed_s = !base_elapsed +. (Unix.gettimeofday () -. t0);
            constraints = Coverage.export_constraints cov;
          }
        in
        let outcome = try sink ck with _ -> `Skipped in
        Obs.Events.emit
          (match outcome with
          | `Written -> "checkpoint.written"
          | `Skipped -> "checkpoint.skipped")
          ~fields:
            [
              ("boundary", Obs.Json.Int !boundary);
              ("clauses", Obs.Json.Int (List.length !definition));
            ];
        Budget.hit budget
          (match outcome with
          | `Written -> Budget.Checkpoint_written
          | `Skipped -> Budget.Checkpoint_skipped)
    | _ -> ()
  in
  (* Why the covering loop exited. Captured at the decision point rather
     than re-derived afterwards: a deadline elapsing a microsecond after
     natural completion must still read [Completed]. *)
  let status = ref Budget.Completed in
  let live () =
    match Budget.status budget with
    | Budget.Completed -> true
    | st ->
        status := st;
        false
  in
  (try
     Obs.Trace.span ~cat:"learn"
       ~args:
         [
           ("positives", string_of_int (List.length positives));
           ("negatives", string_of_int (List.length negatives));
         ]
       "learn"
     @@ fun () ->
     while
       !uncovered <> []
       && List.length !definition < config.max_clauses
       && (!definition = [] || !consecutive_skips < config.max_consecutive_skips)
       && live ()
     do
       match !uncovered with
       | [] -> assert false
       | seed :: _ ->
           let best, sample_precision =
             Obs.Metrics.time m_clause_search (fun () ->
                 Obs.Trace.span ~cat:"learn" "learn_clause" (fun () ->
                     learn_clause ~config ~cov ~rng ~budget
                       ~candidates_evaluated ~uncovered:!uncovered ~negatives
                       ~seed))
           in
           (* Acceptance uses the full training set, not the ranking
              subsample; clauses that already failed on the (rate-corrected)
              sample are rejected without the full pass. *)
           let sample_ok =
             best.pos_covered >= config.min_positives
             && sample_precision >= config.min_precision
             (* a clause whose search was cut mid-flight never gets the
                full-training acceptance pass: the definition built so far
                is returned as-is rather than padded with a half-searched
                clause after the deadline *)
             && not (Budget.expired budget)
           in
           if sample_ok then Budget.set_phase budget "acceptance";
           let pos_covered =
             if sample_ok then
               Coverage.count_many ?pool:config.pool cov best.clause !uncovered
             else 0
           in
           let neg_covered =
             if sample_ok then
               Coverage.count_many ?pool:config.pool cov best.clause negatives
             else 0
           in
           if sample_ok && meets_criterion ~config ~pos_covered ~neg_covered
           then begin
             Logs.debug (fun m ->
                 m "accepted clause (p=%d n=%d): %s" pos_covered neg_covered
                   (Logic.Clause.to_string best.clause));
             consecutive_skips := 0;
             Obs.Metrics.bump m_clauses;
             Obs.Events.emit "clause.accepted"
               ~fields:
                 [
                   ("clause", Obs.Json.Str (Logic.Clause.to_string best.clause));
                   ("pos_covered", Obs.Json.Int pos_covered);
                   ("neg_covered", Obs.Json.Int neg_covered);
                   ("body_lits", Obs.Json.Int (Logic.Clause.size best.clause));
                 ];
             definition := best.clause :: !definition;
             uncovered :=
               Parallel.Par.parallel_filter ?pool:config.pool
                 (fun e -> not (Coverage.covers cov best.clause e))
                 !uncovered;
             (* The seed itself may evade its own clause after
                generalization; drop it to guarantee progress. *)
             uncovered := List.filter (fun e -> e != seed) !uncovered
           end
           else begin
             Logs.debug (fun m ->
                 m "seed yielded no acceptable clause (best p=%d n=%d, %d lits)"
                   best.pos_covered best.neg_covered
                   (Logic.Clause.size best.clause));
             incr seeds_skipped;
             incr consecutive_skips;
             uncovered := List.filter (fun e -> e != seed) !uncovered
           end;
           (* Clause boundary: one covering iteration (accept or skip) has
              fully committed its state transition — exactly the points a
              resumed run can re-enter bit-identically. *)
           incr boundary;
           emit_checkpoint ()
     done
   with Budget.Expired st ->
     (* nothing in this module raises it, but budget-aware callees may;
        treat it as the cooperative stop it is *)
     status := st);
  (match config.pool with
  | Some p ->
      let s = Parallel.Pool.stats p in
      Budget.add budget Budget.Worker_fault (s.dropped - faults_before);
      Budget.add budget Budget.Worker_restarted (s.restarts - restarts_before);
      Budget.add budget Budget.Job_quarantined
        (s.quarantined - quarantined_before)
  | None -> ());
  Budget.set_phase budget "done";
  let degradation = Budget.degradation ~status:!status budget in
  let elapsed = !base_elapsed +. (Unix.gettimeofday () -. t0) in
  {
    definition = List.rev !definition;
    stats =
      {
        clauses = List.length !definition;
        candidates_evaluated = Atomic.get candidates_evaluated;
        seeds_skipped = !seeds_skipped;
        elapsed;
        timed_out = not (Budget.equal_status !status Budget.Completed);
      };
    degradation;
  }
