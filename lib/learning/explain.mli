(** Explaining coverage decisions: the witness substitution and supporting
    ground atoms for covered examples, the blocking literal (Section 2.3.2's
    blocking atom) for uncovered ones. *)

type support = {
  literal : Logic.Literal.t;  (** the clause's body literal *)
  grounded : Logic.Literal.t;  (** that literal under the witness *)
}

type t =
  | Covered of {
      witness : Logic.Substitution.t;
      supports : support list;  (** one per body literal, in clause order *)
    }
  | Not_covered of {
      blocking : Logic.Literal.t option;
          (** [None] when the head itself cannot bind to the example *)
      blocking_index : int;  (** 1-based; 0 when the head fails *)
      blocking_key : int array option;
          (** the failing literal's canonical compiled key segment
              ({!Logic.Compiled.key_segment}; the head segment when the head
              fails) — the same int-coding the failure-constraint store's
              signatures use, so explanations and pruning share one code
              path; [None] under [--no-compiled-eval]. [pp] output is
              unchanged by this field. *)
    }

(** [explain cov clause example] — the decision, via the learner's own
    evaluation. *)
val explain : Coverage.t -> Logic.Clause.t -> Relational.Relation.tuple -> t

val pp : Format.formatter -> t -> unit

(** [explain_definition cov def example] — the first covering clause's
    explanation, or every clause's failure. *)
val explain_definition :
  Coverage.t ->
  Logic.Clause.definition ->
  Relational.Relation.tuple ->
  ((Logic.Clause.t * t), (Logic.Clause.t * t) list) result

val pp_definition_result :
  Format.formatter -> ((Logic.Clause.t * t), (Logic.Clause.t * t) list) result -> unit
