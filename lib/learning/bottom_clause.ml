(** Bottom-clause construction (Algorithm 2, guided by the language bias as
    described in Section 2.3.1).

    Given a positive example [e], the builder keeps a hash table from known
    constants to clause variables and to the set of types the constants were
    seen under. Each of the [d] iterations walks every mode definition: for a
    mode of relation R with [+] on attribute A, every known constant whose
    type set intersects types(R[A]) may feed the semi-join [M ⋊ R]; the
    strategy from Section 4 picks at most [sample_size] of the matching
    tuples, and each picked tuple becomes one literal per satisfying mode —
    [+]/[-] positions become variables (fresh for new constants), [#]
    positions stay constants. Newly seen constants at variable positions
    join the table and drive the next iteration.

    With [ground:true] the same tuple reachability is used but constants are
    not replaced by variables: this produces the {e ground bottom clause} of
    Section 5 that coverage testing subsumes against. *)

module Value = Relational.Value
module Relation = Relational.Relation
module String_set = Bias.Util.String_set

type config = {
  depth : int;  (** iterations d of Algorithm 2 *)
  sample_size : int;  (** tuples kept per mode per iteration (paper: 20) *)
  strategy : Sampling.Strategy.t;
  max_body_literals : int;
      (** hard cap on the body size — an under-restricted bias (plain
          Castor) can otherwise produce clauses beyond what subsumption can
          ever process within budget *)
}

let default_config =
  {
    depth = 2;
    sample_size = 20;
    strategy = Sampling.Strategy.Naive;
    max_body_literals = 1000;
  }

let m_build = Obs.Metrics.histogram "bottom_clause.build_s"

type state = {
  bias : Bias.Language.t;
  db : Relational.Database.t;
  rng : Random.State.t;
  cfg : config;
  gen : Logic.Term.Var_gen.t;
  var_of : int Value.Table.t;  (** constant -> variable id *)
  types_of_const : String_set.t Value.Table.t;  (** constant -> seen types *)
  mutable known : Value.Set.t;  (** all known constants *)
  mutable round_known : Value.Set.t;
      (** the constants known when the current round started — Algorithm 2's
          M: constants found during a round only feed the {e next} round, so
          mode processing order cannot dilute the sample away from the
          example's own neighbourhood *)
  literals : (Logic.Literal.t, unit) Hashtbl.t;  (** body, as a set *)
  mutable order : Logic.Literal.t list;  (** body, in insertion order *)
}

let var_for st v =
  match Value.Table.find_opt st.var_of v with
  | Some id -> Logic.Term.Var id
  | None ->
      let t = Logic.Term.Var_gen.fresh st.gen in
      (match t with
      | Logic.Term.Var id -> Value.Table.replace st.var_of v id
      | Logic.Term.Const _ -> assert false);
      t

let add_const_types st v types =
  let existing =
    match Value.Table.find_opt st.types_of_const v with
    | Some s -> s
    | None -> String_set.empty
  in
  Value.Table.replace st.types_of_const v (String_set.union existing types)

let note_new_constant st v types =
  add_const_types st v types;
  if not (Value.Set.mem v st.known) then st.known <- Value.Set.add v st.known

let add_literal st l =
  if
    Hashtbl.length st.literals < st.cfg.max_body_literals
    && not (Hashtbl.mem st.literals l)
  then begin
    Hashtbl.replace st.literals l ();
    st.order <- l :: st.order
  end

(* Known constants whose type set intersects [types] — the candidate feed of
   a [+] attribute. *)
let known_of_types st types =
  Value.Set.filter
    (fun v ->
      match Value.Table.find_opt st.types_of_const v with
      | None -> false
      | Some s -> not (String_set.is_empty (String_set.inter s types)))
    st.round_known

(* One literal for [tuple] under [mode]; registers new constants. [ground]
   keeps every position a constant. *)
let literal_of_tuple st ~ground (mode : Bias.Mode.t) tuple =
  let pred = mode.Bias.Mode.pred in
  let args =
    Array.mapi
      (fun i v ->
        let attr_types = Bias.Language.attribute_types st.bias pred i in
        match mode.Bias.Mode.symbols.(i) with
        | Bias.Mode.Constant -> Logic.Term.Const v
        | Bias.Mode.Input | Bias.Mode.Output ->
            note_new_constant st v attr_types;
            if ground then Logic.Term.Const v else var_for st v)
      tuple
  in
  Logic.Literal.make pred args

(* All tuples a mode can contribute this round: the sampler fed from the
   frontierless known set, then filtered so every [+] position holds a known
   constant of a compatible type (relevant when a manual mode has several
   [+] attributes). *)
let tuples_for_mode st (mode : Bias.Mode.t) =
  match Relational.Database.find_opt st.db mode.Bias.Mode.pred with
  | None -> []
  | Some rel -> (
      match Bias.Mode.input_positions mode with
      | [] -> []
      | first_input :: other_inputs ->
          let feed pos =
            known_of_types st
              (Bias.Language.attribute_types st.bias mode.Bias.Mode.pred pos)
          in
          let known = feed first_input in
          if Value.Set.is_empty known then []
          else begin
            let constant_positions =
              List.init (Relation.arity rel) (fun i -> i)
              |> List.filter (fun i ->
                     Bias.Language.constant_allowed st.bias mode.Bias.Mode.pred i)
            in
            let sampled =
              Sampling.Strategy.sample st.cfg.strategy ~rng:st.rng ~rel
                ~pos:first_input ~known ~size:st.cfg.sample_size
                ~constant_positions
            in
            List.filter
              (fun t ->
                List.for_all
                  (fun pos -> Value.Set.mem t.(pos) (feed pos))
                  other_inputs)
              sampled
          end)

(** [build ?config ?ground db bias ~rng ~example] constructs the bottom
    clause of [example]. The head is the target literal with example
    constants replaced by variables ([ground] only affects the body — the
    head of a ground BC is matched against the example directly).
    Raises [Invalid_argument] on an arity mismatch with the target. *)
let build ?(config = default_config) ?(ground = false) db bias ~rng ~example =
  Obs.Metrics.time m_build @@ fun () ->
  Obs.Trace.span ~cat:"learn"
    ~args:[ ("ground", string_of_bool ground) ]
    "bottom_clause"
  @@ fun () ->
  let target = Bias.Language.target bias in
  let target_name = target.Relational.Schema.rel_name in
  if Array.length example <> Relational.Schema.arity target then
    invalid_arg "Bottom_clause.build: example arity mismatch";
  let st =
    {
      bias;
      db;
      rng;
      cfg = config;
      gen = Logic.Term.Var_gen.create ();
      var_of = Value.Table.create 64;
      types_of_const = Value.Table.create 64;
      known = Value.Set.empty;
      round_known = Value.Set.empty;
      literals = Hashtbl.create 128;
      order = [];
    }
  in
  (* Head: example constants become variables, typed by the target's
     predicate definitions. *)
  let head_args =
    Array.mapi
      (fun i v ->
        let types = Bias.Language.attribute_types bias target_name i in
        note_new_constant st v types;
        var_for st v)
      example
  in
  let head = Logic.Literal.make target_name head_args in
  (* Within a round, modes with more [#] symbols go first: their literals are
     the most selective, and putting them early in the body keeps the
     substitution frontier of prefix evaluation small and anchored — a
     generic literal evaluated first would diffuse the shared variables over
     the whole relation before the selective literal can pin them down. *)
  let ordered_modes =
    List.stable_sort
      (fun a b ->
        compare
          (List.length (Bias.Mode.constant_positions b))
          (List.length (Bias.Mode.constant_positions a)))
      (Bias.Language.modes bias)
  in
  for _round = 1 to config.depth do
    st.round_known <- st.known;
    if not (Value.Set.is_empty st.round_known) then begin
      List.iter
        (fun mode ->
          let tuples = tuples_for_mode st mode in
          List.iter
            (fun t -> add_literal st (literal_of_tuple st ~ground mode t))
            tuples)
        ordered_modes
    end
  done;
  let clause = Logic.Clause.make head (List.rev st.order) in
  if Obs.Trace.enabled () then
    Obs.Trace.arg "body_lits" (string_of_int (Logic.Clause.size clause));
  clause

(** [build_ground ?config db bias ~rng ~example] is the ground bottom clause
    used by coverage testing (Section 5): same reachable tuples, body kept
    ground. *)
let build_ground ?config db bias ~rng ~example =
  build ?config ~ground:true db bias ~rng ~example
