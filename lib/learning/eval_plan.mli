(** Compiled-evaluation state for a coverage context: symbol table, plan
    cache (keyed by physical clause identity), and per-domain scratch
    arenas. Safe to share across pool workers. *)

type t

val create : unit -> t
val symtab : t -> Logic.Compiled.Symtab.t

(** [plan_for t clause] — the cached (or freshly compiled) plan for this
    physical clause. Compilation time lands in the [coverage.compile_s]
    histogram. *)
val plan_for : t -> Logic.Clause.t -> Logic.Compiled.plan

(** [key t clause] — the canonical int-id memo key of [clause]: injective
    exactly where [Clause.to_string] is, with no printing. *)
val key : t -> Logic.Clause.t -> int array

(** [eval ?cap ?budget t clause g] — compiled evaluation on this domain's
    scratch arena; bit-identical to [Subsumption.eval_prefix]. *)
val eval :
  ?cap:int ->
  ?budget:Budget.t ->
  t ->
  Logic.Clause.t ->
  Logic.Compiled.ground ->
  Logic.Subsumption.verdict
