(** Failure-constraint store: blocked coverage verdicts generalized into
    reusable pruning constraints.

    A [Blocked i] verdict for clause [C] on example [e] depends only on the
    prefix [head ← L_1, …, L_i] of [C] (the frontier evaluator never looks
    past the literal it dies at, and its truncation subsampling is
    deterministic), so the canonical int-coded key prefix through the
    blocking literal — the {e failure signature} — predicts the exact same
    verdict for every clause that starts with it. A probe hit therefore
    replaces a frontier evaluation with a trie walk without changing any
    answer: pruning is bit-identity-preserving at fixed seed, exactly like
    the coverage memo.

    The store is lock-striped by example hash and safe to share across pool
    workers, sequential-covering iterations and CV folds. Constraints are
    monotone facts for a fixed (seed, frontier-cap) context; {!export} /
    {!import} move them through checkpoints so a resumed run keeps its
    pruning power. *)

type t

val create : unit -> t

(** Lifetime probe/hit counts and the number of constraints stored. *)
type stats = { probes : int; hits : int; constraints : int }

val stats : t -> stats

(** [probe t ~example ~key] — [Some i] when a stored failure signature
    prefixes [key] (canonical key from {!Logic.Compiled.key}): the clause
    is [Blocked i] on [example] without evaluating. *)
val probe :
  t -> example:Relational.Relation.tuple -> key:int array -> int option

(** [learn t ~example ~key ~blocked] stores the failure signature of a
    [Blocked blocked] verdict for the clause with canonical key [key].
    [true] iff a new constraint was stored ([false]: already known,
    subsumed by a shorter signature, or capacity-capped). *)
val learn :
  t -> example:Relational.Relation.tuple -> key:int array -> blocked:int -> bool

(** Symtab-independent snapshot of the store: interned ids decoded back to
    predicate names and values, so a different process can re-encode them.
    Plain marshalable data — the checkpoint payload. *)
type exported

(** [export t symtab] decodes every stored constraint against the symbol
    table that minted its ids. *)
val export : t -> Logic.Compiled.Symtab.t -> exported

(** [import t symtab exported] re-encodes [exported] against [symtab] and
    stores the constraints (idempotent; respects capacity caps). *)
val import : t -> Logic.Compiled.Symtab.t -> exported -> unit
