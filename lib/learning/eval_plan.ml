(** Compiled-evaluation state for a coverage context: the symbol table, a
    plan cache, and per-worker scratch arenas.

    The learner re-tests the {e same physical clause} against many examples
    (beam scoring, acceptance counting, reduction), so plans are cached by
    physical identity — a hit costs one bounded structural hash and a
    pointer comparison, never a clause traversal. Compilation is pure up to
    interning, so the cache is transparently evictable: when full it is
    simply cleared (clauses from finished beam rounds never come back).

    Scratch arenas are per-domain via [Domain.DLS]: pool workers evaluate
    concurrently, and sharing one arena would race; domain-local arenas
    keep the pool path allocation-free and lock-free. *)

let m_compile = Obs.Metrics.histogram "coverage.compile_s"
let m_compiled = Obs.Metrics.counter "coverage.plans_compiled"

(* Physical identity keys: [Hashtbl.hash] is structural but bounded (it
   visits a limited number of nodes), so hashing a clause is O(1); equality
   is pointer equality, so distinct-but-equal clauses simply occupy
   distinct entries. *)
module Clause_tbl = Hashtbl.Make (struct
  type t = Logic.Clause.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let plan_cache_cap = 4096

type t = {
  symtab : Logic.Compiled.Symtab.t;
  plans : Logic.Compiled.plan Clause_tbl.t;
  lock : Mutex.t;  (** guards [plans] *)
  scratch : Logic.Compiled.scratch Domain.DLS.key;
}

let create () =
  {
    symtab = Logic.Compiled.Symtab.create ();
    plans = Clause_tbl.create 256;
    lock = Mutex.create ();
    scratch = Domain.DLS.new_key Logic.Compiled.make_scratch;
  }

let symtab t = t.symtab

(** [plan_for t clause] — the compiled plan for [clause], compiling and
    caching on first sight of this physical clause. *)
let plan_for t clause =
  Mutex.lock t.lock;
  match Clause_tbl.find_opt t.plans clause with
  | Some p ->
      Mutex.unlock t.lock;
      p
  | None ->
      Mutex.unlock t.lock;
      let p =
        Obs.Metrics.time m_compile (fun () ->
            Obs.Metrics.bump m_compiled;
            Logic.Compiled.compile t.symtab clause)
      in
      Mutex.lock t.lock;
      (* Racing duplicate compiles insert interchangeable plans; keep the
         first so concurrent callers converge on one physical plan. *)
      let p =
        match Clause_tbl.find_opt t.plans clause with
        | Some p' -> p'
        | None ->
            if Clause_tbl.length t.plans >= plan_cache_cap then
              Clause_tbl.reset t.plans;
            Clause_tbl.add t.plans clause p;
            p
      in
      Mutex.unlock t.lock;
      p

(** [key t clause] — the canonical int-id memo key of [clause]. *)
let key t clause = Logic.Compiled.key (plan_for t clause)

(** [eval ?cap ?budget t clause g] — compiled evaluation of [clause]
    against compiled ground [g], on this domain's scratch arena.
    Bit-identical to [Subsumption.eval_prefix] from the head substitution
    ([Blocked 0] when the head cannot bind [g]'s example). *)
let eval ?cap ?budget t clause g =
  let scratch = Domain.DLS.get t.scratch in
  Logic.Compiled.eval ?cap ?budget scratch t.symtab (plan_for t clause) g
