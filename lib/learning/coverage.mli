(** Coverage testing via θ-subsumption against cached ground bottom clauses
    (Section 5): clause [C] covers example [e] iff, after binding [C]'s head
    to [e]'s constants, body(C) θ-subsumes the ground BC of [e]. Ground BCs
    are built once per example with the same sampling strategy used for
    bottom clauses and cached in the context.

    The context is safe to share across domains: the cache sits behind a
    mutex whose critical sections are just the table operations, and ground
    BCs are built from a per-example [Random.State] derived from the master
    seed — so the cache contents are a pure function of (seed, example),
    independent of pool size, scheduling, and query order. *)

type t

(** Snapshot of the verdict memo: lifetime hit/miss counts and the number of
    entries currently stored. All zero when caching is disabled. *)
type cache_stats = { hits : int; misses : int; entries : int }

(** [?budget] is a sink for degradation counters (frontier truncations, memo
    hits/misses); it never changes any coverage verdict. [?use_cache]
    (default [true]) enables the lock-striped verdict memo: verdicts are pure
    functions of (clause, example) given the captured seed, so caching is
    invisible to results — [false] exists for A/B measurement
    ([--no-coverage-cache]). [?use_compiled] (default [true]) evaluates
    through the int-coded compiled kernel ({!Logic.Compiled}), which is
    bit-identical to the symbolic frontier engine — [false]
    ([--no-compiled-eval]) is the escape hatch / A/B baseline.
    [?use_pruning] (default [true]) arms the failure-constraint store
    ({!Prune}): blocked verdicts become prefix signatures that answer later
    evaluations without running the frontier. A probe hit returns the exact
    verdict evaluation would compute, so pruning is also invisible to
    results — [false] ([--no-prune]) is the A/B escape hatch. Pruning
    requires the compiled engine (signatures are compiled-key prefixes) and
    is silently off under [use_compiled:false]. *)
val create :
  ?sub_config:Logic.Subsumption.config ->
  ?bc_config:Bottom_clause.config ->
  ?budget:Budget.t ->
  ?use_cache:bool ->
  ?use_compiled:bool ->
  ?use_pruning:bool ->
  Relational.Database.t ->
  Bias.Language.t ->
  rng:Random.State.t ->
  t

val cache_enabled : t -> bool
val compiled_enabled : t -> bool
val pruning_enabled : t -> bool

(** Failure-constraint store snapshot (all zero when pruning is off). *)
type prune_stats = Prune.stats = {
  probes : int;
  hits : int;
  constraints : int;
}

val prune_stats : t -> prune_stats

(** [cache_stats t] — a consistent-enough snapshot of the verdict memo. *)
val cache_stats : t -> cache_stats

(** [with_budget t budget] is [t] reporting into [budget]: a shallow copy
    sharing the ground-BC cache (and its mutex) — concurrent learns each
    get their own counters without duplicating cached work. *)
val with_budget : t -> Budget.t -> t

val bias : t -> Bias.Language.t
val database : t -> Relational.Database.t

(** [ground_of t example] — the cached ground bottom clause of [example]. *)
val ground_of : t -> Relational.Relation.tuple -> Logic.Subsumption.ground

(** [warm ?pool t examples] precomputes ground BCs (the paper builds them
    once, up front), fanning construction across [pool] when given — the
    resulting cache is identical either way. *)
val warm : ?pool:Parallel.Pool.t -> t -> Relational.Relation.tuple list -> unit

(** [head_subst clause example] binds the clause head to the example:
    variables map to constants, constant head arguments must match; [None]
    when the head cannot produce the example. *)
val head_subst :
  Logic.Clause.t -> Relational.Relation.tuple -> Logic.Substitution.t option

(** [eval t clause example] — [Covered w] with a witness, or [Blocked i]
    with the 1-based blocking body literal; [Blocked 0] means the head
    itself cannot bind. *)
val eval :
  t -> Logic.Clause.t -> Relational.Relation.tuple -> Logic.Subsumption.verdict

(** [probe_pruned t clause example] — the verdict the failure-constraint
    store already knows for the pair, if any (always [Blocked _]).
    Probe-only: never evaluates, never stores; [None] when pruning is off.
    What {!Learn} asks before spending coverage tests on a candidate. *)
val probe_pruned :
  t ->
  Logic.Clause.t ->
  Relational.Relation.tuple ->
  Logic.Subsumption.verdict option

(** [blocking_key t clause i] — canonical compiled key segment of the
    literal a [Blocked i] verdict points at (the head for [i = 0]); [None]
    under [--no-compiled-eval]. Shared with {!Explain.Not_covered}. *)
val blocking_key : t -> Logic.Clause.t -> int -> int array option

(** [export_constraints t] — the failure-constraint store as an opaque
    checkpoint payload ([""] when pruning is off). *)
val export_constraints : t -> string

(** [import_constraints t s] restores an {!export_constraints} payload
    (no-op on [""], pruning off, or an undecodable payload — constraints
    are an accelerant, so the safe degradation is to start cold). *)
val import_constraints : t -> string -> unit

val covers : t -> Logic.Clause.t -> Relational.Relation.tuple -> bool

(** [covers_src t clause example] — {!covers} plus whether the verdict was
    served from the verdict memo ([true]) rather than computed (or answered
    by the failure-constraint store). The verdict is identical either way;
    the flag only feeds {!Learn}'s search-funnel accounting, which wants to
    know whether a candidate cost any real subsumption work. *)
val covers_src : t -> Logic.Clause.t -> Relational.Relation.tuple -> bool * bool

(** [covers_prefix t clause k example] — [covers] restricted to the first
    [k] body literals. *)
val covers_prefix : t -> Logic.Clause.t -> int -> Relational.Relation.tuple -> bool

(** [covered t clause examples] — the covered sublist. *)
val covered :
  t -> Logic.Clause.t -> Relational.Relation.tuple list -> Relational.Relation.tuple list

(** [count t clause examples] — how many are covered. *)
val count : t -> Logic.Clause.t -> Relational.Relation.tuple list -> int

(** [covered_many ?pool t clause examples] — {!covered} with per-example
    tests fanned out across [pool]; result order is input order. *)
val covered_many :
  ?pool:Parallel.Pool.t ->
  t ->
  Logic.Clause.t ->
  Relational.Relation.tuple list ->
  Relational.Relation.tuple list

(** [count_many ?pool t clause examples] — {!count} with per-example tests
    fanned out across [pool]. Equal to [count] for every pool size. *)
val count_many :
  ?pool:Parallel.Pool.t ->
  t ->
  Logic.Clause.t ->
  Relational.Relation.tuple list ->
  int

(** [definition_covers t def example] — disjunction over clauses
    (Definition 2.4). *)
val definition_covers :
  t -> Logic.Clause.definition -> Relational.Relation.tuple -> bool
