(** The asymmetric relative minimal generalization operator (Section 2.3.2).

    Given a clause [C] (initially a bottom clause) and a positive example
    [e'] that [C] does not cover, ARMG repeatedly removes the {e blocking
    atom} — the body literal [L_i] with the least [i] such that the prefix
    [head ← L_1, …, L_i] does not cover [e'] — until [e'] is covered, then
    drops body literals that lost head-connectedness.

    The implementation is incremental: a single left-to-right sweep of the
    substitution-set frontier ({!Logic.Subsumption.step_frontier}). When the
    frontier dies at literal [L_i], the prefix before it is untouched by the
    removal, so the sweep resumes at position [i] with the saved frontier —
    the whole operator costs one frontier step per surviving literal plus
    one per removal, instead of a full subsumption test per removal. *)

(** [generalize cov clause ~example] applies ARMG. Returns [None] when the
    clause head cannot be bound to [example] (arity/constant mismatch) —
    such an example cannot be covered by any generalization of [clause]. *)
let generalize cov clause ~example =
  match Coverage.head_subst clause example with
  | None -> None
  | Some subst ->
      let g = Coverage.ground_of cov example in
      let body = Array.of_list (Logic.Clause.body clause) in
      let n = Array.length body in
      let kept = Array.make n true in
      (* One sweep: removing a blocking atom leaves the frontier of the
         surviving prefix unchanged, so the sweep simply carries it on to
         the next literal. *)
      let frontier = ref [ subst ] and frontier_n = ref 1 in
      for i = 0 to n - 1 do
        match
          Logic.Subsumption.step_frontier_n g !frontier
            ~frontier_n:!frontier_n body.(i)
        with
        | [], _ -> kept.(i) <- false
        | next, next_n ->
            frontier := next;
            frontier_n := next_n
      done;
      let surviving =
        Array.to_list body
        |> List.filteri (fun j _ -> kept.(j))
      in
      Some
        (Logic.Clause.prune_head_connected
           (Logic.Clause.make (Logic.Clause.head clause) surviving))
