(** Minimal CSV reader/writer for relation instances.

    The format is deliberately simple: comma-separated, one tuple per line,
    double quotes around fields that contain commas or quotes (doubled quotes
    escape a quote). This is enough to round-trip every synthetic dataset and
    to let a user load their own data.

    Malformed input is a first-class outcome, not a [Failure] with a bare
    message: every defect is reported as {!Error} carrying the file name (when
    known), the 1-based line number, and what went wrong — and the caller
    chooses between failing fast and skipping bad rows ([?on_error]). *)

type error = {
  file : string option;  (** the path given to {!load}; [None] for strings *)
  line : int;  (** 1-based line number of the offending row *)
  message : string;
}

exception Error of error

let error_to_string e =
  Printf.sprintf "%s:%d: %s"
    (Option.value e.file ~default:"<string>")
    e.line e.message

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Csv.Error (%s)" (error_to_string e))
    | _ -> None)

(* Internal, carries only the message; the parser loop attaches file/line. *)
exception Bad_row of string

(* {2 Skip statistics}

   Rows dropped under [`Skip] used to vanish silently; now every drop is
   tallied in a process-global registry keyed by the file name ("<string>"
   for in-memory parses), keeping the count and the first offending
   (line, message) per file. The run report surfaces the registry, so a
   quietly lossy load is visible after the fact. Mutex-guarded: loads can
   run from pool workers. *)

type skip_stats = {
  rows_skipped : int;
  first_bad : (int * string) option;  (** (1-based line, message) *)
}

let skip_lock = Mutex.create ()
let skip_tbl : (string, skip_stats) Hashtbl.t = Hashtbl.create 8

let note_skip ~file ~line ~message =
  let key = Option.value file ~default:"<string>" in
  Mutex.lock skip_lock;
  let prev =
    Option.value (Hashtbl.find_opt skip_tbl key)
      ~default:{ rows_skipped = 0; first_bad = None }
  in
  Hashtbl.replace skip_tbl key
    {
      rows_skipped = prev.rows_skipped + 1;
      first_bad =
        (match prev.first_bad with
        | Some _ as fb -> fb
        | None -> Some (line, message));
    };
  Mutex.unlock skip_lock

let skip_stats () =
  Mutex.lock skip_lock;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) skip_tbl [] in
  Mutex.unlock skip_lock;
  List.sort compare l

let reset_skip_stats () =
  Mutex.lock skip_lock;
  Hashtbl.reset skip_tbl;
  Mutex.unlock skip_lock

let split_line line =
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let n = String.length line in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | '"' -> raise (Bad_row "quote inside unquoted field")
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then raise (Bad_row "unterminated quoted field")
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> closed (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  and closed i =
    (* after the closing quote only a separator (or end of line) is legal *)
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          plain (i + 1)
      | c -> raise (Bad_row (Printf.sprintf "unexpected %C after closing quote" c))
  in
  plain 0;
  List.rev !fields

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(** [parse_string ?on_error ?file ~schema contents] parses CSV [contents]
    (no header) into a relation with the given schema. A malformed row —
    wrong arity, unterminated quote, stray quote — raises {!Error} with
    [file] and its 1-based line number under [`Fail] (the default), or is
    dropped under [`Skip]. *)
let parse_string ?(on_error = `Fail) ?file ~schema contents =
  let r = Relation.create schema in
  String.split_on_char '\n' contents
  |> List.iteri (fun i line ->
         let line = String.trim line in
         if line <> "" then
           (* The "csv" chaos layer drops rows like an I/O hiccup would —
              recorded as a skip under either error policy (a chaos run
              must degrade loudly, not abort), never as a parse failure. *)
           if Chaos.fires "csv" then
             note_skip ~file ~line:(i + 1) ~message:"chaos: injected row fault"
           else
             match
               let fields = split_line line in
               let t = Array.of_list (List.map Value.of_string fields) in
               if Array.length t <> Schema.arity schema then
                 raise
                   (Bad_row
                      (Printf.sprintf
                         "arity mismatch in %s (got %d, want %d): %s"
                         schema.Schema.rel_name (Array.length t)
                         (Schema.arity schema) line));
               t
             with
             | t -> Relation.add r t
             | exception Bad_row message -> (
                 match on_error with
                 | `Skip -> note_skip ~file ~line:(i + 1) ~message
                 | `Fail -> raise (Error { file; line = i + 1; message })));
  r

(** [load ?on_error ~schema path] reads the file at [path] as the instance of
    [schema]; errors carry [path] as the file name. *)
let load ?on_error ~schema path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse_string ?on_error ~file:path ~schema contents

(** [to_string r] renders relation [r] as CSV (no header), oldest tuple
    first so load/save round-trips preserve order. *)
let to_string r =
  let buf = Buffer.create 1024 in
  List.rev (Relation.tuples r)
  |> List.iter (fun t ->
         Array.iteri
           (fun i v ->
             if i > 0 then Buffer.add_char buf ',';
             Buffer.add_string buf (escape_field (Value.to_string v)))
           t;
         Buffer.add_char buf '\n');
  Buffer.contents buf

(** [save r path] writes [to_string r] to [path]. *)
let save r path =
  let oc = open_out path in
  output_string oc (to_string r);
  close_out oc
