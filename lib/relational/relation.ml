(** In-memory relation instances.

    A relation stores its tuples as value arrays and lazily builds, per
    attribute, a hash index from value to the list of tuples holding that
    value, together with the frequency statistics the Olken-style sampler
    needs (Section 4.2 of the paper): the frequency m(a) of each value and an
    upper bound M on any frequency. *)

type tuple = Value.t array

let pp_tuple ppf (t : tuple) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp_short) t

let tuple_to_string t = Fmt.str "%a" pp_tuple t
let equal_tuple (a : tuple) b = a = b

type index = {
  by_value : (int * tuple list) Value.Table.t;
      (** value -> (bucket length, tuples with that value): the length rides
          along so insertion and frequency probes stay O(1) — recomputing
          [List.length bucket] per inserted tuple made index maintenance
          quadratic in the bucket size *)
  mutable max_frequency : int;  (** M: max tuples sharing one value *)
  mutable distinct : int;  (** number of distinct values in the column *)
}

(* Shared insert: bucket lengths are maintained, never recomputed. *)
let index_add idx pos (t : tuple) =
  let v = t.(pos) in
  let n, bucket =
    try Value.Table.find idx.by_value v with Not_found -> (0, [])
  in
  if n = 0 then idx.distinct <- idx.distinct + 1;
  let n = n + 1 in
  Value.Table.replace idx.by_value v (n, t :: bucket);
  if n > idx.max_frequency then idx.max_frequency <- n

type t = {
  schema : Schema.relation_schema;
  mutable tuples : tuple list;  (** newest first *)
  mutable cardinality : int;
  indexes : (int, index) Hashtbl.t;  (** column position -> index *)
}

let create schema = { schema; tuples = []; cardinality = 0; indexes = Hashtbl.create 4 }

let name r = r.schema.Schema.rel_name
let schema r = r.schema
let arity r = Schema.arity r.schema
let cardinality r = r.cardinality
let tuples r = r.tuples

(** [add r t] appends tuple [t]. Raises [Invalid_argument] on arity mismatch.
    Indexes built earlier are updated incrementally. *)
let add r (t : tuple) =
  if Array.length t <> arity r then
    invalid_arg
      (Printf.sprintf "Relation.add: arity mismatch on %s (got %d, want %d)"
         (name r) (Array.length t) (arity r));
  r.tuples <- t :: r.tuples;
  r.cardinality <- r.cardinality + 1;
  Hashtbl.iter (fun pos idx -> index_add idx pos t) r.indexes

let add_all r ts = List.iter (add r) ts

(** [of_tuples schema ts] builds a relation containing [ts]. *)
let of_tuples schema ts =
  let r = create schema in
  add_all r ts;
  r

let build_index r pos =
  let idx =
    { by_value = Value.Table.create (max 16 r.cardinality); max_frequency = 0; distinct = 0 }
  in
  List.iter (fun t -> index_add idx pos t) r.tuples;
  Hashtbl.replace r.indexes pos idx;
  idx

(** [index r pos] returns (building on first use) the index on column [pos]. *)
let index r pos =
  match Hashtbl.find_opt r.indexes pos with
  | Some idx -> idx
  | None -> build_index r pos

(** [lookup r pos v] is every tuple whose column [pos] equals [v], via the
    index: O(1) probe, as a main-memory DBMS with proper indexes would do. *)
let lookup r pos v =
  try snd (Value.Table.find (index r pos).by_value v) with Not_found -> []

(** [frequency r pos v] is m(v): how many tuples hold [v] in column [pos] —
    an O(1) probe of the cached bucket length. *)
let frequency r pos v =
  try fst (Value.Table.find (index r pos).by_value v) with Not_found -> 0

(** [max_frequency r pos] is M: an upper bound on [frequency r pos v]. *)
let max_frequency r pos = (index r pos).max_frequency

(** [distinct_count r pos] is the number of distinct values in column [pos]. *)
let distinct_count r pos = (index r pos).distinct

(** [distinct_values r pos] lists the distinct values of column [pos]. *)
let distinct_values r pos =
  Value.Table.fold (fun v _ acc -> v :: acc) (index r pos).by_value []

(** [project r pos] is the multiset-free projection π_pos as a value set. *)
let project r pos =
  Value.Table.fold (fun v _ acc -> Value.Set.add v acc) (index r pos).by_value
    Value.Set.empty

(** [select r pos values] is σ_{pos ∈ values}(r), served from the index. *)
let select r pos values =
  Value.Set.fold (fun v acc -> List.rev_append (lookup r pos v) acc) values []

(** [fold f r init] folds over all tuples. *)
let fold f r init = List.fold_left (fun acc t -> f acc t) init r.tuples

let iter f r = List.iter f r.tuples

let pp ppf r =
  Fmt.pf ppf "@[<v2>%s(%a) [%d tuples]@,%a@]" (name r)
    Fmt.(array ~sep:(any ",") string)
    r.schema.Schema.attrs r.cardinality
    Fmt.(list ~sep:cut pp_tuple)
    r.tuples
