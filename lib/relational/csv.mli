(** Minimal CSV reader/writer for relation instances.

    Comma-separated, one tuple per line, no header; double quotes protect
    fields containing commas or quotes (doubled quotes escape a quote).
    Values parse with {!Value.of_string} (integers stay integers).

    Malformed input is reported as a typed {!Error} carrying the file name
    and 1-based line number; callers pick a policy with [?on_error]. *)

type error = {
  file : string option;  (** the path given to {!load}; [None] for strings *)
  line : int;  (** 1-based line number of the offending row *)
  message : string;  (** what was wrong with it *)
}

exception Error of error

(** [error_to_string e] — ["file:line: message"], grep-friendly. *)
val error_to_string : error -> string

type skip_stats = {
  rows_skipped : int;  (** rows dropped under [`Skip] (or by chaos) *)
  first_bad : (int * string) option;
      (** 1-based line and message of the first dropped row *)
}

(** [skip_stats ()] — per-file drop tallies accumulated by [`Skip]-policy
    parses (and the ["csv"] chaos layer) since the last reset, sorted by
    file name (["<string>"] for in-memory parses). The run report embeds
    this so silently-skipped rows are visible after the fact. *)
val skip_stats : unit -> (string * skip_stats) list

(** [reset_skip_stats ()] clears the registry (test isolation / run
    scoping). *)
val reset_skip_stats : unit -> unit

(** [parse_string ?on_error ?file ~schema contents] parses CSV [contents]
    into an instance of [schema]. Malformed rows (arity mismatch,
    unterminated quote, stray quote) raise {!Error} under [`Fail] (the
    default) or are dropped under [`Skip]; [file] labels errors for input
    that came from a file.
    @raise Error under [`Fail] on the first malformed row. *)
val parse_string :
  ?on_error:[ `Fail | `Skip ] ->
  ?file:string ->
  schema:Schema.relation_schema ->
  string ->
  Relation.t

(** [load ?on_error ~schema path] reads the file at [path]; errors carry
    [path] as the file name.
    @raise Error under [`Fail] (the default) on the first malformed row. *)
val load :
  ?on_error:[ `Fail | `Skip ] ->
  schema:Schema.relation_schema ->
  string ->
  Relation.t

(** [to_string r] renders [r] as CSV, oldest tuple first, so save/load
    round-trips preserve order. *)
val to_string : Relation.t -> string

(** [save r path] writes [to_string r] to [path]. *)
val save : Relation.t -> string -> unit
