(** The three sampling techniques of Section 4, behind one interface.

    Bottom-clause construction (Algorithm 2) repeatedly asks: given the set
    [known] of constants already in the clause that can feed the [+]
    attribute [pos] of relation [rel], give me at most [size] tuples of
    [σ_{pos ∈ known}(rel)]. Each strategy answers differently:

    - {b Naive} (Section 4.1): a uniform sample of the matching tuples —
      every matching tuple has the same inclusion probability.
    - {b Random} (Section 4.2): Olken-style acceptance–rejection over the
      semi-join [known ⋊ rel]: draw a value [a] uniformly from [known], draw
      a matching tuple uniformly, accept with probability [m(a)/M] where
      [m(a)] is the frequency of [a] in the column and [M] the column's
      maximum frequency. This yields a uniform sample of the semi-join
      {e output} (which weights values by existence, not frequency, per the
      paper's semi-join analysis) without materializing it.
    - {b Stratified} (Section 4.3, Algorithm 4): partition the matching
      tuples into strata — one per distinct value of each constant-able
      attribute, or a single stratum when the relation has none — and sample
      [size] tuples uniformly {e per stratum}, so rare relationships survive
      sampling.

    All strategies draw from an explicit [Random.State.t] for
    reproducibility. *)

module Value = Relational.Value
module Relation = Relational.Relation

type t =
  | Naive
  | Random
  | Stratified
[@@deriving eq, show { with_path = false }]

let to_string = function
  | Naive -> "naive"
  | Random -> "random"
  | Stratified -> "stratified"

let of_string = function
  | "naive" -> Naive
  | "random" -> Random
  | "stratified" -> Stratified
  | s -> invalid_arg ("Strategy.of_string: " ^ s)

let all = [ Naive; Random; Stratified ]

let reservoir rng size l = Reservoir.sample rng size l

let matching_tuples rel pos known =
  Value.Set.fold
    (fun v acc -> List.rev_append (Relation.lookup rel pos v) acc)
    known []

let naive_sample ~rng ~rel ~pos ~known ~size =
  reservoir rng size (matching_tuples rel pos known)

(* Olken acceptance–rejection. [attempt_factor] bounds the number of draws so
   a column full of rejections cannot stall learning. *)
let random_sample ?(attempt_factor = 30) ~rng ~rel ~pos ~known ~size () =
  let values = Array.of_list (Value.Set.elements known) in
  let n_values = Array.length values in
  if n_values = 0 || size <= 0 then []
  else begin
    let max_freq = Relation.max_frequency rel pos in
    if max_freq = 0 then []
    else begin
      let out = ref [] in
      let accepted = ref 0 in
      let attempts = ref 0 in
      let max_attempts = (attempt_factor * size) + 50 in
      while !accepted < size && !attempts < max_attempts do
        incr attempts;
        let a = values.(Random.State.int rng n_values) in
        let bucket = Relation.lookup rel pos a in
        let m = List.length bucket in
        if m > 0 then begin
          let t = List.nth bucket (Random.State.int rng m) in
          let p = float_of_int m /. float_of_int max_freq in
          if Random.State.float rng 1.0 <= p then begin
            out := t :: !out;
            incr accepted
          end
        end
      done;
      (* Sampling is with replacement; the bottom clause is a set of
         literals, so duplicates carry no information — drop them. *)
      List.sort_uniq compare !out
    end
  end

let stratified_sample ~rng ~rel ~pos ~known ~size ~constant_positions =
  let matching = matching_tuples rel pos known in
  match constant_positions with
  | [] -> reservoir rng size matching
  | consts ->
      (* One stratum per (constant attribute, distinct value) pair; a tuple
         belongs to the stratum of each of its constant attributes, so every
         variation of every literal keeps representatives (Section 4.3). *)
      let strata = Hashtbl.create 32 in
      List.iter
        (fun t ->
          List.iter
            (fun cpos ->
              let key = (cpos, t.(cpos)) in
              let bucket = try Hashtbl.find strata key with Not_found -> [] in
              Hashtbl.replace strata key (t :: bucket))
            consts)
        matching;
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) strata [] |> List.sort compare
      in
      List.concat_map
        (fun key -> reservoir rng size (Hashtbl.find strata key))
        keys
      |> List.sort_uniq compare

(** [sample strategy ~rng ~rel ~pos ~known ~size ~constant_positions] draws
    tuples of [σ_{pos ∈ known}(rel)] under [strategy].
    [constant_positions] (the attributes the language bias allows as
    constants) defines the strata for {!Stratified} and is ignored
    otherwise. *)
let sample strategy ~rng ~rel ~pos ~known ~size ~constant_positions =
  Obs.Trace.span ~cat:"sampling" "sample" @@ fun () ->
  (* "sampling" chaos: an absorbed hiccup — counted in the injector's
     snapshot, the draw itself proceeds normally (sampling has no partial
     state to lose, so degrade-not-crash here means "carry on"). *)
  ignore (Chaos.fires "sampling");
  if Obs.Trace.enabled () then begin
    Obs.Trace.arg "strategy" (to_string strategy);
    Obs.Trace.arg "relation" (Relation.name rel)
  end;
  match strategy with
  | Naive -> naive_sample ~rng ~rel ~pos ~known ~size
  | Random -> random_sample ~rng ~rel ~pos ~known ~size ()
  | Stratified -> stratified_sample ~rng ~rel ~pos ~known ~size ~constant_positions
