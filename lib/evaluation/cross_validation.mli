(** k-fold cross-validation (Section 6.1: 10-fold everywhere, 5-fold on UW):
    positives and negatives are folded separately (stratified); background
    knowledge is shared and only examples split — the standard ILP
    protocol. *)

type learner = {
  name : string;
  run :
    rng:Random.State.t ->
    train_pos:Relational.Relation.tuple list ->
    train_neg:Relational.Relation.tuple list ->
    Logic.Clause.definition * bool;
      (** returns the definition and whether the run timed out *)
}

type fold_result = {
  fold : int;
  metrics : Metrics.t;
  learn_time : float;
  timed_out : bool;
  definition : Logic.Clause.definition;
}

type result = {
  folds : fold_result list;
  mean_metrics : Metrics.t;
  mean_time : float;
  any_timed_out : bool;
}

(** [run ?pool ?k learner cov ~rng ~positives ~negatives] cross-validates
    [learner]; [cov] only scores held-out folds. [k] defaults to 10,
    clamped so every fold holds a positive. With [pool], folds run
    concurrently, each on a private RNG split deterministically from [rng]
    — the result is identical for every pool size (the sequential path
    keeps the historical one-RNG-through-all-folds behaviour). *)
val run :
  ?pool:Parallel.Pool.t ->
  ?k:int ->
  learner ->
  Learning.Coverage.t ->
  rng:Random.State.t ->
  positives:Relational.Relation.tuple list ->
  negatives:Relational.Relation.tuple list ->
  result

(** [format_time s] renders seconds the way the paper's tables do ("6.6s",
    "3.21m", "2.7h"). *)
val format_time : float -> string

val pp_result : Format.formatter -> result -> unit
