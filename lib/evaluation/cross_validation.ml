(** k-fold cross-validation (Section 6.1: 10-fold everywhere, 5-fold on UW).

    Positives and negatives are split into [k] folds separately (stratified),
    each fold serves once as the test set, the learner runs on the remaining
    folds, and the learned definition is scored on the held-out fold with
    coverage testing over the full database (background knowledge is shared,
    only examples are split — the standard ILP protocol). *)

type learner = {
  name : string;
  run :
    rng:Random.State.t ->
    train_pos:Relational.Relation.tuple list ->
    train_neg:Relational.Relation.tuple list ->
    Logic.Clause.definition * bool;
      (** returns the definition and whether the run timed out *)
}
(** A learner under evaluation. The coverage context (bias, sampling, ground
    BCs) is baked into [run] by the caller; cross-validation only shuffles
    examples. *)

type fold_result = {
  fold : int;
  metrics : Metrics.t;
  learn_time : float;
  timed_out : bool;
  definition : Logic.Clause.definition;
}

type result = {
  folds : fold_result list;
  mean_metrics : Metrics.t;
  mean_time : float;
  any_timed_out : bool;
}

let split_folds rng k l =
  let arr = Array.of_list (Datasets.Dataset.shuffle rng l) in
  let folds = Array.make k [] in
  Array.iteri (fun i x -> folds.(i mod k) <- x :: folds.(i mod k)) arr;
  Array.to_list folds

(** [run ?pool ?k learner cov ~rng ~positives ~negatives] cross-validates
    [learner]. [cov] is used only for {e scoring} on held-out folds; the
    learner brings its own coverage context. [k] defaults to 10 and is
    clamped so every fold holds at least one positive.

    With [pool], folds run concurrently across the pool's domains; each
    fold draws a private [Random.State] derived deterministically from
    [rng], so the parallel result is identical for every pool size (it
    differs from the sequential result, which threads one RNG through the
    folds in order — the historical behaviour, kept bit-identical). *)
let run ?pool ?(k = 10) learner cov ~rng ~positives ~negatives =
  let k = max 2 (min k (List.length positives)) in
  let pos_folds = Array.of_list (split_folds rng k positives) in
  let neg_folds = Array.of_list (split_folds rng k negatives) in
  let run_fold ~rng fold =
    let test_pos = pos_folds.(fold) and test_neg = neg_folds.(fold) in
    let train_pos =
      List.concat (List.filteri (fun i _ -> i <> fold) (Array.to_list pos_folds))
    and train_neg =
      List.concat (List.filteri (fun i _ -> i <> fold) (Array.to_list neg_folds))
    in
    let t0 = Unix.gettimeofday () in
    let definition, timed_out = learner.run ~rng ~train_pos ~train_neg in
    let learn_time = Unix.gettimeofday () -. t0 in
    let metrics =
      Metrics.evaluate cov definition ~positives:test_pos ~negatives:test_neg
    in
    { fold; metrics; learn_time; timed_out; definition }
  in
  let folds =
    match pool with
    | None ->
        (* explicit ascending recursion: the shared RNG must see the folds
           in the same order as the historical for-loop *)
        let rec go fold =
          if fold >= k then []
          else
            let r = run_fold ~rng fold in
            r :: go (fold + 1)
        in
        go 0
    | Some _ ->
        let base = Random.State.bits rng in
        Parallel.Par.parallel_map ?pool
          (fun fold ->
            run_fold ~rng:(Random.State.make [| base; fold |]) fold)
          (List.init k Fun.id)
  in
  {
    folds;
    mean_metrics = Metrics.mean (List.map (fun f -> f.metrics) folds);
    mean_time =
      List.fold_left (fun acc f -> acc +. f.learn_time) 0. folds
      /. float_of_int (List.length folds);
    any_timed_out = List.exists (fun f -> f.timed_out) folds;
  }

(** [format_time s] renders seconds the way the paper's tables do
    (e.g. "6.6s", "3.21m", "2.7h"). *)
let format_time s =
  if s >= 3600. then Printf.sprintf "%.1fh" (s /. 3600.)
  else if s >= 60. then Printf.sprintf "%.2fm" (s /. 60.)
  else Printf.sprintf "%.1fs" s

let pp_result ppf r =
  Fmt.pf ppf "%a time=%s%s" Metrics.pp_row r.mean_metrics
    (format_time r.mean_time)
    (if r.any_timed_out then " (timed out)" else "")
