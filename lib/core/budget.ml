(** Resource governance: deadline + cancellation token + degradation
    counters. See budget.mli for the contract.

    The whole structure is built from atomics so that pool workers on other
    domains can check the flag and bump counters without taking a lock. A
    {!scope} child shares the parent's [cancelled] atomic and counter cells
    (same physical arrays), so cancellation and accounting aggregate across
    an entire run while each scope keeps its own, possibly tighter,
    deadline. *)

type status = Completed | Deadline_hit | Cancelled

let equal_status (a : status) b = a = b

let status_to_string = function
  | Completed -> "completed"
  | Deadline_hit -> "deadline_hit"
  | Cancelled -> "cancelled"

let pp_status ppf s = Format.pp_print_string ppf (status_to_string s)

exception Expired of status

(* Monotonized wall clock: gettimeofday can step backwards under NTP; a
   deadline that un-expires would let a "returned by the deadline" guarantee
   silently lapse. A CAS max over the last observed value keeps [now]
   non-decreasing process-wide. *)
let last_now = Atomic.make 0.

let now () =
  let t = Unix.gettimeofday () in
  let rec bump () =
    let prev = Atomic.get last_now in
    if t <= prev then prev
    else if Atomic.compare_and_set last_now prev t then t
    else bump ()
  in
  bump ()

type event =
  | Subsumption_try
  | Subsumption_restart
  | Subsumption_exhausted
  | Coverage_truncated
  | Coverage_memo_hit
  | Coverage_memo_miss
  | Coverage_inherited
  | Beam_cut
  | Candidate_abandoned
  | Job_skipped
  | Worker_fault
  | Worker_restarted
  | Job_quarantined
  | Checkpoint_written
  | Checkpoint_skipped
  | Candidate_pruned
  | Constraint_learned

let event_index = function
  | Subsumption_try -> 0
  | Subsumption_restart -> 1
  | Subsumption_exhausted -> 2
  | Coverage_truncated -> 3
  | Coverage_memo_hit -> 4
  | Coverage_memo_miss -> 5
  | Coverage_inherited -> 6
  | Beam_cut -> 7
  | Candidate_abandoned -> 8
  | Job_skipped -> 9
  | Worker_fault -> 10
  | Worker_restarted -> 11
  | Job_quarantined -> 12
  | Checkpoint_written -> 13
  | Checkpoint_skipped -> 14
  | Candidate_pruned -> 15
  | Constraint_learned -> 16

let n_events = 17

type t = {
  deadline : float option;  (** absolute, per scope *)
  cancelled : bool Atomic.t;  (** shared across scopes *)
  cells : int Atomic.t array;  (** shared across scopes *)
  job : string option;  (** trace-context label, inherited by scopes *)
  phase : string Atomic.t;  (** last phase note, shared across scopes *)
}

let create ?job ?deadline () =
  {
    deadline = Option.map (fun s -> now () +. s) deadline;
    cancelled = Atomic.make false;
    cells = Array.init n_events (fun _ -> Atomic.make 0);
    job;
    phase = Atomic.make "";
  }

let scope ?deadline parent =
  let own = Option.map (fun s -> now () +. s) deadline in
  let deadline =
    match (parent.deadline, own) with
    | None, d | d, None -> d
    | Some a, Some b -> Some (min a b)
  in
  { deadline; cancelled = parent.cancelled; cells = parent.cells;
    job = parent.job; phase = parent.phase }

let job t = t.job

let set_phase t p = Atomic.set t.phase p

let phase t = Atomic.get t.phase

let deadline_at t = t.deadline

let time_left t = Option.map (fun d -> Float.max 0. (d -. now ())) t.deadline

let cancel t = Atomic.set t.cancelled true

let is_cancelled t = Atomic.get t.cancelled

let past_deadline t =
  match t.deadline with Some d -> now () > d | None -> false

let expired t = is_cancelled t || past_deadline t

(* Chunked so cancellation is honored within ~2ms: a plain [Unix.sleepf]
   holds its caller hostage for the full duration (the pool's retry backoff
   was exactly that), while here an expired budget or a true [stop] ends the
   wait at the next chunk boundary. *)
let sleepf ?budget ?(stop = fun () -> false) duration =
  let until = now () +. duration in
  let chunk = 0.002 in
  let gone () =
    stop () || match budget with Some b -> expired b | None -> false
  in
  let rec loop () =
    let remaining = until -. now () in
    if remaining > 0. && not (gone ()) then begin
      Unix.sleepf (Float.min chunk remaining);
      loop ()
    end
  in
  loop ()

let status t =
  if is_cancelled t then Cancelled
  else if past_deadline t then Deadline_hit
  else Completed

let check t = match status t with Completed -> () | st -> raise (Expired st)

let hit t e = Atomic.incr t.cells.(event_index e)

let add t e n = if n > 0 then ignore (Atomic.fetch_and_add t.cells.(event_index e) n)

let hit_opt b e = Option.iter (fun t -> hit t e) b

type counters = {
  subsumption_tries : int;
  subsumption_restarts : int;
  subsumption_exhausted : int;
  coverage_truncated : int;
  coverage_memo_hits : int;
  coverage_memo_misses : int;
  coverage_inherited : int;
  beam_rounds_cut : int;
  candidates_abandoned : int;
  jobs_skipped : int;
  worker_faults : int;
  workers_restarted : int;
  jobs_quarantined : int;
  checkpoints_written : int;
  checkpoints_skipped : int;
  candidates_pruned : int;
  constraints_learned : int;
}

let counters t =
  let get e = Atomic.get t.cells.(event_index e) in
  {
    subsumption_tries = get Subsumption_try;
    subsumption_restarts = get Subsumption_restart;
    subsumption_exhausted = get Subsumption_exhausted;
    coverage_truncated = get Coverage_truncated;
    coverage_memo_hits = get Coverage_memo_hit;
    coverage_memo_misses = get Coverage_memo_miss;
    coverage_inherited = get Coverage_inherited;
    beam_rounds_cut = get Beam_cut;
    candidates_abandoned = get Candidate_abandoned;
    jobs_skipped = get Job_skipped;
    worker_faults = get Worker_fault;
    workers_restarted = get Worker_restarted;
    jobs_quarantined = get Job_quarantined;
    checkpoints_written = get Checkpoint_written;
    checkpoints_skipped = get Checkpoint_skipped;
    candidates_pruned = get Candidate_pruned;
    constraints_learned = get Constraint_learned;
  }

let zero =
  {
    subsumption_tries = 0;
    subsumption_restarts = 0;
    subsumption_exhausted = 0;
    coverage_truncated = 0;
    coverage_memo_hits = 0;
    coverage_memo_misses = 0;
    coverage_inherited = 0;
    beam_rounds_cut = 0;
    candidates_abandoned = 0;
    jobs_skipped = 0;
    worker_faults = 0;
    workers_restarted = 0;
    jobs_quarantined = 0;
    checkpoints_written = 0;
    checkpoints_skipped = 0;
    candidates_pruned = 0;
    constraints_learned = 0;
  }

let counters_leq a b =
  a.subsumption_tries <= b.subsumption_tries
  && a.subsumption_restarts <= b.subsumption_restarts
  && a.subsumption_exhausted <= b.subsumption_exhausted
  && a.coverage_truncated <= b.coverage_truncated
  && a.coverage_memo_hits <= b.coverage_memo_hits
  && a.coverage_memo_misses <= b.coverage_memo_misses
  && a.coverage_inherited <= b.coverage_inherited
  && a.beam_rounds_cut <= b.beam_rounds_cut
  && a.candidates_abandoned <= b.candidates_abandoned
  && a.jobs_skipped <= b.jobs_skipped
  && a.worker_faults <= b.worker_faults
  && a.workers_restarted <= b.workers_restarted
  && a.jobs_quarantined <= b.jobs_quarantined
  && a.checkpoints_written <= b.checkpoints_written
  && a.checkpoints_skipped <= b.checkpoints_skipped
  && a.candidates_pruned <= b.candidates_pruned
  && a.constraints_learned <= b.constraints_learned

let counters_to_assoc c =
  [
    ("subsumption_tries", c.subsumption_tries);
    ("subsumption_restarts", c.subsumption_restarts);
    ("subsumption_exhausted", c.subsumption_exhausted);
    ("coverage_truncated", c.coverage_truncated);
    ("coverage_memo_hits", c.coverage_memo_hits);
    ("coverage_memo_misses", c.coverage_memo_misses);
    ("coverage_inherited", c.coverage_inherited);
    ("beam_rounds_cut", c.beam_rounds_cut);
    ("candidates_abandoned", c.candidates_abandoned);
    ("jobs_skipped", c.jobs_skipped);
    ("worker_faults", c.worker_faults);
    ("workers_restarted", c.workers_restarted);
    ("jobs_quarantined", c.jobs_quarantined);
    ("checkpoints_written", c.checkpoints_written);
    ("checkpoints_skipped", c.checkpoints_skipped);
    ("candidates_pruned", c.candidates_pruned);
    ("constraints_learned", c.constraints_learned);
  ]

(* The event behind each [counters_to_assoc] name — what lets a resumed run
   re-credit the counters a checkpoint recorded onto its own budget. *)
let event_of_name = function
  | "subsumption_tries" -> Some Subsumption_try
  | "subsumption_restarts" -> Some Subsumption_restart
  | "subsumption_exhausted" -> Some Subsumption_exhausted
  | "coverage_truncated" -> Some Coverage_truncated
  | "coverage_memo_hits" -> Some Coverage_memo_hit
  | "coverage_memo_misses" -> Some Coverage_memo_miss
  | "coverage_inherited" -> Some Coverage_inherited
  | "beam_rounds_cut" -> Some Beam_cut
  | "candidates_abandoned" -> Some Candidate_abandoned
  | "jobs_skipped" -> Some Job_skipped
  | "worker_faults" -> Some Worker_fault
  | "workers_restarted" -> Some Worker_restarted
  | "jobs_quarantined" -> Some Job_quarantined
  | "checkpoints_written" -> Some Checkpoint_written
  | "checkpoints_skipped" -> Some Checkpoint_skipped
  | "candidates_pruned" -> Some Candidate_pruned
  | "constraints_learned" -> Some Constraint_learned
  | _ -> None

let add_assoc t kvs =
  List.iter
    (fun (name, n) ->
      match event_of_name name with Some e -> add t e n | None -> ())
    kvs

(* Zero counters are elided: a clean `--deadline` run prints "no degradation
   events" instead of a wall of zeroes. *)
let pp_counters ppf c =
  match List.filter (fun (_, v) -> v <> 0) (counters_to_assoc c) with
  | [] -> Fmt.pf ppf "no degradation events"
  | nonzero ->
      Fmt.pf ppf "%a"
        Fmt.(list ~sep:(any "; ") (fun ppf (k, v) -> Fmt.pf ppf "%s %d" k v))
        nonzero

type degradation = {
  status : status;
  counters : counters;
}

let degradation ?status:st t =
  { status = (match st with Some s -> s | None -> status t);
    counters = counters t }

let pp_degradation ppf d =
  Fmt.pf ppf "%s (%a)" (status_to_string d.status) pp_counters d.counters

let degradation_to_string d = Fmt.str "%a" pp_degradation d
