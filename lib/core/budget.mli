(** Resource governance for the learner: a deadline, a cooperative
    cancellation token, and degradation counters — the contract that makes
    every learning entry point {e anytime}: a call always returns within its
    deadline with the best answer found so far, and reports exactly how
    degraded that answer is.

    A [Budget.t] is cheap to share: the cancellation flag and the counters
    are atomics, safe to touch from any domain (pool workers check the flag
    between jobs; {!Subsumption} and {!Coverage} bump counters from inside
    coverage tests). {!scope} derives a child budget with a tighter deadline
    that still shares the parent's flag and counters — one token cancels a
    whole cross-validation run, while each fold keeps its own per-fold
    deadline. *)

type t

(** Why a run ended. [Completed] means no resource limit fired. *)
type status = Completed | Deadline_hit | Cancelled

val equal_status : status -> status -> bool
val status_to_string : status -> string
val pp_status : Format.formatter -> status -> unit

exception Expired of status
(** Raised by {!check}; never [Expired Completed]. *)

(** [create ?job ?deadline ()] is a fresh budget; [deadline] is wall-clock
    seconds from now ([None] = unbounded). [job] is an opaque trace-context
    label (e.g. the daemon's ["job-3"]) carried by the budget so every layer
    the budget reaches — pool workers, the learner, the tracer — can tag
    its telemetry with the owning job. *)
val create : ?job:string -> ?deadline:float -> unit -> t

(** [scope ?deadline parent] is a child budget sharing [parent]'s
    cancellation flag, counters, job label and phase cell, whose deadline is
    the earlier of [parent]'s and now + [deadline]. Cancelling either
    cancels both. *)
val scope : ?deadline:float -> t -> t

(** [job t] is the trace-context label minted at {!create}. *)
val job : t -> string option

(** [set_phase t p] notes the phase the budget's owner is currently in
    (["beam_step 2"], ["reduce"], …). One atomic store; shared across
    {!scope} children so a daemon can read a job's live phase from another
    domain. *)
val set_phase : t -> string -> unit

(** [phase t] is the last phase note ([""] before any {!set_phase}). *)
val phase : t -> string

(** [now ()] is a monotonized [Unix.gettimeofday]: the value never
    decreases across calls, even if the system clock steps backwards. *)
val now : unit -> float

(** [deadline_at t] is the absolute expiry time, if any. *)
val deadline_at : t -> float option

(** [time_left t] is the seconds until the deadline, clamped at [0.];
    [None] when unbounded. *)
val time_left : t -> float option

(** [cancel t] sets the (shared) cancellation flag. Idempotent, safe from
    any domain. Cooperative: running jobs finish, no new work starts. *)
val cancel : t -> unit

val is_cancelled : t -> bool

(** [expired t] — cancelled, or past the deadline. *)
val expired : t -> bool

(** [status t] — [Cancelled] wins over [Deadline_hit] wins over
    [Completed]. *)
val status : t -> status

(** [check t] raises {!Expired} when [expired t]. *)
val check : t -> unit

(** [sleepf ?budget ?stop d] sleeps [d] seconds in small chunks, returning
    early as soon as [budget] is expired/cancelled or [stop ()] is true —
    the budget-respecting replacement for [Unix.sleepf] in retry-backoff
    loops, so a cancelled job is never held hostage by its own backoff. *)
val sleepf : ?budget:t -> ?stop:(unit -> bool) -> float -> unit

(** {1 Degradation counters}

    Every counter is monotone non-decreasing and shared across {!scope}
    children. Components report {e how} they degraded the answer instead of
    silently under-approximating. *)

type event =
  | Subsumption_try  (** one budgeted backtracking attempt started *)
  | Subsumption_restart  (** a randomized restart after budget exhaustion *)
  | Subsumption_exhausted
      (** every restart ran out of nodes: the test {e gave up} (answered
          "no" without proving it) rather than proved no subsumption *)
  | Coverage_truncated
      (** a substitution frontier overflowed its cap and was subsampled *)
  | Coverage_memo_hit
      (** a coverage verdict was served from the memo table without running
          a subsumption test *)
  | Coverage_memo_miss
      (** a coverage verdict had to be computed (and was then memoized) *)
  | Coverage_inherited
      (** a coverage verdict was inherited from a parent clause by ARMG
          monotonicity, without running a subsumption test *)
  | Beam_cut  (** a beam search was cut by a deadline before converging *)
  | Candidate_abandoned
      (** a generated candidate clause was never evaluated *)
  | Job_skipped  (** a parallel job slot skipped after expiry *)
  | Worker_fault  (** a pool worker dropped an exception during the run *)
  | Worker_restarted
      (** a crashed worker domain was replaced by the pool's supervisor *)
  | Job_quarantined
      (** a job was quarantined after repeatedly killing its worker *)
  | Checkpoint_written  (** a learner checkpoint was written at a boundary *)
  | Checkpoint_skipped
      (** a checkpoint write was skipped (injected fault or I/O error); the
          run continues, the previous checkpoint survives *)
  | Candidate_pruned
      (** a candidate clause was rejected by the failure-constraint store
          without running a single coverage test *)
  | Constraint_learned
      (** a blocked coverage verdict was turned into a reusable
          failure-constraint signature in the prune store *)

(** [hit t e] bumps [e]'s counter by one. Lock-free. *)
val hit : t -> event -> unit

(** [add t e n] bumps [e]'s counter by [n]. *)
val add : t -> event -> int -> unit

(** [hit_opt b e] is [hit] through an optional budget (no-op on [None]) —
    the shape the [?budget] threading uses. *)
val hit_opt : t option -> event -> unit

(** [add_assoc t kvs] credits counters by their {!counters_to_assoc} names
    (unknown names are ignored) — how a resumed run restores the counters
    its checkpoint recorded. *)
val add_assoc : t -> (string * int) list -> unit

type counters = {
  subsumption_tries : int;
  subsumption_restarts : int;
  subsumption_exhausted : int;
  coverage_truncated : int;
  coverage_memo_hits : int;
  coverage_memo_misses : int;
  coverage_inherited : int;
  beam_rounds_cut : int;
  candidates_abandoned : int;
  jobs_skipped : int;
  worker_faults : int;
  workers_restarted : int;
  jobs_quarantined : int;
  checkpoints_written : int;
  checkpoints_skipped : int;
  candidates_pruned : int;
  constraints_learned : int;
}

(** [counters t] is a consistent-enough snapshot (each cell is read
    atomically; cells are independent). *)
val counters : t -> counters

val zero : counters

(** [counters_leq a b] — every counter of [a] is [<=] its counter in [b]
    (the monotonicity the qcheck property asserts). *)
val counters_leq : counters -> counters -> bool

(** [counters_to_assoc c] is every counter as [(snake_case_name, value)], in
    declaration order — the shape JSON exporters ({!Obs.Run_report}, the
    bench harness) reuse. *)
val counters_to_assoc : counters -> (string * int) list

(** [pp_counters ppf c] prints only the nonzero counters ("no degradation
    events" when all are zero), keeping [--deadline] CLI output readable. *)
val pp_counters : Format.formatter -> counters -> unit

(** {1 Degradation record} — how a finished run should be read. *)

type degradation = {
  status : status;
  counters : counters;
}

(** [degradation ?status t] snapshots [t]; [status] defaults to
    [status t] but callers that captured {e why} their loop exited pass it
    explicitly (a deadline elapsing a microsecond after natural completion
    must still read [Completed]). *)
val degradation : ?status:status -> t -> degradation

val pp_degradation : Format.formatter -> degradation -> unit
val degradation_to_string : degradation -> string
