(** AutoBias — the paper's system, end to end.

    This facade ties the substrates together: given a {!Datasets.Dataset.t}
    (or your own database + examples), pick a {e bias-setting method} and a
    {e sampling strategy}, and learn a Horn definition of the target
    relation. The five methods are the columns of Table 5:

    - {!Castor}: no real bias — one universal type, every attribute may be a
      variable or a constant;
    - {!No_const}: universal type, constants forbidden;
    - {!Manual}: the expert-written bias shipped with the dataset;
    - {!Foil}: top-down FOIL (the Aleph emulation), using the manual bias;
    - {!Auto_bias}: the paper's contribution — bias induced from exact and
      approximate INDs (type graph) and attribute cardinalities
      (constant-threshold). *)

type method_ =
  | Castor
  | No_const
  | Manual
  | Foil
  | Auto_bias
[@@deriving eq, show { with_path = false }]

let method_to_string = function
  | Castor -> "castor"
  | No_const -> "noconst"
  | Manual -> "manual"
  | Foil -> "aleph"
  | Auto_bias -> "autobias"

let method_of_string = function
  | "castor" -> Castor
  | "noconst" -> No_const
  | "manual" -> Manual
  | "aleph" | "foil" -> Foil
  | "autobias" -> Auto_bias
  | s -> invalid_arg ("Autobias.method_of_string: " ^ s)

let all_methods = [ Castor; No_const; Manual; Foil; Auto_bias ]

type config = {
  strategy : Sampling.Strategy.t;
  bc_depth : int;
  sample_size : int;
  max_body_literals : int;
  beam_width : int;
  generalization_sample : int;
  min_positives : int;
  min_precision : float;
  max_clauses : int;
  timeout : float option;  (** per learning run (per fold) *)
  constant_threshold : Discovery.Generate.threshold;
  ind_max_error : float;  (** α for approximate INDs *)
  use_approximate_inds : bool;  (** ablation knob; the paper always uses them *)
  subsumption : Logic.Subsumption.config;
  coverage_cache : bool;
      (** memoize coverage verdicts in the scoring context (default [true]);
          verdicts are pure, so results are identical either way —
          [false] ([--no-coverage-cache]) exists for A/B measurement *)
  compiled_eval : bool;
      (** evaluate coverage through the int-coded compiled kernel (default
          [true]); bit-identical to the symbolic frontier engine —
          [false] ([--no-compiled-eval]) is the escape hatch / A/B baseline *)
  pruning : bool;
      (** learn failure constraints from rejected candidates and probe them
          before evaluating (default [true]); verdict-preserving, so the
          learned definition is bit-identical either way — [false]
          ([--no-prune]) is the escape hatch / A/B baseline. Only active
          together with [compiled_eval] (signatures are compiled-key
          prefixes). *)
  budget : Budget.t option;
      (** run governance: cancelling it stops any learning entry point
          cooperatively; its counters aggregate across folds. Each run still
          scopes its own [timeout]-bounded child. [None] = private budgets. *)
  pool : Parallel.Pool.t option;
      (** domain pool threaded into the learner's hot paths (candidate
          evaluation, acceptance counting, CV folds); [None] = sequential *)
  checkpoint : (Resilience.Checkpoint.t -> [ `Written | `Skipped ]) option;
      (** checkpoint sink threaded to {!Learning.Learn} (clause-boundary
          snapshots); [None] disables checkpointing *)
  checkpoint_every : int;  (** boundary stride for the sink (min 1) *)
  fingerprint : string;  (** stamped into checkpoints; see {!fingerprint} *)
  resume : Resilience.Checkpoint.t option;
      (** resume the learner from a prior snapshot (validate it first) *)
}

(** Defaults follow Section 6.1: ≤20 tuples per mode, constant-threshold
    18% (relative), approximate-IND error 50%, naive sampling. *)
let default_config =
  {
    strategy = Sampling.Strategy.Naive;
    bc_depth = 2;
    sample_size = 20;
    max_body_literals = 400;
    beam_width = 3;
    generalization_sample = 10;
    min_positives = 2;
    min_precision = 0.7;
    max_clauses = 20;
    timeout = Some 120.;
    constant_threshold = Discovery.Generate.Relative 0.18;
    ind_max_error = 0.5;
    use_approximate_inds = true;
    subsumption = Logic.Subsumption.default_config;
    coverage_cache = true;
    compiled_eval = true;
    pruning = true;
    budget = None;
    pool = None;
    checkpoint = None;
    checkpoint_every = 1;
    fingerprint = "";
    resume = None;
  }

(** [fingerprint ~dataset ~method_ config ~seed] digests everything that
    determines a learning run's trajectory — dataset identity, method,
    sampling strategy, the learner knobs and the seed — into a short hex
    string. Stamped into checkpoints so {!Resilience.Checkpoint.validate}
    can reject a resume against a different run setup. *)
let fingerprint ~dataset ~method_ config ~seed =
  Resilience.Checkpoint.fingerprint_of_strings
    [
      dataset;
      method_to_string method_;
      Sampling.Strategy.to_string config.strategy;
      string_of_int config.bc_depth;
      string_of_int config.sample_size;
      string_of_int config.max_body_literals;
      string_of_int config.beam_width;
      string_of_int config.generalization_sample;
      string_of_int config.min_positives;
      Printf.sprintf "%.6f" config.min_precision;
      string_of_int config.max_clauses;
      string_of_int seed;
    ]

type bias_info = {
  bias : Bias.Language.t;
  induction : Discovery.Generate.result option;
      (** present only for {!Auto_bias} *)
  bias_time : float;  (** seconds spent producing the bias *)
}

(** [bias_for method_ config dataset ~train_pos] produces the language bias a
    method uses. For {!Auto_bias} this runs the full Section 3 pipeline (IND
    discovery over the database plus the training positives, type graph,
    predicate/mode generation); the others are instantaneous. *)
let bias_for method_ config (dataset : Datasets.Dataset.t) ~train_pos =
  Obs.Trace.span ~cat:"discovery" "bias_for" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let schema = Relational.Database.schema dataset.Datasets.Dataset.db in
  let target = dataset.Datasets.Dataset.target in
  let finish bias induction =
    { bias; induction; bias_time = Unix.gettimeofday () -. t0 }
  in
  match method_ with
  | Castor -> finish (Bias.Language.castor ~schema ~target) None
  | No_const -> finish (Bias.Language.no_const ~schema ~target) None
  | Manual | Foil -> finish dataset.Datasets.Dataset.manual_bias None
  | Auto_bias ->
      let ind_config =
        { Discovery.Ind.default_config with
          max_error = (if config.use_approximate_inds then config.ind_max_error else 0.);
        }
      in
      let result =
        Discovery.Generate.induce ~ind_config
          ~threshold:config.constant_threshold dataset.Datasets.Dataset.db
          ~target ~positive_examples:train_pos
      in
      finish result.Discovery.Generate.bias (Some result)

let bc_config config =
  {
    Learning.Bottom_clause.depth = config.bc_depth;
    sample_size = config.sample_size;
    strategy = config.strategy;
    max_body_literals = config.max_body_literals;
  }

let learn_config config =
  {
    Learning.Learn.bc = bc_config config;
    subsumption = config.subsumption;
    beam_width = config.beam_width;
    generalization_sample = config.generalization_sample;
    max_beam_steps = 8;
    eval_positives = Learning.Learn.default_config.Learning.Learn.eval_positives;
    eval_negatives = Learning.Learn.default_config.Learning.Learn.eval_negatives;
    min_positives = config.min_positives;
    min_precision = config.min_precision;
    max_clauses = config.max_clauses;
    clause_timeout = Learning.Learn.default_config.Learning.Learn.clause_timeout;
    max_consecutive_skips =
      Learning.Learn.default_config.Learning.Learn.max_consecutive_skips;
    timeout = config.timeout;
    budget = config.budget;
    pool = config.pool;
    checkpoint = config.checkpoint;
    checkpoint_every = config.checkpoint_every;
    fingerprint = config.fingerprint;
    resume = config.resume;
  }

let foil_config config =
  {
    Baselines.Foil.default_config with
    min_positives = config.min_positives;
    min_precision = config.min_precision;
    max_clauses = config.max_clauses;
    timeout = config.timeout;
  }

(** [coverage_context config dataset bias] builds the coverage-testing
    context (ground bottom clauses are cached inside it). *)
let coverage_context config (dataset : Datasets.Dataset.t) bias ~rng =
  Learning.Coverage.create ~sub_config:config.subsumption
    ~bc_config:(bc_config config) ~use_cache:config.coverage_cache
    ~use_compiled:config.compiled_eval ~use_pruning:config.pruning
    dataset.Datasets.Dataset.db bias ~rng

type run_result = {
  definition : Logic.Clause.definition;
  bias_info : bias_info;
  learn_time : float;
  timed_out : bool;
  degradation : Budget.degradation option;
      (** budget accounting for the run; [None] only for the {!Foil}
          baseline, which predates the governance layer *)
  prune : Learning.Coverage.prune_stats option;
      (** failure-constraint store traffic for the run's coverage context;
          [None] when pruning is off *)
}

(** [learn_once ?config method_ dataset ~rng ~train_pos ~train_neg] learns a
    definition on one training split. *)
let learn_once ?(config = default_config) method_ dataset ~rng ~train_pos
    ~train_neg =
  Obs.Trace.span ~cat:"learn"
    ~args:[ ("method", method_to_string method_) ]
    "learn_once"
  @@ fun () ->
  let bias_info = bias_for method_ config dataset ~train_pos in
  let cov = coverage_context config dataset bias_info.bias ~rng in
  let t0 = Unix.gettimeofday () in
  let definition, timed_out, degradation =
    match method_ with
    | Foil ->
        let r = Baselines.Foil.learn ~config:(foil_config config) cov
            ~positives:train_pos ~negatives:train_neg
        in
        (r.Baselines.Foil.definition, r.Baselines.Foil.timed_out, None)
    | Castor | No_const | Manual | Auto_bias ->
        let r =
          Learning.Learn.learn ~config:(learn_config config) cov ~rng
            ~positives:train_pos ~negatives:train_neg
        in
        ( r.Learning.Learn.definition,
          r.Learning.Learn.stats.Learning.Learn.timed_out,
          Some r.Learning.Learn.degradation )
  in
  {
    definition;
    bias_info;
    learn_time = Unix.gettimeofday () -. t0;
    timed_out;
    degradation;
    prune =
      (if Learning.Coverage.pruning_enabled cov then
         Some (Learning.Coverage.prune_stats cov)
       else None);
  }

(** [cross_validate ?config ?k method_ dataset ~seed] runs the dataset's
    k-fold protocol for one method and returns the averaged result (one cell
    group of Table 5). The bias is induced once per fold from that fold's
    training positives, like the paper's per-run preprocessing. *)
let cross_validate ?(config = default_config) ?k method_
    (dataset : Datasets.Dataset.t) ~seed =
  let k = Option.value k ~default:dataset.Datasets.Dataset.folds in
  let rng = Random.State.make [| seed; Hashtbl.hash (method_to_string method_) |] in
  (* Scoring context: same bias family as the learner, built on the full
     training bias of the first fold; ground BCs depend only on bias +
     database, not on labels, so sharing one scoring context is sound. *)
  let score_bias =
    (bias_for method_ config dataset ~train_pos:dataset.Datasets.Dataset.positives).bias
  in
  let score_cov = coverage_context config dataset score_bias ~rng in
  let learner =
    {
      Evaluation.Cross_validation.name = method_to_string method_;
      run =
        (fun ~rng ~train_pos ~train_neg ->
          let r = learn_once ~config method_ dataset ~rng ~train_pos ~train_neg in
          (r.definition, r.timed_out));
    }
  in
  Evaluation.Cross_validation.run ?pool:config.pool ~k learner score_cov ~rng
    ~positives:dataset.Datasets.Dataset.positives
    ~negatives:dataset.Datasets.Dataset.negatives
