(** AutoBias — the paper's system, end to end: pick a bias-setting method
    and a sampling strategy, and learn a Horn definition of a dataset's
    target relation. The five methods are the columns of Table 5. *)

(** How the language bias is obtained. *)
type method_ =
  | Castor  (** no real bias: one universal type, constants everywhere *)
  | No_const  (** universal type, constants forbidden *)
  | Manual  (** the expert-written bias shipped with the dataset *)
  | Foil  (** top-down FOIL (the Aleph emulation), on the manual bias *)
  | Auto_bias  (** the paper's contribution: bias induced from the data *)

val equal_method_ : method_ -> method_ -> bool
val pp_method_ : Format.formatter -> method_ -> unit
val method_to_string : method_ -> string

(** @raise Invalid_argument on unknown names. Accepts "castor", "noconst",
    "manual", "aleph"/"foil", "autobias". *)
val method_of_string : string -> method_

val all_methods : method_ list

type config = {
  strategy : Sampling.Strategy.t;
  bc_depth : int;  (** bottom-clause iterations d *)
  sample_size : int;  (** tuples per mode (paper: 20) *)
  max_body_literals : int;
  beam_width : int;
  generalization_sample : int;
  min_positives : int;
  min_precision : float;
  max_clauses : int;
  timeout : float option;  (** per learning run / per fold *)
  constant_threshold : Discovery.Generate.threshold;  (** paper: Relative 0.18 *)
  ind_max_error : float;  (** α for approximate INDs (paper: 0.5) *)
  use_approximate_inds : bool;  (** ablation knob; the paper always uses them *)
  subsumption : Logic.Subsumption.config;
  coverage_cache : bool;
      (** memoize coverage verdicts (default [true]); verdicts are pure, so
          learned definitions are identical either way — [false] exists for
          A/B measurement ([--no-coverage-cache]) *)
  compiled_eval : bool;
      (** evaluate coverage through the int-coded compiled kernel (default
          [true]); bit-identical to the symbolic engine — [false]
          ([--no-compiled-eval]) is the escape hatch / A/B baseline *)
  pruning : bool;
      (** learn failure constraints from rejected candidates and probe them
          before evaluating (default [true]); verdict-preserving, so learned
          definitions are bit-identical either way — [false] ([--no-prune])
          is the escape hatch / A/B baseline. Only active together with
          [compiled_eval]. *)
  budget : Budget.t option;
      (** run governance (deadline + cancellation + degradation counters):
          cancelling it stops any learning entry point cooperatively; each
          run still scopes its own [timeout]-bounded child. [None] (the
          default) gives every run a private budget. *)
  pool : Parallel.Pool.t option;
      (** domain pool threaded into the learner's hot paths (candidate
          evaluation, acceptance counting, CV folds); [None] = sequential.
          Learned definitions are identical for every pool size. *)
  checkpoint : (Resilience.Checkpoint.t -> [ `Written | `Skipped ]) option;
      (** clause-boundary checkpoint sink threaded to the learner
          ([--checkpoint FILE] partially applies
          {!Resilience.Checkpoint.save}); [None] (the default) disables
          checkpointing *)
  checkpoint_every : int;
      (** invoke the sink every [n]-th clause boundary (min 1; default 1) *)
  fingerprint : string;
      (** run-setup digest stamped into checkpoints (see {!fingerprint});
          [""] (the default) stamps nothing *)
  resume : Resilience.Checkpoint.t option;
      (** resume the learner from a validated prior snapshot; the resumed
          run is bit-identical to the uninterrupted one at the same seed *)
}

(** Defaults follow Section 6.1. *)
val default_config : config

(** [fingerprint ~dataset ~method_ config ~seed] digests the run setup
    (dataset name, method, strategy, learner knobs, seed) into a short hex
    string for {!Resilience.Checkpoint.validate}. *)
val fingerprint : dataset:string -> method_:method_ -> config -> seed:int -> string

type bias_info = {
  bias : Bias.Language.t;
  induction : Discovery.Generate.result option;  (** only for {!Auto_bias} *)
  bias_time : float;  (** seconds spent producing the bias *)
}

(** [bias_for method_ config dataset ~train_pos] produces a method's
    language bias; for {!Auto_bias} this runs the full Section 3 pipeline
    over the database plus [train_pos]. *)
val bias_for :
  method_ ->
  config ->
  Datasets.Dataset.t ->
  train_pos:Relational.Relation.tuple list ->
  bias_info

(** Plumbing between {!config} and the per-library config records. *)
val bc_config : config -> Learning.Bottom_clause.config

val learn_config : config -> Learning.Learn.config
val foil_config : config -> Baselines.Foil.config

(** [coverage_context config dataset bias ~rng] builds the coverage-testing
    context (ground bottom clauses cached inside). *)
val coverage_context :
  config -> Datasets.Dataset.t -> Bias.Language.t -> rng:Random.State.t ->
  Learning.Coverage.t

type run_result = {
  definition : Logic.Clause.definition;
  bias_info : bias_info;
  learn_time : float;
  timed_out : bool;
  degradation : Budget.degradation option;
      (** budget accounting; [None] only for the {!Foil} baseline *)
  prune : Learning.Coverage.prune_stats option;
      (** failure-constraint store traffic (probes / hits / constraints)
          for the run's coverage context; [None] when pruning is off *)
}

(** [learn_once ?config method_ dataset ~rng ~train_pos ~train_neg] learns a
    definition on one training split. *)
val learn_once :
  ?config:config ->
  method_ ->
  Datasets.Dataset.t ->
  rng:Random.State.t ->
  train_pos:Relational.Relation.tuple list ->
  train_neg:Relational.Relation.tuple list ->
  run_result

(** [cross_validate ?config ?k method_ dataset ~seed] runs the dataset's
    k-fold protocol for one method (one cell group of Table 5); the bias is
    induced per fold from that fold's training positives. *)
val cross_validate :
  ?config:config ->
  ?k:int ->
  method_ ->
  Datasets.Dataset.t ->
  seed:int ->
  Evaluation.Cross_validation.result
