(** Versioned learner checkpoints. See checkpoint.mli for the contract.

    A checkpoint captures the covering loop's complete state at a clause
    boundary: the definition so far, which original positives remain
    uncovered (as indices, so the snapshot is small and re-anchors against
    the caller's example list on resume), the skip counters, and the
    learner RNG — the one piece that makes resumption {e bit-identical}:
    every random draw the continuation will make is determined by it.

    Serialization is an {!Obs.Json} object. The two stateful payloads —
    the [Random.State.t] and the learned clauses — ride inside it as
    hex-encoded [Marshal] blobs: JSON for everything a human or CI smoke
    wants to read (the clauses also appear as printed strings), Marshal
    where bit-exactness matters (re-parsing a printed clause only
    guarantees alpha-equivalence; resuming must restore the {e same}
    term structure the uninterrupted run holds). The [version] field
    gates the Marshal payloads: a checkpoint from a different format
    version is rejected before any unmarshalling. *)

module Json = Obs.Json

type t = {
  version : int;
  fingerprint : string;
  boundary : int;
  definition : Logic.Clause.definition;
  uncovered : int list;
  seeds_skipped : int;
  consecutive_skips : int;
  candidates_evaluated : int;
  rng : Random.State.t;
  counters : (string * int) list;
  elapsed_s : float;
  constraints : string;
      (** opaque failure-constraint store payload (producer-defined;
          [""] = none) — resumed runs keep their pruning power *)
}

(* v2: the embedded failure-constraint store ([constraints]). Older
   snapshots are refused by the version gate below, never reinterpreted. *)
let version = 2

let fingerprint_of_strings parts =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* {2 hex-encoded Marshal blobs} *)

let hex_encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let hex_decode s =
  if String.length s mod 2 <> 0 then failwith "odd-length hex string"
  else
    String.init
      (String.length s / 2)
      (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let marshal_hex v = hex_encode (Marshal.to_string v [])

let unmarshal_hex s = Marshal.from_string (hex_decode s) 0

(* {2 JSON} *)

let to_json t =
  Json.Obj
    [
      ("version", Json.Int t.version);
      ("fingerprint", Json.Str t.fingerprint);
      ("boundary", Json.Int t.boundary);
      (* human-readable view; restore uses the marshal blob below *)
      ( "definition",
        Json.List
          (List.map (fun c -> Json.Str (Logic.Clause.to_string c)) t.definition)
      );
      ("definition_bin", Json.Str (marshal_hex t.definition));
      ("uncovered", Json.List (List.map (fun i -> Json.Int i) t.uncovered));
      ("seeds_skipped", Json.Int t.seeds_skipped);
      ("consecutive_skips", Json.Int t.consecutive_skips);
      ("candidates_evaluated", Json.Int t.candidates_evaluated);
      ("rng", Json.Str (marshal_hex t.rng));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters) );
      ("elapsed_s", Json.Float t.elapsed_s);
      (* opaque bytes; hex keeps the file valid JSON *)
      ("constraints", Json.Str (hex_encode t.constraints));
    ]

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing field %S" name)

let int_field name j =
  match field name j with
  | Ok (Json.Int i) -> Ok i
  | Ok _ -> Error (Printf.sprintf "checkpoint: field %S is not an int" name)
  | Error _ as e -> e

let str_field name j =
  match field name j with
  | Ok (Json.Str s) -> Ok s
  | Ok _ -> Error (Printf.sprintf "checkpoint: field %S is not a string" name)
  | Error _ as e -> e

let ( let* ) = Result.bind

let of_json j =
  let* v = int_field "version" j in
  if v <> version then
    Error
      (Printf.sprintf
         "checkpoint version mismatch: file has v%d, this binary reads v%d" v
         version)
  else
    let* fingerprint = str_field "fingerprint" j in
    let* boundary = int_field "boundary" j in
    let* def_bin = str_field "definition_bin" j in
    let* uncovered =
      match field "uncovered" j with
      | Ok (Json.List l) ->
          List.fold_left
            (fun acc x ->
              match (acc, x) with
              | Ok is, Json.Int i -> Ok (i :: is)
              | Ok _, _ -> Error "checkpoint: non-int uncovered index"
              | (Error _ as e), _ -> e)
            (Ok []) l
          |> Result.map List.rev
      | Ok _ -> Error "checkpoint: field \"uncovered\" is not a list"
      | Error _ as e -> e
    in
    let* seeds_skipped = int_field "seeds_skipped" j in
    let* consecutive_skips = int_field "consecutive_skips" j in
    let* candidates_evaluated = int_field "candidates_evaluated" j in
    let* rng_hex = str_field "rng" j in
    let* counters =
      match field "counters" j with
      | Ok (Json.Obj kvs) ->
          List.fold_left
            (fun acc (k, x) ->
              match (acc, x) with
              | Ok l, Json.Int i -> Ok ((k, i) :: l)
              | Ok _, _ -> Error "checkpoint: non-int counter"
              | (Error _ as e), _ -> e)
            (Ok []) kvs
          |> Result.map List.rev
      | Ok _ -> Error "checkpoint: field \"counters\" is not an object"
      | Error _ as e -> e
    in
    let* elapsed_s =
      match field "elapsed_s" j with
      | Ok (Json.Float f) -> Ok f
      | Ok (Json.Int i) -> Ok (float_of_int i)
      | Ok _ -> Error "checkpoint: field \"elapsed_s\" is not a number"
      | Error _ as e -> e
    in
    let* constraints_hex = str_field "constraints" j in
    match
      ( (unmarshal_hex def_bin : Logic.Clause.definition),
        (unmarshal_hex rng_hex : Random.State.t),
        hex_decode constraints_hex )
    with
    | definition, rng, constraints ->
        Ok
          {
            version = v;
            fingerprint;
            boundary;
            definition;
            uncovered;
            seeds_skipped;
            consecutive_skips;
            candidates_evaluated;
            rng;
            counters;
            elapsed_s;
            constraints;
          }
    | exception e ->
        Error ("checkpoint: corrupt marshal payload: " ^ Printexc.to_string e)

let validate ~fingerprint t =
  if fingerprint = "" || t.fingerprint = "" || String.equal fingerprint t.fingerprint
  then Ok ()
  else
    Error
      (Printf.sprintf
         "checkpoint fingerprint mismatch: file was written by a run \
          configured as %s, this run is %s — refusing to resume"
         t.fingerprint fingerprint)

(* Atomic write (tmp + rename in the target directory), so a crash or an
   injected fault mid-write can never leave a torn checkpoint where a good
   one stood. The "checkpoint" chaos layer gates the whole write: an
   injected fault skips this snapshot — the learner counts it and keeps
   going; the previous checkpoint file survives untouched. *)
let save t path =
  if Chaos.fires "checkpoint" then `Skipped
  else
    match
      let dir = Filename.dirname path in
      let tmp = Filename.temp_file ~temp_dir:dir "checkpoint" ".tmp" in
      Json.write tmp (to_json t);
      Sys.rename tmp path
    with
    | () -> `Written
    | exception _ -> `Skipped

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | exception Sys_error msg -> Error ("checkpoint: cannot read: " ^ msg)
  | contents -> (
      match Json.parse contents with
      | Error msg -> Error ("checkpoint: not valid JSON: " ^ msg)
      | Ok j -> of_json j)
