(** Layer-tagged seeded fault injection. See chaos.mli for the contract.

    This generalizes the pool-only injector the chaos tests started with:
    one injector type (seeded, counter-hashed, scheduling-independent) plus
    a process-global registry keyed by {e layer} name, so CSV loading,
    semi-join sampling, memo lookups, checkpoint I/O and the domain pool can
    each be fault-injected independently. Kept dependency-free (unix only)
    so the bottom-most libraries can tick their layer without cycles.

    Decisions hash (seed, salt, ticket) rather than drawing from a shared
    [Random.State]: callers on different domains take tickets with one
    [fetch_and_add], and the verdict for ticket [k] is a pure function of
    the seed — the fault {e count} is reproducible even though which domain
    draws which ticket is not. *)

type t = {
  p_fault : float;
  p_delay : float;
  delay : float;
  p_kill : float;
  seed : int;
  label : string option;  (** layer name, for the wide-event log *)
  tickets : int Atomic.t;
  injected : int Atomic.t;
  delayed : int Atomic.t;
  killed : int Atomic.t;
}

exception Injected of int
exception Killed of int

let () =
  Printexc.register_printer (function
    | Injected k -> Some (Printf.sprintf "Chaos.Injected (ticket %d)" k)
    | Killed k -> Some (Printf.sprintf "Chaos.Killed (ticket %d)" k)
    | _ -> None)

let clamp01 p = Float.min 1. (Float.max 0. p)

let create ?label ?(p_fault = 0.) ?(p_delay = 0.) ?(delay = 0.001)
    ?(p_kill = 0.) ?(seed = 0) () =
  {
    p_fault = clamp01 p_fault;
    p_delay = clamp01 p_delay;
    delay = Float.max 0. delay;
    p_kill = clamp01 p_kill;
    seed;
    label;
    tickets = Atomic.make 0;
    injected = Atomic.make 0;
    delayed = Atomic.make 0;
    killed = Atomic.make 0;
  }

(* Uniform-ish draw in [0, 1) from the low 24 bits of the structural hash;
   [salt] decouples the delay, kill and fault verdicts of one ticket. Salts
   1 and 2 predate the kill draw — keeping them stable keeps the historical
   injector byte-compatible with the pre-registry chaos tests. *)
let draw t ~salt k =
  float_of_int (Hashtbl.hash (t.seed, salt, k) land 0xFFFFFF) /. 16777216.

(* A firing injector is rare by construction; telling the wide-event log
   about it costs one atomic load when the log is disabled. *)
let fired t kind k =
  Obs.Events.emit "chaos.fired"
    ~fields:
      (("kind", Obs.Json.Str kind)
      :: ("ticket", Obs.Json.Int k)
      :: (match t.label with
         | Some l -> [ ("layer", Obs.Json.Str l) ]
         | None -> []))

let tick t =
  let k = Atomic.fetch_and_add t.tickets 1 in
  if draw t ~salt:1 k < t.p_delay then begin
    Atomic.incr t.delayed;
    fired t "delay" k;
    Unix.sleepf t.delay
  end;
  if draw t ~salt:3 k < t.p_kill then begin
    Atomic.incr t.killed;
    fired t "kill" k;
    raise (Killed k)
  end;
  if draw t ~salt:2 k < t.p_fault then begin
    Atomic.incr t.injected;
    fired t "fault" k;
    raise (Injected k)
  end

let tickets t = Atomic.get t.tickets
let injected t = Atomic.get t.injected
let delayed t = Atomic.get t.delayed
let killed t = Atomic.get t.killed

type counts = { n_tickets : int; n_injected : int; n_delayed : int; n_killed : int }

let counts t =
  {
    n_tickets = tickets t;
    n_injected = injected t;
    n_delayed = delayed t;
    n_killed = killed t;
  }

(* {2 The layer registry}

   An immutable assoc list swapped atomically: the hot sites (one [get] per
   coverage-memo probe) pay one atomic load and, in the common unconfigured
   case, one empty-list check — no lock. Registration is rare (CLI startup,
   test setup) and goes through a CAS loop. *)

let known_layers = [ "pool"; "csv"; "sampling"; "memo"; "checkpoint"; "server" ]

let registry : (string * t) list Atomic.t = Atomic.make []

let get name = List.assoc_opt name (Atomic.get registry)

let active () = List.map fst (Atomic.get registry)

let clear () = Atomic.set registry []

(* Layer seeds are decorrelated so e.g. the csv and memo layers of one run
   do not fire on the same ticket numbers. *)
let layer_seed seed name = Hashtbl.hash (seed, name)

let configure ?(p_kill = 0.) ?(p_delay = 0.) ?(delay = 0.001) ~p_fault ~seed
    layers =
  let layers =
    if List.mem "all" layers then known_layers
    else
      List.map
        (fun l ->
          if List.mem l known_layers then l
          else
            invalid_arg
              (Printf.sprintf "Chaos.configure: unknown layer %S (known: %s)" l
                 (String.concat ", " known_layers)))
        layers
  in
  let make name =
    (* Worker kills only make sense where a worker exists to kill. *)
    let p_kill = if name = "pool" then p_kill else 0. in
    ( name,
      create ~label:name ~p_fault ~p_delay ~delay ~p_kill
        ~seed:(layer_seed seed name) () )
  in
  let rec swap () =
    let prev = Atomic.get registry in
    let kept = List.filter (fun (n, _) -> not (List.mem n layers)) prev in
    let next = List.map make layers @ kept in
    if not (Atomic.compare_and_set registry prev next) then swap ()
  in
  swap ()

let tick_layer name = match get name with None -> () | Some t -> tick t

(* Absorb-style sites (memo bypass, csv row drop, sampling hiccup) want a
   boolean, not an exception — and must never die to a stray kill verdict. *)
let fires name =
  match get name with
  | None -> false
  | Some t -> ( try tick t; false with Injected _ | Killed _ -> true)

let snapshot () =
  List.map (fun (name, t) -> (name, counts t)) (Atomic.get registry)
  |> List.sort compare

let from_env () =
  match Sys.getenv_opt "AUTOBIAS_CHAOS_LAYERS" with
  | None | Some "" -> ()
  | Some layers -> (
      match
        Option.bind (Sys.getenv_opt "AUTOBIAS_CHAOS") float_of_string_opt
      with
      | None -> ()
      | Some p when p <= 0. -> ()
      | Some p ->
          let seed =
            Option.bind (Sys.getenv_opt "AUTOBIAS_CHAOS_SEED") int_of_string_opt
            |> Option.value ~default:0
          in
          let p_kill =
            Option.bind (Sys.getenv_opt "AUTOBIAS_CHAOS_KILL")
              float_of_string_opt
            |> Option.value ~default:0.
          in
          configure ~p_kill ~p_fault:p ~seed
            (String.split_on_char ',' layers
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")))
