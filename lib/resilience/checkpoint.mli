(** Versioned snapshots of sequential-covering progress, written at clause
    boundaries and restored by [--resume] — the checkpoint half of the
    resilient runtime.

    The snapshot carries everything the covering loop needs to continue
    {e bit-identically} to an uninterrupted run at the same seed: the
    clauses learned so far, the indices of the original positives still
    uncovered, the skip/progress counters, the degradation counters, and —
    crucially — the learner's [Random.State.t] at the boundary. The
    container is {!Obs.Json}; the RNG and the clause structures travel as
    hex-encoded [Marshal] blobs inside it (printed clauses only round-trip
    up to alpha-equivalence; bit-identical resumption needs the exact term
    structure), with a printed-clause list alongside for humans and CI
    smoke checks. {!load} refuses files whose [version] differs before
    touching any Marshal payload, and {!validate} refuses checkpoints whose
    config fingerprint does not match the resuming run. *)

type t = {
  version : int;  (** snapshot format version; see {!val-version} *)
  fingerprint : string;
      (** digest of the run configuration (dataset, method, strategy,
          scale, seed, learner knobs) that wrote the snapshot *)
  boundary : int;  (** covering-loop iterations completed *)
  definition : Logic.Clause.definition;  (** accepted clauses, oldest first *)
  uncovered : int list;
      (** indices (into the run's original positive-example list, in
          order) of the examples still uncovered *)
  seeds_skipped : int;
  consecutive_skips : int;
  candidates_evaluated : int;
  rng : Random.State.t;
      (** the learner RNG at the boundary; callers should
          [Random.State.copy] before drawing so one loaded checkpoint can
          seed several resumes *)
  counters : (string * int) list;
      (** {!Budget.counters_to_assoc} snapshot at the boundary *)
  elapsed_s : float;  (** wall-clock spent up to the boundary *)
  constraints : string;
      (** opaque failure-constraint store payload ([""] = none). The
          producer ({!Learning.Coverage}) defines the encoding; resilience
          just carries the bytes (hex-encoded in the JSON), so the
          dependency arrow stays learning → resilience *)
}

(** The snapshot format version this binary reads and writes. v2 added the
    embedded failure-constraint store; older snapshots are refused by
    {!of_json}/{!load} with a version-mismatch error. *)
val version : int

(** [fingerprint_of_strings parts] is a stable hex digest of [parts] — the
    helper run configurations are fingerprinted with. *)
val fingerprint_of_strings : string list -> string

val to_json : t -> Obs.Json.t

(** [of_json j] parses and version-checks a snapshot. *)
val of_json : Obs.Json.t -> (t, string) result

(** [validate ~fingerprint t] checks [t] was written by a run configured
    like the current one. An empty fingerprint on either side matches
    anything (escape hatch for hand-built checkpoints). *)
val validate : fingerprint:string -> t -> (unit, string) result

(** [save t path] writes the snapshot atomically (tmp + rename). Returns
    [`Skipped] without touching [path] when the ["checkpoint"] chaos layer
    fires or the write fails — the previous checkpoint survives; callers
    count the skip and continue. *)
val save : t -> string -> [ `Written | `Skipped ]

(** [load path] reads and parses a snapshot; all failures (unreadable,
    bad JSON, version mismatch, torn payload) come back as [Error]. *)
val load : string -> (t, string) result
