(** Supervision policy: bounded restarts, bounded per-job retries, and
    exponential backoff with seeded jitter. See policy.mli. *)

type t = {
  worker_restarts : int;
  job_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  jitter : float;
  seed : int;
}

let default =
  {
    worker_restarts = 64;
    job_retries = 2;
    backoff_base_s = 0.005;
    backoff_max_s = 0.5;
    jitter = 0.25;
    seed = 0;
  }

(* Same hashed-draw scheme as {!Chaos}: the jitter for (attempt, salt) is a
   pure function of the policy seed, so supervised runs stay reproducible
   and two workers restarting at the same attempt count do not thunder in
   lockstep (their salts differ). *)
let jitter_draw t ~salt attempt =
  float_of_int (Hashtbl.hash (t.seed, salt, attempt) land 0xFFFFFF) /. 16777216.

let backoff t ~attempt ~salt =
  let attempt = max 1 attempt in
  let base =
    Float.min t.backoff_max_s
      (t.backoff_base_s *. Float.pow 2. (float_of_int (attempt - 1)))
  in
  let u = jitter_draw t ~salt attempt in
  Float.max 0. (base *. (1. +. (t.jitter *. (u -. 0.5))))
