(** Layer-tagged seeded fault injection (chaos testing).

    One injector type serves every layer of the stack. An injector
    probabilistically raises {!Injected} (a survivable fault), raises
    {!Killed} (fatal to the calling worker domain — only the pool layer
    ever arms it), or sleeps before the protected operation runs, driven by
    a counter-hashed seeded decision: deterministic per (seed, ticket),
    independent of domain scheduling, and safe to call from any domain.

    On top sits a process-global {e registry} keyed by layer name
    ({!known_layers}: ["pool"], ["csv"], ["sampling"], ["memo"],
    ["checkpoint"], ["server"]), so each layer can be independently fault-injected —
    from the CLI ([--chaos-layers]) or the environment
    ([AUTOBIAS_CHAOS_LAYERS]). Layers that are not configured pay one
    atomic load per probe. *)

type t

exception Injected of int
(** A survivable injected fault; the payload is the ticket number. Call
    sites absorb it into their degradation accounting. *)

exception Killed of int
(** A fatal injected fault: the pool treats it as worker-domain death and
    the supervision machinery (restart / quarantine) takes over. No other
    layer arms it. *)

(** [create ?label ?p_fault ?p_delay ?delay ?p_kill ?seed ()] — [p_fault]
    (default [0.]) is the probability a tick raises {!Injected}, [p_kill]
    (default [0.]) the probability it raises {!Killed} instead, [p_delay]
    (default [0.]) the probability it first sleeps [delay] seconds (default
    [0.001]); [seed] (default [0]) fixes every decision. Probabilities are
    clamped to [\[0, 1\]]. [label] names the injector's layer in the
    ["chaos.fired"] lines it emits to {!Obs.Events} when a verdict fires
    ({!configure} labels registry injectors automatically). *)
val create :
  ?label:string ->
  ?p_fault:float ->
  ?p_delay:float ->
  ?delay:float ->
  ?p_kill:float ->
  ?seed:int ->
  unit ->
  t

(** [tick t] consumes one ticket: possibly sleeps, then possibly raises
    {!Killed}, then possibly raises {!Injected}. Thread-safe. *)
val tick : t -> unit

(** [tickets t] — ticks consumed so far. *)
val tickets : t -> int

(** [injected t] — ticks that raised {!Injected}. *)
val injected : t -> int

(** [delayed t] — ticks that slept. *)
val delayed : t -> int

(** [killed t] — ticks that raised {!Killed}. *)
val killed : t -> int

type counts = {
  n_tickets : int;
  n_injected : int;
  n_delayed : int;
  n_killed : int;
}

val counts : t -> counts

(** {1 The layer registry} *)

(** The layer names {!configure} accepts (plus the wildcard ["all"]). *)
val known_layers : string list

(** [configure ?p_kill ?p_delay ?delay ~p_fault ~seed layers] installs one
    fresh injector per named layer (["all"] = every known layer); layers
    not named keep their current injector. [p_kill] is armed only on the
    ["pool"] layer. Raises [Invalid_argument] on an unknown layer name. *)
val configure :
  ?p_kill:float ->
  ?p_delay:float ->
  ?delay:float ->
  p_fault:float ->
  seed:int ->
  string list ->
  unit

(** [clear ()] removes every configured layer (test teardown). *)
val clear : unit -> unit

(** [get name] is the injector configured for [name], if any. One atomic
    load — cheap enough for per-coverage-test probes. *)
val get : string -> t option

(** [tick_layer name] ticks [name]'s injector; a no-op when the layer is
    not configured. May raise {!Injected} (or {!Killed} on the pool
    layer). *)
val tick_layer : string -> unit

(** [fires name] ticks [name]'s injector and reports whether it fired,
    absorbing the exception — the shape for layers that degrade in place
    (drop a CSV row, bypass a memo probe) rather than propagate. Never
    raises. *)
val fires : string -> bool

(** [active ()] — the configured layer names. *)
val active : unit -> string list

(** [snapshot ()] — per-layer tick/fault counts, sorted by layer name; the
    run report embeds this so a chaos soak is auditable after the fact. *)
val snapshot : unit -> (string * counts) list

(** [from_env ()] configures the registry from the environment:
    [AUTOBIAS_CHAOS_LAYERS] (comma list or ["all"]) gates everything;
    probability from [AUTOBIAS_CHAOS], seed from [AUTOBIAS_CHAOS_SEED]
    (default 0), worker-kill probability from [AUTOBIAS_CHAOS_KILL]
    (default 0, pool layer only). A no-op when unset or unparsable. *)
val from_env : unit -> unit
