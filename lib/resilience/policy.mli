(** Supervision policy for the resilient runtime: how many times crashed
    worker domains are restarted, how many worker deaths a single job may
    cause before it is quarantined, and the backoff curve a replacement
    worker waits on before spawning.

    The pool consults this when a worker domain dies to a fatal fault
    ({!Chaos.Killed}): the poisoned job is retried on another worker up to
    [job_retries] attempts, then quarantined with its backtrace; the dead
    domain is replaced (up to [worker_restarts] times per pool) after an
    exponential-backoff delay with {e seeded} jitter — deterministic given
    the policy seed, so supervised runs remain reproducible. *)

type t = {
  worker_restarts : int;
      (** pool-lifetime cap on worker-domain respawns; once exhausted the
          pool degrades to fewer workers instead of crashing (the caller's
          domain always drains outstanding work itself) *)
  job_retries : int;
      (** worker deaths one job may cause before quarantine; the default 2
          means "a job that kills its worker twice is quarantined" *)
  backoff_base_s : float;  (** delay before the first respawn *)
  backoff_max_s : float;  (** backoff growth cap *)
  jitter : float;
      (** relative jitter amplitude: the delay is scaled by
          [1 + jitter * (u - 0.5)] with a seeded [u] in [0, 1) *)
  seed : int;  (** fixes every jitter draw *)
}

(** 64 restarts, 2 retries, 5ms base doubling to a 500ms cap, ±12.5%
    jitter, seed 0. *)
val default : t

(** [backoff t ~attempt ~salt] is the delay before respawn number
    [attempt] (1-based; clamped up to 1): exponential in [attempt], capped
    at [backoff_max_s], jittered deterministically by (seed, salt,
    attempt). [salt] decorrelates concurrent restarters. *)
val backoff : t -> attempt:int -> salt:int -> float
