(** θ-subsumption testing (Section 5 of the paper).

    Clause [c] θ-subsumes ground clause [g] iff there is a substitution θ
    with body(c)θ ⊆ body(g). Deciding this is NP-hard; two approximate
    engines are provided, both erring toward answering "no" (coverage is
    under-approximated, never over-approximated):

    - a budgeted backtracking search with value-indexed candidate filtering,
      fail-first ordering, unit propagation and randomized restarts (after
      the paper's reference [29], Kuzelka & Zelezny);
    - a left-to-right {e substitution-frontier} evaluator whose per-literal
      frontier is capped — linear-time, and the engine the learner uses,
      because it reports the paper's {e blocking atom} for free. *)

type ground
(** A ground clause body, pre-grouped by relation symbol and indexed by
    (predicate, position, value). *)

(** [ground_of_literals ls] indexes ground literals [ls].
    @raise Invalid_argument if some literal is not ground. *)
val ground_of_literals : Literal.t list -> ground

val ground_size : ground -> int
val ground_literals : ground -> Literal.t list

type config = {
  node_budget : int;  (** backtracking nodes allowed per try *)
  restarts : int;  (** randomized retries after the first try *)
}

val default_config : config

(** The engine's honest verdict: the boolean entry points answer "no" both
    when no subsumption was {e proved} impossible and when the search merely
    {e gave up} (every restart exhausted its node budget — the paper's
    under-approximating trade-off); this type keeps the two apart. *)
type answer =
  | Subsumed of Substitution.t  (** a witness substitution *)
  | Not_subsumed  (** proved: some try exhausted the space within budget *)
  | Gave_up  (** unknown: every try ran out of nodes *)

(** [subsumes_answer ?config ?rng ?budget ~subst c g] — the tri-state test.
    Reports tries, restarts and give-ups into [budget]'s counters
    ([Subsumption_try] / [Subsumption_restart] / [Subsumption_exhausted]),
    so callers get the degradation accounting even when the boolean answer
    is unchanged. A definitive [Not_subsumed] on the first try skips the
    randomized restarts (they could only rediscover the same proof). *)
val subsumes_answer :
  ?config:config ->
  ?rng:Random.State.t ->
  ?budget:Budget.t ->
  subst:Substitution.t ->
  Clause.t ->
  ground ->
  answer

(** [subsumes_subst ?config ?rng ?budget ~subst c g] tests whether the body
    of [c] maps into [g] by some extension of [subst] (coverage testing
    binds the head from the example first). Returns the witnessing
    substitution; [Gave_up] collapses to [None]. *)
val subsumes_subst :
  ?config:config ->
  ?rng:Random.State.t ->
  ?budget:Budget.t ->
  subst:Substitution.t ->
  Clause.t ->
  ground ->
  Substitution.t option

(** [subsumes ?config ?rng ?budget c g] is {!subsumes_subst} from the empty
    substitution. *)
val subsumes :
  ?config:config ->
  ?rng:Random.State.t ->
  ?budget:Budget.t ->
  Clause.t ->
  ground ->
  bool

(** {1 Prefix evaluation with substitution frontiers} *)

type verdict =
  | Covered of Substitution.t  (** a witness substitution *)
  | Blocked of int
      (** 1-based index of the blocking body literal (Section 2.3.2) *)

val default_frontier_cap : int

(** [step_frontier ?cap ?budget g frontier lit] advances the frontier across
    one body literal: all extensions mapping [lit] into [g], deduplicated,
    stride-capped at [cap] (preserving binding diversity), and rotated.
    An empty result means [lit] blocks. A cap overflow — the point where
    the test becomes approximate — bumps [budget]'s [Coverage_truncated]
    counter instead of passing silently. *)
val step_frontier :
  ?cap:int ->
  ?budget:Budget.t ->
  ground ->
  Substitution.t list ->
  Literal.t ->
  Substitution.t list

(** [step_frontier_n ?cap ?budget g frontier ~frontier_n lit] is
    {!step_frontier} for callers that already know [frontier]'s length
    (every producer of a frontier does); returns the new frontier with its
    length, so a left-to-right sweep never recounts a list. *)
val step_frontier_n :
  ?cap:int ->
  ?budget:Budget.t ->
  ground ->
  Substitution.t list ->
  frontier_n:int ->
  Literal.t ->
  Substitution.t list * int

(** [eval_prefix ?cap ?budget ~subst c g] evaluates the body of [c] left to
    right from [subst], one {!step_frontier} per literal. *)
val eval_prefix :
  ?cap:int -> ?budget:Budget.t -> subst:Substitution.t -> Clause.t -> ground -> verdict

(** [covers_ground ?cap ?budget ~subst c g] is the boolean form of
    {!eval_prefix}. *)
val covers_ground :
  ?cap:int -> ?budget:Budget.t -> subst:Substitution.t -> Clause.t -> ground -> bool
