(** Small shared helpers for the logic library and its clients. *)

(** [take n l] is the first [n] elements of [l] (all of [l] when it is
    shorter). [n <= 0] yields the empty list. *)
let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl
