(** Clause compilation: an int-coded θ-subsumption kernel for the coverage
    hot path.

    Predicate symbols and constants are interned into contiguous int ids;
    ground bottom clauses flatten into int arrays with precomputed
    per-(predicate, position, value) adjacency indexes; candidate clauses
    compile once into evaluation {!plan}s; and {!eval} runs the frontier
    over reusable {!scratch} arenas — loops over int arrays, no per-step
    allocation.

    [eval] is {e bit-identical} to {!Subsumption.eval_prefix}: same
    verdicts, same witness substitutions, same [Coverage_truncated] budget
    hits, for every clause/ground/cap — the property the qcheck oracle test
    asserts. Interned ids are only ever compared for equality; ordering
    goes through [Value.compare] on the reverse array, so results do not
    depend on interning order (and hence not on pool scheduling). *)

(** A process- or context-wide interner for predicate symbols and constant
    values. Thread-safe: interning takes an internal mutex; readers access
    the reverse array lock-free (safe for ids published to them through any
    mutex, e.g. a plan or ground cache). *)
module Symtab : sig
  type t

  val create : unit -> t
  val pred_id : t -> string -> int
  val const_id : t -> Relational.Value.t -> int

  (** [value t id] — the constant interned as [id]. *)
  val value : t -> int -> Relational.Value.t

  (** [pred_name t id] — the predicate symbol interned as [id]. *)
  val pred_name : t -> int -> string
end

type ground
(** A compiled ground clause body plus its interned example tuple. *)

val ground_size : ground -> int

(** [compile_ground tab ~example lits] flattens ground literals [lits],
    preserving the symbolic engine's index orders.
    @raise Invalid_argument if some literal is not ground. *)
val compile_ground :
  Symtab.t -> example:Relational.Relation.tuple -> Literal.t list -> ground

type plan
(** A compiled candidate clause: dense variable numbering, int-coded head
    and body, canonical int key. *)

(** [compile tab clause] int-codes [clause]. Pure up to interning:
    recompiling yields an interchangeable plan. *)
val compile : Symtab.t -> Clause.t -> plan

(** [key plan] — a canonical key injective exactly where
    [Clause.to_string] is (α-variants stay distinct): the compiled
    replacement for printed-clause memo keys. *)
val key : plan -> int array

val n_body : plan -> int

(** [key_bounds k] — the literal-segment boundaries of a canonical key:
    [bounds.(i)] is the offset where segment [i] starts (segment 0 is the
    head, segment [i ≥ 1] is body literal [i]), and the final element is
    [Array.length k]. Each segment is [pred; arity; args...], so boundaries
    are recoverable from the key alone — the property the failure-constraint
    store's prefix signatures rely on. *)
val key_bounds : int array -> int array

(** [key_segment k ~index] — the canonical key of literal [index] alone
    (head = 0, body literal [i] = [i]): what {!Explain} attaches to
    not-covered verdicts. *)
val key_segment : int array -> index:int -> int array

type scratch
(** Reusable evaluation arenas. Not thread-safe — use one per worker
    domain (e.g. via [Domain.DLS]). *)

val make_scratch : unit -> scratch

(** [eval ?cap ?budget scratch tab plan g] — {!Subsumption.eval_prefix}
    over the compiled representations, bit-identical to the symbolic
    engine. [Blocked 0] means the head cannot bind to [g]'s example
    tuple. *)
val eval :
  ?cap:int ->
  ?budget:Budget.t ->
  scratch ->
  Symtab.t ->
  plan ->
  ground ->
  Subsumption.verdict
