(** θ-subsumption testing (Section 5 of the paper).

    Clause [c] θ-subsumes ground clause [g] iff there is a substitution θ with
    body(c)θ ⊆ body(g). Deciding this is NP-hard, so, following the paper's
    reference [29] (Kuzelka & Zelezny's restarted strategy), the engine runs a
    backtracking search with

    - candidate filtering through a (predicate, position, value) index over
      the ground literals, so a literal with any bound argument only probes
      matching ground literals;
    - decomposition of the body into variable-connected components solved
      independently (one joint exponential search becomes a sum of small
      ones), sharing a single node budget per try;
    - incremental candidate maintenance over arrays: binding a literal
      refilters only the open literals sharing a freshly-bound variable,
      instead of rebuilding every remaining candidate list at every node;
    - fail-first dynamic literal ordering (fewest candidate matches first)
      with unit propagation (single-candidate literals are bound eagerly);
    - a node budget per try and randomized restarts when the budget runs out.

    With the budget exhausted on every restart the test answers [false] — an
    under-approximation of coverage, exactly the trade-off the paper makes. *)

type ground = {
  by_pred : (string, Literal.t array) Hashtbl.t;
  by_pred_pos_value :
    (string * int * Relational.Value.t, int * Literal.t list) Hashtbl.t;
      (** buckets carry their cached length: candidate selection compares
          bucket sizes on every probe of every search node, and recomputing
          [List.length] there made it O(arity · bucket) per literal *)
  literal_count : int;
}
(** A ground clause body, pre-grouped by relation symbol and indexed by
    argument value. *)

(** [ground_of_literals ls] indexes ground literals [ls].
    Raises [Invalid_argument] if some literal is not ground. *)
let ground_of_literals ls =
  let count = ref 0 in
  List.iter
    (fun l ->
      incr count;
      if not (Literal.is_ground l) then
        invalid_arg ("Subsumption.ground_of_literals: " ^ Literal.to_string l))
    ls;
  let tmp = Hashtbl.create 16 in
  let by_pred_pos_value = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let p = Literal.pred l in
      let bucket = try Hashtbl.find tmp p with Not_found -> [] in
      Hashtbl.replace tmp p (l :: bucket);
      Array.iteri
        (fun i t ->
          match t with
          | Term.Const v ->
              let key = (p, i, v) in
              let n, b =
                try Hashtbl.find by_pred_pos_value key
                with Not_found -> (0, [])
              in
              Hashtbl.replace by_pred_pos_value key (n + 1, l :: b)
          | Term.Var _ -> ())
        (Literal.args l))
    ls;
  let by_pred = Hashtbl.create 16 in
  Hashtbl.iter (fun p b -> Hashtbl.replace by_pred p (Array.of_list b)) tmp;
  { by_pred; by_pred_pos_value; literal_count = !count }

let ground_size g = g.literal_count

let ground_literals g =
  Hashtbl.fold
    (fun _ arr acc -> Array.fold_left (fun acc l -> l :: acc) acc arr)
    g.by_pred []

exception Budget_exhausted

type config = {
  node_budget : int;  (** backtracking nodes allowed per try *)
  restarts : int;  (** randomized retries after the first try *)
}

let default_config = { node_budget = 10_000; restarts = 2 }

(* Ground literals possibly matching [lit] under [subst]: if some argument is
   bound (a constant, or a variable bound by [subst]), probe the smallest
   value-index bucket; otherwise fall back to the predicate bucket. *)
let candidate_literals g subst lit =
  let p = Literal.pred lit in
  let args = Literal.args lit in
  let best = ref None in
  Array.iteri
    (fun i t ->
      let bound_value =
        match t with
        | Term.Const v -> Some v
        | Term.Var x -> Substitution.find_opt x subst
      in
      match bound_value with
      | None -> ()
      | Some v ->
          let len, bucket =
            try Hashtbl.find g.by_pred_pos_value (p, i, v)
            with Not_found -> (0, [])
          in
          (match !best with
          | Some (blen, _) when blen <= len -> ()
          | _ -> best := Some (len, bucket)))
    args;
  match !best with
  | Some (_, bucket) -> bucket
  | None -> (
      match Hashtbl.find_opt g.by_pred p with
      | None -> []
      | Some arr -> Array.to_list arr)

(* Substitutions extending [subst] that map [lit] into [g]. *)
let candidates g subst lit =
  candidate_literals g subst lit
  |> List.filter_map (fun gl -> Substitution.match_literal subst lit gl)

(* {2 Decomposed, incremental backtracking}

   Two structural optimizations over a monolithic re-scoring search:

   - {e connected-component decomposition}: after head binding, body
     literals in distinct variable-connected components (connectivity
     through variables still unbound by the head substitution) constrain
     disjoint variable sets, so one joint search over the whole body — an
     exponential in the total body size — splits into a product of
     independent searches, each exponential only in its component's size.
     The components share one node budget per try.

   - {e incremental candidate maintenance}: each open literal carries the
     array of ground literals still matching it under the current partial
     substitution. Binding a literal refilters only the entries that share
     a freshly-bound variable — everything else is untouched — where the
     previous engine rebuilt and re-matched every remaining literal's
     candidate list at every search node. Arrays are persistent down a
     branch (backtracking restores them for free) and only ever shrink. *)

type entry = {
  elit : Literal.t;
  evars : int list;  (** distinct variables of [elit] *)
  cands : Literal.t array;
      (** ground literals matching [elit] under the current substitution *)
}

let entry_of g subst lit =
  let matching =
    List.filter
      (fun gl -> Substitution.match_literal subst lit gl <> None)
      (candidate_literals g subst lit)
  in
  { elit = lit; evars = Literal.vars lit; cands = Array.of_list matching }

let refilter subst e =
  let kept =
    Array.fold_left
      (fun acc gl ->
        if Substitution.match_literal subst e.elit gl <> None then gl :: acc
        else acc)
      [] e.cands
  in
  { e with cands = Array.of_list (List.rev kept) }

(* One backtracking try over one component, charging search nodes to the
   shared [nodes] counter. [rng] randomizes branch order on restart tries;
   the first try is deterministic. Returns [None] only when the component's
   space was exhausted — a proof of no match (budget exhaustion raises). *)
let solve_component ~config ~rng ~nodes g subst0 body =
  let tick () =
    incr nodes;
    if !nodes > config.node_budget then raise Budget_exhausted
  in
  let shuffle arr =
    match rng with
    | None -> arr
    | Some st ->
        let a = Array.copy arr in
        let n = Array.length a in
        for i = n - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        a
  in
  (* Fail-first: branch on the entry with the fewest live candidates (first
     in body order on ties); a single-candidate entry is thereby bound
     eagerly (unit propagation) and an empty one fails the node. *)
  let rec search entries subst =
    tick ();
    match entries with
    | [] -> Some subst
    | _ -> (
        let best =
          List.fold_left
            (fun acc e ->
              match acc with
              | Some b when Array.length b.cands <= Array.length e.cands -> acc
              | _ -> Some e)
            None entries
        in
        match best with
        | None -> assert false
        | Some e ->
            if Array.length e.cands = 0 then None
            else begin
              let rest = List.filter (fun x -> not (x == e)) entries in
              let order =
                if Array.length e.cands = 1 then e.cands else shuffle e.cands
              in
              let rec try_branches i =
                if i >= Array.length order then None
                else
                  let gl = order.(i) in
                  match Substitution.match_literal subst e.elit gl with
                  | None -> assert false (* cands are live under [subst] *)
                  | Some subst' ->
                      let fresh =
                        List.filter
                          (fun v -> not (Substitution.mem v subst))
                          e.evars
                      in
                      let dead = ref false in
                      let rest' =
                        if fresh = [] then rest
                        else
                          List.map
                            (fun x ->
                              if
                                List.exists
                                  (fun v -> List.mem v x.evars)
                                  fresh
                              then begin
                                let x' = refilter subst' x in
                                if Array.length x'.cands = 0 then dead := true;
                                x'
                              end
                              else x)
                            rest
                      in
                      if !dead then try_branches (i + 1)
                      else begin
                        match search rest' subst' with
                        | Some _ as ok -> ok
                        | None -> try_branches (i + 1)
                      end
              in
              try_branches 0
            end)
  in
  let entries = List.map (entry_of g subst0) body in
  if List.exists (fun e -> Array.length e.cands = 0) entries then None
  else search entries subst0

(* Variable-connected components of [body] under [subst]: literals in
   distinct components share no unbound variable. Each component keeps its
   literals in body order; components come out in order of their first
   literal. Literals with no unbound variable are singleton components
   (their check is a pure candidate probe). *)
let components subst body =
  let tagged =
    List.mapi
      (fun i l ->
        ( i,
          l,
          List.filter (fun v -> not (Substitution.mem v subst)) (Literal.vars l)
        ))
      body
  in
  let rec group = function
    | [] -> []
    | ((_, _, vs0) as item) :: rest ->
        let rec close vars members pending =
          let touched, untouched =
            List.partition
              (fun (_, _, vs) -> List.exists (fun v -> List.mem v vars) vs)
              pending
          in
          if touched = [] then (members, pending)
          else
            close
              (List.fold_left (fun acc (_, _, vs) -> vs @ acc) vars touched)
              (members @ touched) untouched
        in
        let members, rest = close vs0 [ item ] rest in
        members :: group rest
  in
  group tagged
  |> List.map (fun members ->
         List.sort (fun (i, _, _) (j, _, _) -> compare i j) members
         |> List.map (fun (_, l, _) -> l))

type answer =
  | Subsumed of Substitution.t
  | Not_subsumed
  | Gave_up

(** [subsumes_answer ?config ?rng ?budget ~subst c g] is the engine's honest
    verdict: [Subsumed w] with a witness, [Not_subsumed] when some try
    {e exhausted the search space} within its node budget (a proof of no
    subsumption — restarts would be wasted work and are skipped), or
    [Gave_up] when every try ran out of nodes. The boolean entry points
    conflate the last two (both answer "no", the paper's under-approximating
    trade-off); this one keeps them apart and reports tries / restarts /
    give-ups into [budget]'s counters. *)
let subsumes_answer ?(config = default_config) ?rng ?budget ~subst c g =
  Obs.Trace.span ~cat:"subsumption" "subsumes" @@ fun () ->
  if Obs.Trace.enabled () then begin
    Obs.Trace.arg "body_lits" (string_of_int (List.length (Clause.body c)));
    Obs.Trace.arg "ground_lits" (string_of_int (ground_size g))
  end;
  let comps = components subst (Clause.body c) in
  (* Witnesses of distinct components bind disjoint variables (each extends
     the shared head substitution), so their union is a witness for the
     whole body. *)
  let merge_witness acc w =
    List.fold_left
      (fun acc (v, value) -> Substitution.bind v value acc)
      acc (Substitution.bindings w)
  in
  let attempt r =
    Budget.hit_opt budget Budget.Subsumption_try;
    let nodes = ref 0 in
    let rec solve acc = function
      | [] -> `Found acc
      | comp :: rest -> (
          match solve_component ~config ~rng:r ~nodes g subst comp with
          | Some w -> solve (merge_witness acc w) rest
          | None -> `No)
    in
    (try solve subst comps with Budget_exhausted -> `Out)
  in
  match attempt None with
  | `Found s -> Subsumed s
  | `No -> Not_subsumed
  | `Out ->
      let rng =
        match rng with
        | Some st -> st
        | None -> Random.State.make [| 0x5eed |]
      in
      let rec retry k =
        if k = 0 then begin
          Budget.hit_opt budget Budget.Subsumption_exhausted;
          Obs.Trace.arg "gave_up" "true";
          Gave_up
        end
        else begin
          Budget.hit_opt budget Budget.Subsumption_restart;
          Obs.Trace.arg "restart" (string_of_int (config.restarts - k + 1));
          match attempt (Some rng) with
          | `Found s -> Subsumed s
          | `No -> Not_subsumed
          | `Out -> retry (k - 1)
        end
      in
      retry config.restarts

(** [subsumes_subst ?config ?rng ?budget ~subst c g] tests whether the body
    of [c] maps into [g] by some extension of [subst] (the head is assumed
    already matched — coverage testing binds it from the example). Returns
    the witnessing substitution; [Gave_up] collapses to [None]. *)
let subsumes_subst ?config ?rng ?budget ~subst c g =
  match subsumes_answer ?config ?rng ?budget ~subst c g with
  | Subsumed s -> Some s
  | Not_subsumed | Gave_up -> None

(** [subsumes ?config ?rng ?budget c g] is [subsumes_subst] from the empty
    substitution: plain θ-subsumption of [c]'s body into [g]. *)
let subsumes ?config ?rng ?budget c g =
  match subsumes_subst ?config ?rng ?budget ~subst:Substitution.empty c g with
  | Some _ -> true
  | None -> false

(** {1 Prefix evaluation with substitution sets}

    Bottom clauses list their body in construction order, so each literal is
    (almost always) connected to earlier literals. That makes left-to-right
    evaluation with a {e set of partial substitutions} — the frontier of all
    ways the prefix maps into the ground clause — both fast and exactly what
    ARMG needs: the first literal whose frontier dies is the {e blocking
    atom} of Section 2.3.2. The frontier is capped at [cap] substitutions
    (uniformly subsampled when it overflows), which makes the test
    approximate in the same under-approximating direction as the budgeted
    backtracking above. *)

type verdict =
  | Covered of Substitution.t  (** a witness substitution *)
  | Blocked of int  (** 1-based index of the blocking body literal *)

let default_frontier_cap = 24

(** [step_frontier ?cap g frontier lit] advances the frontier across one body
    literal: all extensions of frontier substitutions that map [lit] into
    [g], deduplicated (duplicates arise when [lit] is already fully bound),
    capped at [cap] (expansion stops at [4 × cap] raw extensions), and
    rotated so a truncated tail gets its turn at the next literal. An empty
    result means [lit] blocks. *)
let step_frontier_n ?(cap = default_frontier_cap) ?budget g frontier
    ~frontier_n lit =
  (* Fair expansion: every frontier substitution gets an equal share of the
     [3 × cap] expansion budget. A global first-come cut-off would only ever
     extend the first few chains, silently discarding the binding diversity
     the stride-truncation below works to preserve. [frontier_n] is the
     caller-tracked size of [frontier]: every producer of a frontier already
     knows its length, so the hot loop never recounts a list. *)
  let per_subst = max 2 (3 * cap / max 1 frontier_n) in
  let out = ref [] and out_n = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun s' ->
          out := s' :: !out;
          incr out_n)
        (Util.take per_subst (candidates g s lit)))
    frontier;
  let out_n = !out_n in
  (* Truncate a frontier of [n] substitutions in [order] (an array in the
     frontier's logical order): rotation below [cap] so a truncated tail
     gets its turn at the next literal, else a stride-spread sample — kept
     over the lexicographic head because neighbouring substitutions share
     early-variable bindings, and a frontier keeping only one binding of a
     shared variable would falsely block any later literal needing
     another. *)
  let finish order n =
    if n <= cap then
      if n = 0 then ([], 0)
      else begin
        let rotated = ref [ order.(0) ] in
        for i = n - 1 downto 1 do
          rotated := order.(i) :: !rotated
        done;
        (!rotated, n)
      end
    else begin
      Budget.hit_opt budget Budget.Coverage_truncated;
      (List.init cap (fun i -> order.(i * n / cap)), cap)
    end
  in
  (* Deduplication costs |out| log |out| map comparisons; tiny frontiers
     cannot meaningfully explode, so skip it for them. *)
  if out_n <= 8 then
    if out_n <= cap then
      match !out with
      | [] -> ([], 0)
      | x :: tl -> (tl @ [ x ], out_n)
    else finish (Array.of_list !out) out_n
  else begin
    (* In-place sort + adjacent-uniq over an array: same ascending output
       as [List.sort_uniq Substitution.compare] (duplicate substitutions
       are structurally identical), with the deduplicated count tracked
       instead of recounted. *)
    let arr = Array.of_list !out in
    Array.sort Substitution.compare arr;
    let m = ref 1 in
    for i = 1 to out_n - 1 do
      if Substitution.compare arr.(!m - 1) arr.(i) <> 0 then begin
        arr.(!m) <- arr.(i);
        incr m
      end
    done;
    finish arr !m
  end

let step_frontier ?cap ?budget g frontier lit =
  fst
    (step_frontier_n ?cap ?budget g frontier
       ~frontier_n:(List.length frontier) lit)

(** [eval_prefix ?cap ?budget ~subst c g] evaluates the body of [c] against
    [g] left to right starting from [subst], one {!step_frontier} per body
    literal; frontier truncations report into [budget]. *)
let eval_prefix ?cap ?budget ~subst c g =
  Obs.Trace.span ~cat:"subsumption" "eval_prefix" @@ fun () ->
  let rec go i frontier frontier_n = function
    | [] -> (
        match frontier with
        | s :: _ -> Covered s
        | [] -> assert false)
    | lit :: rest -> (
        match step_frontier_n ?cap ?budget g frontier ~frontier_n lit with
        | [], _ ->
            Obs.Trace.arg "blocked_at" (string_of_int i);
            Blocked i
        | next, n -> go (i + 1) next n rest)
  in
  go 1 [ subst ] 1 (Clause.body c)

(** [covers_ground ?cap ?budget ~subst c g] is the boolean form of
    {!eval_prefix}. *)
let covers_ground ?cap ?budget ~subst c g =
  match eval_prefix ?cap ?budget ~subst c g with
  | Covered _ -> true
  | Blocked _ -> false
