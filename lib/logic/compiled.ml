(** Clause compilation: an int-coded θ-subsumption kernel for the coverage
    hot path.

    The symbolic frontier evaluator ({!Subsumption.eval_prefix}) re-walks
    [Literal.t]/[Term.t] structures through string-keyed hashtables and
    allocates substitution maps on every extension. Coverage testing runs it
    millions of times over the same ground bottom clauses, so this module
    compiles both sides of the test once:

    - predicate symbols and constants are {e interned} into contiguous int
      ids ({!Symtab}), making every equality test an int comparison;
    - a ground bottom clause is flattened into int arrays with precomputed
      per-predicate and per-(predicate, position, value) adjacency indexes
      ({!compile_ground}) — the same indexes the symbolic engine builds, but
      probed without hashing strings or allocating tuple keys per literal;
    - a candidate clause is compiled into a {!plan}: dense variable
      numbering, int-coded head and body, and a canonical int key that
      replaces clause printing in the coverage memo;
    - evaluation runs over reusable {!scratch} arenas — substitutions are
      int arrays indexed by dense variable id, frontiers are index arrays
      into a pair of swap banks — so a frontier step is loops over ints with
      no per-step allocation.

    {b Bit-identity.} [eval] replicates {!Subsumption.eval_prefix} exactly —
    same verdicts, same witnesses, same [Coverage_truncated] budget hits —
    so the learner's results cannot depend on which engine ran. The
    invariants that make this work:

    - interning is injective, so id equality ⟺ value equality, and ids are
      {e never ordered}: ordering always goes through [Value.compare] on the
      reverse array, so concurrent interning by pool workers (which permutes
      id assignment) cannot change any comparison;
    - after each frontier step every substitution binds the same variable
      set, so [Substitution.compare] (an [Int_map.compare]) reduces to
      lexicographic [Value.compare] over ascending variable id — replicated
      here by assigning dense ids in ascending original-id order;
    - adjacency buckets preserve the symbolic engine's reverse-insertion
      order, candidate selection keeps its earliest-position-wins tie rule,
      and the dedup / rotation / stride-truncation sequence of
      {!Subsumption.step_frontier} is reproduced case by case. *)

module Value = Relational.Value

(** {1 Symbol table} *)

module Symtab = struct
  type t = {
    lock : Mutex.t;
    preds : (string, int) Hashtbl.t;
    consts : int Value.Table.t;
    mutable values : Value.t array;  (** id → value (reverse array) *)
    mutable n_values : int;
    mutable pred_names : string array;  (** id → name (reverse array) *)
  }

  let create () =
    {
      lock = Mutex.create ();
      preds = Hashtbl.create 64;
      consts = Value.Table.create 1024;
      values = Array.make 1024 (Value.Int 0);
      n_values = 0;
      pred_names = Array.make 64 "";
    }

  let pred_id t p =
    Mutex.lock t.lock;
    let id =
      match Hashtbl.find_opt t.preds p with
      | Some id -> id
      | None ->
          let id = Hashtbl.length t.preds in
          if id >= Array.length t.pred_names then begin
            let bigger = Array.make (2 * Array.length t.pred_names) "" in
            Array.blit t.pred_names 0 bigger 0 id;
            t.pred_names <- bigger
          end;
          t.pred_names.(id) <- p;
          Hashtbl.add t.preds p id;
          id
    in
    Mutex.unlock t.lock;
    id

  let const_id t v =
    Mutex.lock t.lock;
    let id =
      match Value.Table.find_opt t.consts v with
      | Some id -> id
      | None ->
          let id = t.n_values in
          if id >= Array.length t.values then begin
            let bigger = Array.make (2 * Array.length t.values) (Value.Int 0) in
            Array.blit t.values 0 bigger 0 t.n_values;
            t.values <- bigger
          end;
          t.values.(id) <- v;
          t.n_values <- id + 1;
          Value.Table.add t.consts v id;
          id
    in
    Mutex.unlock t.lock;
    id

  (* Lock-free read of the reverse array. Safe because callers only index it
     with ids obtained from a plan or compiled ground that was published to
     them through a mutex (the plan cache or the ground-BC cache): the
     release/acquire pair orders the interning writes — including the array
     growth — before this read, and growth only ever appends. *)
  let values t = t.values
  let value t id = t.values.(id)
  let pred_name t id = t.pred_names.(id)
end

(** {1 Compiled ground clauses} *)

(* Adjacency keys are (pred id, position, const id) triples in their own
   hashtable: a packed-int key would need bounds on ids interned after the
   ground was compiled, and a wrong-bucket collision would silently corrupt
   verdicts. The per-probe tuple lives and dies in the minor heap. *)
module Adj = Hashtbl.Make (struct
  type t = int * int * int

  let equal (a, b, c) (d, e, f) = a = d && b = e && c = f
  let hash (a, b, c) = Hashtbl.hash (((a * 31) + b) lxor (c * 0x9e3779b1))
end)

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash = Hashtbl.hash
end)

type ground = {
  g_pred : int array;  (** literal index → predicate id *)
  g_off : int array;  (** literal index → offset into [g_args]; length n+1 *)
  g_args : int array;  (** flattened const ids of every literal *)
  g_by_pred : int array Int_tbl.t;
      (** predicate id → literal indexes, {e reverse} insertion order (the
          order the symbolic engine's prepend-built buckets iterate in) *)
  g_adj : int array Adj.t;
      (** (pred, pos, const) → literal indexes, reverse insertion order *)
  g_example : int array;  (** the interned example tuple *)
}

let ground_size g = Array.length g.g_pred

(** [compile_ground tab ~example lits] flattens ground literals [lits] (in
    order) and interns [example] alongside, so evaluation never touches the
    symbol table. Raises [Invalid_argument] on a non-ground literal. *)
let compile_ground tab ~example lits =
  let n = List.length lits in
  let g_pred = Array.make n 0 in
  let g_off = Array.make (n + 1) 0 in
  let total =
    List.fold_left (fun acc l -> acc + Literal.arity l) 0 lits
  in
  let g_args = Array.make (max 1 total) 0 in
  let by_pred = Int_tbl.create 16 in
  let adj = Adj.create 64 in
  let off = ref 0 in
  List.iteri
    (fun i l ->
      let p = Symtab.pred_id tab (Literal.pred l) in
      g_pred.(i) <- p;
      g_off.(i) <- !off;
      let bucket = try Int_tbl.find by_pred p with Not_found -> [] in
      Int_tbl.replace by_pred p (i :: bucket);
      Array.iteri
        (fun pos t ->
          match t with
          | Term.Const v ->
              let c = Symtab.const_id tab v in
              g_args.(!off + pos) <- c;
              let key = (p, pos, c) in
              let b = try Adj.find adj key with Not_found -> [] in
              Adj.replace adj key (i :: b)
          | Term.Var _ ->
              invalid_arg
                ("Compiled.compile_ground: " ^ Literal.to_string l))
        (Literal.args l);
      off := !off + Literal.arity l)
    lits;
  g_off.(n) <- !off;
  (* Array.of_list keeps the prepend-reversed order, matching the symbolic
     engine's bucket iteration order exactly. *)
  let g_by_pred = Int_tbl.create (Int_tbl.length by_pred) in
  Int_tbl.iter (fun p b -> Int_tbl.replace g_by_pred p (Array.of_list b)) by_pred;
  let g_adj = Adj.create (Adj.length adj) in
  Adj.iter (fun k b -> Adj.replace g_adj k (Array.of_list b)) adj;
  {
    g_pred;
    g_off;
    g_args;
    g_by_pred;
    g_adj;
    g_example = Array.map (Symtab.const_id tab) example;
  }

(** {1 Compiled clause plans} *)

(* Argument encoding: a const id [c] is stored as [c] (≥ 0), a dense
   variable [v] as [-v - 1] (< 0). The canonical key uses the same scheme
   but with {e original} variable ids, so it distinguishes exactly the
   clauses [Clause.to_string] distinguishes (α-variants stay distinct —
   memoized witnesses mention original variable ids). *)

type plan = {
  p_nvars : int;
  p_var_ids : int array;
      (** dense id → original id, ascending — the order [Int_map.compare]
          iterates, which is what makes the dense comparator below agree
          with [Substitution.compare] *)
  p_head : int array;  (** encoded head args (dense vars) *)
  p_pred : int array;  (** body literal → predicate id *)
  p_args : int array array;  (** body literal → encoded args (dense vars) *)
  p_key : int array;  (** canonical memo key *)
}

let key p = p.p_key
let n_body p = Array.length p.p_pred

(* The canonical key is a prefix-free concatenation of per-literal segments
   [pred; arity; args...] (head first, body in order), so segment boundaries
   are recoverable from the key alone: read a pred, an arity, then exactly
   arity args. *)
let key_bounds k =
  let n = Array.length k in
  let acc = ref [ 0 ] and p = ref 0 in
  while !p < n do
    p := !p + 2 + k.(!p + 1);
    acc := !p :: !acc
  done;
  Array.of_list (List.rev !acc)

let key_segment k ~index =
  let b = key_bounds k in
  Array.sub k b.(index) (b.(index + 1) - b.(index))

(** [compile tab clause] — int-code [clause] against [tab]. Pure up to
    interning: recompiling yields an equal plan, so an evicted plan cache
    never changes results. *)
let compile tab clause =
  let head = Clause.head clause and body = Clause.body clause in
  (* Dense variable ids in ascending original-id order. *)
  let var_set = Hashtbl.create 16 in
  let add_vars l =
    List.iter (fun v -> Hashtbl.replace var_set v ()) (Literal.vars l)
  in
  add_vars head;
  List.iter add_vars body;
  let p_var_ids =
    Hashtbl.fold (fun v () acc -> v :: acc) var_set []
    |> List.sort compare |> Array.of_list
  in
  let dense = Hashtbl.create 16 in
  Array.iteri (fun d v -> Hashtbl.replace dense v d) p_var_ids;
  let encode_arg ~original = function
    | Term.Const v -> Symtab.const_id tab v
    | Term.Var v -> if original then -v - 1 else -Hashtbl.find dense v - 1
  in
  let encode ~original l =
    Array.map (encode_arg ~original) (Literal.args l)
  in
  let p_head = encode ~original:false head in
  let p_pred =
    Array.of_list (List.map (fun l -> Symtab.pred_id tab (Literal.pred l)) body)
  in
  let p_args = Array.of_list (List.map (encode ~original:false) body) in
  (* Canonical key: [pred; arity; args...] for the head then each body
     literal, args carrying original variable ids. Reading pred then arity
     then exactly arity args makes the encoding prefix-free, hence
     injective given injective interning. *)
  let buf = ref [] in
  let push_lit l =
    let args = encode ~original:true l in
    buf := List.rev_append (Array.to_list args)
        (Literal.arity l :: Symtab.pred_id tab (Literal.pred l) :: !buf)
  in
  push_lit head;
  List.iter push_lit body;
  let p_key = Array.of_list (List.rev !buf) in
  {
    p_nvars = Array.length p_var_ids;
    p_var_ids;
    p_head;
    p_pred;
    p_args;
    p_key;
  }

(** {1 Scratch arenas} *)

(* A substitution is an int array of length ≥ nvars, [-1] = unbound. The
   frontier is a bank of substitution buffers plus an index array giving
   its logical order; steps generate into the other bank, then the banks
   swap. Capacity: a step generates at most [frontier_n · per_subst] ≤
   [max (2·cap) (3·cap)] extensions, so [3·cap + 4] slots per bank cover
   any frontier the evaluator can produce (+ slack for the initial
   singleton and cap < 2 corner cases). *)

type scratch = {
  mutable s_nvars : int;  (** current buffer width *)
  mutable s_slots : int;  (** per-bank slot count *)
  mutable bank_a : int array array;
  mutable bank_b : int array array;
  mutable idx_a : int array;
  mutable idx_b : int array;
  mutable ord : int array;  (** logical-order workspace *)
  mutable aux : int array;  (** merge-sort workspace *)
}

let make_scratch () =
  {
    s_nvars = 0;
    s_slots = 0;
    bank_a = [||];
    bank_b = [||];
    idx_a = [||];
    idx_b = [||];
    ord = [||];
    aux = [||];
  }

let ensure_scratch s ~nvars ~cap =
  let slots = (3 * cap) + 4 in
  if slots > s.s_slots then begin
    s.s_slots <- slots;
    s.bank_a <- Array.make slots [||];
    s.bank_b <- Array.make slots [||];
    s.idx_a <- Array.make slots 0;
    s.idx_b <- Array.make slots 0;
    s.ord <- Array.make slots 0;
    s.aux <- Array.make slots 0;
    s.s_nvars <- 0 (* buffers are stale; force re-widening below *)
  end;
  if nvars > s.s_nvars then begin
    s.s_nvars <- nvars;
    for i = 0 to s.s_slots - 1 do
      s.bank_a.(i) <- Array.make nvars (-1);
      s.bank_b.(i) <- Array.make nvars (-1)
    done
  end

(* Bottom-up merge sort of [ord.(0..n-1)] by [cmp], stable, using [aux];
   equal elements are identical substitutions here, so stability only
   matters for matching List.sort_uniq's ascending output, which any
   correct sort produces. *)
let sort_ord ord aux n cmp =
  let width = ref 1 in
  while !width < n do
    let lo = ref 0 in
    while !lo < n - !width do
      let mid = !lo + !width in
      let hi = min n (mid + !width) in
      let i = ref !lo and j = ref mid and k = ref !lo in
      while !i < mid && !j < hi do
        if cmp ord.(!i) ord.(!j) <= 0 then begin
          aux.(!k) <- ord.(!i);
          incr i
        end
        else begin
          aux.(!k) <- ord.(!j);
          incr j
        end;
        incr k
      done;
      while !i < mid do
        aux.(!k) <- ord.(!i);
        incr i;
        incr k
      done;
      while !j < hi do
        aux.(!k) <- ord.(!j);
        incr j;
        incr k
      done;
      Array.blit aux !lo ord !lo (hi - !lo);
      lo := !lo + (2 * !width)
    done;
    width := 2 * !width
  done

let empty_bucket = [||]

(** {1 Evaluation} *)

(** [eval ?cap ?budget scratch tab plan g] replicates
    {!Subsumption.eval_prefix} over the compiled representations: same
    verdict, same witness, same [Coverage_truncated] budget hits. [Blocked
    0] means the head cannot bind to the ground's example tuple. *)
let eval ?(cap = Subsumption.default_frontier_cap) ?budget scratch tab plan g =
  Obs.Trace.span ~cat:"subsumption" "eval_compiled" @@ fun () ->
  ensure_scratch scratch ~nvars:plan.p_nvars ~cap;
  let vals = Symtab.values tab in
  let nvars = plan.p_nvars in
  (* Head binding (the compiled [Coverage.head_subst]): const head args
     compare by id against the interned example, var args bind. *)
  let head_ok =
    Array.length plan.p_head = Array.length g.g_example
    && begin
         let buf = scratch.bank_a.(0) in
         Array.fill buf 0 nvars (-1);
         let ok = ref true in
         Array.iteri
           (fun i a ->
             if !ok then
               if a >= 0 then begin
                 if a <> g.g_example.(i) then ok := false
               end
               else begin
                 let v = -a - 1 in
                 if buf.(v) = -1 then buf.(v) <- g.g_example.(i)
                 else if buf.(v) <> g.g_example.(i) then ok := false
               end)
           plan.p_head;
         !ok
       end
  in
  if not head_ok then Subsumption.Blocked 0
  else begin
    (* Frontier state: [cur_bank.(cur_idx.(0..n-1))] in logical order. *)
    let cur_bank = ref scratch.bank_a
    and nxt_bank = ref scratch.bank_b
    and cur_idx = ref scratch.idx_a
    and nxt_idx = ref scratch.idx_b in
    !cur_idx.(0) <- 0;
    let n = ref 1 in
    let blocked = ref 0 in
    let nlits = Array.length plan.p_pred in
    let li = ref 0 in
    while !blocked = 0 && !li < nlits do
      let lit = !li in
      let pred = plan.p_pred.(lit) and args = plan.p_args.(lit) in
      let arity = Array.length args in
      let per_subst = max 2 (3 * cap / max 1 !n) in
      let out_n = ref 0 in
      (* Expansion: for each frontier substitution, probe the smallest
         bound-position bucket (earliest position wins ties — the symbolic
         tie rule) and keep the first [per_subst] successful extensions in
         bucket order. *)
      for fi = 0 to !n - 1 do
        let s = !cur_bank.(!cur_idx.(fi)) in
        let best = ref empty_bucket and best_len = ref (-1) in
        for pos = 0 to arity - 1 do
          let a = args.(pos) in
          let bound = if a >= 0 then a else s.(-a - 1) in
          if bound >= 0 then begin
            let bucket =
              try Adj.find g.g_adj (pred, pos, bound)
              with Not_found -> empty_bucket
            in
            let len = Array.length bucket in
            if !best_len < 0 || len < !best_len then begin
              best := bucket;
              best_len := len
            end
          end
        done;
        let bucket =
          if !best_len >= 0 then !best
          else
            try Int_tbl.find g.g_by_pred pred with Not_found -> empty_bucket
        in
        let matched = ref 0 and k = ref 0 in
        let blen = Array.length bucket in
        while !matched < per_subst && !k < blen do
          let gl = bucket.(!k) in
          incr k;
          let goff = g.g_off.(gl) in
          if g.g_off.(gl + 1) - goff = arity then begin
            let buf = !nxt_bank.(!out_n) in
            Array.blit s 0 buf 0 nvars;
            let ok = ref true and pos = ref 0 in
            while !ok && !pos < arity do
              let a = args.(!pos) in
              let gv = g.g_args.(goff + !pos) in
              if a >= 0 then begin
                if a <> gv then ok := false
              end
              else begin
                let v = -a - 1 in
                if buf.(v) = -1 then buf.(v) <- gv
                else if buf.(v) <> gv then ok := false
              end;
              incr pos
            done;
            if !ok then begin
              incr out_n;
              incr matched
            end
          end
        done
      done;
      if !out_n = 0 then blocked := lit + 1
      else begin
        let out_n = !out_n in
        let ord = scratch.ord in
        (* Logical order of the raw extensions: the symbolic engine builds
           its list by prepending, so generation order reversed; frontiers
           over 8 are sorted ascending and deduplicated instead. *)
        let m =
          if out_n <= 8 then begin
            for i = 0 to out_n - 1 do
              ord.(i) <- out_n - 1 - i
            done;
            out_n
          end
          else begin
            for i = 0 to out_n - 1 do
              ord.(i) <- i
            done;
            let bank = !nxt_bank in
            let cmp i j =
              let a = bank.(i) and b = bank.(j) in
              let r = ref 0 and v = ref 0 in
              while !r = 0 && !v < nvars do
                let x = a.(!v) and y = b.(!v) in
                (* Distinct ids are distinct values (interning is
                   injective), so comparing through the reverse array
                   agrees with [Substitution.compare]. *)
                if x <> y then r := Value.compare vals.(x) vals.(y);
                incr v
              done;
              !r
            in
            sort_ord ord scratch.aux out_n cmp;
            let m = ref 1 in
            for i = 1 to out_n - 1 do
              if cmp ord.(!m - 1) ord.(i) <> 0 then begin
                ord.(!m) <- ord.(i);
                incr m
              end
            done;
            !m
          end
        in
        (* Rotation (≤ cap) or stride truncation (> cap), as in
           [step_frontier]. *)
        if m <= cap then begin
          for i = 1 to m - 1 do
            !nxt_idx.(i - 1) <- ord.(i)
          done;
          !nxt_idx.(m - 1) <- ord.(0);
          n := m
        end
        else begin
          Budget.hit_opt budget Budget.Coverage_truncated;
          for i = 0 to cap - 1 do
            !nxt_idx.(i) <- ord.(i * m / cap)
          done;
          n := cap
        end;
        let b = !cur_bank and ix = !cur_idx in
        cur_bank := !nxt_bank;
        cur_idx := !nxt_idx;
        nxt_bank := b;
        nxt_idx := ix;
        incr li
      end
    done;
    if !blocked > 0 then begin
      Obs.Trace.arg "blocked_at" (string_of_int !blocked);
      Subsumption.Blocked !blocked
    end
    else begin
      (* Witness: the frontier's first substitution, decoded back to
         original variable ids. Every clause variable occurs in the head or
         a matched body literal, so all dense slots are bound. *)
      let s = !cur_bank.(!cur_idx.(0)) in
      let w = ref Substitution.empty in
      for v = 0 to nvars - 1 do
        if s.(v) >= 0 then
          w := Substitution.bind plan.p_var_ids.(v) vals.(s.(v)) !w
      done;
      Subsumption.Covered !w
    end
  end
