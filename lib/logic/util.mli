(** Small shared helpers for the logic library and its clients. *)

(** [take n l] is the first [n] elements of [l] (all of [l] when it is
    shorter). [n <= 0] yields the empty list. *)
val take : int -> 'a list -> 'a list
