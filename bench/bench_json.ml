(* Machine-readable benchmark output.

   Every experiment records (key, value) metrics under its experiment name;
   the driver writes the merged map to BENCH_autobias.json at the end of the
   run so the perf trajectory can be tracked across PRs (and uploaded as a
   CI artifact). The writer is hand-rolled — no JSON dependency — and emits

     { "meta": {..}, "experiments": { "<experiment>": { "<key>": value } } }

   with experiments and keys in first-recorded order. *)

type value =
  | F of float
  | I of int
  | S of string
  | B of bool

(* (experiment, metrics) in insertion order; an experiment may record
   several times (e.g. one call per dataset × method cell). *)
let records : (string * (string * value) list) list ref = ref []
let meta : (string * value) list ref = ref []

(* Pre-rendered JSON object (the Obs run report) emitted verbatim as a
   top-level "run_report" section. *)
let report : string option ref = ref None

let set_report json = report := Some json

let record experiment metrics =
  records := !records @ [ (experiment, metrics) ]

(* Replace-by-key: re-recording a key overwrites its value in place (first
   position wins) instead of emitting a duplicate JSON key — the driver
   re-sets "experiments" after the run loop with what actually completed. *)
let set_meta metrics =
  List.iter
    (fun (k, v) ->
      if List.mem_assoc k !meta then
        meta :=
          List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) !meta
      else meta := !meta @ [ (k, v) ])
    metrics

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_string = function
  | F f when Float.is_nan f || f = Float.infinity || f = Float.neg_infinity ->
      "null"
  | F f -> Printf.sprintf "%.6g" f
  | I i -> string_of_int i
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | B b -> string_of_bool b

(* Canonical key order: sorted, duplicates collapsed to the last recorded
   value. Byte-stable output whatever order experiments ran or re-recorded
   in — the regression sentinel diffs these files and history lines across
   runs, so incidental ordering churn must not look like change. *)
let canonical metrics =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) metrics;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let metrics_to_string metrics =
  canonical metrics
  |> List.map (fun (k, v) ->
         Printf.sprintf "\"%s\": %s" (escape k) (value_to_string v))
  |> String.concat ", "

(* Merge repeated records of one experiment; experiments come out sorted by
   name (key order inside each is handled by [canonical]). *)
let merged () =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (exp, metrics) ->
      if not (Hashtbl.mem tbl exp) then begin
        order := exp :: !order;
        Hashtbl.replace tbl exp []
      end;
      Hashtbl.replace tbl exp (Hashtbl.find tbl exp @ metrics))
    !records;
  List.rev_map (fun exp -> (exp, Hashtbl.find tbl exp)) !order
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let write path =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"meta\": { %s },\n  \"experiments\": {\n"
    (metrics_to_string !meta);
  let exps = merged () in
  List.iteri
    (fun i (exp, metrics) ->
      Printf.fprintf oc "    \"%s\": { %s }%s\n" (escape exp)
        (metrics_to_string metrics)
        (if i < List.length exps - 1 then "," else ""))
    exps;
  (match !report with
  | Some j -> Printf.fprintf oc "  },\n  \"run_report\": %s\n}\n" j
  | None -> Printf.fprintf oc "  }\n}\n");
  close_out oc

(* {2 The bench history} — one compact JSON line per bench run, appended to
   an ever-growing JSONL file. The regression sentinel (bin/autobias_obs
   --gate) reads the newest line and compares it against the committed
   baseline; the provenance fields in meta say which commit/host/core-count
   produced each line. *)

let history_line () =
  Printf.sprintf "{\"meta\": {%s}, \"experiments\": {%s}}"
    (metrics_to_string !meta)
    (merged ()
    |> List.map (fun (exp, metrics) ->
           Printf.sprintf "\"%s\": {%s}" (escape exp)
             (metrics_to_string metrics))
    |> String.concat ", ")

let append_history path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  output_string oc (history_line ());
  output_char oc '\n';
  close_out oc
