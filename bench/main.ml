(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) over the synthetic datasets, plus Bechamel
   micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                  -- everything
     dune exec bench/main.exe -- table5        -- one experiment
     dune exec bench/main.exe -- table5 --data uw,imdb --folds 3 --timeout 30

   Experiments: table3 figure1 preprocess table5 table6 ablation-aind
   ablation-threshold coverage scaling micro. Absolute numbers differ from the paper
   (our datasets are laptop-scale synthetics; see EXPERIMENTS.md); the
   harness prints the paper's value next to each measured one where the
   paper reports one.

   Every experiment additionally records machine-readable metrics; the
   driver writes them to BENCH_autobias.json at the end of the run so the
   perf trajectory is tracked across PRs. `--domains N` runs the learner
   hot paths on an N-worker domain pool (default: sequential). *)

module Dataset = Datasets.Dataset
module CV = Evaluation.Cross_validation
module Metrics = Evaluation.Metrics

type options = {
  mutable data : string list;
  mutable folds : int;
  mutable timeout : float;
  mutable seed : int;
  mutable scale : float option;  (** overrides the per-dataset default *)
  mutable domains : int option;
      (** worker-domain pool size for the learner's parallel paths *)
  mutable chaos : float option;
      (** pool fault-injection probability — robustness smoke testing: the
          run must finish with the same tables, just slower and with a
          nonzero dropped-task tally in the pool stats *)
  mutable chaos_layers : string option;
      (** comma-separated layer names (or "all") for the chaos registry;
          without it --chaos injects into pool workers only *)
  mutable chaos_kill : float option;
      (** worker-kill probability (pool layer): exercises supervision
          restart/retry/quarantine under the bench workloads *)
  mutable deadline : float option;
      (** global anytime deadline shared by every learning run *)
  mutable trace : string option;
      (** write a Chrome trace-event JSON of the whole bench run here *)
  mutable metrics : string option;
      (** also write the Obs run report to a standalone JSON file (it is
          always embedded in BENCH_autobias.json) *)
}

let options =
  { data = [ "uw"; "imdb"; "hiv"; "flt"; "sys" ]; folds = 3; timeout = 30.;
    seed = 42; scale = None; domains = None; chaos = None; chaos_layers = None;
    chaos_kill = None; deadline = None; trace = None; metrics = None }

(* One pool for the whole run (spawning domains is the expensive part);
   created on first use when --domains (or --chaos, which needs workers to
   inject into) is given, shut down by the driver. *)
let the_pool : Parallel.Pool.t option ref = ref None

let pool () =
  match !the_pool with
  | Some _ as p -> p
  | None -> (
      (* the registry's pool injector (from --chaos-layers) wins; plain
         --chaos keeps the pre-registry pool-only behavior *)
      let chaos =
        match Chaos.get "pool" with
        | Some _ as inj -> inj
        | None ->
            Option.map
              (fun p ->
                Parallel.Fault.create ~p_fault:p ?p_kill:options.chaos_kill
                  ~seed:options.seed ())
              options.chaos
      in
      match (options.domains, chaos) with
      | None, None -> None
      | size, _ ->
          let p = Parallel.Pool.create ?size ?chaos () in
          the_pool := Some p;
          Some p)

(* One budget for the whole run when --deadline is given: every learning
   call scopes its own [timeout]-bounded child, so the counters aggregate
   while per-run clocks stay honest. *)
let the_budget = ref None

let budget () =
  match (!the_budget, options.deadline) with
  | (Some _ as b), _ -> b
  | None, None -> None
  | None, Some s ->
      let b = Budget.create ~deadline:s () in
      the_budget := Some b;
      Some b

(* Per-dataset default scales: chosen so the full harness finishes in tens of
   minutes while each dataset keeps its defining regime (UW small, the rest
   larger). *)
let default_scale = function "uw" -> 1.0 | _ -> 0.6

let generate name =
  let scale = Option.value options.scale ~default:(default_scale name) in
  match name with
  | "uw" -> Datasets.Uw.generate ~seed:options.seed ~scale ()
  | "imdb" -> Datasets.Imdb.generate ~seed:options.seed ~scale ()
  | "hiv" -> Datasets.Hiv.generate ~seed:options.seed ~scale ()
  | "flt" -> Datasets.Flt.generate ~seed:options.seed ~scale ()
  | "sys" -> Datasets.Sys_data.generate ~seed:options.seed ~scale ()
  | s -> invalid_arg ("unknown dataset: " ^ s)

let selected_datasets () = List.map (fun n -> (n, generate n)) options.data

let config ?(strategy = Sampling.Strategy.Naive) () =
  { Autobias.default_config with strategy; timeout = Some options.timeout;
    budget = budget (); pool = pool () }

let hr () = Fmt.pr "%s@." (String.make 78 '-')

(* ------------------------------------------------------------------ *)
(* Table 3: the language bias AutoBias generates for UW.              *)
(* ------------------------------------------------------------------ *)

let table3 () =
  hr ();
  Fmt.pr "Table 3 — predicate and mode definitions generated for UW@.";
  Fmt.pr "(paper: expert wrote 19 definitions; AutoBias generates ~30%% more)@.";
  hr ();
  let d = generate "uw" in
  let cfg = config () in
  let bi = Autobias.bias_for Autobias.Auto_bias cfg d ~train_pos:d.Dataset.positives in
  Fmt.pr "%a@." Bias.Language.pp bi.Autobias.bias;
  Fmt.pr "@.generated: %d definitions (manual bias for this dataset: %d)@."
    (Bias.Language.size bi.Autobias.bias)
    (Bias.Language.size d.Dataset.manual_bias);
  Bench_json.record "table3"
    [ ("uw.generated_definitions", Bench_json.I (Bias.Language.size bi.Autobias.bias));
      ("uw.manual_definitions", Bench_json.I (Bias.Language.size d.Dataset.manual_bias));
      ("uw.bias_time_s", Bench_json.F bi.Autobias.bias_time) ]

(* ------------------------------------------------------------------ *)
(* Figure 1: the type graph for UW.                                   *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  hr ();
  Fmt.pr "Figure 1 — type graph for the UW data@.";
  Fmt.pr "(solid = exact INDs, dashed = approximate INDs)@.";
  hr ();
  let d = generate "uw" in
  let cfg = config () in
  let bi = Autobias.bias_for Autobias.Auto_bias cfg d ~train_pos:d.Dataset.positives in
  match bi.Autobias.induction with
  | None -> assert false
  | Some ind ->
      Fmt.pr "%a@." Discovery.Type_graph.pp ind.Discovery.Generate.graph;
      Fmt.pr "@.DOT rendering (paste into graphviz):@.%s@."
        (Discovery.Type_graph.to_dot ind.Discovery.Generate.graph)

(* ------------------------------------------------------------------ *)
(* Preprocessing: IND-extraction time per dataset (Section 6.1 text). *)
(* ------------------------------------------------------------------ *)

let preprocess () =
  hr ();
  Fmt.pr "IND-extraction preprocessing time (Section 6.1)@.";
  Fmt.pr "(paper, at full scale: UW 1.2s, HIV 1.4m, IMDb 7.8m, FLT 1m, SYS 2.8m)@.";
  hr ();
  List.iter
    (fun (name, d) ->
      let cfg = config () in
      let bi = Autobias.bias_for Autobias.Auto_bias cfg d ~train_pos:d.Dataset.positives in
      match bi.Autobias.induction with
      | None -> ()
      | Some ind ->
          Fmt.pr "%-6s %7d tuples  %4d INDs  %8.3fs@." name
            (Relational.Database.total_tuples d.Dataset.db)
            (List.length ind.Discovery.Generate.inds)
            ind.Discovery.Generate.ind_time;
          Bench_json.record "preprocess"
            [ (name ^ ".tuples",
               Bench_json.I (Relational.Database.total_tuples d.Dataset.db));
              (name ^ ".inds",
               Bench_json.I (List.length ind.Discovery.Generate.inds));
              (name ^ ".ind_time_s",
               Bench_json.F ind.Discovery.Generate.ind_time) ])
    (selected_datasets ())

(* ------------------------------------------------------------------ *)
(* Table 5: methods of setting language bias.                         *)
(* ------------------------------------------------------------------ *)

let paper_table5 = function
  (* (method, dataset) -> the paper's "P/R/FM time" cell *)
  | "castor", "uw" -> "0.76/0.50/0.60 47s"
  | "castor", "imdb" -> "-/-/- >10h"
  | "castor", "hiv" -> "0.80/0.83/0.81 59.7m"
  | "castor", "flt" -> "-/-/- >10h"
  | "castor", "sys" -> "-/-/- >10h"
  | "noconst", "uw" -> "0.96/0.48/0.64 6.6s"
  | "noconst", "imdb" -> "0.68/0.51/0.58 9.2h"
  | "noconst", "hiv" -> "-/-/- >10h"
  | "noconst", "flt" -> "0/0/0 14m"
  | "noconst", "sys" -> "-/-/- >10h"
  | "manual", "uw" -> "0.93/0.54/0.68 11s"
  | "manual", "imdb" -> "1/0.99/0.99 2.7m"
  | "manual", "hiv" -> "0.74/0.84/0.78 22.6m"
  | "manual", "flt" -> "1/1/1 1m"
  | "manual", "sys" -> "0.9/0.51/0.65 41s"
  | "aleph", "uw" -> "0.78/0.17/0.27 3.5s"
  | "aleph", "imdb" -> "0.66/0.44/0.52 6.4m"
  | "aleph", "hiv" -> "0.72/0.69/0.70 6.2m"
  | "aleph", "flt" -> "0/0/0 6s"
  | "aleph", "sys" -> "0/0/0 6s"
  | "autobias", "uw" -> "0.84/0.54/0.64 24.4s"
  | "autobias", "imdb" -> "1/0.99/0.99 3.21m"
  | "autobias", "hiv" -> "0.80/0.85/0.82 35.1m"
  | "autobias", "flt" -> "1/1/1 5.04m"
  | "autobias", "sys" -> "0.89/0.51/0.65 41s"
  | _ -> "?"

let table5 () =
  hr ();
  Fmt.pr "Table 5 — methods of setting language bias (%d-fold CV, timeout %.0fs/fold)@."
    options.folds options.timeout;
  Fmt.pr "%-6s %-9s | %-30s | %s@." "data" "method" "measured P/R/FM time" "paper P/R/FM time";
  hr ();
  List.iter
    (fun (name, d) ->
      List.iter
        (fun method_ ->
          let mname = Autobias.method_to_string method_ in
          let cell =
            try
              let result =
                Autobias.cross_validate ~config:(config ()) ~k:options.folds
                  method_ d ~seed:options.seed
              in
              let m = result.CV.mean_metrics in
              Bench_json.record "table5"
                [ (name ^ "." ^ mname ^ ".precision", Bench_json.F m.Metrics.precision);
                  (name ^ "." ^ mname ^ ".recall", Bench_json.F m.Metrics.recall);
                  (name ^ "." ^ mname ^ ".f_measure", Bench_json.F m.Metrics.f_measure);
                  (name ^ "." ^ mname ^ ".mean_time_s", Bench_json.F result.CV.mean_time);
                  (name ^ "." ^ mname ^ ".timed_out", Bench_json.B result.CV.any_timed_out) ];
              Fmt.str "%.2f/%.2f/%.2f %s%s" m.Metrics.precision m.Metrics.recall
                m.Metrics.f_measure
                (CV.format_time result.CV.mean_time)
                (if result.CV.any_timed_out then " (timeout)" else "")
            with e -> "error: " ^ Printexc.to_string e
          in
          Fmt.pr "%-6s %-9s | %-30s | %s@." name mname cell
            (paper_table5 (mname, name));
          Format.pp_print_flush Format.std_formatter ())
        Autobias.all_methods;
      hr ())
    (selected_datasets ())

(* ------------------------------------------------------------------ *)
(* Table 6: sampling techniques.                                      *)
(* ------------------------------------------------------------------ *)

let paper_table6 = function
  | "naive", "uw" -> "0.64 24.4s"
  | "naive", "imdb" -> "0.99 3.21m"
  | "naive", "hiv" -> "0.82 35.1m"
  | "naive", "flt" -> "1 5.04m"
  | "naive", "sys" -> "0.65 41s"
  | "random", "uw" -> "0.61 50.23s"
  | "random", "imdb" -> "0.99 3.13m"
  | "random", "hiv" -> "0.83 21.87m"
  | "random", "flt" -> "1 4.96m"
  | "random", "sys" -> "0.39 2.19m"
  | "stratified", "uw" -> "0.54 37.86s"
  | "stratified", "imdb" -> "0.99 4.05m"
  | "stratified", "hiv" -> "0.79 34.16m"
  | "stratified", "flt" -> "1 4.94m"
  | "stratified", "sys" -> "0.35 6.41m"
  | _ -> "?"

let table6 () =
  hr ();
  Fmt.pr "Table 6 — sampling techniques under AutoBias (%d-fold CV, timeout %.0fs/fold)@."
    options.folds options.timeout;
  Fmt.pr "%-6s %-11s | %-22s | %s@." "data" "sampling" "measured FM time" "paper FM time";
  hr ();
  List.iter
    (fun (name, d) ->
      List.iter
        (fun strategy ->
          let sname = Sampling.Strategy.to_string strategy in
          let cell =
            try
              let result =
                Autobias.cross_validate ~config:(config ~strategy ())
                  ~k:options.folds Autobias.Auto_bias d ~seed:options.seed
              in
              Bench_json.record "table6"
                [ (name ^ "." ^ sname ^ ".f_measure",
                   Bench_json.F result.CV.mean_metrics.Metrics.f_measure);
                  (name ^ "." ^ sname ^ ".mean_time_s",
                   Bench_json.F result.CV.mean_time) ];
              Fmt.str "%.2f %s%s" result.CV.mean_metrics.Metrics.f_measure
                (CV.format_time result.CV.mean_time)
                (if result.CV.any_timed_out then " (timeout)" else "")
            with e -> "error: " ^ Printexc.to_string e
          in
          Fmt.pr "%-6s %-11s | %-22s | %s@." name sname cell
            (paper_table6 (sname, name));
          Format.pp_print_flush Format.std_formatter ())
        Sampling.Strategy.all;
      hr ())
    (selected_datasets ())

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out.               *)
(* ------------------------------------------------------------------ *)

let ablation_aind () =
  hr ();
  Fmt.pr "Ablation — approximate INDs on/off (Section 3.1 motivation)@.";
  Fmt.pr "Without approximate INDs the mixed publication[person]-style joins@.";
  Fmt.pr "disappear from the hypothesis space; UW recall should drop.@.";
  hr ();
  let d = generate "uw" in
  List.iter
    (fun use_approximate_inds ->
      let cfg = { (config ()) with Autobias.use_approximate_inds } in
      let result =
        Autobias.cross_validate ~config:cfg ~k:options.folds Autobias.Auto_bias
          d ~seed:options.seed
      in
      Fmt.pr "approximate INDs %-3s : %a  time=%s@."
        (if use_approximate_inds then "on" else "off")
        Metrics.pp_row result.CV.mean_metrics
        (CV.format_time result.CV.mean_time);
      let tag = if use_approximate_inds then "on" else "off" in
      Bench_json.record "ablation-aind"
        [ ("uw.aind_" ^ tag ^ ".f_measure",
           Bench_json.F result.CV.mean_metrics.Metrics.f_measure);
          ("uw.aind_" ^ tag ^ ".mean_time_s", Bench_json.F result.CV.mean_time) ])
    [ true; false ]

let ablation_threshold () =
  hr ();
  Fmt.pr "Ablation — constant-threshold sweep (Section 3.2; paper uses 18%%)@.";
  Fmt.pr "IMDb needs the 'drama' constant: too low a threshold loses the rule,@.";
  Fmt.pr "higher thresholds add modes (bias size) without accuracy gains.@.";
  hr ();
  let d = generate "imdb" in
  List.iter
    (fun ratio ->
      let cfg =
        { (config ()) with
          Autobias.constant_threshold = Discovery.Generate.Relative ratio }
      in
      let bi = Autobias.bias_for Autobias.Auto_bias cfg d ~train_pos:d.Dataset.positives in
      let result =
        Autobias.cross_validate ~config:cfg ~k:options.folds Autobias.Auto_bias
          d ~seed:options.seed
      in
      Fmt.pr "threshold %5.1f%% : bias size %3d, %a  time=%s@." (100. *. ratio)
        (Bias.Language.size bi.Autobias.bias) Metrics.pp_row
        result.CV.mean_metrics
        (CV.format_time result.CV.mean_time);
      let tag = Printf.sprintf "imdb.t%g" (100. *. ratio) in
      Bench_json.record "ablation-threshold"
        [ (tag ^ ".bias_size", Bench_json.I (Bias.Language.size bi.Autobias.bias));
          (tag ^ ".f_measure",
           Bench_json.F result.CV.mean_metrics.Metrics.f_measure) ])
    [ 0.001; 0.05; 0.18; 0.5 ]

(* ------------------------------------------------------------------ *)
(* Ablation: coverage testing engines (the Section 5 motivation).     *)
(* ------------------------------------------------------------------ *)

let ablation_coverage () =
  hr ();
  Fmt.pr "Ablation — coverage testing: θ-subsumption on ground BCs vs direct@.";
  Fmt.pr "query execution over the full database (Section 5). The paper argues@.";
  Fmt.pr "SQL-style evaluation of many-literal clauses is too slow; ground-BC@.";
  Fmt.pr "subsumption amortizes. Both engines run over every UW example.@.";
  hr ();
  let d = generate "hiv" in
  let rng = Random.State.make [| options.seed |] in
  let cov =
    Learning.Coverage.create d.Dataset.db d.Dataset.manual_bias ~rng
  in
  let examples = d.Dataset.positives @ d.Dataset.negatives in
  Learning.Coverage.warm cov examples;
  let crisp =
    Logic.Parser.clause
      "antiHIV(X) :- atm(X,A,n), atm(X,B,o), bond(X,A,B,double)"
  in
  let bottom =
    Learning.Bottom_clause.build d.Dataset.db d.Dataset.manual_bias ~rng
      ~example:(List.hd d.Dataset.positives)
  in
  let time = Obs.Trace.time in
  List.iter
    (fun (label, clause) ->
      let n_sub, t_sub =
        time (fun () -> Learning.Coverage.count cov clause examples)
      in
      let n_query, t_query =
        time (fun () -> Learning.Query.count d.Dataset.db clause examples)
      in
      Fmt.pr
        "%-22s (%3d literals): subsumption %4d covered in %8.4fs | query %4d covered in %8.4fs@."
        label (Logic.Clause.size clause) n_sub t_sub n_query t_query;
      let tag = if label = "learned clause" then "learned" else "bottom" in
      Bench_json.record "ablation-coverage"
        [ ("hiv." ^ tag ^ ".subsumption_s", Bench_json.F t_sub);
          ("hiv." ^ tag ^ ".query_s", Bench_json.F t_query) ])
    [ ("learned clause", crisp); ("raw bottom clause", bottom) ]

(* ------------------------------------------------------------------ *)
(* Ablation: clause-search strategies (extension baseline).           *)
(* ------------------------------------------------------------------ *)

let ablation_search () =
  hr ();
  Fmt.pr "Ablation — clause search strategies on the manual bias:@.";
  Fmt.pr "bottom-up ARMG beam (Castor/AutoBias), Progol/Aleph-style best-first@.";
  Fmt.pr "through the bottom clause, and greedy FOIL. FLT separates them:@.";
  Fmt.pr "its rule needs a coupled literal pair that greedy gain cannot reach.@.";
  hr ();
  List.iter
    (fun name ->
      let d = generate name in
      let run label learner =
        let rng = Random.State.make [| options.seed |] in
        let cov =
          Learning.Coverage.create d.Dataset.db d.Dataset.manual_bias ~rng
        in
        let definition, elapsed = Obs.Trace.time (fun () -> learner cov rng) in
        let m =
          Metrics.evaluate cov definition ~positives:d.Dataset.positives
            ~negatives:d.Dataset.negatives
        in
        Fmt.pr "%-5s %-18s %d clauses  %a  %s@." name label
          (List.length definition) Metrics.pp_row m (CV.format_time elapsed);
        Bench_json.record "ablation-search"
          [ (name ^ "." ^ label ^ ".f_measure", Bench_json.F m.Metrics.f_measure);
            (name ^ "." ^ label ^ ".time_s", Bench_json.F elapsed) ];
        Format.pp_print_flush Format.std_formatter ()
      in
      run "armg-beam" (fun cov rng ->
          (Learning.Learn.learn
             ~config:
               { Learning.Learn.default_config with timeout = Some options.timeout }
             cov ~rng ~positives:d.Dataset.positives
             ~negatives:d.Dataset.negatives)
            .Learning.Learn.definition);
      run "progol-best-first" (fun cov rng ->
          (Baselines.Progol.learn
             ~config:
               { Baselines.Progol.default_config with timeout = Some options.timeout }
             cov ~rng ~positives:d.Dataset.positives
             ~negatives:d.Dataset.negatives)
            .Baselines.Progol.definition);
      run "foil-greedy" (fun cov _rng ->
          (Baselines.Foil.learn
             ~config:
               { Baselines.Foil.default_config with timeout = Some options.timeout }
             cov ~positives:d.Dataset.positives
             ~negatives:d.Dataset.negatives)
            .Baselines.Foil.definition);
      hr ())
    (List.filter (fun n -> List.mem n options.data) [ "uw"; "flt" ])

(* ------------------------------------------------------------------ *)
(* Ablation: robustness to label noise.                               *)
(* ------------------------------------------------------------------ *)

let ablation_noise () =
  hr ();
  Fmt.pr "Ablation — label-noise robustness (UW, AutoBias): a fraction of@.";
  Fmt.pr "each class has its training label flipped; scoring uses the clean@.";
  Fmt.pr "labels. The minimum-precision criterion should absorb small noise.@.";
  hr ();
  let clean = generate "uw" in
  List.iter
    (fun fraction ->
      let rng = Random.State.make [| options.seed; 31 |] in
      let noisy = Dataset.flip_labels ~rng ~fraction clean in
      let cfg = config () in
      let r =
        Autobias.learn_once ~config:cfg Autobias.Auto_bias noisy ~rng
          ~train_pos:noisy.Dataset.positives
          ~train_neg:noisy.Dataset.negatives
      in
      let cov =
        Autobias.coverage_context cfg clean r.Autobias.bias_info.Autobias.bias
          ~rng
      in
      let m =
        Metrics.evaluate cov r.Autobias.definition
          ~positives:clean.Dataset.positives ~negatives:clean.Dataset.negatives
      in
      Fmt.pr "noise %4.0f%% : %d clauses, %a (scored on clean labels), %s@."
        (100. *. fraction)
        (List.length r.Autobias.definition)
        Metrics.pp_row m
        (CV.format_time r.Autobias.learn_time);
      Option.iter
        (fun deg -> Fmt.pr "             degradation: %a@." Budget.pp_degradation deg)
        r.Autobias.degradation;
      Bench_json.record "ablation-noise"
        [ (Printf.sprintf "uw.noise%g.f_measure" (100. *. fraction),
           Bench_json.F m.Metrics.f_measure) ];
      Format.pp_print_flush Format.std_formatter ())
    [ 0.0; 0.05; 0.1; 0.2 ]

(* ------------------------------------------------------------------ *)
(* Ablation: typing policies (AutoBias vs the overlap rule of [34]).  *)
(* ------------------------------------------------------------------ *)

let ablation_overlap () =
  hr ();
  Fmt.pr "Ablation — typing policy: AutoBias's IND type graph vs the@.";
  Fmt.pr "single-element-overlap rule of McCreath & Sharma ([34], Section 7).@.";
  Fmt.pr "Joinable attribute pairs proxy the hypothesis-space size; the paper@.";
  Fmt.pr "says overlap typing under-restricts it.@.";
  hr ();
  List.iter
    (fun (name, d) ->
      let auto =
        (Discovery.Generate.induce d.Dataset.db ~target:d.Dataset.target
           ~positive_examples:d.Dataset.positives)
          .Discovery.Generate.bias
      in
      let overlap =
        Discovery.Overlap_bias.induce d.Dataset.db ~target:d.Dataset.target
          ~positive_examples:d.Dataset.positives
      in
      Fmt.pr "%-6s joinable pairs: autobias %4d | overlap[34] %4d  (manual %4d)@."
        name
        (Discovery.Overlap_bias.joinable_pairs auto)
        (Discovery.Overlap_bias.joinable_pairs overlap)
        (Discovery.Overlap_bias.joinable_pairs d.Dataset.manual_bias);
      Bench_json.record "ablation-overlap"
        [ (name ^ ".autobias_pairs",
           Bench_json.I (Discovery.Overlap_bias.joinable_pairs auto));
          (name ^ ".overlap_pairs",
           Bench_json.I (Discovery.Overlap_bias.joinable_pairs overlap)) ];
      Format.pp_print_flush Format.std_formatter ())
    (selected_datasets ());
  (* On perfectly clean domains the two policies coincide; real data has
     dirty columns. Replay UW with one junk column mixing a student id, a
     professor id, a phase and a term — a single shared element per domain
     fuses everything under overlap typing, while the IND error thresholds
     shrug it off. *)
  let d = generate "uw" in
  let dirty =
    Relational.Relation.of_tuples
      (Relational.Schema.relation "scratchpad" [| "token" |])
      [ [| Relational.Value.str "s0" |]; [| Relational.Value.str "p0" |];
        [| Relational.Value.str "pre_quals" |];
        [| Relational.Value.str "autumn" |] ]
  in
  Relational.Database.add_relation d.Dataset.db dirty;
  let auto =
    (Discovery.Generate.induce d.Dataset.db ~target:d.Dataset.target
       ~positive_examples:d.Dataset.positives)
      .Discovery.Generate.bias
  in
  let overlap =
    Discovery.Overlap_bias.induce d.Dataset.db ~target:d.Dataset.target
      ~positive_examples:d.Dataset.positives
  in
  Fmt.pr "%-6s joinable pairs: autobias %4d | overlap[34] %4d  (one dirty 4-value column added)@."
    "uw+dirt"
    (Discovery.Overlap_bias.joinable_pairs auto)
    (Discovery.Overlap_bias.joinable_pairs overlap);
  Fmt.pr "under overlap typing, student[stud] ~ inPhase[phase]: %b; under AutoBias: %b@."
    (Bias.Language.share_type overlap "student" 0 "inPhase" 1)
    (Bias.Language.share_type auto "student" 0 "inPhase" 1)

(* ------------------------------------------------------------------ *)
(* Coverage: the incremental coverage engine, cache on vs off.        *)
(* ------------------------------------------------------------------ *)

(* A/B of the incremental coverage engine on the full learner: the same
   fixed-seed run with the verdict memo on and off. Verdicts are pure, so
   the learned definitions must be bit-identical (also under a 1-domain
   pool); the difference is how many subsumption tests actually run —
   surfaced through the Budget counters — and the wall clock. Monotone
   propagation (ARMG/reduction inheritance) is on in both modes. *)

let coverage_bench () =
  hr ();
  Fmt.pr "Coverage — incremental coverage engine A/B (verdict memo on/off)@.";
  Fmt.pr "same seed, same learner; definitions must be bit-identical@.";
  hr ();
  let d = generate "uw" in
  let positives = d.Dataset.positives and negatives = d.Dataset.negatives in
  let run ?pool ?(use_compiled = true) use_cache =
    let b = Budget.create () in
    let rng = Random.State.make [| options.seed; 3 |] in
    (* pruning off: the A/Bs below compare subsumption-try counts between
       memo on/off and compiled/symbolic; the failure-constraint store
       (compiled-only) would skew both comparisons. It gets its own
       experiment ("pruning"). *)
    let cov =
      Learning.Coverage.create ~use_cache ~use_compiled ~use_pruning:false
        d.Dataset.db d.Dataset.manual_bias ~rng
    in
    let config =
      { Learning.Learn.default_config with
        timeout = Some options.timeout; budget = Some b; pool }
    in
    let r, elapsed =
      Obs.Trace.time (fun () ->
          Learning.Learn.learn ~config cov ~rng ~positives ~negatives)
    in
    (r, elapsed, Budget.counters b, Learning.Coverage.cache_stats cov)
  in
  let rc, tc, cc, sc = run true in
  let ru, tu, cu, _ = run false in
  let render def = Logic.Clause.definition_to_string def in
  let identical =
    render rc.Learning.Learn.definition = render ru.Learning.Learn.definition
  in
  let rp, _, _, _ = Parallel.Pool.with_pool ~size:1 (fun p -> run ~pool:p true) in
  let identical_pool =
    render rc.Learning.Learn.definition = render rp.Learning.Learn.definition
  in
  let requests = sc.Learning.Coverage.hits + sc.Learning.Coverage.misses in
  let hit_rate =
    if requests = 0 then 0.
    else float_of_int sc.Learning.Coverage.hits /. float_of_int requests
  in
  let tries_ratio =
    if cc.Budget.subsumption_tries = 0 then 0.
    else
      float_of_int cu.Budget.subsumption_tries
      /. float_of_int cc.Budget.subsumption_tries
  in
  Fmt.pr "cache on : %8.3fs  %7d subsumption tries  %7d inherited@." tc
    cc.Budget.subsumption_tries cc.Budget.coverage_inherited;
  Fmt.pr "cache off: %8.3fs  %7d subsumption tries  %7d inherited@." tu
    cu.Budget.subsumption_tries cu.Budget.coverage_inherited;
  Fmt.pr
    "memo: %d hits / %d misses (hit rate %.1f%%, %d entries); tries ratio \
     off/on %.2fx; wall speedup %.2fx@."
    sc.Learning.Coverage.hits sc.Learning.Coverage.misses (100. *. hit_rate)
    sc.Learning.Coverage.entries tries_ratio (tu /. tc);
  Fmt.pr "definitions identical: %s (sequential) / %s (1-domain pool), %d clauses@."
    (if identical then "YES" else "NO -- DETERMINISM BUG")
    (if identical_pool then "YES" else "NO -- DETERMINISM BUG")
    (List.length rc.Learning.Learn.definition);
  Bench_json.record "coverage"
    [ ("uw.cached_s", Bench_json.F tc);
      ("uw.uncached_s", Bench_json.F tu);
      ("uw.speedup", Bench_json.F (tu /. tc));
      ("uw.cached_tries", Bench_json.I cc.Budget.subsumption_tries);
      ("uw.uncached_tries", Bench_json.I cu.Budget.subsumption_tries);
      ("uw.tries_ratio", Bench_json.F tries_ratio);
      ("uw.memo_hits", Bench_json.I sc.Learning.Coverage.hits);
      ("uw.memo_misses", Bench_json.I sc.Learning.Coverage.misses);
      ("uw.memo_entries", Bench_json.I sc.Learning.Coverage.entries);
      ("uw.hit_rate", Bench_json.F hit_rate);
      ("uw.inherited", Bench_json.I cc.Budget.coverage_inherited);
      ("uw.clauses", Bench_json.I (List.length rc.Learning.Learn.definition));
      ("uw.identical_on_vs_off", Bench_json.B identical);
      ("uw.identical_pool1", Bench_json.B identical_pool) ];
  (* ---- Compiled evaluation A/B (the clause-compilation layer) ---- *)
  hr ();
  Fmt.pr "Coverage — compiled evaluation A/B (int-coded kernel vs symbolic)@.";
  hr ();
  (* Full-learner A/B first: same fixed seed, kernel on vs off; definitions
     must be bit-identical, sequentially and under a 1-domain pool. *)
  let rs, ts, cs, _ = run ~use_compiled:false true in
  let compiled_identical =
    render rc.Learning.Learn.definition = render rs.Learning.Learn.definition
  in
  let compiled_identical_pool =
    render rs.Learning.Learn.definition = render rp.Learning.Learn.definition
  in
  Fmt.pr "compiled : %8.3fs  %7d subsumption tries@." tc
    cc.Budget.subsumption_tries;
  Fmt.pr "symbolic : %8.3fs  %7d subsumption tries@." ts
    cs.Budget.subsumption_tries;
  Fmt.pr "learner wall speedup %.2fx; definitions identical: %s (sequential) \
          / %s (1-domain pool)@."
    (ts /. tc)
    (if compiled_identical then "YES" else "NO -- DETERMINISM BUG")
    (if compiled_identical_pool then "YES" else "NO -- DETERMINISM BUG");
  (* Per-eval latency distribution: one beam-step-shaped workload (bottom
     clauses plus ARMG generalization chains), every (clause, example) pair
     timed individually on fresh UNCACHED contexts so each sample is a real
     evaluation, not a memo probe. Exact percentiles from the sorted
     arrays — the process-wide Obs histogram (coverage.eval_s) is
     log-bucketed and shared between the two passes, so it cannot give an
     honest A/B. *)
  let mk_uncached use_compiled =
    (* pruning off: the back-to-back eval pairs below must both be real
       evaluations, not a prune-store probe answering the second one *)
    Learning.Coverage.create ~use_cache:false ~use_compiled
      ~use_pruning:false d.Dataset.db d.Dataset.manual_bias
      ~rng:(Random.State.make [| options.seed; 3 |])
  in
  let examples = positives @ negatives in
  let candidates =
    let cov = mk_uncached true in
    let rng = Random.State.make [| options.seed; 11 |] in
    let acc = ref [] in
    List.iter
      (fun seed ->
        let c =
          ref (Learning.Bottom_clause.build d.Dataset.db d.Dataset.manual_bias
                 ~rng ~example:seed)
        in
        acc := !c :: !acc;
        List.iteri
          (fun i e ->
            if i mod 3 = 0 then
              match Learning.Armg.generalize cov !c ~example:e with
              | Some c' ->
                  c := c';
                  acc := c' :: !acc
              | None -> ())
          positives)
      (Logic.Util.take 4 positives);
    !acc
  in
  let time_evals cov =
    Learning.Coverage.warm cov examples;
    let ts = ref [] and verdicts = ref [] in
    List.iter
      (fun c ->
        List.iter
          (fun e ->
            (* min of 2 back-to-back runs per pair: drops timer noise
               without letting the memo answer (the context is uncached) *)
            let t0 = Unix.gettimeofday () in
            let v = Learning.Coverage.eval cov c e in
            let t1 = Unix.gettimeofday () in
            let v' = Learning.Coverage.eval cov c e in
            let t2 = Unix.gettimeofday () in
            ignore v';
            ts := Float.min (t1 -. t0) (t2 -. t1) :: !ts;
            verdicts := v :: !verdicts)
          examples)
      candidates;
    let a = Array.of_list !ts in
    Array.sort compare a;
    (a, !verdicts)
  in
  let pct = Obs.Metrics.percentile in
  let a_c, v_c = time_evals (mk_uncached true) in
  let a_s, v_s = time_evals (mk_uncached false) in
  let verdicts_agree =
    List.for_all2
      (fun x y ->
        match (x, y) with
        | Logic.Subsumption.Covered w1, Logic.Subsumption.Covered w2 ->
            Logic.Substitution.compare w1 w2 = 0
        | Logic.Subsumption.Blocked i, Logic.Subsumption.Blocked j -> i = j
        | _ -> false)
      v_c v_s
  in
  let p50_c = pct a_c 0.50 and p95_c = pct a_c 0.95 in
  let p50_s = pct a_s 0.50 and p95_s = pct a_s 0.95 in
  Fmt.pr "per-eval latency over %d evaluations (%d candidates x %d examples):@."
    (Array.length a_c) (List.length candidates) (List.length examples);
  Fmt.pr "compiled : p50 %8.1fus  p95 %8.1fus@." (1e6 *. p50_c) (1e6 *. p95_c);
  Fmt.pr "symbolic : p50 %8.1fus  p95 %8.1fus@." (1e6 *. p50_s) (1e6 *. p95_s);
  Fmt.pr "speedup  : p50 %7.2fx   p95 %7.2fx; verdicts agree on every pair: %s@."
    (p50_s /. Float.max p50_c 1e-9)
    (p95_s /. Float.max p95_c 1e-9)
    (if verdicts_agree then "YES" else "NO -- SOUNDNESS BUG");
  Bench_json.record "coverage"
    [ ("uw.compiled_s", Bench_json.F tc);
      ("uw.symbolic_s", Bench_json.F ts);
      ("uw.compiled_wall_speedup", Bench_json.F (ts /. tc));
      ("uw.compiled_identical_on_vs_off", Bench_json.B compiled_identical);
      ("uw.compiled_identical_pool1", Bench_json.B compiled_identical_pool);
      ("uw.compiled_verdicts_agree", Bench_json.B verdicts_agree);
      ("uw.eval_count", Bench_json.I (Array.length a_c));
      ("uw.eval_p50_compiled_s", Bench_json.F p50_c);
      ("uw.eval_p95_compiled_s", Bench_json.F p95_c);
      ("uw.eval_p50_symbolic_s", Bench_json.F p50_s);
      ("uw.eval_p95_symbolic_s", Bench_json.F p95_s);
      ("uw.eval_p50_speedup", Bench_json.F (p50_s /. Float.max p50_c 1e-9));
      ("uw.eval_p95_speedup", Bench_json.F (p95_s /. Float.max p95_c 1e-9)) ]

(* ------------------------------------------------------------------ *)
(* Pruning: the failure-constraint store A/B (prune on vs off).       *)
(* ------------------------------------------------------------------ *)

(* The same fixed-seed full-learner run with the failure-constraint store
   on and off. A stored signature is an exact verdict cache (the prefix up
   to and including the blocking literal determines the capped evaluator's
   verdict), so pruning is verdict-preserving: the definitions must be
   bit-identical, sequentially and under a 2-domain pool. What the store
   buys is fewer subsumption tries — uw.tries_ratio = tries(on)/tries(off),
   gated at ≤ 0.8 in CI — plus whole candidates skipped without any
   evaluation (Budget.Candidate_pruned). *)

let pruning_bench () =
  hr ();
  Fmt.pr "Pruning — failure-constraint store A/B (prune on/off)@.";
  Fmt.pr "same seed, same learner; definitions must be bit-identical@.";
  hr ();
  let d = generate "uw" in
  let positives = d.Dataset.positives and negatives = d.Dataset.negatives in
  let run ?pool use_pruning =
    let b = Budget.create () in
    let rng = Random.State.make [| options.seed; 3 |] in
    let cov =
      Learning.Coverage.create ~use_pruning d.Dataset.db d.Dataset.manual_bias
        ~rng
    in
    let config =
      { Learning.Learn.default_config with
        timeout = Some options.timeout; budget = Some b; pool }
    in
    let r, elapsed =
      Obs.Trace.time (fun () ->
          Learning.Learn.learn ~config cov ~rng ~positives ~negatives)
    in
    (r, elapsed, Budget.counters b, Learning.Coverage.prune_stats cov)
  in
  let rp, tp, cp, sp = run true in
  let ru, tu, cu, _ = run false in
  let render def = Logic.Clause.definition_to_string def in
  let identical =
    render rp.Learning.Learn.definition = render ru.Learning.Learn.definition
  in
  let r2, _, _, _ = Parallel.Pool.with_pool ~size:2 (fun p -> run ~pool:p true) in
  let identical_pool =
    render rp.Learning.Learn.definition = render r2.Learning.Learn.definition
  in
  let tries_ratio =
    if cu.Budget.subsumption_tries = 0 then 1.
    else
      float_of_int cp.Budget.subsumption_tries
      /. float_of_int cu.Budget.subsumption_tries
  in
  let hit_rate =
    if sp.Learning.Coverage.probes = 0 then 0.
    else
      float_of_int sp.Learning.Coverage.hits
      /. float_of_int sp.Learning.Coverage.probes
  in
  Fmt.pr "prune on : %8.3fs  %7d subsumption tries  %5d candidates pruned@."
    tp cp.Budget.subsumption_tries cp.Budget.candidates_pruned;
  Fmt.pr "prune off: %8.3fs  %7d subsumption tries@." tu
    cu.Budget.subsumption_tries;
  Fmt.pr
    "store: %d constraints learned; %d/%d probe hits (%.1f%%); tries ratio \
     on/off %.2fx; wall speedup %.2fx@."
    sp.Learning.Coverage.constraints sp.Learning.Coverage.hits
    sp.Learning.Coverage.probes (100. *. hit_rate) tries_ratio (tu /. tp);
  Fmt.pr "definitions identical: %s (sequential) / %s (2-domain pool), %d clauses@."
    (if identical then "YES" else "NO -- SOUNDNESS BUG")
    (if identical_pool then "YES" else "NO -- SOUNDNESS BUG")
    (List.length rp.Learning.Learn.definition);
  Bench_json.record "pruning"
    [ ("uw.pruned_s", Bench_json.F tp);
      ("uw.unpruned_s", Bench_json.F tu);
      ("uw.prune_speedup", Bench_json.F (tu /. tp));
      ("uw.pruned_tries", Bench_json.I cp.Budget.subsumption_tries);
      ("uw.unpruned_tries", Bench_json.I cu.Budget.subsumption_tries);
      ("uw.tries_ratio", Bench_json.F tries_ratio);
      ("uw.candidates_pruned", Bench_json.I cp.Budget.candidates_pruned);
      ("uw.constraints_learned", Bench_json.I cp.Budget.constraints_learned);
      ("uw.prune_probes", Bench_json.I sp.Learning.Coverage.probes);
      ("uw.prune_hits", Bench_json.I sp.Learning.Coverage.hits);
      ("uw.prune_hit_rate", Bench_json.F hit_rate);
      ("uw.prune_constraints", Bench_json.I sp.Learning.Coverage.constraints);
      ("uw.clauses", Bench_json.I (List.length rp.Learning.Learn.definition));
      ("uw.prune_identical",
       Bench_json.B (identical && identical_pool)) ]

(* ------------------------------------------------------------------ *)
(* Scaling: the beam-evaluation workload across domain-pool sizes.    *)
(* ------------------------------------------------------------------ *)

(* The workload mirrors one beam step of the learner: a set of ARMG-derived
   candidate clauses, each counted against every training example through
   the warmed coverage cache — the path that dominates learning cost
   (Section 5). The same workload runs sequentially and on pools of
   1/2/4/N domains; coverage is deterministic per example, so every
   configuration must produce identical counts, and the wall-clock ratio is
   the speedup. A full Learn.learn determinism check (pool = None vs a
   1-domain pool) closes the experiment. *)

let scaling () =
  hr ();
  Fmt.pr "Scaling — parallel beam-candidate evaluation (domain pools)@.";
  Fmt.pr "host: %d core(s) recommended by the runtime; pool sizes 1/2/4/N@."
    (Domain.recommended_domain_count ());
  hr ();
  let d = generate "uw" in
  let rng = Random.State.make [| options.seed |] in
  (* Uncached context for the pool timings: the repeated passes below would
     otherwise be answered from the verdict memo and measure lock-striped
     table probes instead of parallel subsumption. The memo's own effect is
     measured separately at the end. *)
  let cov =
    Learning.Coverage.create ~use_cache:false ~use_pruning:false
      d.Dataset.db d.Dataset.manual_bias ~rng
  in
  let positives = d.Dataset.positives and negatives = d.Dataset.negatives in
  let examples = positives @ negatives in
  Learning.Coverage.warm cov examples;
  (* Candidate set: ARMG generalization chains from a few seeds, exactly
     what a beam step evaluates. *)
  let candidates = ref [] in
  List.iter
    (fun seed ->
      let c =
        ref (Learning.Bottom_clause.build d.Dataset.db d.Dataset.manual_bias
               ~rng ~example:seed)
      in
      candidates := !c :: !candidates;
      List.iteri
        (fun i e ->
          if i mod 3 = 0 then
            match Learning.Armg.generalize cov !c ~example:e with
            | Some c' ->
                c := c';
                candidates := c' :: !candidates
            | None -> ())
        positives)
    (Logic.Util.take 4 positives);
  let candidates = !candidates in
  Fmt.pr "workload: %d candidates x %d examples per evaluation pass@."
    (List.length candidates) (List.length examples);
  let eval_all pool =
    Parallel.Par.parallel_map ?pool
      (fun c -> Learning.Coverage.count cov c examples)
      candidates
  in
  (* min of 3 passes: the workload is short; the min discards warmup and
     scheduler noise *)
  let best_of_3 f =
    let once () = Obs.Trace.time f in
    let r1, t1 = once () in
    let _, t2 = once () in
    let _, t3 = once () in
    (r1, min t1 (min t2 t3))
  in
  let baseline, t_seq = best_of_3 (fun () -> eval_all None) in
  Fmt.pr "%-12s %8.4fs@." "sequential" t_seq;
  let sizes =
    List.sort_uniq compare
      (1 :: 2 :: 4
      :: (match options.domains with
         | Some n -> [ n ]
         | None -> [ Parallel.Pool.default_size () ]))
  in
  let timings =
    List.map
      (fun size ->
        Parallel.Pool.with_pool ~size (fun p ->
            let counts, t = best_of_3 (fun () -> eval_all (Some p)) in
            if counts <> baseline then
              Fmt.pr "!! counts diverged at %d domains (determinism bug)@." size;
            (size, t, counts = baseline)))
      sizes
  in
  let t1 =
    match timings with (1, t, _) :: _ -> t | _ -> assert false
  in
  List.iter
    (fun (size, t, _) ->
      Fmt.pr "%-12s %8.4fs  speedup vs 1 domain: %.2fx@."
        (Printf.sprintf "%d domain(s)" size)
        t (t1 /. t))
    timings;
  (* Full-learner determinism: pool = None and a 1-domain pool must learn
     the identical definition on a fixed seed. *)
  let learn_with pool =
    let rng = Random.State.make [| options.seed; 7 |] in
    let cov =
      Learning.Coverage.create d.Dataset.db d.Dataset.manual_bias ~rng
    in
    let config =
      { Learning.Learn.default_config with
        timeout = Some options.timeout; pool }
    in
    (Learning.Learn.learn ~config cov ~rng ~positives ~negatives)
      .Learning.Learn.definition
  in
  let def_seq = learn_with None in
  let def_par =
    Parallel.Pool.with_pool ~size:1 (fun p -> learn_with (Some p))
  in
  let identical =
    Logic.Clause.definition_to_string def_seq
    = Logic.Clause.definition_to_string def_par
  in
  Fmt.pr "Learn.learn sequential == 1-domain pool: %s (%d clauses)@."
    (if identical then "IDENTICAL" else "DIVERGED")
    (List.length def_seq);
  (* Verdict-memo A/B over the same workload: three evaluation passes (a
     beam re-scores overlapping candidates constantly), counting actual
     subsumption tests through the Budget counters. With the memo, repeat
     passes are all hits, so the off/on ratio must clear ~2x. *)
  let memo_tries use_cache =
    let b = Budget.create () in
    let rng = Random.State.make [| options.seed |] in
    (* pruning off: repeat passes would otherwise be answered by the
       failure-constraint store, contaminating the memo's off/on ratio *)
    let cov =
      Learning.Coverage.create ~use_cache ~use_pruning:false ~budget:b
        d.Dataset.db d.Dataset.manual_bias ~rng
    in
    Learning.Coverage.warm cov examples;
    let counts = ref [] in
    for _ = 1 to 3 do
      counts :=
        List.map (fun c -> Learning.Coverage.count cov c examples) candidates
    done;
    (!counts, (Budget.counters b).Budget.subsumption_tries)
  in
  let counts_on, tries_on = memo_tries true in
  let counts_off, tries_off = memo_tries false in
  let memo_ratio =
    if tries_on = 0 then 0. else float_of_int tries_off /. float_of_int tries_on
  in
  if counts_on <> counts_off then
    Fmt.pr "!! memo changed coverage counts (determinism bug)@.";
  Fmt.pr
    "verdict memo over 3 passes: %d tries with cache, %d without (%.2fx fewer)@."
    tries_on tries_off memo_ratio;
  let all_deterministic = List.for_all (fun (_, _, ok) -> ok) timings in
  Bench_json.record "scaling"
    ([ ("candidates", Bench_json.I (List.length candidates));
       ("examples", Bench_json.I (List.length examples));
       ("cores_recommended", Bench_json.I (Domain.recommended_domain_count ()));
       ("sequential_s", Bench_json.F t_seq) ]
    @ List.concat_map
        (fun (size, t, _) ->
          [ (Printf.sprintf "domains%d_s" size, Bench_json.F t);
            (Printf.sprintf "speedup_%dv1" size, Bench_json.F (t1 /. t)) ])
        timings
    @ [ ("counts_deterministic", Bench_json.B all_deterministic);
        ("learn_identical_seq_vs_1domain", Bench_json.B identical);
        ("memo_tries_on", Bench_json.I tries_on);
        ("memo_tries_off", Bench_json.I tries_off);
        ("memo_tries_ratio", Bench_json.F memo_ratio);
        ("memo_counts_identical", Bench_json.B (counts_on = counts_off)) ])

(* ------------------------------------------------------------------ *)
(* Resilience: checkpoint overhead and recovery time.                 *)
(* ------------------------------------------------------------------ *)

(* The checkpoint/resume layer's costs, measured on the full UW learner at
   the same fixed seed: wall-clock overhead of snapshotting at every clause
   boundary (vs the identical run with no sink), the serialized snapshot
   size, the time a resumed run takes to reach its first new clause
   boundary, and — the invariant everything else rests on — that the
   resumed definition is bit-identical to the uninterrupted one. *)

let resilience_bench () =
  hr ();
  Fmt.pr "Resilience — checkpoint overhead, snapshot size, recovery time@.";
  Fmt.pr "same seed; resumed definition must be bit-identical@.";
  hr ();
  let d = generate "uw" in
  let positives = d.Dataset.positives and negatives = d.Dataset.negatives in
  let run ?checkpoint ?resume () =
    let rng = Random.State.make [| options.seed; 13 |] in
    let cov =
      Learning.Coverage.create d.Dataset.db d.Dataset.manual_bias ~rng
    in
    let config =
      { Learning.Learn.default_config with
        timeout = Some options.timeout;
        checkpoint;
        checkpoint_every = 1;
        resume }
    in
    Obs.Trace.time (fun () ->
        Learning.Learn.learn ~config cov ~rng ~positives ~negatives)
  in
  (* min of 3: learner runs are seconds-long; the min strips warmup and
     allocator noise so a ≤5% overhead bound is actually measurable *)
  let best_of_3 f =
    let r1, t1 = f () in
    let _, t2 = f () in
    let _, t3 = f () in
    (r1, min t1 (min t2 t3))
  in
  let r0, t_base = best_of_3 (fun () -> run ()) in
  let tmp = Filename.temp_file "autobias_bench" ".ckpt.json" in
  let checkpoints = ref [] in
  let sink ck =
    checkpoints := ck :: !checkpoints;
    Resilience.Checkpoint.save ck tmp
  in
  let r1, t_ck = best_of_3 (fun () -> checkpoints := []; run ~checkpoint:sink ()) in
  let n_checkpoints = List.length !checkpoints in
  let ck_bytes =
    match !checkpoints with
    | [] -> 0
    | ck :: _ -> String.length (Obs.Json.to_string (Resilience.Checkpoint.to_json ck))
  in
  let overhead_pct =
    if t_base <= 0. then 0. else 100. *. (t_ck -. t_base) /. t_base
  in
  let render = Logic.Clause.definition_to_string in
  let checkpointed_identical =
    render r0.Learning.Learn.definition = render r1.Learning.Learn.definition
  in
  (* Resume from the earliest snapshot (boundary 1) and clock the time to
     the first post-resume clause boundary — the "back in business" lag. *)
  let resume_identical, recovery_s =
    match List.rev !checkpoints with
    | [] -> (checkpointed_identical, 0.)
    | first :: _ ->
        let t_first = ref None in
        let t_start = Unix.gettimeofday () in
        let probe _ck =
          if !t_first = None then t_first := Some (Unix.gettimeofday () -. t_start);
          `Skipped
        in
        let r2, t_resume = run ~checkpoint:probe ~resume:first () in
        ( render r0.Learning.Learn.definition
          = render r2.Learning.Learn.definition,
          Option.value !t_first ~default:t_resume )
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  Fmt.pr "baseline     : %8.3fs@." t_base;
  Fmt.pr "checkpointed : %8.3fs  (%d snapshots, %d bytes each, every boundary)@."
    t_ck n_checkpoints ck_bytes;
  Fmt.pr "overhead     : %7.2f%%  (acceptance bound: 5%%)@." overhead_pct;
  Fmt.pr "recovery     : %8.3fs to the first post-resume clause boundary@."
    recovery_s;
  Fmt.pr "definitions identical: checkpointed %s / resumed %s@."
    (if checkpointed_identical then "YES" else "NO -- CHECKPOINT PERTURBED THE RUN")
    (if resume_identical then "YES" else "NO -- RESUME DIVERGED");
  Bench_json.record "resilience"
    [ ("uw.baseline_s", Bench_json.F t_base);
      ("uw.checkpointed_s", Bench_json.F t_ck);
      ("uw.checkpoint_overhead_pct", Bench_json.F overhead_pct);
      ("uw.checkpoint_bytes", Bench_json.I ck_bytes);
      ("uw.checkpoints_written", Bench_json.I n_checkpoints);
      ("uw.recovery_first_clause_s", Bench_json.F recovery_s);
      ("uw.checkpointed_identical", Bench_json.B checkpointed_identical);
      ("uw.resume_identical", Bench_json.B resume_identical) ]

(* ------------------------------------------------------------------ *)
(* Serving: closed-loop load generation against the learning daemon.  *)
(* ------------------------------------------------------------------ *)

(* Two measurements. First a closed-loop soak: N client domains drive
   learn jobs through the daemon's bounded queue on a supervised pool
   (chaos-injected when --chaos-layers is given), and every job must end
   in exactly one of completed / degraded / rejected / quarantined /
   failed. Then, with chaos cleared, a single request through a pool-less
   daemon must produce a definition bit-identical to the direct library
   call — serving must not perturb learning. This experiment runs last
   (and clears the chaos registry), so keep it at the end of the list. *)
let server_bench () =
  hr ();
  Fmt.pr "Serving — closed-loop load against the learning daemon@.";
  Fmt.pr
    "admission control, per-job deadlines, retry/quarantine; every job \
     accounted@.";
  hr ();
  let catalog = Server.Catalog.create () in
  let scale = Option.value options.scale ~default:0.2 in
  let timeout = Float.min options.timeout 5. in
  let template = Server.Protocol.default_common "uw" in
  let requests i =
    Server.Protocol.Learn
      {
        template with
        Server.Protocol.scale;
        seed = options.seed + (i mod 4);
        timeout;
        deadline = Some 3.0;
      }
  in
  let config =
    {
      Server.Daemon.default_config with
      max_in_flight = 2;
      max_queue = 1;
      max_attempts = 3;
      policy = { Resilience.Policy.default with seed = options.seed };
    }
  in
  let clients = 6 and jobs = 60 in
  let handler = Server.Handler.default catalog in
  let summary, stats =
    Parallel.Pool.with_pool
      ~size:(Option.value options.domains ~default:2)
      ?chaos:(Chaos.get "pool")
      (fun p ->
        let daemon = Server.Daemon.create ~pool:p ~config handler in
        let s =
          Server.Loadgen.run ~clients ~jobs ~reject_retries:40 daemon requests
        in
        Server.Daemon.drain ~deadline:10. daemon;
        (s, Server.Daemon.stats daemon))
  in
  Fmt.pr
    "%d jobs, %d clients, %.1fs wall: %d completed, %d degraded, %d \
     rejected (%d reject events), %d quarantined, %d failed (%d retries)@."
    summary.Server.Loadgen.jobs summary.Server.Loadgen.clients
    summary.Server.Loadgen.wall_s summary.Server.Loadgen.completed
    summary.Server.Loadgen.degraded summary.Server.Loadgen.rejected
    summary.Server.Loadgen.reject_events summary.Server.Loadgen.quarantined
    summary.Server.Loadgen.failed summary.Server.Loadgen.retries;
  Fmt.pr "latency: p50 %.3fs  p95 %.3fs  p99 %.3fs; reject rate %.2f@."
    summary.Server.Loadgen.p50_s summary.Server.Loadgen.p95_s
    summary.Server.Loadgen.p99_s summary.Server.Loadgen.reject_rate;
  Fmt.pr "every job accounted for: %s@."
    (if summary.Server.Loadgen.accounted then "YES"
     else "NO -- A SUBMISSION WAS SILENTLY DROPPED");
  let chaos_ticks, chaos_fired =
    List.fold_left
      (fun (t, f) (_, c) ->
        ( t + c.Chaos.n_tickets,
          f + c.Chaos.n_injected + c.Chaos.n_killed + c.Chaos.n_delayed ))
      (0, 0) (Chaos.snapshot ())
  in
  (* identity check below must be chaos-free: injected faults would shift
     retry counts, not results — but keep the comparison exact *)
  Chaos.clear ();
  let direct_definition =
    let c = Server.Protocol.common_of_request (requests 0) in
    let d =
      match
        Server.Catalog.load catalog ~name:c.Server.Protocol.dataset
          ~scale:c.Server.Protocol.scale ~seed:c.Server.Protocol.seed
      with
      | Ok d -> d
      | Error e -> failwith (Server.Catalog.error_to_string e)
    in
    let config =
      {
        Autobias.default_config with
        strategy = Sampling.Strategy.of_string c.Server.Protocol.strategy;
        timeout = Some c.Server.Protocol.timeout;
        budget = Some (Budget.create ());
        pool = None;
      }
    in
    let rng = Random.State.make [| c.Server.Protocol.seed |] in
    let r =
      Autobias.learn_once ~config
        (Autobias.method_of_string c.Server.Protocol.method_)
        d ~rng ~train_pos:d.Dataset.positives ~train_neg:d.Dataset.negatives
    in
    Logic.Clause.definition_to_string r.Autobias.definition
  in
  let served_definition =
    let daemon = Server.Daemon.create ~config handler in
    match Server.Daemon.submit_and_wait daemon (requests 0) with
    | Ok
        {
          Server.Protocol.outcome =
            ( Server.Protocol.Completed payload
            | Server.Protocol.Degraded (payload, _) );
          _;
        } -> (
        match List.assoc_opt "definition" payload with
        | Some (Obs.Json.Str s) -> s
        | _ -> "<no definition in payload>")
    | Ok _ -> "<job did not complete>"
    | Error rej -> Server.Protocol.rejection_to_string rej
  in
  let single_identical = direct_definition = served_definition in
  Fmt.pr "served definition identical to direct call: %s@."
    (if single_identical then "YES" else "NO -- SERVING PERTURBED LEARNING");
  Bench_json.record "server"
    [ ("server.jobs", Bench_json.I summary.Server.Loadgen.jobs);
      ("server.clients", Bench_json.I summary.Server.Loadgen.clients);
      ("server.completed", Bench_json.I summary.Server.Loadgen.completed);
      ("server.degraded", Bench_json.I summary.Server.Loadgen.degraded);
      ("server.rejected", Bench_json.I summary.Server.Loadgen.rejected);
      ("server.reject_events",
       Bench_json.I summary.Server.Loadgen.reject_events);
      ("server.quarantined", Bench_json.I summary.Server.Loadgen.quarantined);
      ("server.failed", Bench_json.I summary.Server.Loadgen.failed);
      ("server.retries", Bench_json.I stats.Server.Daemon.retries);
      ("server.wall_s", Bench_json.F summary.Server.Loadgen.wall_s);
      ("server.p50_latency_s", Bench_json.F summary.Server.Loadgen.p50_s);
      ("server.p95_latency_s", Bench_json.F summary.Server.Loadgen.p95_s);
      ("server.p99_latency_s", Bench_json.F summary.Server.Loadgen.p99_s);
      ("server.reject_rate", Bench_json.F summary.Server.Loadgen.reject_rate);
      ("server.outcomes_accounted",
       Bench_json.B summary.Server.Loadgen.accounted);
      ("server.chaos_ticks", Bench_json.I chaos_ticks);
      ("server.chaos_fired", Bench_json.I chaos_fired);
      ("server.single_identical", Bench_json.B single_identical) ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core operations.                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  hr ();
  Fmt.pr "Micro-benchmarks (Bechamel, monotonic clock; OLS estimates)@.";
  hr ();
  let open Bechamel in
  let d = Datasets.Uw.generate ~scale:1.0 () in
  let bias = d.Dataset.manual_bias in
  let rng = Random.State.make [| 1 |] in
  let example = List.hd d.Dataset.positives in
  let bc_test strategy =
    let cfg = { Learning.Bottom_clause.default_config with strategy } in
    Test.make
      ~name:("bc-" ^ Sampling.Strategy.to_string strategy)
      (Staged.stage (fun () ->
           ignore
             (Learning.Bottom_clause.build ~config:cfg d.Dataset.db bias ~rng
                ~example)))
  in
  let cov = Learning.Coverage.create d.Dataset.db bias ~rng in
  Learning.Coverage.warm cov [ example ];
  let gold =
    Logic.Parser.clause "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)"
  in
  let ground = Learning.Coverage.ground_of cov example in
  let subsumption_tests =
    [
      Test.make ~name:"subsume-backtracking"
        (Staged.stage (fun () -> ignore (Logic.Subsumption.subsumes gold ground)));
      Test.make ~name:"subsume-frontier"
        (Staged.stage (fun () ->
             ignore
               (Logic.Subsumption.covers_ground
                  ~subst:Logic.Substitution.empty gold ground)));
    ]
  in
  let flight = Relational.Database.find (generate "flt").Dataset.db "flight" in
  let keys = Relational.Relation.project flight 1 in
  let sampling_tests =
    let sample_test strategy =
      Test.make
        ~name:("sample-" ^ Sampling.Strategy.to_string strategy)
        (Staged.stage (fun () ->
             ignore
               (Sampling.Strategy.sample strategy ~rng ~rel:flight ~pos:1
                  ~known:keys ~size:20 ~constant_positions:[ 1 ])))
    in
    List.map sample_test Sampling.Strategy.all
  in
  let ind_test =
    Test.make ~name:"ind-discovery-uw"
      (Staged.stage (fun () ->
           ignore (Discovery.Ind.discover d.Dataset.db ~extra:[])))
  in
  let armg_test =
    let bc = Learning.Bottom_clause.build d.Dataset.db bias ~rng ~example in
    let e2 = List.nth d.Dataset.positives 1 in
    Test.make ~name:"armg"
      (Staged.stage (fun () ->
           ignore (Learning.Armg.generalize cov bc ~example:e2)))
  in
  let tests =
    Test.make_grouped ~name:"autobias" ~fmt:"%s/%s"
      ([ bc_test Sampling.Strategy.Naive; bc_test Sampling.Strategy.Random;
         bc_test Sampling.Strategy.Stratified ]
      @ subsumption_tests @ sampling_tests
      @ [ ind_test; armg_test ])
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Fmt.pr "%-34s %10.3f ms/run@." name (ns /. 1e6)
      else Fmt.pr "%-34s %10.1f ns/run@." name ns)
    rows;
  Bench_json.record "micro"
    (List.map (fun (name, ns) -> (name ^ ".ns_per_run", Bench_json.F ns)) rows)

(* ------------------------------------------------------------------ *)
(* Driver.                                                            *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table3", table3);
    ("figure1", figure1);
    ("preprocess", preprocess);
    ("table5", table5);
    ("table6", table6);
    ("ablation-aind", ablation_aind);
    ("ablation-threshold", ablation_threshold);
    ("ablation-coverage", ablation_coverage);
    ("ablation-search", ablation_search);
    ("ablation-overlap", ablation_overlap);
    ("ablation-noise", ablation_noise);
    ("coverage", coverage_bench);
    ("pruning", pruning_bench);
    ("scaling", scaling);
    ("resilience", resilience_bench);
    ("micro", micro);
    (* keep server last: it clears the chaos registry for its identity
       check, which must not disarm chaos under other experiments *)
    ("server", server_bench);
  ]

let usage () =
  Fmt.pr
    "usage: main.exe [EXPERIMENT..] [--data a,b,..] [--folds N] [--timeout S] [--seed N] [--scale F] [--domains N] [--chaos P] [--chaos-layers L,..] [--chaos-kill P] [--deadline S] [--trace FILE.json] [--metrics FILE.json]@.";
  Fmt.pr "experiments: %s (default: all)@."
    (String.concat " " (List.map fst experiments));
  Fmt.pr
    "--domains N runs the learner's hot paths on an N-worker domain pool@.";
  Fmt.pr
    "--chaos P kills each queued pool job with probability P (seeded);\n\
     the tables must come out identical, with faults tallied in the pool stats@.";
  Fmt.pr
    "--chaos-layers L,.. (or 'all') arms the chaos registry per layer at\n\
     the --chaos probability; --chaos-kill P additionally kills pool\n\
     workers (supervision restarts them, retries or quarantines jobs)@.";
  Fmt.pr
    "--deadline S bounds the whole run: learners return best-so-far\n\
     definitions and report their degradation counters@.";
  Fmt.pr
    "--trace FILE records every span (one Chrome trace-event JSON for the\n\
     whole run, loadable in Perfetto) and prints the per-phase summary@.";
  Fmt.pr
    "--metrics FILE also writes the run report (metrics snapshot, phase\n\
     timings) standalone; it is always embedded in BENCH_autobias.json@."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse chosen = function
    | [] -> chosen
    | "--data" :: v :: rest ->
        options.data <- String.split_on_char ',' v;
        parse chosen rest
    | "--folds" :: v :: rest ->
        options.folds <- int_of_string v;
        parse chosen rest
    | "--timeout" :: v :: rest ->
        options.timeout <- float_of_string v;
        parse chosen rest
    | "--seed" :: v :: rest ->
        options.seed <- int_of_string v;
        parse chosen rest
    | "--scale" :: v :: rest ->
        options.scale <- Some (float_of_string v);
        parse chosen rest
    | "--domains" :: v :: rest ->
        options.domains <- Some (int_of_string v);
        parse chosen rest
    | "--chaos" :: v :: rest ->
        options.chaos <- Some (float_of_string v);
        parse chosen rest
    | "--chaos-layers" :: v :: rest ->
        options.chaos_layers <- Some v;
        parse chosen rest
    | "--chaos-kill" :: v :: rest ->
        options.chaos_kill <- Some (float_of_string v);
        parse chosen rest
    | "--deadline" :: v :: rest ->
        options.deadline <- Some (float_of_string v);
        parse chosen rest
    | "--trace" :: v :: rest ->
        options.trace <- Some v;
        parse chosen rest
    | "--metrics" :: v :: rest ->
        options.metrics <- Some v;
        parse chosen rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | name :: rest when List.mem_assoc name experiments ->
        parse (chosen @ [ name ]) rest
    | bad :: _ ->
        Fmt.epr "unknown argument %s@." bad;
        usage ();
        exit 1
  in
  let chosen = parse [] args in
  let chosen = if chosen = [] then List.map fst experiments else chosen in
  (match options.chaos_layers with
  | Some layers ->
      let layers =
        String.split_on_char ',' layers
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      Chaos.configure ?p_kill:options.chaos_kill
        ~p_fault:(Option.value options.chaos ~default:0.)
        ~seed:options.seed layers
  | None -> ());
  if options.trace <> None then Obs.Trace.enable ();
  (* Provenance: the regression sentinel compares history lines across
     runs, so every line must say which commit/host/toolchain produced it.
     Best-effort — a bench run outside a git checkout still benches. *)
  let git_commit =
    try
      let ic = Unix.open_process_in "git rev-parse --short=12 HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  Bench_json.set_meta
    [ ("seed", Bench_json.I options.seed);
      ("folds", Bench_json.I options.folds);
      ("timeout_s", Bench_json.F options.timeout);
      ("data", Bench_json.S (String.concat "," options.data));
      ("domains",
       match options.domains with
       | Some n -> Bench_json.I n
       | None -> Bench_json.S "sequential");
      ("cores_recommended", Bench_json.I (Domain.recommended_domain_count ()));
      ("git_commit", Bench_json.S git_commit);
      ("hostname", Bench_json.S (Unix.gethostname ()));
      ("ocaml_version", Bench_json.S Sys.ocaml_version);
      ("timestamp_s", Bench_json.F (Unix.gettimeofday ()));
      ("experiments", Bench_json.S (String.concat "," chosen)) ];
  let completed = ref [] in
  let failed = ref [] in
  (* Whatever happens below — a failing experiment, a crash in the summary
     code, a pool that refuses to shut down — a valid BENCH_autobias.json
     must exist afterwards, with completions and failures recorded in its
     meta. That is the bench's one contract with CI. *)
  Fun.protect
    ~finally:(fun () ->
      (* overwrite the pre-run value (the request) with what actually
         ran — set_meta replaces by key *)
      Bench_json.set_meta
        [ ("experiments",
           Bench_json.S (String.concat "," (List.rev !completed)));
          ("experiments_failed",
           Bench_json.S
             (String.concat "; "
                (List.rev_map (fun (n, m) -> n ^ ": " ^ m) !failed))) ];
      Bench_json.write "BENCH_autobias.json";
      Bench_json.append_history "BENCH_history.jsonl";
      Fmt.pr
        "@.machine-readable metrics written to BENCH_autobias.json (history \
         line appended to BENCH_history.jsonl)@.")
  @@ fun () ->
  let (), total =
    Obs.Trace.time (fun () ->
        (* One span per experiment: the trace's top-level rows. A failing
           experiment is reported and skipped so the rest still run — and
           so the meta's "experiments" lists what actually completed. *)
        List.iter
          (fun name ->
            match
              Obs.Trace.span ~cat:"bench" name (List.assoc name experiments)
            with
            | () -> completed := name :: !completed
            | exception e ->
                failed := (name, Printexc.to_string e) :: !failed;
                Fmt.epr "!! experiment %s failed: %s@." name
                  (Printexc.to_string e))
          chosen;
        match !the_pool with
        | Some p ->
            let s = Parallel.Pool.stats p in
            Fmt.pr "@.pool: %d domains, %d tasks run, %d faults dropped@."
              s.Parallel.Pool.size s.Parallel.Pool.tasks_run
              s.Parallel.Pool.dropped;
            Bench_json.set_meta
              [ ("pool_tasks_run", Bench_json.I s.Parallel.Pool.tasks_run);
                ("pool_dropped", Bench_json.I s.Parallel.Pool.dropped) ];
            Parallel.Pool.shutdown p
        | None -> ())
  in
  (match !the_budget with
  | Some b ->
      Fmt.pr "budget: %a@." Budget.pp_degradation (Budget.degradation b)
  | None -> ());
  Bench_json.set_meta [ ("total_bench_time_s", Bench_json.F total) ];
  (* The structured run report — config, degradation, metrics snapshot and
     per-phase timings — is always embedded in BENCH_autobias.json;
     --metrics also writes it standalone. *)
  let report =
    Obs.Run_report.make ~name:"bench"
      ~config:
        [ ("seed", Obs.Json.Int options.seed);
          ("folds", Obs.Json.Int options.folds);
          ("timeout_s", Obs.Json.Float options.timeout);
          ("data", Obs.Json.Str (String.concat "," options.data));
          ("experiments", Obs.Json.Str (String.concat "," chosen)) ]
      ?degradation:(Option.map Budget.degradation !the_budget)
      ()
  in
  Bench_json.set_report (Obs.Json.to_string (Obs.Run_report.to_json report));
  Option.iter
    (fun path ->
      Obs.Run_report.write report path;
      Fmt.pr "wrote run report to %s@." path)
    options.metrics;
  (match options.trace with
  | Some path ->
      Fmt.pr "%s" (Obs.Trace.summary_string ());
      Obs.Trace.export_json path;
      Fmt.pr "wrote trace to %s@." path
  | None -> ());
  Fmt.pr "total bench time: %s@." (CV.format_time total)
