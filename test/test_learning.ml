(* Tests for bottom-clause construction (Algorithm 2, including the paper's
   Example 2.5), coverage testing, ARMG, and the sequential-covering
   learner. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Literal = Logic.Literal
module Term = Logic.Term
module Clause = Logic.Clause
module Bottom_clause = Learning.Bottom_clause
module Coverage = Learning.Coverage

let v = Value.str
let rng () = Random.State.make [| 99 |]

(* The exact bias of Table 3 (plus the advisedBy head definition the paper
   leaves implicit). *)
let table3_bias () =
  let schema = Datasets.Uw.schemas in
  Bias.Language.parse ~schema ~target:Datasets.Uw.target_schema
    {|advisedBy(T1,T3)
student(T1)
inPhase(T1,T2)
professor(T3)
hasPosition(T3,T4)
publication(T5,T1)
publication(T5,T3)
student(+)
inPhase(+,-)
inPhase(+,#)
professor(+)
hasPosition(+,-)
publication(-,+)
|}

let example_25_config =
  { Bottom_clause.default_config with depth = 1; sample_size = 50 }

(* Build Example 2.5's bottom clause. *)
let example_25_bc () =
  let db = Datasets.Uw.table4_fragment () in
  let bias = table3_bias () in
  Bottom_clause.build ~config:example_25_config db bias ~rng:(rng ())
    ~example:[| v "juan"; v "sarita" |]

let literal_strings c =
  List.map Literal.to_string (Clause.body c) |> List.sort compare

let example_25_tests =
  [
    Alcotest.test_case "Example 2.5: exactly the paper's seven literals" `Quick
      (fun () ->
        let bc = example_25_bc () in
        Alcotest.(check int) "seven" 7 (Clause.size bc);
        let preds =
          List.map Literal.pred (Clause.body bc) |> List.sort compare
        in
        Alcotest.(check (list string)) "predicates"
          [ "hasPosition"; "inPhase"; "inPhase"; "professor"; "publication";
            "publication"; "student" ]
          preds);
    Alcotest.test_case "Example 2.5: the # mode produced the constant literal"
      `Quick (fun () ->
        let bc = example_25_bc () in
        let has_const_phase =
          List.exists
            (fun l ->
              Literal.pred l = "inPhase"
              && List.exists (Value.equal (v "post_quals")) (Literal.constants l))
            (Clause.body bc)
        in
        let has_var_phase =
          List.exists
            (fun l -> Literal.pred l = "inPhase" && Literal.constants l = [])
            (Clause.body bc)
        in
        Alcotest.(check bool) "inPhase(X,post_quals)" true has_const_phase;
        Alcotest.(check bool) "inPhase(X,U)" true has_var_phase);
    Alcotest.test_case
      "Example 2.5: publications share the title variable with head vars"
      `Quick (fun () ->
        let bc = example_25_bc () in
        let pubs =
          List.filter (fun l -> Literal.pred l = "publication") (Clause.body bc)
        in
        match pubs with
        | [ a; b ] ->
            (* Same first argument (the p1 variable), different second (the
               head variables X and Y). *)
            Alcotest.(check bool) "shared title var" true
              (Term.equal (Literal.args a).(0) (Literal.args b).(0));
            Alcotest.(check bool) "different persons" false
              (Term.equal (Literal.args a).(1) (Literal.args b).(1))
        | _ -> Alcotest.fail "expected two publication literals");
    Alcotest.test_case "ground variant carries constants instead" `Quick
      (fun () ->
        let db = Datasets.Uw.table4_fragment () in
        let bc =
          Bottom_clause.build_ground ~config:example_25_config db (table3_bias ())
            ~rng:(rng ()) ~example:[| v "juan"; v "sarita" |]
        in
        Alcotest.(check bool) "all ground" true
          (List.for_all Literal.is_ground (Clause.body bc));
        Alcotest.(check bool) "contains publication(p1,juan)" true
          (List.exists
             (fun l -> Literal.to_string l = "publication(p1,juan)")
             (Clause.body bc)));
    Alcotest.test_case "depth 0 yields an empty body" `Quick (fun () ->
        let db = Datasets.Uw.table4_fragment () in
        let bc =
          Bottom_clause.build
            ~config:{ example_25_config with depth = 0 }
            db (table3_bias ()) ~rng:(rng ())
            ~example:[| v "juan"; v "sarita" |]
        in
        Alcotest.(check int) "empty" 0 (Clause.size bc));
    Alcotest.test_case "max_body_literals caps the clause" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.5 () in
        let bc =
          Bottom_clause.build
            ~config:{ Bottom_clause.default_config with max_body_literals = 10 }
            d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng:(rng ())
            ~example:(List.hd d.Datasets.Dataset.positives)
        in
        Alcotest.(check bool) "≤ 10" true (Clause.size bc <= 10));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let db = Datasets.Uw.table4_fragment () in
        Alcotest.check_raises "bad example"
          (Invalid_argument "Bottom_clause.build: example arity mismatch")
          (fun () ->
            ignore
              (Bottom_clause.build db (table3_bias ()) ~rng:(rng ())
                 ~example:[| v "juan" |])));
  ]

let coverage_ctx () =
  let db = Datasets.Uw.table4_fragment () in
  Coverage.create ~bc_config:example_25_config db (table3_bias ()) ~rng:(rng ())

let coverage_tests =
  [
    Alcotest.test_case "clause covers its own generating example" `Quick
      (fun () ->
        let cov = coverage_ctx () in
        let c = Logic.Parser.clause
            "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)"
        in
        Alcotest.(check bool) "juan/sarita" true
          (Coverage.covers cov c [| v "juan"; v "sarita" |]);
        Alcotest.(check bool) "john/mary" true
          (Coverage.covers cov c [| v "john"; v "mary" |]);
        Alcotest.(check bool) "cross pair not covered" false
          (Coverage.covers cov c [| v "juan"; v "mary" |]));
    Alcotest.test_case "head constants must match the example" `Quick (fun () ->
        let cov = coverage_ctx () in
        let c = Logic.Parser.clause "advisedBy(juan,Y) :- professor(Y)" in
        Alcotest.(check bool) "juan ok" true
          (Coverage.covers cov c [| v "juan"; v "sarita" |]);
        Alcotest.(check bool) "john blocked" false
          (Coverage.covers cov c [| v "john"; v "mary" |]));
    Alcotest.test_case "repeated head variables require equal constants" `Quick
      (fun () ->
        let c = Clause.make
            (Literal.make "advisedBy" [| Term.Var 0; Term.Var 0 |]) []
        in
        Alcotest.(check bool) "diagonal" true
          (Option.is_some (Coverage.head_subst c [| v "a"; v "a" |]));
        Alcotest.(check bool) "off-diagonal" false
          (Option.is_some (Coverage.head_subst c [| v "a"; v "b" |])));
    Alcotest.test_case "definition_covers is a disjunction" `Quick (fun () ->
        let cov = coverage_ctx () in
        let def =
          [
            Logic.Parser.clause "advisedBy(X,Y) :- hasPosition(Y,full_prof)";
            Logic.Parser.clause "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)";
          ]
        in
        Alcotest.(check bool) "covered by second clause" true
          (Coverage.definition_covers cov def [| v "juan"; v "sarita" |]));
    Alcotest.test_case "ground BCs are cached" `Quick (fun () ->
        let cov = coverage_ctx () in
        let e = [| v "juan"; v "sarita" |] in
        let g1 = Coverage.ground_of cov e in
        let g2 = Coverage.ground_of cov e in
        Alcotest.(check bool) "same object" true (g1 == g2));
    Alcotest.test_case "warm precomputes without error" `Quick (fun () ->
        let cov = coverage_ctx () in
        Coverage.warm cov [ [| v "juan"; v "sarita" |]; [| v "john"; v "mary" |] ]);
  ]

let armg_tests =
  [
    Alcotest.test_case "ARMG output covers the generalizing example" `Quick
      (fun () ->
        let cov = coverage_ctx () in
        let bc = example_25_bc () in
        let e' = [| v "john"; v "mary" |] in
        match Learning.Armg.generalize cov bc ~example:e' with
        | None -> Alcotest.fail "generalization failed"
        | Some c ->
            Alcotest.(check bool) "covers e'" true (Coverage.covers cov c e');
            Alcotest.(check bool) "no larger" true
              (Clause.size c <= Clause.size bc));
    Alcotest.test_case "ARMG drops the blocking constant literal" `Quick
      (fun () ->
        (* john is post_quals, so inPhase(X,post_quals) survives, but
           hasPosition(sarita)=assistant vs hasPosition(mary)=associate makes
           any constant-position literal blocking. Here we force one. *)
        let cov = coverage_ctx () in
        let c =
          Logic.Parser.clause
            "advisedBy(X,Y) :- hasPosition(Y,assistant_prof), publication(Z,X), publication(Z,Y)"
        in
        match Learning.Armg.generalize cov c ~example:[| v "john"; v "mary" |] with
        | None -> Alcotest.fail "failed"
        | Some g ->
            Alcotest.(check int) "two pubs left" 2 (Clause.size g);
            Alcotest.(check bool) "no hasPosition" true
              (List.for_all
                 (fun l -> Literal.pred l <> "hasPosition")
                 (Clause.body g)));
    Alcotest.test_case "ARMG on an unbindable head returns None" `Quick
      (fun () ->
        let cov = coverage_ctx () in
        let c = Logic.Parser.clause "advisedBy(juan,Y) :- professor(Y)" in
        Alcotest.(check bool) "none" true
          (Learning.Armg.generalize cov c ~example:[| v "john"; v "mary" |] = None));
    Alcotest.test_case "ARMG is idempotent on a covering clause" `Quick
      (fun () ->
        let cov = coverage_ctx () in
        let c = Logic.Parser.clause
            "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)"
        in
        match Learning.Armg.generalize cov c ~example:[| v "john"; v "mary" |] with
        | Some g -> Alcotest.(check int) "unchanged" 2 (Clause.size g)
        | None -> Alcotest.fail "failed");
  ]

let learn_tests =
  [
    Alcotest.test_case "learns the co-authorship rule on synthetic UW" `Slow
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.5 () in
        let rng = Random.State.make [| 5 |] in
        let cov =
          Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Learning.Learn.learn
            ~config:{ Learning.Learn.default_config with timeout = Some 60. }
            cov ~rng ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        Alcotest.(check bool) "learned something" true
          (r.Learning.Learn.definition <> []);
        let rendered = Clause.definition_to_string r.Learning.Learn.definition in
        let contains needle =
          let nl = String.length needle and hl = String.length rendered in
          let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "uses publication or ta join" true
          (contains "publication" || contains "ta"));
    Alcotest.test_case "timeout returns partial results and flags it" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.5 () in
        let rng = Random.State.make [| 5 |] in
        let cov =
          Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Learning.Learn.learn
            ~config:{ Learning.Learn.default_config with timeout = Some 0.001 }
            cov ~rng ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        Alcotest.(check bool) "timed out" true
          r.Learning.Learn.stats.Learning.Learn.timed_out);
    Alcotest.test_case "no positives yields the empty definition" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let rng = Random.State.make [| 5 |] in
        let cov =
          Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Learning.Learn.learn cov ~rng ~positives:[]
            ~negatives:d.Datasets.Dataset.negatives
        in
        Alcotest.(check int) "empty" 0 (List.length r.Learning.Learn.definition));
  ]

let suite = example_25_tests @ coverage_tests @ armg_tests @ learn_tests

let explain_tests =
  [
    Alcotest.test_case "covered examples come with a grounded witness" `Quick
      (fun () ->
        let cov = coverage_ctx () in
        let c = Logic.Parser.clause
            "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)"
        in
        match Learning.Explain.explain cov c [| v "juan"; v "sarita" |] with
        | Learning.Explain.Covered { supports; _ } ->
            Alcotest.(check int) "two supports" 2 (List.length supports);
            List.iter
              (fun s ->
                Alcotest.(check bool) "grounded" true
                  (Literal.is_ground s.Learning.Explain.grounded))
              supports;
            Alcotest.(check bool) "publication(p1,juan) supports" true
              (List.exists
                 (fun s ->
                   Literal.to_string s.Learning.Explain.grounded
                   = "publication(p1,juan)")
                 supports)
        | Learning.Explain.Not_covered _ -> Alcotest.fail "should be covered");
    Alcotest.test_case "uncovered examples name the blocking literal" `Quick
      (fun () ->
        let cov = coverage_ctx () in
        let c = Logic.Parser.clause
            "advisedBy(X,Y) :- professor(Y), hasPosition(Y,full_prof)"
        in
        match Learning.Explain.explain cov c [| v "juan"; v "sarita" |] with
        | Learning.Explain.Not_covered { blocking = Some l; blocking_index; _ } ->
            Alcotest.(check int) "index 2" 2 blocking_index;
            Alcotest.(check string) "hasPosition blocks" "hasPosition"
              (Literal.pred l)
        | _ -> Alcotest.fail "should be blocked at literal 2");
    Alcotest.test_case "head-binding failure is index 0" `Quick (fun () ->
        let cov = coverage_ctx () in
        let c = Logic.Parser.clause "advisedBy(juan,Y) :- professor(Y)" in
        match Learning.Explain.explain cov c [| v "john"; v "mary" |] with
        | Learning.Explain.Not_covered { blocking = None; blocking_index = 0; _ } -> ()
        | _ -> Alcotest.fail "head should fail");
    Alcotest.test_case "definition explanation picks the covering clause"
      `Quick (fun () ->
        let cov = coverage_ctx () in
        let def =
          [
            Logic.Parser.clause "advisedBy(X,Y) :- hasPosition(Y,full_prof)";
            Logic.Parser.clause
              "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)";
          ]
        in
        match
          Learning.Explain.explain_definition cov def [| v "juan"; v "sarita" |]
        with
        | Ok (clause, Learning.Explain.Covered _) ->
            Alcotest.(check int) "second clause" 2 (Logic.Clause.size clause)
        | _ -> Alcotest.fail "expected a covering clause");
  ]

let suite = suite @ explain_tests

let edge_config_tests =
  [
    Alcotest.test_case "max_clauses 0 returns immediately" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let rng = Random.State.make [| 1 |] in
        let cov =
          Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Learning.Learn.learn
            ~config:{ Learning.Learn.default_config with max_clauses = 0 }
            cov ~rng ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        Alcotest.(check int) "empty" 0 (List.length r.Learning.Learn.definition));
    Alcotest.test_case "learning without negatives still terminates" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let rng = Random.State.make [| 1 |] in
        let cov =
          Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Learning.Learn.learn
            ~config:{ Learning.Learn.default_config with timeout = Some 30. }
            cov ~rng ~positives:d.Datasets.Dataset.positives ~negatives:[]
        in
        (* with no negatives every generalization is precision-1; something
           gets learned and the run ends *)
        Alcotest.(check bool) "learned" true (r.Learning.Learn.definition <> []));
    Alcotest.test_case "duplicate positives do not break covering" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let rng = Random.State.make [| 1 |] in
        let cov =
          Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
        in
        let pos = d.Datasets.Dataset.positives in
        let r =
          Learning.Learn.learn
            ~config:{ Learning.Learn.default_config with timeout = Some 30. }
            cov ~rng ~positives:(pos @ pos) ~negatives:d.Datasets.Dataset.negatives
        in
        ignore r.Learning.Learn.definition);
  ]

let suite = suite @ edge_config_tests
