(* The compiled evaluation kernel's contract: bit-identity with the
   symbolic frontier engine. Oracle-equality properties (verdicts AND
   witnesses, including truncated frontiers at tiny caps), plus learner
   A/B checks that --no-compiled-eval runs are bit-identical at a fixed
   seed — sequentially and under a pool — with memo hit-rate parity. *)

module Coverage = Learning.Coverage
module Learn = Learning.Learn
module Pool = Parallel.Pool
module Compiled = Logic.Compiled
module Subsumption = Logic.Subsumption

let verdict_eq a b =
  match (a, b) with
  | Subsumption.Covered w1, Subsumption.Covered w2 ->
      Logic.Substitution.compare w1 w2 = 0
  | Subsumption.Blocked i, Subsumption.Blocked j -> i = j
  | _ -> false

let truncations b = (Budget.counters b).Budget.coverage_truncated

let kernel_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"compiled coverage equals the symbolic oracle" ~count:8
         QCheck.(pair (int_bound 1000) small_nat)
         (fun (seed, j) ->
           (* Two uncached contexts over the same world and master seed —
              one compiled, one symbolic. Every verdict must agree exactly:
              equal blocking indexes, witnesses equal under
              Substitution.compare, and the same number of frontier
              truncations (the budgeted give-up path). *)
           let s = 1 + (seed mod 17) in
           let d = Datasets.Uw.generate ~seed:s ~scale:0.3 () in
           (* pruning off: the truncation-parity check needs every verdict
              to come from a real evaluation on both sides (the prune store
              only exists under the compiled engine) *)
           let mk use_compiled budget =
             Coverage.create ~use_cache:false ~use_compiled
               ~use_pruning:false ~budget d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 77 |])
           in
           let b_c = Budget.create () and b_s = Budget.create () in
           let compiled = mk true b_c and symbolic = mk false b_s in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let bc =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 99 |])
               ~example:pos.(j mod Array.length pos)
           in
           let body = Logic.Clause.body bc in
           let half = List.filteri (fun i _ -> 2 * i < List.length body) body in
           let clauses =
             [ bc; Logic.Clause.make (Logic.Clause.head bc) half ]
           in
           let examples =
             d.Datasets.Dataset.positives @ d.Datasets.Dataset.negatives
           in
           Coverage.compiled_enabled compiled
           && (not (Coverage.compiled_enabled symbolic))
           && List.for_all
                (fun c ->
                  List.for_all
                    (fun e ->
                      verdict_eq (Coverage.eval compiled c e)
                        (Coverage.eval symbolic c e))
                    examples)
                clauses
           && truncations b_c = truncations b_s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"compiled kernel equals eval_prefix at tiny frontier caps"
         ~count:15
         QCheck.(pair (int_bound 1000) (pair small_nat small_nat))
         (fun (seed, (i, j)) ->
           (* Direct kernel-level A/B at caps small enough to force the
              stride-subsampling and sort+dedup paths on nearly every
              literal, cross-pairing the clause's example with the ground
              clause's (so head-blocked and Blocked-k cases both occur). *)
           let s = 1 + (seed mod 17) in
           let d = Datasets.Uw.generate ~seed:s ~scale:0.3 () in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let e1 = pos.(i mod Array.length pos) in
           let e2 = pos.(j mod Array.length pos) in
           let ground_clause =
             Learning.Bottom_clause.build_ground d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 55 |])
               ~example:e1
           in
           let bc =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 99 |])
               ~example:e2
           in
           let body = Logic.Clause.body ground_clause in
           let sym_g = Subsumption.ground_of_literals body in
           let tab = Compiled.Symtab.create () in
           let comp_g = Compiled.compile_ground tab ~example:e1 body in
           let plan = Compiled.compile tab bc in
           let scratch = Compiled.make_scratch () in
           List.for_all
             (fun cap ->
               let b_c = Budget.create () and b_s = Budget.create () in
               let compiled =
                 Compiled.eval ~cap ~budget:b_c scratch tab plan comp_g
               in
               let agreed =
                 match Coverage.head_subst bc e1 with
                 | None -> compiled = Subsumption.Blocked 0
                 | Some subst ->
                     verdict_eq compiled
                       (Subsumption.eval_prefix ~cap ~budget:b_s ~subst bc
                          sym_g)
               in
               agreed && truncations b_c = truncations b_s)
             [ 3; 8; 24 ]));
  ]

(* ---------------- Learner A/B: --no-compiled-eval ---------------- *)

let learn_uw ?pool ?(use_compiled = true) ?(use_cache = true) ~seed () =
  let d = Datasets.Uw.generate ~seed ~scale:0.4 () in
  let rng = Random.State.make [| seed |] in
  (* pruning off: the A/B below asserts exact subsumption-try and
     truncation parity between compiled and symbolic runs; the prune store
     (compiled-only) would break the counts. Its own A/B is test_prune. *)
  let cov =
    Coverage.create ~use_cache ~use_compiled ~use_pruning:false
      d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
  in
  let config = { Learn.default_config with timeout = Some 600.; pool } in
  Learn.learn ~config cov ~rng ~positives:d.Datasets.Dataset.positives
    ~negatives:d.Datasets.Dataset.negatives

let render def = Logic.Clause.definition_to_string def

let ab_tests =
  [
    Alcotest.test_case
      "compiled on/off: bit-identical definitions, memo parity" `Slow
      (fun () ->
        (* The tentpole acceptance criterion: on a fixed seed the compiled
           kernel must be invisible to results — and the canonical int-id
           memo key must hit exactly as often as the printed-clause key. *)
        let compiled = learn_uw ~use_compiled:true ~seed:5 () in
        let symbolic = learn_uw ~use_compiled:false ~seed:5 () in
        Alcotest.(check string) "identical definition"
          (render symbolic.Learn.definition)
          (render compiled.Learn.definition);
        Alcotest.(check bool) "nonempty" true (compiled.Learn.definition <> []);
        let counters r = r.Learn.degradation.Budget.counters in
        Alcotest.(check int) "memo hit parity"
          (counters symbolic).Budget.coverage_memo_hits
          (counters compiled).Budget.coverage_memo_hits;
        Alcotest.(check int) "memo miss parity"
          (counters symbolic).Budget.coverage_memo_misses
          (counters compiled).Budget.coverage_memo_misses;
        Alcotest.(check int) "same subsumption work"
          (counters symbolic).Budget.subsumption_tries
          (counters compiled).Budget.subsumption_tries;
        Alcotest.(check int) "same frontier truncations"
          (counters symbolic).Budget.coverage_truncated
          (counters compiled).Budget.coverage_truncated);
    Alcotest.test_case "compiled on/off under a pool: bit-identical" `Slow
      (fun () ->
        let plain = learn_uw ~use_compiled:false ~seed:5 () in
        List.iter
          (fun use_compiled ->
            let pooled =
              Pool.with_pool ~size:1 (fun p ->
                  learn_uw ~pool:p ~use_compiled ~seed:5 ())
            in
            Alcotest.(check string)
              (Printf.sprintf "pool=1 compiled=%b: identical definition"
                 use_compiled)
              (render plain.Learn.definition)
              (render pooled.Learn.definition))
          [ true; false ]);
    Alcotest.test_case "uncached compiled run matches the cached one" `Slow
      (fun () ->
        (* The memo and the kernel compose: toggling either knob never
           changes the definition. *)
        let cached = learn_uw ~use_cache:true ~seed:5 () in
        let uncached = learn_uw ~use_cache:false ~seed:5 () in
        Alcotest.(check string) "identical definition"
          (render cached.Learn.definition)
          (render uncached.Learn.definition));
  ]

let suite = kernel_properties @ ab_tests
