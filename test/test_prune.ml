(* The failure-constraint pruning store's contract: soundness (a prune hit
   replays the exact verdict the evaluator would produce — in particular,
   every pruned candidate really has zero positive coverage on that
   example) and learner-level bit-identity: --no-prune runs learn the
   identical definition at a fixed seed, sequentially and under a 2-domain
   pool. Pruning may only ever remove subsumption work, never change it. *)

module Coverage = Learning.Coverage
module Learn = Learning.Learn
module Pool = Parallel.Pool

let render def = Logic.Clause.definition_to_string def

(* ---------------- soundness properties ---------------- *)

let properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"a prune hit replays the evaluator's exact verdict" ~count:8
         QCheck.(pair (int_bound 1000) small_nat)
         (fun (seed, j) ->
           (* Populate the store by evaluating a bottom clause and its
              prefixes against every example, then check each probe hit
              against a pruning-off oracle context over the same world:
              the stored verdict must be Blocked at the same index the
              oracle blocks at — i.e. the pruned (clause, example) pair
              really has zero coverage. *)
           let s = 1 + (seed mod 17) in
           let d = Datasets.Uw.generate ~seed:s ~scale:0.3 () in
           let mk use_pruning =
             Coverage.create ~use_cache:false ~use_pruning
               d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 77 |])
           in
           let pruned = mk true and oracle = mk false in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let bc =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 99 |])
               ~example:pos.(j mod Array.length pos)
           in
           let body = Logic.Clause.body bc in
           let prefix k =
             Logic.Clause.make (Logic.Clause.head bc)
               (List.filteri (fun i _ -> k * i < List.length body) body)
           in
           let clauses = [ bc; prefix 2; prefix 4 ] in
           let examples =
             d.Datasets.Dataset.positives @ d.Datasets.Dataset.negatives
           in
           List.iter
             (fun c ->
               List.iter (fun e -> ignore (Coverage.eval pruned c e)) examples)
             clauses;
           List.for_all
             (fun c ->
               List.for_all
                 (fun e ->
                   match Coverage.probe_pruned pruned c e with
                   | None -> true
                   | Some (Logic.Subsumption.Covered _) ->
                       false (* the store must never predict coverage *)
                   | Some (Logic.Subsumption.Blocked i) -> (
                       match Coverage.eval oracle c e with
                       | Logic.Subsumption.Blocked i' -> i = i'
                       | Logic.Subsumption.Covered _ -> false))
                 examples)
             clauses));
  ]

(* ---------------- learner A/B: --no-prune ---------------- *)

let learn_uw ?pool ?(use_pruning = true) ~seed () =
  let d = Datasets.Uw.generate ~seed ~scale:0.4 () in
  let rng = Random.State.make [| seed |] in
  let cov =
    Coverage.create ~use_pruning d.Datasets.Dataset.db
      d.Datasets.Dataset.manual_bias ~rng
  in
  let config = { Learn.default_config with timeout = Some 600.; pool } in
  let r =
    Learn.learn ~config cov ~rng ~positives:d.Datasets.Dataset.positives
      ~negatives:d.Datasets.Dataset.negatives
  in
  (r, Coverage.prune_stats cov)

let ab_tests =
  [
    Alcotest.test_case
      "prune on/off: bit-identical definitions, tries only shrink" `Slow
      (fun () ->
        (* The correctness bar: pruning is a verdict-preserving cache, so
           the accepted definition must be bit-identical with the store on
           and off at a fixed seed — and the store may only remove
           subsumption work. *)
        let on, stats = learn_uw ~use_pruning:true ~seed:5 () in
        let off, _ = learn_uw ~use_pruning:false ~seed:5 () in
        Alcotest.(check string) "identical definition"
          (render off.Learn.definition)
          (render on.Learn.definition);
        Alcotest.(check bool) "nonempty" true (on.Learn.definition <> []);
        let counters r = r.Learn.degradation.Budget.counters in
        let tries_on = (counters on).Budget.subsumption_tries in
        let tries_off = (counters off).Budget.subsumption_tries in
        Alcotest.(check bool)
          (Printf.sprintf "fewer or equal tries (%d on vs %d off)" tries_on
             tries_off)
          true (tries_on <= tries_off);
        Alcotest.(check bool) "constraints were learned" true
          ((counters on).Budget.constraints_learned > 0);
        Alcotest.(check bool) "the store was probed" true (stats.probes > 0);
        Alcotest.(check bool) "store stats agree with the counter" true
          (stats.constraints <= (counters on).Budget.constraints_learned));
    Alcotest.test_case "prune on under a 2-domain pool: bit-identical" `Slow
      (fun () ->
        let off, _ = learn_uw ~use_pruning:false ~seed:5 () in
        let pooled, _ =
          Pool.with_pool ~size:2 (fun p ->
              learn_uw ~pool:p ~use_pruning:true ~seed:5 ())
        in
        Alcotest.(check string) "identical definition"
          (render off.Learn.definition)
          (render pooled.Learn.definition));
  ]

let suite = properties @ ab_tests
