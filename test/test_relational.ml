(* Tests for the relational substrate: values, schemas, relations, indexes,
   CSV, and the algebra operators. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Relation = Relational.Relation
module Database = Relational.Database
module Ops = Relational.Ops

let v = Value.str
let vi = Value.int

let value_tests =
  [
    Alcotest.test_case "of_string parses integers" `Quick (fun () ->
        Alcotest.(check bool) "int" true (Value.equal (Value.of_string "42") (vi 42));
        Alcotest.(check bool) "neg" true (Value.equal (Value.of_string "-7") (vi (-7)));
        Alcotest.(check bool) "str" true (Value.equal (Value.of_string "a42") (v "a42")));
    Alcotest.test_case "to_string round-trips" `Quick (fun () ->
        Alcotest.(check string) "int" "42" (Value.to_string (vi 42));
        Alcotest.(check string) "str" "juan" (Value.to_string (v "juan")));
    Alcotest.test_case "int and str with same rendering differ" `Quick (fun () ->
        Alcotest.(check bool) "differ" false (Value.equal (vi 1) (v "1")));
    Alcotest.test_case "hash respects equality" `Quick (fun () ->
        Alcotest.(check int) "same" (Value.hash (v "x")) (Value.hash (v "x")));
  ]

let value_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"value compare is a total order (antisym)"
         ~count:200
         QCheck.(pair small_int small_int)
         (fun (a, b) ->
           let x = vi a and y = vi b in
           let c1 = Value.compare x y and c2 = Value.compare y x in
           (c1 = 0 && c2 = 0) || c1 * c2 < 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"of_string/to_string round-trip on words"
         ~count:200
         QCheck.(string_small_of QCheck.Gen.(char_range 'a' 'z'))
         (fun s ->
           QCheck.assume (s <> "");
           Value.equal (Value.of_string (Value.to_string (v s))) (v s)));
  ]

let schema_tests =
  [
    Alcotest.test_case "position finds columns" `Quick (fun () ->
        let rs = Schema.relation "r" [| "a"; "b"; "c" |] in
        Alcotest.(check int) "b" 1 (Schema.position rs "b");
        Alcotest.(check (option int)) "missing" None (Schema.position_opt rs "z"));
    Alcotest.test_case "duplicate attributes rejected" `Quick (fun () ->
        Alcotest.check_raises "dup" (Invalid_argument
          "Schema.relation: duplicate attribute a in r")
          (fun () -> ignore (Schema.relation "r" [| "a"; "a" |])));
    Alcotest.test_case "attributes carry the relation name" `Quick (fun () ->
        let rs = Schema.relation "r" [| "a"; "b" |] in
        match Schema.attributes rs with
        | [ x; y ] ->
            Alcotest.(check string) "x" "r[a]" (Schema.attribute_to_string x);
            Alcotest.(check string) "y" "r[b]" (Schema.attribute_to_string y)
        | _ -> Alcotest.fail "expected two attributes");
  ]

let sample_relation () =
  let rs = Schema.relation "emp" [| "name"; "dept" |] in
  Relation.of_tuples rs
    [
      [| v "ann"; v "cs" |];
      [| v "bob"; v "cs" |];
      [| v "cyd"; v "ee" |];
      [| v "dee"; v "cs" |];
    ]

let relation_tests =
  [
    Alcotest.test_case "cardinality and arity" `Quick (fun () ->
        let r = sample_relation () in
        Alcotest.(check int) "card" 4 (Relation.cardinality r);
        Alcotest.(check int) "arity" 2 (Relation.arity r));
    Alcotest.test_case "lookup via index" `Quick (fun () ->
        let r = sample_relation () in
        Alcotest.(check int) "cs" 3 (List.length (Relation.lookup r 1 (v "cs")));
        Alcotest.(check int) "ee" 1 (List.length (Relation.lookup r 1 (v "ee")));
        Alcotest.(check int) "none" 0 (List.length (Relation.lookup r 1 (v "me"))));
    Alcotest.test_case "frequency statistics" `Quick (fun () ->
        let r = sample_relation () in
        Alcotest.(check int) "freq cs" 3 (Relation.frequency r 1 (v "cs"));
        Alcotest.(check int) "max" 3 (Relation.max_frequency r 1);
        Alcotest.(check int) "distinct" 2 (Relation.distinct_count r 1));
    Alcotest.test_case "index updates incrementally on add" `Quick (fun () ->
        let r = sample_relation () in
        ignore (Relation.lookup r 1 (v "cs"));
        Relation.add r [| v "eve"; v "cs" |];
        Alcotest.(check int) "freq" 4 (Relation.frequency r 1 (v "cs"));
        Alcotest.(check int) "max" 4 (Relation.max_frequency r 1));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let r = sample_relation () in
        Alcotest.check_raises "bad arity"
          (Invalid_argument "Relation.add: arity mismatch on emp (got 1, want 2)")
          (fun () -> Relation.add r [| v "solo" |]));
    Alcotest.test_case "select over a value set" `Quick (fun () ->
        let r = sample_relation () in
        let set = Value.Set.of_list [ v "cs"; v "me" ] in
        Alcotest.(check int) "selected" 3 (List.length (Relation.select r 1 set)));
    Alcotest.test_case "project produces the distinct set" `Quick (fun () ->
        let r = sample_relation () in
        Alcotest.(check int) "distinct depts" 2
          (Value.Set.cardinal (Relation.project r 1)));
  ]

let relation_properties =
  let tuples_gen =
    QCheck.(list_of_size Gen.(int_range 0 60) (pair (int_bound 5) (int_bound 5)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frequencies sum to cardinality" ~count:100
         tuples_gen
         (fun pairs ->
           let rs = Schema.relation "t" [| "a"; "b" |] in
           let r =
             Relation.of_tuples rs (List.map (fun (a, b) -> [| vi a; vi b |]) pairs)
           in
           let total =
             List.fold_left
               (fun acc value -> acc + Relation.frequency r 0 value)
               0
               (Relation.distinct_values r 0)
           in
           total = Relation.cardinality r));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"max_frequency bounds every frequency" ~count:100
         tuples_gen
         (fun pairs ->
           let rs = Schema.relation "t" [| "a"; "b" |] in
           let r =
             Relation.of_tuples rs (List.map (fun (a, b) -> [| vi a; vi b |]) pairs)
           in
           List.for_all
             (fun value -> Relation.frequency r 0 value <= Relation.max_frequency r 0)
             (Relation.distinct_values r 0)));
  ]

let database_tests =
  [
    Alcotest.test_case "find and totals" `Quick (fun () ->
        let db = Database.of_relations [ sample_relation () ] in
        Alcotest.(check int) "total" 4 (Database.total_tuples db);
        Alcotest.(check bool) "mem" true (Database.mem db "emp");
        Alcotest.(check bool) "not mem" false (Database.mem db "nope"));
    Alcotest.test_case "duplicate relation rejected" `Quick (fun () ->
        let db = Database.of_relations [ sample_relation () ] in
        Alcotest.check_raises "dup"
          (Invalid_argument "Database.add_relation: duplicate relation emp")
          (fun () -> Database.add_relation db (sample_relation ())));
    Alcotest.test_case "relations sorted by name" `Quick (fun () ->
        let a = Relation.create (Schema.relation "zz" [| "x" |]) in
        let b = Relation.create (Schema.relation "aa" [| "x" |]) in
        let db = Database.of_relations [ a; b ] in
        match Database.relations db with
        | [ r1; r2 ] ->
            Alcotest.(check string) "first" "aa" (Relation.name r1);
            Alcotest.(check string) "second" "zz" (Relation.name r2)
        | _ -> Alcotest.fail "expected two relations");
  ]

let csv_tests =
  [
    Alcotest.test_case "parse simple rows" `Quick (fun () ->
        let rs = Schema.relation "r" [| "a"; "b" |] in
        let r = Relational.Csv.parse_string ~schema:rs "x,1\ny,2\n" in
        Alcotest.(check int) "rows" 2 (Relation.cardinality r);
        Alcotest.(check int) "int parsed" 1 (List.length (Relation.lookup r 1 (vi 1))));
    Alcotest.test_case "quoted fields with commas and quotes" `Quick (fun () ->
        let rs = Schema.relation "r" [| "a"; "b" |] in
        let r = Relational.Csv.parse_string ~schema:rs "\"a,b\",\"say \"\"hi\"\"\"\n" in
        match Relation.tuples r with
        | [ t ] ->
            Alcotest.(check string) "comma" "a,b" (Value.to_string t.(0));
            Alcotest.(check string) "quote" "say \"hi\"" (Value.to_string t.(1))
        | _ -> Alcotest.fail "expected one row");
    Alcotest.test_case "round-trip preserves contents and order" `Quick (fun () ->
        let r = sample_relation () in
        let text = Relational.Csv.to_string r in
        let r2 =
          Relational.Csv.parse_string ~schema:(Relation.schema r) text
        in
        Alcotest.(check bool) "same tuples" true
          (List.rev (Relation.tuples r) = List.rev (Relation.tuples r2)));
    Alcotest.test_case "arity mismatch raises a typed error with the line"
      `Quick (fun () ->
        let rs = Schema.relation "r" [| "a"; "b" |] in
        match Relational.Csv.parse_string ~schema:rs "x,1\nbad\ny,2\n" with
        | _ -> Alcotest.fail "expected Csv.Error"
        | exception Relational.Csv.Error e ->
            Alcotest.(check int) "1-based line" 2 e.Relational.Csv.line;
            Alcotest.(check bool) "no file for strings" true
              (e.Relational.Csv.file = None);
            Alcotest.(check bool) "mentions arity" true
              (String.length e.Relational.Csv.message > 0));
  ]

let ops_tests =
  [
    Alcotest.test_case "semi-join keeps matching right tuples" `Quick (fun () ->
        let left =
          Relation.of_tuples (Schema.relation "l" [| "k" |]) [ [| v "cs" |] ]
        in
        let right = sample_relation () in
        Alcotest.(check int) "cs employees" 3
          (List.length (Ops.semi_join left 0 right 1)));
    Alcotest.test_case "semi-join over a value set" `Quick (fun () ->
        let keys = Value.Set.singleton (v "ee") in
        Alcotest.(check int) "ee" 1
          (List.length (Ops.semi_join_values keys (sample_relation ()) 1)));
    Alcotest.test_case "exact IND detection" `Quick (fun () ->
        let sub = Relation.of_tuples (Schema.relation "s" [| "x" |])
            [ [| v "cs" |]; [| v "ee" |] ]
        in
        let sup = sample_relation () in
        Alcotest.(check bool) "sub ⊆ sup" true (Ops.contains_all sub 0 sup 1);
        Alcotest.(check bool) "sup ⊄ sub(name)" false
          (Ops.contains_all sup 0 sub 0));
    Alcotest.test_case "ind_error counts missing distinct fraction" `Quick
      (fun () ->
        let sub = Relation.of_tuples (Schema.relation "s" [| "x" |])
            [ [| v "cs" |]; [| v "me" |]; [| v "bio" |]; [| v "ee" |] ]
        in
        let sup = sample_relation () in
        (* cs and ee present, me and bio missing: error 0.5 *)
        Alcotest.(check (float 1e-9)) "0.5" 0.5 (Ops.ind_error sub 0 sup 1));
    Alcotest.test_case "join_count matches materialized join" `Quick (fun () ->
        let left = sample_relation () in
        let right = sample_relation () in
        let count = Ops.join_count left 1 right 1 in
        let materialized = List.length (Ops.natural_join_tuples left 1 right 1) in
        Alcotest.(check int) "equal" materialized count);
  ]

let suite =
  value_tests @ value_properties @ schema_tests @ relation_tests
  @ relation_properties @ database_tests @ csv_tests @ ops_tests

let stats_tests =
  [
    Alcotest.test_case "column stats match direct queries" `Quick (fun () ->
        let r = sample_relation () in
        let c = Relational.Stats.column r 1 in
        Alcotest.(check int) "distinct" 2 c.Relational.Stats.distinct;
        Alcotest.(check int) "maxfreq" 3 c.Relational.Stats.max_frequency;
        Alcotest.(check (float 1e-9)) "ratio" 0.5 c.Relational.Stats.distinct_ratio;
        match c.Relational.Stats.top with
        | (top_v, top_n) :: _ ->
            Alcotest.(check string) "top value" "cs" (Value.to_string top_v);
            Alcotest.(check int) "top count" 3 top_n
        | [] -> Alcotest.fail "no top values");
    Alcotest.test_case "database stats cover every column" `Quick (fun () ->
        let db = Database.of_relations [ sample_relation () ] in
        Alcotest.(check int) "two columns" 2
          (List.length (Relational.Stats.database db)));
    Alcotest.test_case "empty relation has zero ratio" `Quick (fun () ->
        let r = Relation.create (Schema.relation "e" [| "a" |]) in
        let c = Relational.Stats.column r 0 in
        Alcotest.(check (float 0.)) "ratio" 0. c.Relational.Stats.distinct_ratio);
  ]

let suite = suite @ stats_tests
