(* The parallel runtime: determinism of the Par combinators against their
   sequential counterparts, exception propagation, pool reuse, nested jobs,
   thread-safe batch coverage, and the headline guarantee — Learn.learn
   produces the identical definition with pool = None and a 1-domain pool. *)

module Pool = Parallel.Pool
module Par = Parallel.Par
module Coverage = Learning.Coverage

(* One pool shared by the whole suite: spawning domains per test would
   dominate runtime. Sized 2 to exercise real concurrency where cores
   allow. AUTOBIAS_CHAOS=P turns on seeded fault injection for the whole
   suite (the CI chaos job): every result assertion must still hold, since
   killed pool jobs only lose parallelism, never results. *)
let shared_pool =
  lazy (Pool.create ~size:2 ?chaos:(Parallel.Fault.from_env ()) ())

let pool () = Lazy.force shared_pool

let pool_tests =
  [
    Alcotest.test_case "create clamps size and reports it" `Quick (fun () ->
        Pool.with_pool ~size:0 (fun p ->
            Alcotest.(check int) "clamped up" 1 (Pool.size p));
        Alcotest.(check bool) "default positive" true (Pool.default_size () >= 1));
    Alcotest.test_case "map preserves input order" `Quick (fun () ->
        let xs = List.init 100 Fun.id in
        let got = Par.parallel_map ~pool:(pool ()) (fun x -> x * x) xs in
        Alcotest.(check (list int)) "ordered" (List.map (fun x -> x * x) xs) got);
    Alcotest.test_case "map on the empty list" `Quick (fun () ->
        Alcotest.(check (list int)) "empty" []
          (Par.parallel_map ~pool:(pool ()) (fun x -> x) []));
    Alcotest.test_case "pool is reusable across jobs" `Quick (fun () ->
        let p = pool () in
        for i = 1 to 5 do
          let xs = List.init (10 * i) Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "round %d" i)
            (List.map succ xs)
            (Par.parallel_map ~pool:p succ xs)
        done);
    Alcotest.test_case "exception of the lowest index propagates" `Quick
      (fun () ->
        let p = pool () in
        let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
        (match Par.parallel_map ~pool:p f (List.init 20 (fun i -> i + 1)) with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure msg ->
            (* 3 is the first failing input *)
            Alcotest.(check string) "lowest index" "3" msg);
        (* the pool survives a failed job *)
        Alcotest.(check (list int)) "alive" [ 2; 4 ]
          (Par.parallel_map ~pool:p (fun x -> 2 * x) [ 1; 2 ]));
    Alcotest.test_case "nested parallel_map on one pool cannot deadlock"
      `Quick (fun () ->
        let p = pool () in
        let got =
          Par.parallel_map ~pool:p
            (fun x ->
              Par.parallel_map ~pool:p (fun y -> (10 * x) + y) [ 1; 2; 3 ])
            [ 1; 2 ]
        in
        Alcotest.(check (list (list int)))
          "nested" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] got);
    Alcotest.test_case "iter visits every element exactly once" `Quick
      (fun () ->
        let n = 200 in
        let hits = Array.make n (Atomic.make 0) in
        Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
        Par.parallel_iter ~pool:(pool ())
          (fun i -> Atomic.incr hits.(i))
          (List.init n Fun.id);
        Array.iter (fun a -> Alcotest.(check int) "once" 1 (Atomic.get a)) hits);
    Alcotest.test_case "submit after shutdown raises" `Quick (fun () ->
        let p = Pool.create ~size:1 () in
        Pool.shutdown p;
        Pool.shutdown p;
        (* idempotent *)
        Alcotest.check_raises "raises"
          (Invalid_argument "Parallel.Pool.submit: pool is shut down")
          (fun () -> Pool.submit p (fun () -> ())));
    Alcotest.test_case "stats: queue drains and per-worker tallies add up"
      `Quick (fun () ->
        (* A private pool (the shared one keeps serving later tests, so its
           counters would be a moving target), shut down before reading:
           the caller's domain helps Par combinators with items, so queued
           tasks can outlive the map as no-ops — only after [shutdown]
           joins the workers are the queue and every tally final. *)
        let p = Pool.create ~size:2 () in
        ignore (Par.parallel_map ~pool:p (fun x -> x + 1) (List.init 64 Fun.id));
        Pool.shutdown p;
        let s = Pool.stats p in
        Alcotest.(check int) "queue drained" 0 s.Pool.queue_depth;
        Alcotest.(check int) "one tally per worker" 2
          (Array.length s.Pool.per_worker);
        (* utilization is conserved: per-worker dequeue tallies must sum to
           the pool-wide dequeue counter *)
        Alcotest.(check int) "per-worker sums to tasks_run" s.Pool.tasks_run
          (Array.fold_left ( + ) 0 s.Pool.per_worker));
  ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parallel_map equals List.map" ~count:50
         QCheck.(list small_int)
         (fun xs ->
           Par.parallel_map ~pool:(pool ()) (fun x -> (x * 7) - 1) xs
           = List.map (fun x -> (x * 7) - 1) xs));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parallel_filter_count equals List.filter length"
         ~count:50
         QCheck.(list small_int)
         (fun xs ->
           Par.parallel_filter_count ~pool:(pool ()) (fun x -> x mod 2 = 0) xs
           = List.length (List.filter (fun x -> x mod 2 = 0) xs)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parallel_filter equals List.filter" ~count:50
         QCheck.(list small_int)
         (fun xs ->
           Par.parallel_filter ~pool:(pool ()) (fun x -> x mod 3 <> 0) xs
           = List.filter (fun x -> x mod 3 <> 0) xs));
  ]

(* Batch coverage: the *_many entry points must agree with their sequential
   counterparts — coverage is deterministic per example, so pool size and
   scheduling cannot change any verdict. *)
let coverage_tests =
  [
    Alcotest.test_case "count_many/covered_many equal count/covered" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~seed:11 ~scale:0.3 () in
        let rng = Random.State.make [| 11; 77 |] in
        let cov =
          Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias
            ~rng
        in
        let examples =
          d.Datasets.Dataset.positives @ d.Datasets.Dataset.negatives
        in
        Coverage.warm ~pool:(pool ()) cov examples;
        let clause =
          Logic.Parser.clause
            "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)"
        in
        Alcotest.(check int) "count"
          (Coverage.count cov clause examples)
          (Coverage.count_many ~pool:(pool ()) cov clause examples);
        Alcotest.(check int) "covered (same sublist)"
          (List.length (Coverage.covered cov clause examples))
          (List.length (Coverage.covered_many ~pool:(pool ()) cov clause examples)));
    Alcotest.test_case "parallel warm builds the identical cache" `Quick
      (fun () ->
        let build pool =
          let d = Datasets.Uw.generate ~seed:3 ~scale:0.3 () in
          let rng = Random.State.make [| 3; 99 |] in
          let cov =
            Coverage.create d.Datasets.Dataset.db
              d.Datasets.Dataset.manual_bias ~rng
          in
          Coverage.warm ?pool cov d.Datasets.Dataset.positives;
          List.map
            (fun e -> Logic.Subsumption.ground_size (Coverage.ground_of cov e))
            d.Datasets.Dataset.positives
        in
        Alcotest.(check (list int)) "same ground BCs" (build None)
          (build (Some (pool ()))));
  ]

(* The headline determinism guarantee (acceptance criterion): a full
   Learn.learn run yields the identical definition sequentially and on a
   1-domain pool. *)
let learn_tests =
  [
    Alcotest.test_case "Learn.learn: pool=None == 1-domain pool" `Slow
      (fun () ->
        let learn pool =
          let d = Datasets.Uw.generate ~seed:5 ~scale:0.4 () in
          let rng = Random.State.make [| 5 |] in
          let cov =
            Coverage.create d.Datasets.Dataset.db
              d.Datasets.Dataset.manual_bias ~rng
          in
          let config =
            { Learning.Learn.default_config with timeout = Some 60.; pool }
          in
          let r =
            Learning.Learn.learn ~config cov ~rng
              ~positives:d.Datasets.Dataset.positives
              ~negatives:d.Datasets.Dataset.negatives
          in
          Logic.Clause.definition_to_string r.Learning.Learn.definition
        in
        let seq = learn None in
        let par = Pool.with_pool ~size:1 (fun p -> learn (Some p)) in
        Alcotest.(check string) "identical definition" seq par;
        Alcotest.(check bool) "nonempty" true (seq <> ""));
  ]

let suite = pool_tests @ qcheck_tests @ coverage_tests @ learn_tests
