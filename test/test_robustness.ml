(* The resource-governance layer (budgets, cancellation, fault injection):
   the anytime contract of Learn.learn — an elapsed deadline returns
   immediately with a valid partial definition, a generous one changes
   nothing, cancellation stops within one job granularity — plus seeded
   chaos in the pool, Budget counter monotonicity, and the typed CSV
   errors. *)

module Pool = Parallel.Pool
module Par = Parallel.Par
module Fault = Parallel.Fault
module Coverage = Learning.Coverage
module Learn = Learning.Learn

let uw ~seed = Datasets.Uw.generate ~seed ~scale:0.4 ()

let coverage_of ?use_cache d ~seed =
  let rng = Random.State.make [| seed |] in
  ( Coverage.create ?use_cache d.Datasets.Dataset.db
      d.Datasets.Dataset.manual_bias ~rng,
    rng )

let learn_uw ?budget ?timeout ?pool ?use_cache ~seed () =
  let d = uw ~seed in
  let cov, rng = coverage_of ?use_cache d ~seed in
  let config = { Learn.default_config with budget; timeout; pool } in
  Learn.learn ~config cov ~rng ~positives:d.Datasets.Dataset.positives
    ~negatives:d.Datasets.Dataset.negatives

let render def = Logic.Clause.definition_to_string def

(* ---------------- Budget unit behavior ---------------- *)

let budget_tests =
  [
    Alcotest.test_case "fresh budget is live, elapsed deadline expires it"
      `Quick (fun () ->
        let b = Budget.create ~deadline:3600. () in
        Alcotest.(check bool) "live" false (Budget.expired b);
        Alcotest.(check string) "completed" "completed"
          (Budget.status_to_string (Budget.status b));
        let dead = Budget.create ~deadline:0. () in
        Unix.sleepf 0.002;
        Alcotest.(check bool) "expired" true (Budget.expired dead);
        Alcotest.(check string) "deadline_hit" "deadline_hit"
          (Budget.status_to_string (Budget.status dead)));
    Alcotest.test_case "cancellation wins over the deadline" `Quick (fun () ->
        let b = Budget.create ~deadline:0. () in
        Unix.sleepf 0.002;
        Budget.cancel b;
        Alcotest.(check string) "cancelled" "cancelled"
          (Budget.status_to_string (Budget.status b)));
    Alcotest.test_case "scope shares the flag and counters, not the deadline"
      `Quick (fun () ->
        let parent = Budget.create () in
        let child = Budget.scope ~deadline:3600. parent in
        Alcotest.(check bool) "parent unbounded" true
          (Budget.deadline_at parent = None);
        Alcotest.(check bool) "child bounded" true
          (Budget.deadline_at child <> None);
        Budget.hit child Budget.Beam_cut;
        Alcotest.(check int) "counters shared" 1
          (Budget.counters parent).Budget.beam_rounds_cut;
        Budget.cancel child;
        Alcotest.(check bool) "cancellation shared" true
          (Budget.is_cancelled parent));
    Alcotest.test_case "check raises Expired with the status" `Quick (fun () ->
        let b = Budget.create () in
        Budget.check b;
        Budget.cancel b;
        match Budget.check b with
        | () -> Alcotest.fail "expected Expired"
        | exception Budget.Expired st ->
            Alcotest.(check string) "cancelled" "cancelled"
              (Budget.status_to_string st));
    Alcotest.test_case "monotonized clock never goes backwards" `Quick
      (fun () ->
        let prev = ref (Budget.now ()) in
        for _ = 1 to 1000 do
          let t = Budget.now () in
          if t < !prev then Alcotest.fail "now () decreased";
          prev := t
        done);
  ]

let all_events =
  Budget.
    [ Subsumption_try; Subsumption_restart; Subsumption_exhausted;
      Coverage_truncated; Coverage_memo_hit; Coverage_memo_miss;
      Coverage_inherited; Beam_cut; Candidate_abandoned; Job_skipped;
      Worker_fault; Worker_restarted; Job_quarantined; Checkpoint_written;
      Checkpoint_skipped ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Budget counters are monotone under any events"
         ~count:200
         QCheck.(list (pair (int_bound 14) (int_bound 5)))
         (fun events ->
           let b = Budget.create () in
           let prev = ref (Budget.counters b) in
           List.for_all
             (fun (which, n) ->
               Budget.add b (List.nth all_events which) n;
               Budget.hit b (List.nth all_events which);
               let now = Budget.counters b in
               let ok = Budget.counters_leq !prev now in
               prev := now;
               ok)
             events
           && Budget.counters_leq Budget.zero !prev));
  ]

(* ---------------- anytime combinators ---------------- *)

let anytime_tests =
  [
    Alcotest.test_case "parallel_map_anytime with a live budget == map" `Quick
      (fun () ->
        let b = Budget.create ~deadline:3600. () in
        let xs = List.init 50 Fun.id in
        let expect = List.map (fun x -> Some (x * x)) xs in
        Alcotest.(check bool) "no pool" true
          (Par.parallel_map_anytime ~budget:b (fun x -> x * x) xs = expect);
        Pool.with_pool ~size:2 (fun p ->
            Alcotest.(check bool) "pool" true
              (Par.parallel_map_anytime ~pool:p ~budget:b (fun x -> x * x) xs
              = expect));
        Alcotest.(check int) "nothing skipped" 0
          (Budget.counters b).Budget.jobs_skipped);
    Alcotest.test_case "expired budget skips everything and counts it" `Quick
      (fun () ->
        let b = Budget.create ~deadline:0. () in
        Unix.sleepf 0.002;
        let xs = List.init 20 Fun.id in
        let got = Par.parallel_map_anytime ~budget:b (fun x -> x) xs in
        Alcotest.(check bool) "all None" true (List.for_all (( = ) None) got);
        Alcotest.(check int) "skips counted" 20
          (Budget.counters b).Budget.jobs_skipped);
    Alcotest.test_case
      "cancellation mid-job stops within one item granularity" `Quick
      (fun () ->
        Pool.with_pool ~size:2 (fun p ->
            let b = Budget.create () in
            let canceller =
              Domain.spawn (fun () ->
                  Unix.sleepf 0.1;
                  Budget.cancel b)
            in
            let t0 = Unix.gettimeofday () in
            let got =
              Par.parallel_map_anytime ~pool:p ~budget:b
                (fun x ->
                  Unix.sleepf 0.05;
                  x)
                (List.init 40 Fun.id)
            in
            let elapsed = Unix.gettimeofday () -. t0 in
            Domain.join canceller;
            (* 40 x 50ms is 2s of work even on 3 domains; a cooperative stop
               at 100ms must come back far sooner — in-flight items finish,
               nothing new starts. *)
            Alcotest.(check bool)
              (Printf.sprintf "stopped promptly (%.2fs)" elapsed)
              true (elapsed < 1.0);
            Alcotest.(check bool) "some items were skipped" true
              (List.exists (( = ) None) got);
            Alcotest.(check int) "every slot accounted for" 40
              (List.length got)));
  ]

(* ---------------- fault injection ---------------- *)

let fault_tests =
  [
    Alcotest.test_case "tick decisions are seeded and hit the target rate"
      `Quick (fun () ->
        let f = Fault.create ~p_fault:0.5 ~seed:7 () in
        for _ = 1 to 1000 do
          try Fault.tick f with Fault.Injected _ -> ()
        done;
        Alcotest.(check int) "tickets" 1000 (Fault.tickets f);
        let hit = Fault.injected f in
        Alcotest.(check bool)
          (Printf.sprintf "rate near 0.5 (got %d/1000)" hit)
          true
          (hit > 350 && hit < 650);
        (* same seed, same decisions *)
        let g = Fault.create ~p_fault:0.5 ~seed:7 () in
        for _ = 1 to 1000 do
          try Fault.tick g with Fault.Injected _ -> ()
        done;
        Alcotest.(check int) "deterministic" hit (Fault.injected g));
    Alcotest.test_case "killed pool jobs lose parallelism, never results"
      `Quick (fun () ->
        let chaos = Fault.create ~p_fault:0.5 ~seed:3 () in
        Pool.with_pool ~size:2 ~chaos (fun p ->
            let xs = List.init 300 Fun.id in
            (* many small jobs: each dispatches helpers, each helper may die *)
            for _ = 1 to 10 do
              Alcotest.(check bool) "results intact" true
                (Par.parallel_map ~pool:p (fun x -> x * 3) xs
                = List.map (fun x -> x * 3) xs)
            done;
            (* the caller can finish whole jobs before workers dequeue the
               helper tasks; give the queue time to drain so the injected
               faults actually land in the stats *)
            let rec settle tries =
              let s = Pool.stats p in
              if s.Pool.dropped > 0 || tries = 0 then s
              else begin
                Unix.sleepf 0.01;
                settle (tries - 1)
              end
            in
            let s = settle 500 in
            Alcotest.(check bool)
              (Printf.sprintf "faults dropped (%d/%d tasks)" s.Pool.dropped
                 s.Pool.tasks_run)
              true
              (s.Pool.dropped > 0);
            Alcotest.(check bool) "at least a quarter of jobs killed" true
              (4 * Fault.injected chaos >= Fault.tickets chaos);
            Alcotest.(check bool) "first fault kept for diagnosis" true
              (match Pool.first_fault p with
              | Some { Pool.exn = Fault.Injected _; _ } -> true
              | _ -> false)));
    Alcotest.test_case "supervision restarts a killed worker" `Quick (fun () ->
        (* size-1 pool, raw tasks (Par wraps exceptions itself, so only a
           raw task can kill a worker): the one worker dies once,
           supervision respawns it, the poisoned task is retried on the
           replacement, and every task still completes. *)
        Pool.with_pool ~size:1 (fun p ->
            let killed_once = Atomic.make false in
            let completed = Atomic.make 0 in
            for i = 0 to 19 do
              Pool.submit p (fun () ->
                  if i = 3 && not (Atomic.exchange killed_once true) then
                    raise (Chaos.Killed 0);
                  Atomic.incr completed)
            done;
            let rec settle tries =
              if Atomic.get completed >= 20 || tries = 0 then ()
              else begin
                Unix.sleepf 0.01;
                settle (tries - 1)
              end
            in
            settle 1000;
            Alcotest.(check int) "every task completed (poisoned one retried)"
              20 (Atomic.get completed);
            let s = Pool.stats p in
            Alcotest.(check int) "one restart" 1 s.Pool.restarts;
            Alcotest.(check int) "nothing quarantined" 0 s.Pool.quarantined));
    Alcotest.test_case "a poisoned job is quarantined with its backtrace"
      `Quick (fun () ->
        Pool.with_pool ~size:1
          ~policy:{ Resilience.Policy.default with job_retries = 2 }
          (fun p ->
            let completed = Atomic.make 0 in
            (* always-fatal task: kills its worker twice, then quarantine *)
            Pool.submit p (fun () -> raise (Chaos.Killed 0));
            for _ = 1 to 10 do
              Pool.submit p (fun () -> Atomic.incr completed)
            done;
            let rec settle tries =
              let s = Pool.stats p in
              if (Atomic.get completed >= 10 && s.Pool.quarantined >= 1)
                 || tries = 0
              then s
              else begin
                Unix.sleepf 0.01;
                settle (tries - 1)
              end
            in
            let s = settle 1000 in
            Alcotest.(check int) "healthy tasks all completed" 10
              (Atomic.get completed);
            Alcotest.(check int) "quarantined once" 1 s.Pool.quarantined;
            Alcotest.(check int) "killed job_retries workers" 2 s.Pool.restarts;
            match Pool.quarantine_records p with
            | [ q ] ->
                Alcotest.(check int) "attempts recorded" 2 q.Pool.attempts;
                Alcotest.(check bool) "exception printed" true
                  (String.length q.Pool.exn > 0)
            | q ->
                Alcotest.failf "expected 1 quarantine record, got %d"
                  (List.length q)));
  ]

(* ---------------- the anytime learner ---------------- *)

let learner_tests =
  [
    Alcotest.test_case "elapsed deadline: immediate valid empty definition"
      `Quick (fun () ->
        let b = Budget.create ~deadline:0. () in
        Unix.sleepf 0.002;
        let t0 = Unix.gettimeofday () in
        let r = learn_uw ~budget:b ~seed:5 () in
        let elapsed = Unix.gettimeofday () -. t0 in
        Alcotest.(check string) "deadline_hit" "deadline_hit"
          (Budget.status_to_string r.Learn.degradation.Budget.status);
        Alcotest.(check bool) "immediate" true (elapsed < 2.0);
        Alcotest.(check int) "no clauses accepted after expiry" 0
          (List.length r.Learn.definition);
        Alcotest.(check bool) "legacy flag set" true
          r.Learn.stats.Learn.timed_out);
    Alcotest.test_case "pre-cancelled budget: immediate, status cancelled"
      `Quick (fun () ->
        let b = Budget.create () in
        Budget.cancel b;
        let r = learn_uw ~budget:b ~seed:5 () in
        Alcotest.(check string) "cancelled" "cancelled"
          (Budget.status_to_string r.Learn.degradation.Budget.status);
        Alcotest.(check int) "empty" 0 (List.length r.Learn.definition));
    Alcotest.test_case "generous deadline: identical to unbudgeted run" `Slow
      (fun () ->
        let plain = learn_uw ~timeout:600. ~seed:5 () in
        let b = Budget.create ~deadline:3600. () in
        let budgeted = learn_uw ~budget:b ~timeout:600. ~seed:5 () in
        Alcotest.(check string) "same definition"
          (render plain.Learn.definition)
          (render budgeted.Learn.definition);
        Alcotest.(check bool) "learned something" true
          (budgeted.Learn.definition <> []);
        Alcotest.(check string) "completed" "completed"
          (Budget.status_to_string budgeted.Learn.degradation.Budget.status);
        Alcotest.(check bool) "not timed out" false
          budgeted.Learn.stats.Learn.timed_out);
    Alcotest.test_case "cancellation mid-run winds down promptly" `Slow
      (fun () ->
        let b = Budget.create () in
        let canceller =
          Domain.spawn (fun () ->
              Unix.sleepf 0.05;
              Budget.cancel b)
        in
        let t0 = Unix.gettimeofday () in
        let r = learn_uw ~budget:b ~seed:5 () in
        let elapsed = Unix.gettimeofday () -. t0 in
        Domain.join canceller;
        (* Either the run was genuinely done before the cancel landed (fast
           machine) or it must report Cancelled — and in both cases come
           back orders of magnitude before an uncancelled search would. *)
        Alcotest.(check bool)
          (Printf.sprintf "prompt wind-down (%.2fs)" elapsed)
          true (elapsed < 30.);
        let status =
          Budget.status_to_string r.Learn.degradation.Budget.status
        in
        Alcotest.(check bool)
          (Printf.sprintf "cancelled or already finished (%s)" status)
          true
          (status = "cancelled" || elapsed < 0.05));
    Alcotest.test_case
      "chaos pool: same definition as pool=None, faults counted" `Slow
      (fun () ->
        let plain = learn_uw ~timeout:600. ~seed:5 () in
        let chaos = Fault.create ~p_fault:0.4 ~seed:11 () in
        let under_chaos =
          Pool.with_pool ~size:2 ~chaos (fun p ->
              let r = learn_uw ~timeout:600. ~pool:p ~seed:5 () in
              (r, Pool.stats p))
        in
        let r, s = under_chaos in
        Alcotest.(check string) "identical definition"
          (render plain.Learn.definition)
          (render r.Learn.definition);
        Alcotest.(check bool) "nonempty" true (r.Learn.definition <> []);
        Alcotest.(check bool)
          (Printf.sprintf "workers dropped faults (%d)" s.Pool.dropped)
          true (s.Pool.dropped > 0);
        Alcotest.(check bool) "worker faults surfaced in degradation" true
          (r.Learn.degradation.Budget.counters.Budget.worker_faults > 0);
        Alcotest.(check string) "still completed" "completed"
          (Budget.status_to_string r.Learn.degradation.Budget.status));
    Alcotest.test_case
      "coverage cache on/off: bit-identical definitions, fewer tests" `Slow
      (fun () ->
        (* The acceptance criterion of the incremental coverage engine: on a
           fixed seed the memo must be invisible to results — sequentially
           and under a pool — while doing measurably less subsumption
           work. *)
        let cached = learn_uw ~timeout:600. ~use_cache:true ~seed:5 () in
        let uncached = learn_uw ~timeout:600. ~use_cache:false ~seed:5 () in
        Alcotest.(check string) "sequential: identical definition"
          (render uncached.Learn.definition)
          (render cached.Learn.definition);
        Alcotest.(check bool) "nonempty" true (cached.Learn.definition <> []);
        let tries r =
          r.Learn.degradation.Budget.counters.Budget.subsumption_tries
        in
        Alcotest.(check bool)
          (Printf.sprintf "cache does strictly less work (%d < %d)"
             (tries cached) (tries uncached))
          true
          (tries cached < tries uncached);
        Alcotest.(check bool) "memo hits recorded" true
          (cached.Learn.degradation.Budget.counters.Budget.coverage_memo_hits
          > 0);
        let pooled =
          Pool.with_pool ~size:1 (fun p ->
              learn_uw ~timeout:600. ~pool:p ~use_cache:true ~seed:5 ())
        in
        Alcotest.(check string) "pool=1: identical definition"
          (render uncached.Learn.definition)
          (render pooled.Learn.definition));
    Alcotest.test_case "degradation counters reach the result record" `Slow
      (fun () ->
        (* a tiny budget mid-way through: the run must report *why* it is
           partial, not only that it is *)
        let b = Budget.create ~deadline:0.3 () in
        let r = learn_uw ~budget:b ~seed:5 () in
        let c = r.Learn.degradation.Budget.counters in
        Alcotest.(check bool) "some accounting happened" true
          (c.Budget.subsumption_tries >= 0
          && Budget.counters_leq Budget.zero c);
        Alcotest.(check bool) "status is honest" true
          (Budget.status_to_string r.Learn.degradation.Budget.status
          <> "completed"
          || not r.Learn.stats.Learn.timed_out));
  ]

(* ---------------- typed CSV errors ---------------- *)

let csv_tests =
  [
    Alcotest.test_case "Skip policy drops malformed rows" `Quick (fun () ->
        let rs = Relational.Schema.relation "r" [| "a"; "b" |] in
        let r =
          Relational.Csv.parse_string ~on_error:`Skip ~schema:rs
            "x,1\nbad\n\"unterminated\ny,2\n"
        in
        Alcotest.(check int) "good rows kept" 2
          (Relational.Relation.cardinality r));
    Alcotest.test_case "unterminated quote reports the line" `Quick (fun () ->
        let rs = Relational.Schema.relation "r" [| "a" |] in
        match
          Relational.Csv.parse_string ~schema:rs "ok\n\"never closed\n"
        with
        | _ -> Alcotest.fail "expected Csv.Error"
        | exception Relational.Csv.Error e ->
            Alcotest.(check int) "line" 2 e.Relational.Csv.line;
            Alcotest.(check string) "message" "unterminated quoted field"
              e.Relational.Csv.message);
    Alcotest.test_case "load attaches the file name" `Quick (fun () ->
        let path = Filename.temp_file "autobias_csv" ".csv" in
        let oc = open_out path in
        output_string oc "x,1\ntoo,many,fields\n";
        close_out oc;
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let rs = Relational.Schema.relation "r" [| "a"; "b" |] in
            match Relational.Csv.load ~schema:rs path with
            | _ -> Alcotest.fail "expected Csv.Error"
            | exception Relational.Csv.Error e ->
                Alcotest.(check (option string)) "file" (Some path)
                  e.Relational.Csv.file;
                Alcotest.(check int) "line" 2 e.Relational.Csv.line;
                Alcotest.(check bool) "rendered with position" true
                  (String.length (Relational.Csv.error_to_string e)
                  > String.length path)));
  ]

let suite =
  budget_tests @ qcheck_tests @ anytime_tests @ fault_tests @ learner_tests
  @ csv_tests
