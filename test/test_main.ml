let () =
  Alcotest.run "autobias"
    [
      ("relational", Test_relational.suite);
      ("logic", Test_logic.suite);
      ("obs", Test_obs.suite);
      ("parallel", Test_parallel.suite);
      ("bias", Test_bias.suite);
      ("discovery", Test_discovery.suite);
      ("sampling", Test_sampling.suite);
      ("learning", Test_learning.suite);
      ("datasets", Test_datasets.suite);
      ("evaluation", Test_evaluation.suite);
      ("query", Test_query.suite);
      ("properties", Test_properties.suite);
      ("compiled", Test_compiled.suite);
      ("prune", Test_prune.suite);
      ("robustness", Test_robustness.suite);
      ("resilience", Test_resilience.suite);
      ("server", Test_server.suite);
      ("regressions", Test_regressions.suite);
    ]
