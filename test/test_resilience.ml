(* The resilient-runtime layer: checkpoint snapshots (JSON round-trip,
   version gating, fingerprint validation, atomic save under chaos), the
   supervision policy's deterministic backoff, the layer-tagged chaos
   registry, CSV skip accounting, and the headline property — killing a
   run at any clause boundary and resuming from its snapshot reproduces
   the uninterrupted definition bit-for-bit, sequentially and under a
   pool. *)

module Checkpoint = Resilience.Checkpoint
module Policy = Resilience.Policy
module Pool = Parallel.Pool
module Coverage = Learning.Coverage
module Learn = Learning.Learn
module Json = Obs.Json

let render def = Logic.Clause.definition_to_string def

(* a hand-built snapshot exercising every field *)
let sample_checkpoint () =
  {
    Checkpoint.version = Checkpoint.version;
    fingerprint = "fp-test";
    boundary = 2;
    definition = [];
    uncovered = [ 1; 3; 4 ];
    seeds_skipped = 1;
    consecutive_skips = 1;
    candidates_evaluated = 9;
    rng = Random.State.make [| 42 |];
    counters = [ ("worker_faults", 3); ("jobs_skipped", 1) ];
    elapsed_s = 0.25;
    constraints = "opaque\x00bytes";
  }

let rng_stream st =
  let st = Random.State.copy st in
  List.init 16 (fun _ -> Random.State.int st 1_000_000)

let with_temp_file f =
  let path = Filename.temp_file "autobias_resilience" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---------------- checkpoint snapshots ---------------- *)

let checkpoint_tests =
  [
    Alcotest.test_case "save/load round-trips every field" `Quick (fun () ->
        with_temp_file (fun path ->
            let ck = sample_checkpoint () in
            (match Checkpoint.save ck path with
            | `Written -> ()
            | `Skipped -> Alcotest.fail "save skipped without chaos");
            match Checkpoint.load path with
            | Error e -> Alcotest.failf "load failed: %s" e
            | Ok got ->
                Alcotest.(check int) "version" ck.Checkpoint.version
                  got.Checkpoint.version;
                Alcotest.(check string) "fingerprint" ck.Checkpoint.fingerprint
                  got.Checkpoint.fingerprint;
                Alcotest.(check int) "boundary" ck.Checkpoint.boundary
                  got.Checkpoint.boundary;
                Alcotest.(check (list int)) "uncovered"
                  ck.Checkpoint.uncovered got.Checkpoint.uncovered;
                Alcotest.(check int) "seeds_skipped"
                  ck.Checkpoint.seeds_skipped got.Checkpoint.seeds_skipped;
                Alcotest.(check int) "consecutive_skips"
                  ck.Checkpoint.consecutive_skips
                  got.Checkpoint.consecutive_skips;
                Alcotest.(check int) "candidates_evaluated"
                  ck.Checkpoint.candidates_evaluated
                  got.Checkpoint.candidates_evaluated;
                Alcotest.(check (list (pair string int))) "counters"
                  ck.Checkpoint.counters got.Checkpoint.counters;
                Alcotest.(check (float 1e-9)) "elapsed"
                  ck.Checkpoint.elapsed_s got.Checkpoint.elapsed_s;
                Alcotest.(check string) "definition"
                  (render ck.Checkpoint.definition)
                  (render got.Checkpoint.definition);
                (* opaque bytes (including the NUL) must survive the hex trip *)
                Alcotest.(check string) "constraints"
                  ck.Checkpoint.constraints got.Checkpoint.constraints;
                (* the restored RNG must replay the exact stream *)
                Alcotest.(check (list int)) "rng stream"
                  (rng_stream ck.Checkpoint.rng)
                  (rng_stream got.Checkpoint.rng)));
    Alcotest.test_case "version mismatch is refused before any payload"
      `Quick (fun () ->
        with_temp_file (fun path ->
            let ck = sample_checkpoint () in
            ignore (Checkpoint.save ck path);
            let ic = open_in path in
            let raw = In_channel.input_all ic in
            close_in ic;
            let tampered =
              match Json.parse raw with
              | Ok (Json.Obj fields) ->
                  Json.Obj
                    (List.map
                       (function
                         | "version", Json.Int v ->
                             ("version", Json.Int (v + 1))
                         | kv -> kv)
                       fields)
              | _ -> Alcotest.fail "saved checkpoint is not a JSON object"
            in
            Json.write path tampered;
            match Checkpoint.load path with
            | Ok _ -> Alcotest.fail "future-version snapshot was accepted"
            | Error e ->
                Alcotest.(check bool)
                  (Printf.sprintf "error names the version (%s)" e)
                  true
                  (let lower = String.lowercase_ascii e in
                   let has needle =
                     let nl = String.length needle
                     and ll = String.length lower in
                     let rec go i =
                       i + nl <= ll
                       && (String.sub lower i nl = needle || go (i + 1))
                     in
                     go 0
                   in
                   has "version")));
    Alcotest.test_case
      "v1 snapshot (pre constraint store) is refused, naming both versions"
      `Quick (fun () ->
        with_temp_file (fun path ->
            (* simulate a v1 file: old version stamp and no "constraints"
               field, exactly what a pre-v2 binary wrote *)
            let v1 =
              match Checkpoint.to_json (sample_checkpoint ()) with
              | Json.Obj fields ->
                  Json.Obj
                    (List.filter_map
                       (function
                         | "version", Json.Int _ ->
                             Some ("version", Json.Int 1)
                         | "constraints", _ -> None
                         | kv -> Some kv)
                       fields)
              | _ -> Alcotest.fail "checkpoint JSON is not an object"
            in
            Json.write path v1;
            match Checkpoint.load path with
            | Ok _ -> Alcotest.fail "v1 snapshot was accepted"
            | Error e ->
                let contains needle =
                  let nl = String.length needle and ll = String.length e in
                  let rec go i =
                    i + nl <= ll && (String.sub e i nl = needle || go (i + 1))
                  in
                  go 0
                in
                Alcotest.(check bool)
                  (Printf.sprintf "error names the file's version (%s)" e)
                  true (contains "v1");
                Alcotest.(check bool)
                  "error names the version this binary reads" true
                  (contains
                     (Printf.sprintf "v%d" Checkpoint.version))));
    Alcotest.test_case "load reports unreadable and torn files as Error"
      `Quick (fun () ->
        (match Checkpoint.load "/nonexistent/autobias.ck" with
        | Ok _ -> Alcotest.fail "loaded a nonexistent file"
        | Error _ -> ());
        with_temp_file (fun path ->
            let oc = open_out path in
            output_string oc "{ torn";
            close_out oc;
            match Checkpoint.load path with
            | Ok _ -> Alcotest.fail "loaded torn JSON"
            | Error _ -> ()));
    Alcotest.test_case "validate gates on the config fingerprint" `Quick
      (fun () ->
        let ck = sample_checkpoint () in
        (match Checkpoint.validate ~fingerprint:"fp-test" ck with
        | Ok () -> ()
        | Error e -> Alcotest.failf "matching fingerprint refused: %s" e);
        (match Checkpoint.validate ~fingerprint:"other" ck with
        | Ok () -> Alcotest.fail "mismatched fingerprint accepted"
        | Error _ -> ());
        (* the empty fingerprint is the escape hatch on either side *)
        (match Checkpoint.validate ~fingerprint:"" ck with
        | Ok () -> ()
        | Error e -> Alcotest.failf "empty run fingerprint refused: %s" e);
        match
          Checkpoint.validate ~fingerprint:"anything"
            { ck with Checkpoint.fingerprint = "" }
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "empty snapshot fingerprint refused: %s" e);
    Alcotest.test_case "fingerprint digest is stable and input-sensitive"
      `Quick (fun () ->
        let a = Checkpoint.fingerprint_of_strings [ "uw"; "seq"; "42" ] in
        let b = Checkpoint.fingerprint_of_strings [ "uw"; "seq"; "42" ] in
        let c = Checkpoint.fingerprint_of_strings [ "uw"; "seq"; "43" ] in
        Alcotest.(check string) "stable" a b;
        Alcotest.(check bool) "seed-sensitive" true (a <> c));
    Alcotest.test_case "chaos on the checkpoint layer skips, never tears"
      `Quick (fun () ->
        Chaos.configure ~p_fault:1.0 ~seed:0 [ "checkpoint" ];
        Fun.protect ~finally:Chaos.clear (fun () ->
            let path =
              Filename.concat
                (Filename.get_temp_dir_name ())
                "autobias_ck_chaos.json"
            in
            if Sys.file_exists path then Sys.remove path;
            match Checkpoint.save (sample_checkpoint ()) path with
            | `Written -> Alcotest.fail "p_fault=1 chaos did not skip"
            | `Skipped ->
                Alcotest.(check bool) "target untouched" false
                  (Sys.file_exists path)));
  ]

(* ---------------- supervision policy ---------------- *)

let policy_tests =
  [
    Alcotest.test_case "backoff is exponential, capped and deterministic"
      `Quick (fun () ->
        let p = Policy.default in
        let d1 = Policy.backoff p ~attempt:1 ~salt:0 in
        let d2 = Policy.backoff p ~attempt:2 ~salt:0 in
        let dcap = Policy.backoff p ~attempt:1000 ~salt:0 in
        let lo = 1. -. (p.Policy.jitter /. 2.)
        and hi = 1. +. (p.Policy.jitter /. 2.) in
        Alcotest.(check bool) "first delay near base" true
          (d1 >= p.Policy.backoff_base_s *. lo
          && d1 <= p.Policy.backoff_base_s *. hi);
        Alcotest.(check bool) "grows" true (d2 > d1);
        Alcotest.(check bool) "capped" true
          (dcap <= p.Policy.backoff_max_s *. hi);
        Alcotest.(check (float 0.)) "deterministic" d1
          (Policy.backoff p ~attempt:1 ~salt:0);
        Alcotest.(check bool) "salts decorrelate" true
          (Policy.backoff p ~attempt:4 ~salt:1
          <> Policy.backoff p ~attempt:4 ~salt:2));
  ]

(* ---------------- the chaos registry ---------------- *)

let chaos_tests =
  [
    Alcotest.test_case "layers are gated independently" `Quick (fun () ->
        Chaos.configure ~p_fault:1.0 ~seed:0 [ "memo" ];
        Fun.protect ~finally:Chaos.clear (fun () ->
            Alcotest.(check bool) "configured layer fires" true
              (Chaos.fires "memo");
            Alcotest.(check bool) "unconfigured layer never fires" false
              (Chaos.fires "csv");
            Alcotest.(check (list string)) "active" [ "memo" ]
              (Chaos.active ());
            match Chaos.snapshot () with
            | [ ("memo", c) ] ->
                Alcotest.(check bool) "faults counted" true
                  (c.Chaos.n_injected > 0)
            | s ->
                Alcotest.failf "expected one memo entry, got %d"
                  (List.length s)));
    Alcotest.test_case "\"all\" arms every known layer; clear disarms" `Quick
      (fun () ->
        Chaos.configure ~p_fault:1.0 ~seed:0 [ "all" ];
        Fun.protect ~finally:Chaos.clear (fun () ->
            Alcotest.(check (list string)) "all layers active"
              (List.sort compare Chaos.known_layers)
              (List.sort compare (Chaos.active ())));
        Chaos.clear ();
        Alcotest.(check (list string)) "cleared" [] (Chaos.active ());
        Alcotest.(check bool) "nothing fires after clear" false
          (Chaos.fires "memo"));
    Alcotest.test_case "unknown layer names are refused" `Quick (fun () ->
        match Chaos.configure ~p_fault:0.5 ~seed:0 [ "warp-drive" ] with
        | () -> Alcotest.fail "unknown layer accepted"
        | exception Invalid_argument _ -> ());
  ]

(* ---------------- CSV skip accounting ---------------- *)

let csv_tests =
  [
    Alcotest.test_case "Skip-policy drops are tallied with their first cause"
      `Quick (fun () ->
        Relational.Csv.reset_skip_stats ();
        let rs = Relational.Schema.relation "r" [| "a"; "b" |] in
        let r =
          Relational.Csv.parse_string ~on_error:`Skip ~schema:rs
            "x,1\nbad\ny,2\ntoo,many,fields\n"
        in
        Alcotest.(check int) "good rows kept" 2
          (Relational.Relation.cardinality r);
        (match Relational.Csv.skip_stats () with
        | [ ("<string>", s) ] ->
            Alcotest.(check int) "two rows dropped" 2
              s.Relational.Csv.rows_skipped;
            (match s.Relational.Csv.first_bad with
            | Some (line, _) -> Alcotest.(check int) "first bad line" 2 line
            | None -> Alcotest.fail "first_bad not recorded")
        | s -> Alcotest.failf "expected one entry, got %d" (List.length s));
        Relational.Csv.reset_skip_stats ();
        Alcotest.(check int) "reset clears the registry" 0
          (List.length (Relational.Csv.skip_stats ())));
    Alcotest.test_case "csv chaos drops rows as recorded skips" `Quick
      (fun () ->
        Relational.Csv.reset_skip_stats ();
        Chaos.configure ~p_fault:1.0 ~seed:0 [ "csv" ];
        Fun.protect
          ~finally:(fun () ->
            Chaos.clear ();
            Relational.Csv.reset_skip_stats ())
          (fun () ->
            let rs = Relational.Schema.relation "r" [| "a" |] in
            let r =
              Relational.Csv.parse_string ~on_error:`Skip ~file:"chaos.csv"
                ~schema:rs "x\ny\nz\n"
            in
            Alcotest.(check int) "every row dropped by chaos" 0
              (Relational.Relation.cardinality r);
            match Relational.Csv.skip_stats () with
            | [ ("chaos.csv", s) ] ->
                Alcotest.(check int) "drops tallied" 3
                  s.Relational.Csv.rows_skipped
            | s ->
                Alcotest.failf "expected one entry, got %d" (List.length s)));
  ]

(* ---------------- kill + resume bit-identity ---------------- *)

let run_uw ?pool ?checkpoint ?resume ~seed () =
  let d = Datasets.Uw.generate ~seed ~scale:0.25 () in
  let rng = Random.State.make [| seed |] in
  let cov =
    Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
  in
  let config =
    {
      Learn.default_config with
      max_clauses = 2;
      timeout = None;
      clause_timeout = None;
      pool;
      checkpoint;
      checkpoint_every = 1;
      resume;
    }
  in
  Learn.learn ~config cov ~rng ~positives:d.Datasets.Dataset.positives
    ~negatives:d.Datasets.Dataset.negatives

let resume_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "kill at any clause boundary + resume is bit-identical (seq and \
            pool)"
         ~count:3
         QCheck.(int_range 1 40)
         (fun seed ->
           (* Run once with a collecting sink: the snapshots it hands out
              are exactly what --checkpoint writes at each boundary, and
              because the sink gets copies it cannot perturb the run — so
              this run doubles as the uninterrupted reference. *)
           let collected = ref [] in
           let sink ck =
             collected := ck :: !collected;
             `Written
           in
           let reference = run_uw ~checkpoint:sink ~seed () in
           let want = render reference.Learn.definition in
           let plain = run_uw ~seed () in
           if render plain.Learn.definition <> want then
             QCheck.Test.fail_report "checkpoint sink perturbed the run";
           if !collected = [] then
             QCheck.Test.fail_report "no checkpoint was emitted";
           (* resuming from EVERY boundary must replay the same tail *)
           List.iter
             (fun ck ->
               let resumed = run_uw ~resume:ck ~seed () in
               if render resumed.Learn.definition <> want then
                 QCheck.Test.fail_reportf
                   "sequential resume from boundary %d diverged"
                   ck.Checkpoint.boundary)
             !collected;
           (* and a pooled resume from the earliest boundary agrees too *)
           let earliest = List.hd (List.rev !collected) in
           Pool.with_pool ~size:2 (fun p ->
               let resumed = run_uw ~pool:p ~resume:earliest ~seed () in
               if render resumed.Learn.definition <> want then
                 QCheck.Test.fail_reportf
                   "pooled resume from boundary %d diverged"
                   earliest.Checkpoint.boundary);
           true));
    Alcotest.test_case "resume restores progress counters and boundary"
      `Slow (fun () ->
        let collected = ref [] in
        let sink ck =
          collected := ck :: !collected;
          `Written
        in
        let reference = run_uw ~checkpoint:sink ~seed:7 () in
        match List.rev !collected with
        | [] -> Alcotest.fail "no checkpoint emitted"
        | first :: _ ->
            let resumed = run_uw ~resume:first ~seed:7 () in
            Alcotest.(check string) "same definition"
              (render reference.Learn.definition)
              (render resumed.Learn.definition);
            Alcotest.(check int) "same clause count"
              reference.Learn.stats.Learn.clauses
              resumed.Learn.stats.Learn.clauses;
            (* counters restore from the snapshot, so the resumed total
               matches the uninterrupted run exactly *)
            Alcotest.(check int) "candidate count restored + tail"
              reference.Learn.stats.Learn.candidates_evaluated
              resumed.Learn.stats.Learn.candidates_evaluated);
  ]

let suite =
  checkpoint_tests @ policy_tests @ chaos_tests @ csv_tests @ resume_tests
