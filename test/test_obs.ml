(* The observability layer (lib/obs): JSON round-trips, metrics registry
   semantics — including snapshot monotonicity under concurrent bumps —
   Chrome trace-event export well-formedness (balanced B/E events, monotone
   timestamps per track), the per-phase summary, run reports, and the A/B
   guarantee that enabling the tracer cannot change what the learner
   learns. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace

(* The tracer and the metrics registry are process-wide singletons; every
   test that touches them cleans up so the rest of the suite (and the other
   suites) see the default disabled/zeroed state. *)
let with_tracer ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:Trace.disable f

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    Alcotest.test_case "to_string/parse round-trip" `Quick (fun () ->
        let j =
          Json.Obj
            [
              ("a", Json.Int 42);
              ("b", Json.Str "hi \"there\"\n");
              ("c", Json.List [ Json.Bool true; Json.Null; Json.Int (-7) ]);
              ("d", Json.Obj [ ("nested", Json.Str "") ]);
            ]
        in
        match Json.parse (Json.to_string j) with
        | Ok j' ->
            Alcotest.(check bool) "round-trips" true (j = j')
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "floats survive parsing; non-finite emit null" `Quick
      (fun () ->
        (match Json.parse (Json.to_string (Json.Float 1.5)) with
        | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "1.5" 1.5 f
        | _ -> Alcotest.fail "expected a float");
        Alcotest.(check string) "nan is null" "null"
          (Json.to_string (Json.Float Float.nan)));
    Alcotest.test_case "parse rejects trailing garbage" `Quick (fun () ->
        match Json.parse "{\"a\": 1} x" with
        | Ok _ -> Alcotest.fail "should reject"
        | Error _ -> ());
  ]

let contains_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Satellite guarantee: whatever bytes end up in a string (chaos exception
   messages, clause text, raw CSV fragments), the emitted JSON is valid
   UTF-8 and parseable — control characters escaped, ill-formed sequences
   replaced with U+FFFD. *)
let utf8_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"any byte string renders as valid UTF-8 JSON"
         ~count:500 QCheck.string (fun s ->
           let rendered = Json.to_string (Json.Str s) in
           Json.utf8_valid rendered
           &&
           match Json.parse rendered with
           | Ok (Json.Str _) -> true
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"printable strings round-trip byte-exactly"
         ~count:300 QCheck.printable_string (fun s ->
           match Json.parse (Json.to_string (Json.Str s)) with
           | Ok (Json.Str s') -> s' = s
           | _ -> false));
    Alcotest.test_case "control chars escape; bad bytes become U+FFFD" `Quick
      (fun () ->
        let rendered = Json.to_string (Json.Str "a\x01b\xffc\xc3\xa9") in
        Alcotest.(check bool) "valid utf8" true (Json.utf8_valid rendered);
        match Json.parse rendered with
        | Ok (Json.Str s) ->
            Alcotest.(check bool) "replacement char for the lone 0xff" true
              (contains_sub s "\xef\xbf\xbd");
            Alcotest.(check bool) "well-formed e-acute preserved" true
              (contains_sub s "\xc3\xa9");
            Alcotest.(check bool) "control char survived the escape" true
              (contains_sub s "\x01")
        | Ok _ -> Alcotest.fail "not a string"
        | Error e -> Alcotest.fail e);
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    Alcotest.test_case "counters, gauges and histograms snapshot" `Quick
      (fun () ->
        Metrics.reset ();
        let c = Metrics.counter "test.counter" in
        let g = Metrics.gauge "test.gauge" in
        let h = Metrics.histogram "test.histogram" in
        Metrics.bump c;
        Metrics.add c 4;
        Metrics.gauge_set g 7;
        Metrics.gauge_add g (-3);
        List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.1 ];
        let s = Metrics.snapshot () in
        Alcotest.(check int) "counter" 5 (List.assoc "test.counter" s.Metrics.counters);
        Alcotest.(check int) "gauge" 4 (List.assoc "test.gauge" s.Metrics.gauges);
        let hs = List.assoc "test.histogram" s.Metrics.histograms in
        Alcotest.(check int) "count" 4 hs.Metrics.count;
        Alcotest.(check (float 1e-9)) "sum" 0.107 hs.Metrics.sum;
        Alcotest.(check (float 1e-9)) "max" 0.1 hs.Metrics.max;
        (* percentile estimates are bucket upper bounds: ordered, and the
           p99 bucket must contain the true maximum *)
        Alcotest.(check bool) "p50 <= p95" true (hs.Metrics.p50 <= hs.Metrics.p95);
        Alcotest.(check bool) "p95 <= p99" true (hs.Metrics.p95 <= hs.Metrics.p99);
        Alcotest.(check bool) "p99 covers max" true (hs.Metrics.p99 >= 0.1);
        Alcotest.(check bool) "p50 above its value" true (hs.Metrics.p50 >= 0.002);
        Metrics.reset ();
        let s = Metrics.snapshot () in
        Alcotest.(check int) "reset" 0 (List.assoc "test.counter" s.Metrics.counters));
    Alcotest.test_case "registration is idempotent by name" `Quick (fun () ->
        Metrics.reset ();
        let a = Metrics.counter "test.same" in
        let b = Metrics.counter "test.same" in
        Metrics.bump a;
        Metrics.bump b;
        Alcotest.(check int) "one cell" 2 (Metrics.counter_value a));
    (* The concurrency property behind the whole registry: counters only
       move up, so any snapshot taken while writers are live must be
       pointwise <= any later snapshot — no torn or rolled-back reads. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"snapshots are monotone across concurrent bumps"
         ~count:20
         QCheck.(pair (int_bound 500) (int_bound 3))
         (fun (bumps, extra_domains) ->
           Metrics.reset ();
           let c = Metrics.counter "test.mono" in
           let writers =
             List.init (1 + extra_domains) (fun _ ->
                 Domain.spawn (fun () ->
                     for _ = 1 to bumps do
                       Metrics.bump c
                     done))
           in
           (* interleave snapshot reads with the live writers *)
           let snaps = List.init 5 (fun _ -> Metrics.snapshot ()) in
           List.iter Domain.join writers;
           let final = Metrics.snapshot () in
           let rec chain = function
             | a :: (b :: _ as tl) -> Metrics.counters_leq a b && chain tl
             | [ last ] -> Metrics.counters_leq last final
             | [] -> true
           in
           chain snaps
           && List.assoc "test.mono" final.Metrics.counters
              = (1 + extra_domains) * bumps));
  ]

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

(* Walk exported traceEvents: per tid, B/E must balance like parentheses
   (matching names) and timestamps must never decrease. Returns the number
   of B events checked. *)
let check_trace_json json =
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let str j = match j with Some (Json.Str s) -> s | _ -> "?" in
  let num = function
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> Alcotest.fail "missing number"
  in
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  let begins = ref 0 in
  List.iter
    (fun ev ->
      match str (Json.member "ph" ev) with
      | "M" -> ()
      | ("B" | "E") as ph ->
          let tid =
            match Json.member "tid" ev with
            | Some (Json.Int i) -> i
            | _ -> Alcotest.fail "missing tid"
          in
          let ts = num (Json.member "ts" ev) in
          (match Hashtbl.find_opt last_ts tid with
          | Some prev when ts < prev ->
              Alcotest.failf "timestamps went backwards on track %d" tid
          | _ -> ());
          Hashtbl.replace last_ts tid ts;
          let name = str (Json.member "name" ev) in
          let s = stack tid in
          if ph = "B" then begin
            incr begins;
            s := name :: !s
          end
          else begin
            match !s with
            | top :: rest when top = name -> s := rest
            | top :: _ ->
                Alcotest.failf "E %s closes open span %s on track %d" name top
                  tid
            | [] -> Alcotest.failf "E %s with empty stack on track %d" name tid
          end
      | ph -> Alcotest.failf "unexpected event phase %s" ph)
    events;
  Hashtbl.iter
    (fun tid s ->
      if !s <> [] then Alcotest.failf "unclosed spans on track %d" tid)
    stacks;
  !begins

let trace_tests =
  [
    Alcotest.test_case "spans record nesting, args and timing" `Quick
      (fun () ->
        with_tracer (fun () ->
            Trace.span ~cat:"t" "outer" (fun () ->
                Trace.span ~args:[ ("k", "v") ] ~cat:"t" "inner" (fun () ->
                    Trace.arg "late" "yes"));
            let evs = Trace.events () in
            Alcotest.(check int) "two spans" 2 (List.length evs);
            let inner = List.hd evs in
            (* inner closes first, so it is recorded first *)
            Alcotest.(check string) "name" "inner" inner.Trace.name;
            Alcotest.(check (list string)) "path" [ "outer"; "inner" ]
              inner.Trace.path;
            Alcotest.(check (list (pair string string))) "args"
              [ ("k", "v"); ("late", "yes") ]
              inner.Trace.args;
            Alcotest.(check bool) "duration >= 0" true
              (inner.Trace.t_end_us >= inner.Trace.t_start_us)));
    Alcotest.test_case "disabled tracer records nothing and passes through"
      `Quick (fun () ->
        Trace.disable ();
        let r = Trace.span ~cat:"t" "ghost" (fun () -> 41 + 1) in
        Alcotest.(check int) "result" 42 r;
        Alcotest.(check int) "no events" 0 (List.length (Trace.events ())));
    Alcotest.test_case "span closes on exceptions" `Quick (fun () ->
        with_tracer (fun () ->
            (try Trace.span ~cat:"t" "boom" (fun () -> failwith "x")
             with Failure _ -> ());
            Alcotest.(check int) "recorded anyway" 1
              (List.length (Trace.events ()))));
    Alcotest.test_case "export: balanced B/E, monotone ts, multi-domain"
      `Quick (fun () ->
        with_tracer (fun () ->
            Trace.span ~cat:"t" "main_outer" (fun () ->
                Trace.span ~cat:"t" "main_inner" (fun () -> ()));
            let workers =
              List.init 3 (fun w ->
                  Domain.spawn (fun () ->
                      for i = 0 to 9 do
                        Trace.span
                          ~args:[ ("w", string_of_int w) ]
                          ~cat:"t"
                          ("job_" ^ string_of_int (i mod 3))
                          (fun () -> ignore (Sys.opaque_identity (i * i)))
                      done))
            in
            List.iter Domain.join workers;
            let begins = check_trace_json (Trace.to_json ()) in
            Alcotest.(check int) "all spans exported" 32 begins));
    Alcotest.test_case "ring wraps, counts drops, stays well-formed" `Quick
      (fun () ->
        with_tracer ~capacity:4 (fun () ->
            for i = 1 to 10 do
              Trace.span ~cat:"t" ("s" ^ string_of_int i) (fun () -> ())
            done;
            Alcotest.(check int) "kept" 4 (List.length (Trace.events ()));
            Alcotest.(check int) "dropped" 6 (Trace.dropped ());
            ignore (check_trace_json (Trace.to_json ()))));
    Alcotest.test_case "summary aggregates calls and self <= total" `Quick
      (fun () ->
        with_tracer (fun () ->
            for _ = 1 to 3 do
              Trace.span ~cat:"t" "parent" (fun () ->
                  Trace.span ~cat:"t" "child" (fun () -> ()))
            done;
            let rows = Trace.summary_rows () in
            let row path = List.find (fun r -> r.Trace.row_path = path) rows in
            let parent = row [ "parent" ] and child = row [ "parent"; "child" ] in
            Alcotest.(check int) "parent calls" 3 parent.Trace.calls;
            Alcotest.(check int) "child calls" 3 child.Trace.calls;
            Alcotest.(check bool) "self <= total" true
              (parent.Trace.self_s <= parent.Trace.total_s);
            Alcotest.(check bool) "parent total covers child" true
              (parent.Trace.total_s >= child.Trace.total_s)));
  ]

(* ------------------------------------------------------------------ *)
(* Search funnel                                                      *)
(* ------------------------------------------------------------------ *)

let funnel_tests =
  [
    Alcotest.test_case "record/snapshot/total and the partition invariant"
      `Quick (fun () ->
        Obs.Funnel.reset ();
        Obs.Funnel.record ~step:1 ~generated:10 ~prune_hit:3 ~memo_hit:2
          ~inherited:1 ~evaluated:4 ~accepted:3;
        Obs.Funnel.record ~step:1 ~generated:5 ~prune_hit:0 ~memo_hit:0
          ~inherited:5 ~evaluated:0 ~accepted:0;
        Obs.Funnel.record ~step:2 ~generated:7 ~prune_hit:7 ~memo_hit:0
          ~inherited:0 ~evaluated:0 ~accepted:0;
        let rows = Obs.Funnel.snapshot () in
        Alcotest.(check int) "two live steps" 2 (List.length rows);
        List.iter
          (fun r ->
            Alcotest.(check bool) "row invariant" true
              (Obs.Funnel.invariant_holds r))
          rows;
        let r1 = List.hd rows in
        Alcotest.(check int) "step 1 aggregates records" 15
          r1.Obs.Funnel.generated;
        let t = Obs.Funnel.total rows in
        Alcotest.(check int) "total generated" 22 t.Obs.Funnel.generated;
        Alcotest.(check bool) "total invariant" true
          (Obs.Funnel.invariant_holds t);
        Alcotest.(check bool) "tree renders nonempty" true
          (String.length (Obs.Funnel.to_string rows) > 0);
        (match Json.parse (Json.to_string (Obs.Funnel.to_json rows)) with
        | Ok (Json.List l) ->
            Alcotest.(check int) "json rows" 2 (List.length l)
        | Ok _ -> Alcotest.fail "funnel json is not a list"
        | Error e -> Alcotest.fail e);
        Obs.Funnel.reset ();
        Alcotest.(check int) "reset clears" 0
          (List.length (Obs.Funnel.snapshot ())));
    Alcotest.test_case "a real learn populates the funnel; invariant holds"
      `Slow (fun () ->
        Obs.Funnel.reset ();
        let d = Datasets.Uw.generate ~seed:7 ~scale:0.15 () in
        let rng = Random.State.make [| 7 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let _ =
          Learning.Learn.learn
            ~config:{ Learning.Learn.default_config with timeout = Some 60. }
            cov ~rng ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        let rows = Obs.Funnel.snapshot () in
        Alcotest.(check bool) "steps recorded" true (rows <> []);
        List.iter
          (fun r ->
            if not (Obs.Funnel.invariant_holds r) then
              Alcotest.failf
                "generated <> prune+memo+inherited+evaluated at step %d"
                r.Obs.Funnel.step)
          rows;
        let t = Obs.Funnel.total rows in
        Alcotest.(check bool) "candidates flowed" true
          (t.Obs.Funnel.generated > 0);
        Alcotest.(check bool) "accepted bounded by generated" true
          (t.Obs.Funnel.accepted <= t.Obs.Funnel.generated);
        Obs.Funnel.reset ());
  ]

(* ------------------------------------------------------------------ *)
(* Wide-event log                                                     *)
(* ------------------------------------------------------------------ *)

let with_events ?capacity f =
  let path = Filename.temp_file "test_events" ".jsonl" in
  Obs.Events.configure ?capacity path;
  Fun.protect
    ~finally:(fun () ->
      Obs.Events.disable ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let events_tests =
  [
    Alcotest.test_case "disabled sink records nothing" `Quick (fun () ->
        Obs.Events.disable ();
        Obs.Events.emit "ghost";
        Alcotest.(check bool) "disabled" false (Obs.Events.enabled ());
        Alcotest.(check int) "empty" 0 (List.length (Obs.Events.snapshot ())));
    Alcotest.test_case "emit records ts, name, fields and the job context"
      `Quick (fun () ->
        with_events (fun _ ->
            Obs.Events.emit "plain";
            Trace.with_context ~job:"job-9" (fun () ->
                Obs.Events.emit "tagged" ~fields:[ ("k", Json.Int 7) ]);
            match Obs.Events.snapshot () with
            | [ plain; tagged ] ->
                Alcotest.(check bool) "name" true
                  (Json.member "event" plain = Some (Json.Str "plain"));
                Alcotest.(check bool) "no job outside context" true
                  (Json.member "job" plain = None);
                Alcotest.(check bool) "job tag inherited from context" true
                  (Json.member "job" tagged = Some (Json.Str "job-9"));
                Alcotest.(check bool) "field kept" true
                  (Json.member "k" tagged = Some (Json.Int 7));
                Alcotest.(check bool) "timestamped" true
                  (match Json.member "ts_s" tagged with
                  | Some (Json.Float _) -> true
                  | _ -> false)
            | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)));
    Alcotest.test_case
      "bounded queue evicts oldest with accounting; flush is atomic JSONL"
      `Quick (fun () ->
        with_events ~capacity:4 (fun path ->
            for i = 1 to 10 do
              Obs.Events.emit (Printf.sprintf "e%d" i)
            done;
            Alcotest.(check int) "kept newest" 4
              (List.length (Obs.Events.snapshot ()));
            Alcotest.(check int) "dropped counted" 6 (Obs.Events.dropped ());
            Obs.Events.flush ();
            Obs.Events.flush ();
            (* idempotent: rewrites, never appends *)
            let lines =
              In_channel.with_open_bin path In_channel.input_all
              |> String.split_on_char '\n'
              |> List.filter (fun l -> String.trim l <> "")
            in
            Alcotest.(check int) "4 events + 1 accounting line" 5
              (List.length lines);
            List.iter
              (fun l ->
                match Json.parse l with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "bad JSONL line %s: %s" l e)
              lines;
            match Json.parse (List.nth lines 4) with
            | Ok j ->
                Alcotest.(check bool) "accounting line last" true
                  (Json.member "event" j = Some (Json.Str "events.dropped"));
                Alcotest.(check bool) "drop count exported" true
                  (Json.member "count" j = Some (Json.Int 6))
            | Error e -> Alcotest.fail e));
  ]

(* ------------------------------------------------------------------ *)
(* Tracing cannot change results (the --trace off/on A/B guarantee)   *)
(* ------------------------------------------------------------------ *)

let determinism_tests =
  [
    Alcotest.test_case
      "learn is bit-identical with tracing and events off and on" `Slow
      (fun () ->
        let learn () =
          let d = Datasets.Uw.generate ~seed:7 ~scale:0.3 () in
          let rng = Random.State.make [| 7 |] in
          let cov =
            Learning.Coverage.create d.Datasets.Dataset.db
              d.Datasets.Dataset.manual_bias ~rng
          in
          let r =
            Learning.Learn.learn
              ~config:{ Learning.Learn.default_config with timeout = Some 60. }
              cov ~rng ~positives:d.Datasets.Dataset.positives
              ~negatives:d.Datasets.Dataset.negatives
          in
          Logic.Clause.definition_to_string r.Learning.Learn.definition
        in
        let off = learn () in
        let on = with_tracer (fun () -> with_events (fun _ -> learn ())) in
        Alcotest.(check string) "identical definition" off on;
        Alcotest.(check bool) "nonempty" true (off <> ""));
  ]

(* ------------------------------------------------------------------ *)
(* Signal path: SIGINT mid-learn still flushes valid artifacts        *)
(* ------------------------------------------------------------------ *)

let signal_tests =
  [
    Alcotest.test_case
      "SIGINT mid-learn winds down and flushes valid trace + events" `Slow
      (fun () ->
        let trace_path = Filename.temp_file "test_sig_trace" ".json" in
        (* same wiring as the CLI: the first SIGINT cancels the budget so
           the anytime learner answers best-so-far, then the observability
           streams are flushed normally *)
        let budget = Budget.create ~job:"job-sig" () in
        let saved =
          Sys.signal Sys.sigint
            (Sys.Signal_handle (fun _ -> Budget.cancel budget))
        in
        Trace.enable ();
        Fun.protect
          ~finally:(fun () ->
            Sys.set_signal Sys.sigint saved;
            Trace.disable ();
            Obs.Events.disable ();
            try Sys.remove trace_path with Sys_error _ -> ())
          (fun () ->
            with_events (fun events_path ->
                Obs.Events.emit "test.start";
                let killer =
                  Domain.spawn (fun () ->
                      Unix.sleepf 0.2;
                      Unix.kill (Unix.getpid ()) Sys.sigint)
                in
                let d = Datasets.Uw.generate ~seed:7 ~scale:0.3 () in
                let rng = Random.State.make [| 7 |] in
                let cov =
                  Learning.Coverage.create d.Datasets.Dataset.db
                    d.Datasets.Dataset.manual_bias ~rng
                in
                let r =
                  Trace.with_context ~job:"job-sig" (fun () ->
                      Learning.Learn.learn
                        ~config:
                          {
                            Learning.Learn.default_config with
                            budget = Some budget;
                          }
                        cov ~rng ~positives:d.Datasets.Dataset.positives
                        ~negatives:d.Datasets.Dataset.negatives)
                in
                Domain.join killer;
                ignore r;
                (* flush exactly like the CLI teardown *)
                Trace.export_json trace_path;
                Obs.Events.flush ();
                let trace_raw =
                  In_channel.with_open_bin trace_path In_channel.input_all
                in
                (match Json.parse trace_raw with
                | Ok j -> ignore (check_trace_json j)
                | Error e -> Alcotest.failf "trace not valid JSON: %s" e);
                let lines =
                  In_channel.with_open_bin events_path In_channel.input_all
                  |> String.split_on_char '\n'
                  |> List.filter (fun l -> String.trim l <> "")
                in
                Alcotest.(check bool) "event log nonempty" true (lines <> []);
                List.iter
                  (fun l ->
                    match Json.parse l with
                    | Ok _ -> ()
                    | Error e -> Alcotest.failf "bad event line: %s" e)
                  lines)));
  ]

(* ------------------------------------------------------------------ *)
(* Run reports and the Budget counter export                          *)
(* ------------------------------------------------------------------ *)

let report_tests =
  [
    Alcotest.test_case "Budget.counters_to_assoc names every counter" `Quick
      (fun () ->
        let b = Budget.create () in
        Budget.hit b Budget.Subsumption_try;
        Budget.hit b Budget.Subsumption_try;
        Budget.hit b Budget.Coverage_memo_hit;
        let assoc = Budget.counters_to_assoc (Budget.counters b) in
        Alcotest.(check int) "tries" 2 (List.assoc "subsumption_tries" assoc);
        Alcotest.(check int) "hits" 1
          (List.assoc "coverage_memo_hits" assoc);
        Alcotest.(check int) "untouched present as zero" 0
          (List.assoc "worker_faults" assoc));
    Alcotest.test_case "pp_counters elides zero counters" `Quick (fun () ->
        let b = Budget.create () in
        Alcotest.(check string) "all zero" "no degradation events"
          (Fmt.str "%a" Budget.pp_counters (Budget.counters b));
        Budget.hit b Budget.Beam_cut;
        let s = Fmt.str "%a" Budget.pp_counters (Budget.counters b) in
        let contains needle =
          let nl = String.length needle and hl = String.length s in
          let rec go i =
            i + nl <= hl && (String.sub s i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "names the hit counter" true
          (contains "beam_rounds_cut 1");
        Alcotest.(check bool) "elides the zero ones" false
          (contains "subsumption_tries"));
    Alcotest.test_case "run report serializes to parseable JSON" `Quick
      (fun () ->
        Metrics.reset ();
        Metrics.bump (Metrics.counter "test.report");
        let b = Budget.create () in
        Budget.hit b Budget.Coverage_memo_miss;
        let report =
          Obs.Run_report.make ~name:"unit"
            ~config:[ ("seed", Json.Int 42) ]
            ~degradation:(Budget.degradation b) ()
        in
        let rendered = Json.to_string (Obs.Run_report.to_json report) in
        match Json.parse rendered with
        | Error e -> Alcotest.fail e
        | Ok j ->
            Alcotest.(check bool) "has metrics" true
              (Json.member "metrics" j <> None);
            (match Json.member "degradation" j with
            | Some d ->
                let counters = Json.member "counters" d in
                Alcotest.(check bool) "memo miss exported" true
                  (match Option.bind counters (Json.member "coverage_memo_misses") with
                  | Some (Json.Int 1) -> true
                  | _ -> false)
            | None -> Alcotest.fail "no degradation");
            Metrics.reset ());
  ]

let suite =
  json_tests @ utf8_tests @ metrics_tests @ trace_tests @ funnel_tests
  @ events_tests @ determinism_tests @ signal_tests @ report_tests
