(* The observability layer (lib/obs): JSON round-trips, metrics registry
   semantics — including snapshot monotonicity under concurrent bumps —
   Chrome trace-event export well-formedness (balanced B/E events, monotone
   timestamps per track), the per-phase summary, run reports, and the A/B
   guarantee that enabling the tracer cannot change what the learner
   learns. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace

(* The tracer and the metrics registry are process-wide singletons; every
   test that touches them cleans up so the rest of the suite (and the other
   suites) see the default disabled/zeroed state. *)
let with_tracer ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:Trace.disable f

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    Alcotest.test_case "to_string/parse round-trip" `Quick (fun () ->
        let j =
          Json.Obj
            [
              ("a", Json.Int 42);
              ("b", Json.Str "hi \"there\"\n");
              ("c", Json.List [ Json.Bool true; Json.Null; Json.Int (-7) ]);
              ("d", Json.Obj [ ("nested", Json.Str "") ]);
            ]
        in
        match Json.parse (Json.to_string j) with
        | Ok j' ->
            Alcotest.(check bool) "round-trips" true (j = j')
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "floats survive parsing; non-finite emit null" `Quick
      (fun () ->
        (match Json.parse (Json.to_string (Json.Float 1.5)) with
        | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "1.5" 1.5 f
        | _ -> Alcotest.fail "expected a float");
        Alcotest.(check string) "nan is null" "null"
          (Json.to_string (Json.Float Float.nan)));
    Alcotest.test_case "parse rejects trailing garbage" `Quick (fun () ->
        match Json.parse "{\"a\": 1} x" with
        | Ok _ -> Alcotest.fail "should reject"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    Alcotest.test_case "counters, gauges and histograms snapshot" `Quick
      (fun () ->
        Metrics.reset ();
        let c = Metrics.counter "test.counter" in
        let g = Metrics.gauge "test.gauge" in
        let h = Metrics.histogram "test.histogram" in
        Metrics.bump c;
        Metrics.add c 4;
        Metrics.gauge_set g 7;
        Metrics.gauge_add g (-3);
        List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.1 ];
        let s = Metrics.snapshot () in
        Alcotest.(check int) "counter" 5 (List.assoc "test.counter" s.Metrics.counters);
        Alcotest.(check int) "gauge" 4 (List.assoc "test.gauge" s.Metrics.gauges);
        let hs = List.assoc "test.histogram" s.Metrics.histograms in
        Alcotest.(check int) "count" 4 hs.Metrics.count;
        Alcotest.(check (float 1e-9)) "sum" 0.107 hs.Metrics.sum;
        Alcotest.(check (float 1e-9)) "max" 0.1 hs.Metrics.max;
        (* percentile estimates are bucket upper bounds: ordered, and the
           p99 bucket must contain the true maximum *)
        Alcotest.(check bool) "p50 <= p95" true (hs.Metrics.p50 <= hs.Metrics.p95);
        Alcotest.(check bool) "p95 <= p99" true (hs.Metrics.p95 <= hs.Metrics.p99);
        Alcotest.(check bool) "p99 covers max" true (hs.Metrics.p99 >= 0.1);
        Alcotest.(check bool) "p50 above its value" true (hs.Metrics.p50 >= 0.002);
        Metrics.reset ();
        let s = Metrics.snapshot () in
        Alcotest.(check int) "reset" 0 (List.assoc "test.counter" s.Metrics.counters));
    Alcotest.test_case "registration is idempotent by name" `Quick (fun () ->
        Metrics.reset ();
        let a = Metrics.counter "test.same" in
        let b = Metrics.counter "test.same" in
        Metrics.bump a;
        Metrics.bump b;
        Alcotest.(check int) "one cell" 2 (Metrics.counter_value a));
    (* The concurrency property behind the whole registry: counters only
       move up, so any snapshot taken while writers are live must be
       pointwise <= any later snapshot — no torn or rolled-back reads. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"snapshots are monotone across concurrent bumps"
         ~count:20
         QCheck.(pair (int_bound 500) (int_bound 3))
         (fun (bumps, extra_domains) ->
           Metrics.reset ();
           let c = Metrics.counter "test.mono" in
           let writers =
             List.init (1 + extra_domains) (fun _ ->
                 Domain.spawn (fun () ->
                     for _ = 1 to bumps do
                       Metrics.bump c
                     done))
           in
           (* interleave snapshot reads with the live writers *)
           let snaps = List.init 5 (fun _ -> Metrics.snapshot ()) in
           List.iter Domain.join writers;
           let final = Metrics.snapshot () in
           let rec chain = function
             | a :: (b :: _ as tl) -> Metrics.counters_leq a b && chain tl
             | [ last ] -> Metrics.counters_leq last final
             | [] -> true
           in
           chain snaps
           && List.assoc "test.mono" final.Metrics.counters
              = (1 + extra_domains) * bumps));
  ]

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

(* Walk exported traceEvents: per tid, B/E must balance like parentheses
   (matching names) and timestamps must never decrease. Returns the number
   of B events checked. *)
let check_trace_json json =
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let str j = match j with Some (Json.Str s) -> s | _ -> "?" in
  let num = function
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> Alcotest.fail "missing number"
  in
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  let begins = ref 0 in
  List.iter
    (fun ev ->
      match str (Json.member "ph" ev) with
      | "M" -> ()
      | ("B" | "E") as ph ->
          let tid =
            match Json.member "tid" ev with
            | Some (Json.Int i) -> i
            | _ -> Alcotest.fail "missing tid"
          in
          let ts = num (Json.member "ts" ev) in
          (match Hashtbl.find_opt last_ts tid with
          | Some prev when ts < prev ->
              Alcotest.failf "timestamps went backwards on track %d" tid
          | _ -> ());
          Hashtbl.replace last_ts tid ts;
          let name = str (Json.member "name" ev) in
          let s = stack tid in
          if ph = "B" then begin
            incr begins;
            s := name :: !s
          end
          else begin
            match !s with
            | top :: rest when top = name -> s := rest
            | top :: _ ->
                Alcotest.failf "E %s closes open span %s on track %d" name top
                  tid
            | [] -> Alcotest.failf "E %s with empty stack on track %d" name tid
          end
      | ph -> Alcotest.failf "unexpected event phase %s" ph)
    events;
  Hashtbl.iter
    (fun tid s ->
      if !s <> [] then Alcotest.failf "unclosed spans on track %d" tid)
    stacks;
  !begins

let trace_tests =
  [
    Alcotest.test_case "spans record nesting, args and timing" `Quick
      (fun () ->
        with_tracer (fun () ->
            Trace.span ~cat:"t" "outer" (fun () ->
                Trace.span ~args:[ ("k", "v") ] ~cat:"t" "inner" (fun () ->
                    Trace.arg "late" "yes"));
            let evs = Trace.events () in
            Alcotest.(check int) "two spans" 2 (List.length evs);
            let inner = List.hd evs in
            (* inner closes first, so it is recorded first *)
            Alcotest.(check string) "name" "inner" inner.Trace.name;
            Alcotest.(check (list string)) "path" [ "outer"; "inner" ]
              inner.Trace.path;
            Alcotest.(check (list (pair string string))) "args"
              [ ("k", "v"); ("late", "yes") ]
              inner.Trace.args;
            Alcotest.(check bool) "duration >= 0" true
              (inner.Trace.t_end_us >= inner.Trace.t_start_us)));
    Alcotest.test_case "disabled tracer records nothing and passes through"
      `Quick (fun () ->
        Trace.disable ();
        let r = Trace.span ~cat:"t" "ghost" (fun () -> 41 + 1) in
        Alcotest.(check int) "result" 42 r;
        Alcotest.(check int) "no events" 0 (List.length (Trace.events ())));
    Alcotest.test_case "span closes on exceptions" `Quick (fun () ->
        with_tracer (fun () ->
            (try Trace.span ~cat:"t" "boom" (fun () -> failwith "x")
             with Failure _ -> ());
            Alcotest.(check int) "recorded anyway" 1
              (List.length (Trace.events ()))));
    Alcotest.test_case "export: balanced B/E, monotone ts, multi-domain"
      `Quick (fun () ->
        with_tracer (fun () ->
            Trace.span ~cat:"t" "main_outer" (fun () ->
                Trace.span ~cat:"t" "main_inner" (fun () -> ()));
            let workers =
              List.init 3 (fun w ->
                  Domain.spawn (fun () ->
                      for i = 0 to 9 do
                        Trace.span
                          ~args:[ ("w", string_of_int w) ]
                          ~cat:"t"
                          ("job_" ^ string_of_int (i mod 3))
                          (fun () -> ignore (Sys.opaque_identity (i * i)))
                      done))
            in
            List.iter Domain.join workers;
            let begins = check_trace_json (Trace.to_json ()) in
            Alcotest.(check int) "all spans exported" 32 begins));
    Alcotest.test_case "ring wraps, counts drops, stays well-formed" `Quick
      (fun () ->
        with_tracer ~capacity:4 (fun () ->
            for i = 1 to 10 do
              Trace.span ~cat:"t" ("s" ^ string_of_int i) (fun () -> ())
            done;
            Alcotest.(check int) "kept" 4 (List.length (Trace.events ()));
            Alcotest.(check int) "dropped" 6 (Trace.dropped ());
            ignore (check_trace_json (Trace.to_json ()))));
    Alcotest.test_case "summary aggregates calls and self <= total" `Quick
      (fun () ->
        with_tracer (fun () ->
            for _ = 1 to 3 do
              Trace.span ~cat:"t" "parent" (fun () ->
                  Trace.span ~cat:"t" "child" (fun () -> ()))
            done;
            let rows = Trace.summary_rows () in
            let row path = List.find (fun r -> r.Trace.row_path = path) rows in
            let parent = row [ "parent" ] and child = row [ "parent"; "child" ] in
            Alcotest.(check int) "parent calls" 3 parent.Trace.calls;
            Alcotest.(check int) "child calls" 3 child.Trace.calls;
            Alcotest.(check bool) "self <= total" true
              (parent.Trace.self_s <= parent.Trace.total_s);
            Alcotest.(check bool) "parent total covers child" true
              (parent.Trace.total_s >= child.Trace.total_s)));
  ]

(* ------------------------------------------------------------------ *)
(* Tracing cannot change results (the --trace off/on A/B guarantee)   *)
(* ------------------------------------------------------------------ *)

let determinism_tests =
  [
    Alcotest.test_case "learn is bit-identical with tracing off and on" `Slow
      (fun () ->
        let learn () =
          let d = Datasets.Uw.generate ~seed:7 ~scale:0.3 () in
          let rng = Random.State.make [| 7 |] in
          let cov =
            Learning.Coverage.create d.Datasets.Dataset.db
              d.Datasets.Dataset.manual_bias ~rng
          in
          let r =
            Learning.Learn.learn
              ~config:{ Learning.Learn.default_config with timeout = Some 60. }
              cov ~rng ~positives:d.Datasets.Dataset.positives
              ~negatives:d.Datasets.Dataset.negatives
          in
          Logic.Clause.definition_to_string r.Learning.Learn.definition
        in
        let off = learn () in
        let on = with_tracer learn in
        Alcotest.(check string) "identical definition" off on;
        Alcotest.(check bool) "nonempty" true (off <> ""));
  ]

(* ------------------------------------------------------------------ *)
(* Run reports and the Budget counter export                          *)
(* ------------------------------------------------------------------ *)

let report_tests =
  [
    Alcotest.test_case "Budget.counters_to_assoc names every counter" `Quick
      (fun () ->
        let b = Budget.create () in
        Budget.hit b Budget.Subsumption_try;
        Budget.hit b Budget.Subsumption_try;
        Budget.hit b Budget.Coverage_memo_hit;
        let assoc = Budget.counters_to_assoc (Budget.counters b) in
        Alcotest.(check int) "tries" 2 (List.assoc "subsumption_tries" assoc);
        Alcotest.(check int) "hits" 1
          (List.assoc "coverage_memo_hits" assoc);
        Alcotest.(check int) "untouched present as zero" 0
          (List.assoc "worker_faults" assoc));
    Alcotest.test_case "pp_counters elides zero counters" `Quick (fun () ->
        let b = Budget.create () in
        Alcotest.(check string) "all zero" "no degradation events"
          (Fmt.str "%a" Budget.pp_counters (Budget.counters b));
        Budget.hit b Budget.Beam_cut;
        let s = Fmt.str "%a" Budget.pp_counters (Budget.counters b) in
        let contains needle =
          let nl = String.length needle and hl = String.length s in
          let rec go i =
            i + nl <= hl && (String.sub s i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "names the hit counter" true
          (contains "beam_rounds_cut 1");
        Alcotest.(check bool) "elides the zero ones" false
          (contains "subsumption_tries"));
    Alcotest.test_case "run report serializes to parseable JSON" `Quick
      (fun () ->
        Metrics.reset ();
        Metrics.bump (Metrics.counter "test.report");
        let b = Budget.create () in
        Budget.hit b Budget.Coverage_memo_miss;
        let report =
          Obs.Run_report.make ~name:"unit"
            ~config:[ ("seed", Json.Int 42) ]
            ~degradation:(Budget.degradation b) ()
        in
        let rendered = Json.to_string (Obs.Run_report.to_json report) in
        match Json.parse rendered with
        | Error e -> Alcotest.fail e
        | Ok j ->
            Alcotest.(check bool) "has metrics" true
              (Json.member "metrics" j <> None);
            (match Json.member "degradation" j with
            | Some d ->
                let counters = Json.member "counters" d in
                Alcotest.(check bool) "memo miss exported" true
                  (match Option.bind counters (Json.member "coverage_memo_misses") with
                  | Some (Json.Int 1) -> true
                  | _ -> false)
            | None -> Alcotest.fail "no degradation");
            Metrics.reset ());
  ]

let suite =
  json_tests @ metrics_tests @ trace_tests @ determinism_tests @ report_tests
