(* Cross-cutting property-based tests: invariants of ARMG, clause reduction,
   the two coverage engines, CSV round-trips, and the samplers — the
   properties DESIGN.md leans on. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Relation = Relational.Relation
module Coverage = Learning.Coverage

let v = Value.str

(* A randomized small UW-style world: returns (dataset-free) database, bias,
   coverage context, and the example pool. Deterministic per seed. *)
let world seed =
  let d = Datasets.Uw.generate ~seed ~scale:0.3 () in
  let rng = Random.State.make [| seed; 77 |] in
  let cov =
    Coverage.create d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
  in
  (d, cov, rng)

let armg_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ARMG covers its example and never grows"
         ~count:25
         QCheck.(pair (int_bound 1000) (pair small_nat small_nat))
         (fun (seed, (i, j)) ->
           let d, cov, rng = world (1 + (seed mod 17)) in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let e1 = pos.(i mod Array.length pos) in
           let e2 = pos.(j mod Array.length pos) in
           let bc =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias ~rng ~example:e1
           in
           match Learning.Armg.generalize cov bc ~example:e2 with
           | None -> false (* positives always bind the target head *)
           | Some c ->
               Logic.Clause.size c <= Logic.Clause.size bc
               && Coverage.covers cov c e2));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ARMG output stays head-connected" ~count:15
         QCheck.(pair (int_bound 1000) small_nat)
         (fun (seed, j) ->
           let d, cov, rng = world (1 + (seed mod 17)) in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let e1 = pos.(0) and e2 = pos.(j mod Array.length pos) in
           let bc =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias ~rng ~example:e1
           in
           match Learning.Armg.generalize cov bc ~example:e2 with
           | None -> false
           | Some c ->
               (* pruning is idempotent on ARMG output *)
               Logic.Clause.size (Logic.Clause.prune_head_connected c)
               = Logic.Clause.size c));
  ]

let coverage_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"memoized coverage equals a fresh uncached oracle" ~count:10
         QCheck.(pair (int_bound 1000) small_nat)
         (fun (seed, j) ->
           (* Two contexts over the same world and master seed: one memoized,
              one the uncached oracle. Every verdict must agree, and asking
              the memoized context twice (second answer is a cache hit) must
              not change it. *)
           let s = 1 + (seed mod 17) in
           let d = Datasets.Uw.generate ~seed:s ~scale:0.3 () in
           let mk use_cache =
             Coverage.create ~use_cache d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 77 |])
           in
           let cached = mk true and oracle = mk false in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let bc =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias
               ~rng:(Random.State.make [| s; 99 |])
               ~example:pos.(j mod Array.length pos)
           in
           let body = Logic.Clause.body bc in
           let half = List.filteri (fun i _ -> 2 * i < List.length body) body in
           let clauses =
             [ bc; Logic.Clause.make (Logic.Clause.head bc) half ]
           in
           let examples =
             d.Datasets.Dataset.positives @ d.Datasets.Dataset.negatives
           in
           List.for_all
             (fun c ->
               List.for_all
                 (fun e ->
                   let first = Coverage.covers cached c e in
                   let again = Coverage.covers cached c e in
                   let truth = Coverage.covers oracle c e in
                   first = truth && again = truth)
                 examples)
             clauses
           && (Coverage.cache_stats cached).Coverage.hits > 0
           && (Coverage.cache_stats oracle).Coverage.hits = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"ARMG monotonicity: child covers everything its parent covers"
         ~count:20
         QCheck.(pair (int_bound 1000) (pair small_nat small_nat))
         (fun (seed, (i, j)) ->
           (* The invariant monotone propagation in Learn relies on: ARMG
              only drops/generalizes body literals, so the child's covered
              set contains the parent's. The containment is exact whenever
              the evaluator is exact; a truncated (cap-subsampled) frontier
              is the documented approximation that can lose a witness, so
              instances where any truncation fired pass vacuously. *)
           let s = 1 + (seed mod 17) in
           let d = Datasets.Uw.generate ~seed:s ~scale:0.3 () in
           let b = Budget.create () in
           let rng = Random.State.make [| s; 77 |] in
           let cov =
             Coverage.create ~budget:b d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias ~rng
           in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let e1 = pos.(i mod Array.length pos) in
           let e2 = pos.(j mod Array.length pos) in
           let parent =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias ~rng ~example:e1
           in
           match Learning.Armg.generalize cov parent ~example:e2 with
           | None -> false
           | Some child ->
               let monotone =
                 List.for_all
                   (fun e ->
                     (not (Coverage.covers cov parent e))
                     || Coverage.covers cov child e)
                   (d.Datasets.Dataset.positives
                   @ d.Datasets.Dataset.negatives)
               in
               monotone
               || (Budget.counters b).Budget.coverage_truncated > 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"dropping body literals only generalizes (frontier engine)"
         ~count:25
         QCheck.(pair (int_bound 1000) small_nat)
         (fun (seed, j) ->
           (* If clause C covers e, so does C minus any suffix of its body
              (prefix evaluation is antitone in the body). *)
           let d, cov, rng = world (1 + (seed mod 17)) in
           let pos = Array.of_list d.Datasets.Dataset.positives in
           let e = pos.(j mod Array.length pos) in
           let bc =
             Learning.Bottom_clause.build d.Datasets.Dataset.db
               d.Datasets.Dataset.manual_bias ~rng ~example:e
           in
           let body = Logic.Clause.body bc in
           let k = List.length body / 2 in
           let prefix = List.filteri (fun i _ -> i < k) body in
           let full_covers = Coverage.covers cov bc e in
           let prefix_covers =
             Coverage.covers cov (Logic.Clause.make (Logic.Clause.head bc) prefix) e
           in
           (not full_covers) || prefix_covers));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"query engine agrees with subsumption on crisp clauses"
         ~count:10
         QCheck.(int_bound 1000)
         (fun seed ->
           let d, cov, _rng = world (1 + (seed mod 7)) in
           let clause =
             Logic.Parser.clause
               "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)"
           in
           (* The gold clause touches only fully-sampled neighbourhoods at
              this scale, so both engines must agree on every example. *)
           List.for_all
             (fun e ->
               Learning.Query.covers d.Datasets.Dataset.db clause e
               = Coverage.covers cov clause e)
             (d.Datasets.Dataset.positives @ d.Datasets.Dataset.negatives)));
  ]

let inference_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"derive agrees with per-tuple query coverage" ~count:8
         QCheck.(int_bound 1000)
         (fun seed ->
           let d, _cov, _rng = world (1 + (seed mod 7)) in
           let db = d.Datasets.Dataset.db in
           let clause =
             Logic.Parser.clause
               "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y), student(X), professor(Y)"
           in
           let derived = Learning.Inference.derive db clause in
           (* Everything derived is covered... *)
           List.for_all (fun t -> Learning.Query.covers db clause t) derived
           (* ...and every covered example is derived. *)
           && List.for_all
                (fun e ->
                  (not (Learning.Query.covers db clause e))
                  || List.mem e derived)
                (d.Datasets.Dataset.positives @ d.Datasets.Dataset.negatives)));
  ]

let csv_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"CSV round-trips arbitrary printable relations"
         ~count:100
         QCheck.(
           list_of_size
             Gen.(int_range 0 30)
             (pair (string_small_of Gen.(char_range 'a' 'z')) small_int))
         (fun rows ->
           let schema = Schema.relation "r" [| "a"; "b" |] in
           let r =
             Relation.of_tuples schema
               (List.map (fun (a, b) -> [| v a; Value.int b |]) rows)
           in
           let r2 =
             Relational.Csv.parse_string ~schema (Relational.Csv.to_string r)
           in
           List.rev (Relation.tuples r) = List.rev (Relation.tuples r2)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"CSV round-trips fields needing quoting"
         ~count:100
         QCheck.(
           list_of_size Gen.(int_range 1 10)
             (string_small_of
                Gen.(oneof [ char_range 'a' 'z'; return ','; return '"' ])))
         (fun fields ->
           QCheck.assume (List.for_all (fun s -> s <> "") fields);
           let schema = Schema.relation "r" [| "x" |] in
           let r =
             Relation.of_tuples schema (List.map (fun s -> [| v s |]) fields)
           in
           let r2 =
             Relational.Csv.parse_string ~schema (Relational.Csv.to_string r)
           in
           List.rev (Relation.tuples r) = List.rev (Relation.tuples r2)));
  ]

let sampler_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"all samplers return subsets of the selection" ~count:60
         QCheck.(
           pair (int_bound 1000)
             (list_of_size Gen.(int_range 1 40) (pair (int_bound 6) (int_bound 6))))
         (fun (seed, rows) ->
           let schema = Schema.relation "r" [| "k"; "p" |] in
           let rel =
             Relation.of_tuples schema
               (List.map (fun (k, p) -> [| Value.int k; Value.int p |]) rows)
           in
           let known =
             Value.Set.of_list (List.init 4 (fun i -> Value.int i))
           in
           let rng = Random.State.make [| seed |] in
           List.for_all
             (fun strategy ->
               let sample =
                 Sampling.Strategy.sample strategy ~rng ~rel ~pos:0 ~known
                   ~size:5 ~constant_positions:[ 1 ]
               in
               List.for_all
                 (fun t ->
                   Value.Set.mem t.(0) known
                   && List.mem (t.(0), t.(1))
                        (List.map (fun (k, p) -> (Value.int k, Value.int p)) rows))
                 sample)
             Sampling.Strategy.all));
  ]

let subsumption_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"subsumption is monotone under ground-clause growth" ~count:150
         QCheck.(
           pair
             (list_of_size Gen.(int_range 1 4)
                (pair (int_bound 1) (pair (int_bound 3) (int_bound 3))))
             (pair
                (list_of_size Gen.(int_range 1 6)
                   (pair (int_bound 1) (pair (int_bound 2) (int_bound 2))))
                (list_of_size Gen.(int_range 0 4)
                   (pair (int_bound 1) (pair (int_bound 2) (int_bound 2))))))
         (fun (body_spec, (g1_spec, extra_spec)) ->
           let lit (p, (a, b)) ~ground =
             let t x =
               if ground then Logic.Term.Const (Value.int x)
               else if x < 2 then Logic.Term.Var x
               else Logic.Term.Const (Value.int x)
             in
             Logic.Literal.make (Printf.sprintf "p%d" p) [| t a; t b |]
           in
           let body = List.map (lit ~ground:false) body_spec in
           let g1 = List.map (lit ~ground:true) g1_spec in
           let extra = List.map (lit ~ground:true) extra_spec in
           let c = Logic.Clause.make (Logic.Parser.literal "h(X)") body in
           let covers g =
             Logic.Subsumption.subsumes c (Logic.Subsumption.ground_of_literals g)
           in
           (* adding literals to the ground clause can only help *)
           (not (covers g1)) || covers (g1 @ extra)));
  ]

let suite =
  armg_properties @ coverage_properties @ inference_properties
  @ csv_properties @ sampler_properties @ subsumption_properties
