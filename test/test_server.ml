(* The serving layer: protocol totality, catalog sharing, daemon admission
   control (the qcheck property: in-flight never exceeds the cap, every
   rejection is typed, nothing is silently dropped), retry/quarantine,
   deadline degradation, graceful drain, the chaos soak, and the
   bit-identity of served results with direct library calls. *)

module Protocol = Server.Protocol
module Catalog = Server.Catalog
module Daemon = Server.Daemon
module Loadgen = Server.Loadgen

let null_payload : Protocol.payload = []

(* a handler that ignores the request: the daemon tests care about job
   mechanics, not learning *)
let handler_const ?(work = fun () -> ()) () ~budget:_ _req =
  work ();
  (null_payload, None)

let learn_uw ?(seed = 7) ?(deadline = None) () =
  Protocol.Learn
    { (Protocol.default_common "uw") with scale = 0.15; seed; deadline }

(* ---------------- protocol ---------------- *)

let protocol_tests =
  [
    Alcotest.test_case "parse fills defaults and typed options" `Quick
      (fun () ->
        match
          Protocol.parse_request
            "learn uw method=autobias scale=0.5 seed=7 timeout=10 deadline=30"
        with
        | Ok (Protocol.Learn c) ->
            Alcotest.(check string) "dataset" "uw" c.Protocol.dataset;
            Alcotest.(check (float 0.)) "scale" 0.5 c.Protocol.scale;
            Alcotest.(check int) "seed" 7 c.Protocol.seed;
            Alcotest.(check (float 0.)) "timeout" 10. c.Protocol.timeout;
            Alcotest.(check (option (float 0.)))
              "deadline" (Some 30.) c.Protocol.deadline
        | Ok _ -> Alcotest.fail "parsed to the wrong verb"
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "render/parse round-trips every verb" `Quick (fun () ->
        List.iter
          (fun r ->
            match Protocol.parse_request (Protocol.request_to_string r) with
            | Ok r' ->
                Alcotest.(check string)
                  "round trip"
                  (Protocol.request_to_string r)
                  (Protocol.request_to_string r')
            | Error e -> Alcotest.fail e)
          [
            Protocol.Induce_bias (Protocol.default_common "imdb");
            learn_uw ~deadline:(Some 3.) ();
            Protocol.Infer (Protocol.default_common "uw", 5);
            Protocol.Explain (Protocol.default_common "hiv", 2);
          ]);
    Alcotest.test_case "parsing is total on malformed lines" `Quick (fun () ->
        List.iter
          (fun line ->
            match Protocol.parse_request line with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail ("accepted malformed line: " ^ line))
          [
            "";
            "learn";
            "frobnicate uw";
            "learn scale=2";
            "learn uw scale=abc";
            "learn uw seed=1.5";
            "learn uw bogus";
            "learn uw unknown=1";
          ]);
    Alcotest.test_case "responses and rejections render to valid JSON" `Quick
      (fun () ->
        let check_json j =
          match Obs.Json.parse (Obs.Json.to_string j) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e
        in
        check_json
          (Protocol.response_to_json
             {
               Protocol.id = 1;
               outcome = Protocol.Completed [ ("x", Obs.Json.Int 1) ];
               latency_s = 0.1;
               attempts = 1;
             });
        check_json
          (Protocol.response_to_json
             {
               Protocol.id = 2;
               outcome =
                 Protocol.Quarantined
                   { attempts = 3; exn = "Chaos.Killed(4)"; backtrace = "bt" };
               latency_s = 0.1;
               attempts = 3;
             });
        check_json
          (Protocol.rejection_to_json
             (Protocol.Overloaded { retry_after = 0.25 }));
        check_json (Protocol.rejection_to_json Protocol.Draining));
  ]

(* ---------------- catalog ---------------- *)

let catalog_tests =
  [
    Alcotest.test_case "unknown dataset is a typed error, not an exception"
      `Quick (fun () ->
        let c = Catalog.create () in
        match Catalog.load c ~name:"nope" ~scale:1. ~seed:1 with
        | Error (Catalog.Unknown_dataset "nope") -> ()
        | Error e -> Alcotest.fail (Catalog.error_to_string e)
        | Ok _ -> Alcotest.fail "loaded a dataset that does not exist");
    Alcotest.test_case "repeat load returns the same physical entry" `Quick
      (fun () ->
        let c = Catalog.create () in
        let d1 =
          Result.get_ok (Catalog.load c ~name:"uw" ~scale:0.15 ~seed:3)
        in
        let d2 =
          Result.get_ok (Catalog.load c ~name:"uw" ~scale:0.15 ~seed:3)
        in
        Alcotest.(check bool) "physically shared" true (d1 == d2);
        let d3 =
          Result.get_ok (Catalog.load c ~name:"uw" ~scale:0.15 ~seed:4)
        in
        Alcotest.(check bool) "different seed, different entry" false (d1 == d3);
        Alcotest.(check int) "two keys published" 2
          (List.length (Catalog.loaded c)));
  ]

(* ---------------- admission control (qcheck) ---------------- *)

(* 4 workers gives genuine concurrency above any cap the generator picks;
   with_pool joins them every iteration so no domain outlives its case. *)
let admission_property =
  QCheck.Test.make ~name:"in-flight never exceeds the cap; no silent drops"
    ~count:25
    QCheck.(
      triple (int_range 1 3) (int_range 0 3) (int_range 1 25))
    (fun (max_in_flight, max_queue, jobs) ->
      Parallel.Pool.with_pool ~size:4 @@ fun pool ->
      let running = Atomic.make 0 in
      let high_water = Atomic.make 0 in
      let handler ~budget:_ _req =
        let c = Atomic.fetch_and_add running 1 + 1 in
        let rec bump () =
          let m = Atomic.get high_water in
          if c > m && not (Atomic.compare_and_set high_water m c) then bump ()
        in
        bump ();
        Unix.sleepf 0.002;
        Atomic.decr running;
        (null_payload, None)
      in
      let daemon =
        Daemon.create ~pool
          ~config:
            {
              Daemon.default_config with
              max_in_flight;
              max_queue;
              max_attempts = 1;
            }
          handler
      in
      let accepted = ref [] and rejected = ref 0 in
      for i = 0 to jobs - 1 do
        match Daemon.submit daemon (learn_uw ~seed:i ()) with
        | Ok job -> accepted := job :: !accepted
        | Error (Protocol.Overloaded { retry_after }) ->
            if retry_after < 0. then
              QCheck.Test.fail_report "negative retry_after";
            incr rejected
        | Error Protocol.Draining ->
            QCheck.Test.fail_report "Draining without a drain"
      done;
      let responses = List.map (Daemon.await daemon) !accepted in
      let stats = Daemon.stats daemon in
      List.length !accepted + !rejected = jobs
      && stats.Daemon.submitted = List.length !accepted
      && stats.Daemon.rejected = !rejected
      && List.length responses = List.length !accepted
      && Atomic.get high_water <= max_in_flight
      && stats.Daemon.in_flight = 0
      && stats.Daemon.waiting = 0)

(* ---------------- retry / quarantine ---------------- *)

let fast_retry =
  {
    Resilience.Policy.default with
    backoff_base_s = 0.001;
    backoff_max_s = 0.002;
  }

let retry_tests =
  [
    Alcotest.test_case "poisoned job is quarantined with its backtrace"
      `Quick (fun () ->
        let handler ~budget:_ _req = failwith "poison" in
        let daemon =
          Daemon.create
            ~config:
              {
                Daemon.default_config with
                max_attempts = 3;
                policy = fast_retry;
              }
            handler
        in
        match Daemon.submit_and_wait daemon (learn_uw ()) with
        | Ok
            {
              Protocol.outcome =
                Protocol.Quarantined { attempts = consumed; exn; _ };
              attempts;
              _;
            } ->
            Alcotest.(check int) "attempts consumed" 3 consumed;
            Alcotest.(check int) "response attempts" 3 attempts;
            Alcotest.(check bool)
              "exception recorded" true
              (String.length exn > 0);
            let stats = Daemon.stats daemon in
            Alcotest.(check int) "quarantined tally" 1 stats.Daemon.quarantined;
            Alcotest.(check int) "retries tally" 2 stats.Daemon.retries
        | Ok r ->
            Alcotest.fail
              ("expected quarantine, got " ^ Protocol.status_of_outcome
                                               r.Protocol.outcome)
        | Error _ -> Alcotest.fail "rejected");
    Alcotest.test_case "transient fault is retried to completion" `Quick
      (fun () ->
        let first = Atomic.make true in
        let handler ~budget:_ _req =
          if Atomic.compare_and_set first true false then failwith "transient"
          else (null_payload, None)
        in
        let daemon =
          Daemon.create
            ~config:
              {
                Daemon.default_config with
                max_attempts = 3;
                policy = fast_retry;
              }
            handler
        in
        match Daemon.submit_and_wait daemon (learn_uw ()) with
        | Ok { Protocol.outcome = Protocol.Completed _; attempts; _ } ->
            Alcotest.(check int) "second attempt succeeded" 2 attempts;
            Alcotest.(check int) "one retry" 1 (Daemon.stats daemon).Daemon.retries
        | Ok r ->
            Alcotest.fail
              ("expected completion, got " ^ Protocol.status_of_outcome
                                               r.Protocol.outcome)
        | Error _ -> Alcotest.fail "rejected");
    Alcotest.test_case "a bad request fails without burning retries" `Quick
      (fun () ->
        let handler ~budget:_ _req =
          raise (Server.Handler.Bad_request "no such thing")
        in
        let daemon = Daemon.create handler in
        match Daemon.submit_and_wait daemon (learn_uw ()) with
        | Ok { Protocol.outcome = Protocol.Failed msg; attempts; _ } ->
            Alcotest.(check string) "message" "no such thing" msg;
            Alcotest.(check int) "first attempt" 1 attempts;
            Alcotest.(check int) "no retries" 0
              (Daemon.stats daemon).Daemon.retries
        | Ok r ->
            Alcotest.fail
              ("expected failure, got " ^ Protocol.status_of_outcome
                                            r.Protocol.outcome)
        | Error _ -> Alcotest.fail "rejected");
  ]

(* ---------------- deadlines and drain ---------------- *)

let spin_until_expired ~budget _req =
  while not (Budget.expired budget) do
    Unix.sleepf 0.001
  done;
  (null_payload, Some (Budget.degradation budget))

let deadline_tests =
  [
    Alcotest.test_case "an expired job answers degraded, not dead" `Quick
      (fun () ->
        let daemon = Daemon.create spin_until_expired in
        match
          Daemon.submit_and_wait daemon (learn_uw ~deadline:(Some 0.05) ())
        with
        | Ok { Protocol.outcome = Protocol.Degraded (_, d); _ } ->
            Alcotest.(check string)
              "deadline hit" "deadline_hit"
              (Budget.status_to_string d.Budget.status)
        | Ok r ->
            Alcotest.fail
              ("expected degraded, got " ^ Protocol.status_of_outcome
                                             r.Protocol.outcome)
        | Error _ -> Alcotest.fail "rejected");
    Alcotest.test_case "config default_deadline applies when unset" `Quick
      (fun () ->
        let daemon =
          Daemon.create
            ~config:
              { Daemon.default_config with default_deadline = Some 0.05 }
            spin_until_expired
        in
        match Daemon.submit_and_wait daemon (learn_uw ()) with
        | Ok { Protocol.outcome = Protocol.Degraded _; _ } -> ()
        | Ok r ->
            Alcotest.fail
              ("expected degraded, got " ^ Protocol.status_of_outcome
                                             r.Protocol.outcome)
        | Error _ -> Alcotest.fail "rejected");
    Alcotest.test_case
      "drain cancels stragglers into best-so-far and closes admission"
      `Quick (fun () ->
        Parallel.Pool.with_pool ~size:2 (fun pool ->
            let daemon = Daemon.create ~pool spin_until_expired in
            let jobs =
              List.init 2 (fun i ->
                  Result.get_ok (Daemon.submit daemon (learn_uw ~seed:i ())))
            in
            Daemon.drain ~deadline:0.05 daemon;
            List.iter
              (fun job ->
                match Daemon.await daemon job with
                | { Protocol.outcome = Protocol.Degraded (_, d); _ } ->
                    Alcotest.(check string)
                      "cancelled" "cancelled"
                      (Budget.status_to_string d.Budget.status)
                | r ->
                    Alcotest.fail
                      ("expected cancelled, got "
                      ^ Protocol.status_of_outcome r.Protocol.outcome))
              jobs;
            match Daemon.submit daemon (learn_uw ()) with
            | Error Protocol.Draining -> ()
            | Error _ -> Alcotest.fail "wrong rejection while draining"
            | Ok _ -> Alcotest.fail "admitted a job while draining"));
  ]

(* ---------------- chaos soak ---------------- *)

let soak_tests =
  [
    Alcotest.test_case
      "chaos soak: every job ends in exactly one typed outcome" `Quick
      (fun () ->
        let chaos =
          Parallel.Fault.create ~p_fault:0.3 ~p_kill:0.15 ~seed:11 ()
        in
        Parallel.Pool.with_pool ~size:3 ~chaos ~policy:fast_retry
          (fun pool ->
            let daemon =
              Daemon.create ~pool
                ~config:
                  {
                    Daemon.default_config with
                    max_in_flight = 3;
                    max_queue = 2;
                    max_attempts = 3;
                    policy = fast_retry;
                  }
                (handler_const ~work:(fun () -> Unix.sleepf 0.002) ())
            in
            let summary =
              Loadgen.run ~clients:5 ~jobs:60 ~reject_retries:50 daemon
                (fun i -> learn_uw ~seed:i ())
            in
            Daemon.drain ~deadline:5. daemon;
            Alcotest.(check bool)
              "every job accounted" true summary.Loadgen.accounted;
            Alcotest.(check int) "all indices consumed" 60 summary.Loadgen.jobs;
            Alcotest.(check bool)
              "fault injection actually exercised the retry path" true
              (summary.Loadgen.retries > 0
              || summary.Loadgen.quarantined > 0)));
    Alcotest.test_case "supervision backoff respects a cancelled budget"
      `Quick (fun () ->
        (* every task kills its worker and the restart backoff is 2s: only
           the budget-interruptible sleep lets this finish fast *)
        let chaos = Parallel.Fault.create ~p_kill:1.0 ~seed:5 () in
        let budget = Budget.create () in
        Budget.cancel budget;
        let slow_restarts =
          {
            Resilience.Policy.default with
            backoff_base_s = 2.0;
            backoff_max_s = 4.0;
          }
        in
        let t0 = Budget.now () in
        let quarantined = ref false in
        Parallel.Pool.with_pool ~size:1 ~chaos ~budget ~policy:slow_restarts
          (fun pool ->
            let done_ = Atomic.make false in
            Parallel.Pool.submit pool
              ~on_quarantine:(fun _ ->
                quarantined := true;
                Atomic.set done_ true)
              (fun () -> ());
            let rec wait n =
              if (not (Atomic.get done_)) && n < 2000 then begin
                Unix.sleepf 0.005;
                wait (n + 1)
              end
            in
            wait 0);
        Alcotest.(check bool) "job quarantined" true !quarantined;
        Alcotest.(check bool)
          "backoff was interrupted (< 1.5s, not 2s+ per restart)" true
          (Budget.now () -. t0 < 1.5));
  ]

(* ---------------- determinism ---------------- *)

let determinism_tests =
  [
    Alcotest.test_case
      "served learn is bit-identical to the direct library call" `Slow
      (fun () ->
        let catalog = Catalog.create () in
        let daemon = Daemon.create (Server.Handler.default catalog) in
        let request = learn_uw ~seed:7 () in
        let served () =
          match Daemon.submit_and_wait daemon request with
          | Ok { Protocol.outcome = Protocol.Completed payload; _ } -> (
              match List.assoc_opt "definition" payload with
              | Some (Obs.Json.Str s) -> s
              | _ -> Alcotest.fail "no definition in payload")
          | Ok r ->
              Alcotest.fail
                ("serve did not complete: "
                ^ Protocol.status_of_outcome r.Protocol.outcome)
          | Error _ -> Alcotest.fail "rejected"
        in
        let s1 = served () in
        let s2 = served () in
        Alcotest.(check string) "replay is deterministic" s1 s2;
        let c = Protocol.common_of_request request in
        let d =
          Result.get_ok
            (Catalog.load catalog ~name:"uw" ~scale:c.Protocol.scale
               ~seed:c.Protocol.seed)
        in
        let config =
          {
            Autobias.default_config with
            strategy = Sampling.Strategy.of_string c.Protocol.strategy;
            timeout = Some c.Protocol.timeout;
            pool = None;
          }
        in
        let rng = Random.State.make [| c.Protocol.seed |] in
        let r =
          Autobias.learn_once ~config
            (Autobias.method_of_string c.Protocol.method_)
            d ~rng
            ~train_pos:d.Datasets.Dataset.positives
            ~train_neg:d.Datasets.Dataset.negatives
        in
        Alcotest.(check string)
          "identical to direct call" s1
          (Logic.Clause.definition_to_string r.Autobias.definition));
  ]

(* ---------------- job tracing and introspection ---------------- *)

let observability_tests =
  [
    Alcotest.test_case
      "fixed-seed soak: every learner span is tagged with its job id" `Slow
      (fun () ->
        Obs.Trace.enable ();
        Fun.protect ~finally:Obs.Trace.disable (fun () ->
            let catalog = Catalog.create () in
            Parallel.Pool.with_pool ~size:2 (fun pool ->
                let daemon =
                  Daemon.create ~pool (Server.Handler.default catalog)
                in
                let jobs =
                  List.init 3 (fun i ->
                      Result.get_ok
                        (Daemon.submit daemon (learn_uw ~seed:(7 + i) ())))
                in
                let _ = List.map (Daemon.await daemon) jobs in
                Daemon.drain daemon;
                let evs = Obs.Trace.events () in
                (* learner-side categories only ever run inside a job's
                   handler, so every such span must carry the job tag *)
                let learner_cats =
                  [ "learn"; "coverage"; "subsumption"; "sampling"; "discovery" ]
                in
                let learner_spans =
                  List.filter
                    (fun e -> List.mem e.Obs.Trace.cat learner_cats)
                    evs
                in
                Alcotest.(check bool) "learner spans recorded" true
                  (learner_spans <> []);
                List.iter
                  (fun e ->
                    match e.Obs.Trace.job with
                    | Some _ -> ()
                    | None ->
                        Alcotest.failf "untagged learner span %s (cat %s)"
                          e.Obs.Trace.name e.Obs.Trace.cat)
                  learner_spans;
                let tags =
                  List.filter_map (fun e -> e.Obs.Trace.job) evs
                  |> List.sort_uniq compare
                in
                if Obs.Trace.dropped () = 0 then
                  Alcotest.(check (list string))
                    "one tag per admitted job"
                    [ "job-0"; "job-1"; "job-2" ]
                    tags
                else
                  (* ring wrapped: early spans were evicted, but whatever
                     remains must still only use the minted ids *)
                  List.iter
                    (fun t ->
                      if not (List.mem t [ "job-0"; "job-1"; "job-2" ]) then
                        Alcotest.failf "unexpected job tag %s" t)
                    tags)));
    Alcotest.test_case
      "deep stats: running and queued jobs expose id, phase, elapsed" `Quick
      (fun () ->
        Parallel.Pool.with_pool ~size:2 (fun pool ->
            let release = Atomic.make false in
            let started = Atomic.make 0 in
            let handler ~budget _req =
              Budget.set_phase budget "spinning";
              Atomic.incr started;
              while not (Atomic.get release) do
                Unix.sleepf 0.002
              done;
              (null_payload, None)
            in
            let daemon =
              Daemon.create ~pool
                ~config:
                  { Daemon.default_config with max_in_flight = 1; max_queue = 4 }
                handler
            in
            let j1 = Result.get_ok (Daemon.submit daemon (learn_uw ~seed:1 ())) in
            let j2 = Result.get_ok (Daemon.submit daemon (learn_uw ~seed:2 ())) in
            let rec wait n =
              if Atomic.get started < 1 && n < 1000 then begin
                Unix.sleepf 0.002;
                wait (n + 1)
              end
            in
            wait 0;
            Unix.sleepf 0.01;
            let deep = Daemon.deep_stats_json daemon in
            (* the snapshot must render to parseable JSON *)
            (match Obs.Json.parse (Obs.Json.to_string deep) with
            | Ok _ -> ()
            | Error e -> Alcotest.fail e);
            (match Obs.Json.member "queue_depth" deep with
            | Some (Obs.Json.Int 1) -> ()
            | j ->
                Alcotest.failf "queue_depth: %s"
                  (match j with
                  | Some j -> Obs.Json.to_string j
                  | None -> "missing"));
            let in_flight =
              match Obs.Json.member "in_flight_jobs" deep with
              | Some (Obs.Json.List l) -> l
              | _ -> Alcotest.fail "no in_flight_jobs list"
            in
            Alcotest.(check int) "both jobs visible" 2 (List.length in_flight);
            let state_of j =
              match Obs.Json.member "state" j with
              | Some (Obs.Json.Str s) -> s
              | _ -> "?"
            in
            let running =
              List.find_opt (fun j -> state_of j = "running") in_flight
            in
            (match running with
            | Some j ->
                Alcotest.(check bool) "live phase exposed" true
                  (Obs.Json.member "phase" j = Some (Obs.Json.Str "spinning"));
                (match Obs.Json.member "job" j with
                | Some (Obs.Json.Str s) ->
                    Alcotest.(check bool) "job label minted" true
                      (String.length s > 4 && String.sub s 0 4 = "job-")
                | _ -> Alcotest.fail "running job has no job label")
            | None -> Alcotest.fail "no running job in snapshot");
            Alcotest.(check bool) "a queued job too" true
              (List.exists (fun j -> state_of j = "queued") in_flight);
            Alcotest.(check bool) "metrics snapshot attached" true
              (Obs.Json.member "metrics" deep <> None);
            Atomic.set release true;
            ignore (Daemon.await daemon j1);
            ignore (Daemon.await daemon j2);
            Daemon.drain daemon));
    Alcotest.test_case
      "drain-path flush: trace and event log are complete and parseable"
      `Quick (fun () ->
        let trace_path = Filename.temp_file "test_srv_trace" ".json" in
        let events_path = Filename.temp_file "test_srv_events" ".jsonl" in
        Obs.Trace.enable ();
        Obs.Events.configure events_path;
        Fun.protect
          ~finally:(fun () ->
            Obs.Trace.disable ();
            Obs.Events.disable ();
            (try Sys.remove trace_path with Sys_error _ -> ());
            try Sys.remove events_path with Sys_error _ -> ())
          (fun () ->
            Parallel.Pool.with_pool ~size:2 (fun pool ->
                let daemon =
                  Daemon.create ~pool
                    (handler_const ~work:(fun () -> Unix.sleepf 0.005) ())
                in
                let jobs =
                  List.init 3 (fun i ->
                      Result.get_ok (Daemon.submit daemon (learn_uw ~seed:i ())))
                in
                let _ = List.map (Daemon.await daemon) jobs in
                Daemon.drain daemon;
                (* flush exactly like the server shutdown path *)
                Obs.Trace.export_json trace_path;
                Obs.Events.flush ();
                (match
                   Obs.Json.parse
                     (In_channel.with_open_bin trace_path In_channel.input_all)
                 with
                | Ok j ->
                    Alcotest.(check bool) "trace has events" true
                      (match Obs.Json.member "traceEvents" j with
                      | Some (Obs.Json.List (_ :: _)) -> true
                      | _ -> false)
                | Error e -> Alcotest.failf "trace not valid JSON: %s" e);
                let lines =
                  In_channel.with_open_bin events_path In_channel.input_all
                  |> String.split_on_char '\n'
                  |> List.filter (fun l -> String.trim l <> "")
                in
                let parsed =
                  List.map
                    (fun l ->
                      match Obs.Json.parse l with
                      | Ok j -> j
                      | Error e -> Alcotest.failf "bad event line: %s" e)
                    lines
                in
                let count name =
                  List.length
                    (List.filter
                       (fun j ->
                         Obs.Json.member "event" j
                         = Some (Obs.Json.Str name))
                       parsed)
                in
                Alcotest.(check int) "every admission logged" 3
                  (count "job.admitted");
                Alcotest.(check int) "every completion logged" 3
                  (count "job.finished");
                (* lifecycle events carry the owning job's tag *)
                List.iter
                  (fun j ->
                    if
                      Obs.Json.member "event" j
                      = Some (Obs.Json.Str "job.finished")
                    then
                      match Obs.Json.member "job" j with
                      | Some (Obs.Json.Str _) -> ()
                      | _ -> Alcotest.fail "job.finished without a job tag")
                  parsed)));
  ]

let suite =
  protocol_tests @ catalog_tests
  @ [ QCheck_alcotest.to_alcotest admission_property ]
  @ retry_tests @ deadline_tests @ soak_tests @ observability_tests
  @ determinism_tests
