(* Offline observability analyzer and bench regression sentinel.

     autobias_obs trace FILE [--job ID]    per-phase breakdown of a Chrome
                                           trace export; slice by job id
     autobias_obs report FILE [FILE2]      print (or diff) Obs run reports
     autobias_obs gate --history FILE      compare the newest bench history
                  [--baseline FILE]        line against the committed
                                           baseline; exit 1 on regression

   Everything here is read-only over artifacts the instrumented binaries
   already write: the trace JSON from --trace, the run report from
   --metrics/--report, and the append-only BENCH_history.jsonl the bench
   driver grows one line per run. The gate is the piece CI runs: a bench
   regression fails the build instead of silently shipping. *)

open Cmdliner

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg -> die "cannot read %s: %s" path msg

let parse_file path =
  match Obs.Json.parse (read_file path) with
  | Ok j -> j
  | Error msg -> die "%s: not valid JSON: %s" path msg

let member = Obs.Json.member

let str_of = function Obs.Json.Str s -> Some s | _ -> None

let num_of = function
  | Obs.Json.Int i -> Some (float_of_int i)
  | Obs.Json.Float f -> Some f
  | _ -> None

let value_to_string = function
  | Obs.Json.Str s -> s
  | j -> Obs.Json.to_string j

(* {2 trace — reconstruct spans from the B/E event stream}

   The exporter emits properly nested begin/end pairs per tid track, so a
   per-track stack recovers every span: push on "B", pop on "E", duration
   is the ts delta, the path is the names of the enclosing frames. Each
   "B" carries the owning job id (when any) under args.job. *)

type frame = { f_name : string; f_ts : float; f_job : string option }

let analyze_trace ~job_filter json =
  let events =
    match member "traceEvents" json with
    | Some (Obs.Json.List l) -> l
    | _ -> die "input has no traceEvents array — not a trace export?"
  in
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  (* path -> (calls, total_us) *)
  let agg : (string, int * float) Hashtbl.t = Hashtbl.create 64 in
  (* job -> (spans, outermost-span total_us) *)
  let jobs : (string, int * float) Hashtbl.t = Hashtbl.create 8 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  let field name ev = member name ev in
  List.iter
    (fun ev ->
      let ph = Option.bind (field "ph" ev) str_of in
      let tid =
        match field "tid" ev with Some (Obs.Json.Int i) -> i | _ -> 0
      in
      let ts = Option.bind (field "ts" ev) num_of in
      (match ts with
      | Some t ->
          if t < !t_min then t_min := t;
          if t > !t_max then t_max := t
      | None -> ());
      match (ph, ts) with
      | Some "B", Some ts ->
          let name =
            Option.value ~default:"?" (Option.bind (field "name" ev) str_of)
          in
          let job =
            Option.bind (field "args" ev) (fun a ->
                Option.bind (member "job" a) str_of)
          in
          let s = stack tid in
          s := { f_name = name; f_ts = ts; f_job = job } :: !s
      | Some "E", Some ts -> (
          let s = stack tid in
          match !s with
          | [] -> ()
          | f :: parents ->
              s := parents;
              let dur = ts -. f.f_ts in
              let path =
                String.concat "/"
                  (List.rev_map (fun p -> p.f_name) parents @ [ f.f_name ])
              in
              (match f.f_job with
              | Some j ->
                  let outermost =
                    match parents with
                    | [] -> true
                    | p :: _ -> p.f_job <> f.f_job
                  in
                  let n, tot =
                    Option.value ~default:(0, 0.) (Hashtbl.find_opt jobs j)
                  in
                  Hashtbl.replace jobs j
                    (n + 1, if outermost then tot +. dur else tot)
              | None -> ());
              let keep =
                match job_filter with None -> true | Some j -> f.f_job = Some j
              in
              if keep then
                let n, tot =
                  Option.value ~default:(0, 0.) (Hashtbl.find_opt agg path)
                in
                Hashtbl.replace agg path (n + 1, tot +. dur))
      | _ -> ())
    events;
  let wall_us = if !t_max > !t_min then !t_max -. !t_min else 0. in
  (agg, jobs, wall_us)

let trace_cmd file job =
  let json = parse_file file in
  let agg, jobs, wall_us = analyze_trace ~job_filter:job json in
  (match job with
  | Some j -> Printf.printf "trace %s (job %s)\n" file j
  | None -> Printf.printf "trace %s\n" file);
  Printf.printf "wall clock: %.3f s\n\n" (wall_us /. 1e6);
  let rows =
    Hashtbl.fold (fun path (n, tot) acc -> (path, n, tot) :: acc) agg []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  if rows = [] then print_endline "no spans matched."
  else begin
    Printf.printf "%-52s %8s %12s %7s\n" "phase" "calls" "total_ms" "%wall";
    List.iter
      (fun (path, n, tot) ->
        Printf.printf "%-52s %8d %12.3f %6.1f%%\n" path n (tot /. 1e3)
          (if wall_us > 0. then 100. *. tot /. wall_us else 0.))
      rows
  end;
  if job = None && Hashtbl.length jobs > 0 then begin
    Printf.printf "\njobs seen (slice with --job):\n";
    Hashtbl.fold (fun j v acc -> (j, v) :: acc) jobs []
    |> List.sort compare
    |> List.iter (fun (j, (n, tot)) ->
           Printf.printf "  %-16s %6d spans  %10.3f ms\n" j n (tot /. 1e3))
  end

(* {2 report — print or diff Obs run reports} *)

let phases_of json =
  match member "phases" json with
  | Some (Obs.Json.List l) ->
      List.filter_map
        (fun p ->
          match
            ( Option.bind (member "path" p) str_of,
              Option.bind (member "total_s" p) num_of,
              Option.bind (member "calls" p) num_of )
          with
          | Some path, Some t, Some c -> Some (path, int_of_float c, t)
          | _ -> None)
        l
  | _ -> []

let funnel_of json =
  match member "funnel" json with
  | Some (Obs.Json.List l) -> l
  | _ -> []

let int_field name j =
  match Option.bind (member name j) num_of with
  | Some f -> int_of_float f
  | None -> 0

let print_funnel rows =
  if rows <> [] then begin
    Printf.printf "\nsearch funnel:\n%-6s %10s %10s %9s %10s %10s %9s\n" "step"
      "generated" "prune_hit" "memo_hit" "inherited" "evaluated" "accepted";
    List.iter
      (fun r ->
        Printf.printf "%-6d %10d %10d %9d %10d %10d %9d\n" (int_field "step" r)
          (int_field "generated" r) (int_field "prune_hit" r)
          (int_field "memo_hit" r) (int_field "inherited" r)
          (int_field "evaluated" r) (int_field "accepted" r))
      rows
  end

let print_report file json =
  let name =
    Option.value ~default:"?" (Option.bind (member "name" json) str_of)
  in
  Printf.printf "run report %s (%s)\n" file name;
  (match member "degradation" json with
  | Some (Obs.Json.Obj _ as d) ->
      Printf.printf "degradation: %s\n"
        (Option.value ~default:"?"
           (Option.bind (member "status" d) str_of))
  | _ -> ());
  let phases = phases_of json in
  if phases <> [] then begin
    Printf.printf "\n%-52s %8s %12s\n" "phase" "calls" "total_ms";
    List.iter
      (fun (path, calls, t) ->
        Printf.printf "%-52s %8d %12.3f\n" path calls (t *. 1e3))
      phases
  end;
  print_funnel (funnel_of json)

let diff_reports file_a a file_b b =
  Printf.printf "diff %s -> %s\n\n" file_a file_b;
  let pa = phases_of a and pb = phases_of b in
  let paths =
    List.sort_uniq compare
      (List.map (fun (p, _, _) -> p) pa @ List.map (fun (p, _, _) -> p) pb)
  in
  let lookup l p =
    List.find_map (fun (p', _, t) -> if p' = p then Some t else None) l
  in
  Printf.printf "%-52s %12s %12s %9s\n" "phase" "a_ms" "b_ms" "ratio";
  List.iter
    (fun p ->
      let ta = lookup pa p and tb = lookup pb p in
      let show = function
        | Some t -> Printf.sprintf "%12.3f" (t *. 1e3)
        | None -> Printf.sprintf "%12s" "-"
      in
      let ratio =
        match (ta, tb) with
        | Some ta, Some tb when ta > 0. -> Printf.sprintf "%8.2fx" (tb /. ta)
        | _ -> Printf.sprintf "%9s" "-"
      in
      Printf.printf "%-52s %s %s %s\n" p (show ta) (show tb) ratio)
    paths;
  let total rows = List.fold_left (fun acc r -> acc + int_field "generated" r) 0 rows in
  let ga = total (funnel_of a) and gb = total (funnel_of b) in
  if ga > 0 || gb > 0 then
    Printf.printf "\nfunnel generated: %d -> %d\n" ga gb

let report_cmd file file2 =
  let a = parse_file file in
  match file2 with
  | None -> print_report file a
  | Some f2 -> diff_reports file a f2 (parse_file f2)

(* {2 gate — the bench regression sentinel}

   Reads the newest line of the append-only bench history and applies the
   committed baseline rules: {"experiment", "metric", and one of "min"
   (value must be >= min), "max" (value must be <= max) or "equals"
   (exact match, used for the bit-identity booleans)}. A missing
   experiment or metric is itself a failure — a bench run that stopped
   reporting a gated number must not pass silently. *)

let last_line path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  match List.rev lines with
  | [] -> die "%s: empty history — run the bench first" path
  | last :: _ -> last

let gate_cmd history baseline =
  let entry =
    match Obs.Json.parse (last_line history) with
    | Ok j -> j
    | Error msg -> die "%s: newest line is not valid JSON: %s" history msg
  in
  (match member "meta" entry with
  | Some meta ->
      let f k =
        Option.value ~default:"?"
          (Option.map value_to_string (member k meta))
      in
      Printf.printf "gating newest entry: commit %s on %s (%s cores)\n"
        (f "git_commit") (f "hostname")
        (f "cores_recommended")
  | None -> ());
  let rules =
    match member "rules" (parse_file baseline) with
    | Some (Obs.Json.List l) -> l
    | _ -> die "%s: no rules array" baseline
  in
  let failures = ref 0 in
  let check rule =
    let get k = member k rule in
    let experiment =
      Option.value ~default:"?" (Option.bind (get "experiment") str_of)
    in
    let metric =
      Option.value ~default:"?" (Option.bind (get "metric") str_of)
    in
    let value =
      Option.bind (member "experiments" entry) (fun exps ->
          Option.bind (member experiment exps) (member metric))
    in
    let label = Printf.sprintf "%s.%s" experiment metric in
    let fail reason =
      incr failures;
      Printf.printf "  FAIL %-42s %s\n" label reason
    in
    let ok detail = Printf.printf "  ok   %-42s %s\n" label detail in
    match value with
    | None -> fail "metric missing from newest bench entry"
    | Some v -> (
        match (get "min", get "max", get "equals") with
        | Some bound, _, _ -> (
            match (num_of v, num_of bound) with
            | Some x, Some m when x >= m ->
                ok (Printf.sprintf "= %g (min %g)" x m)
            | Some x, Some m ->
                fail (Printf.sprintf "= %g, below min %g" x m)
            | _ -> fail "not a number")
        | None, Some bound, _ -> (
            match (num_of v, num_of bound) with
            | Some x, Some m when x <= m ->
                ok (Printf.sprintf "= %g (max %g)" x m)
            | Some x, Some m ->
                fail (Printf.sprintf "= %g, above max %g" x m)
            | _ -> fail "not a number")
        | None, None, Some want ->
            if v = want then ok (Printf.sprintf "= %s" (value_to_string v))
            else
              fail
                (Printf.sprintf "= %s, wanted %s" (value_to_string v)
                   (value_to_string want))
        | None, None, None -> fail "rule has no min/max/equals")
  in
  List.iter check rules;
  if !failures > 0 then begin
    Printf.printf "gate: %d regression(s) against %s\n" !failures baseline;
    exit 1
  end
  else Printf.printf "gate: all %d rules pass\n" (List.length rules)

(* {2 cmdliner wiring} *)

let trace_term =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace JSON (from --trace).")
  in
  let job =
    Arg.(
      value
      & opt (some string) None
      & info [ "job" ] ~docv:"ID"
          ~doc:"Only count spans tagged with this job id (e.g. job-3).")
  in
  Term.(const trace_cmd $ file $ job)

let report_term =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Obs run report JSON.")
  in
  let file2 =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FILE2" ~doc:"Second report to diff against.")
  in
  Term.(const report_cmd $ file $ file2)

let gate_term =
  let history =
    Arg.(
      required
      & opt (some string) None
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Append-only bench history (BENCH_history.jsonl).")
  in
  let baseline =
    Arg.(
      value
      & opt string "bench/BENCH_baseline.json"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed baseline rules to gate against.")
  in
  Term.(const gate_cmd $ history $ baseline)

let () =
  let sub name doc term = Cmd.v (Cmd.info name ~doc) term in
  let doc = "offline trace/report analyzer and bench regression sentinel" in
  let info = Cmd.info "autobias_obs" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            sub "trace" "per-phase breakdown of a trace export" trace_term;
            sub "report" "print or diff Obs run reports" report_term;
            sub "gate" "gate the newest bench entry against the baseline"
              gate_term;
          ]))
