(* Line-protocol front end for the serving daemon.

     autobias_server [--domains N] [--max-in-flight I] [--max-queue Q] ...

   Reads one request per line from stdin (see Server.Protocol for the
   grammar), answers one JSON object per line on stdout. By default a
   submission is acknowledged immediately ({"status":"accepted",...}) and
   its result line arrives when the job finishes — out of order under
   load; match on "id". With --sync each request is answered in place
   before the next line is read (the deterministic single-client mode).

   Control lines: "stats" prints the daemon tallies, "drain" stops
   admission and waits out in-flight jobs, "quit" (or EOF, SIGINT,
   SIGTERM) drains and exits — in-flight jobs finish (or are cancelled
   into best-so-far answers after --drain-deadline), the Obs run report
   is flushed to --report, and only then does the process exit. *)

open Cmdliner

exception Shutdown

let out_lock = Mutex.create ()

let print_json j =
  Mutex.lock out_lock;
  print_string (Obs.Json.to_string j);
  print_newline ();
  flush stdout;
  Mutex.unlock out_lock

let print_error msg =
  print_json
    (Obs.Json.Obj
       [ ("status", Obs.Json.Str "failed"); ("error", Obs.Json.Str msg) ])

let configure_chaos ~chaos ~chaos_layers ~chaos_kill ~seed =
  Chaos.from_env ();
  match chaos_layers with
  | Some layers ->
      let layers =
        String.split_on_char ',' layers
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      Chaos.configure ?p_kill:chaos_kill
        ~p_fault:(Option.value chaos ~default:0.)
        ~seed layers
  | None -> ()

let serve domains max_in_flight max_queue default_deadline max_attempts seed
    chaos chaos_layers chaos_kill drain_deadline report trace events sync =
  configure_chaos ~chaos ~chaos_layers ~chaos_kill ~seed;
  if trace <> None then Obs.Trace.enable ();
  Option.iter Obs.Events.configure events;
  let catalog = Server.Catalog.create () in
  let handler = Server.Handler.default catalog in
  let config =
    {
      Server.Daemon.max_in_flight;
      max_queue;
      default_deadline;
      max_attempts;
      policy = { Resilience.Policy.default with seed };
    }
  in
  let on_complete r = print_json (Server.Protocol.response_to_json r) in
  let run_with pool =
    let daemon =
      Server.Daemon.create ?pool
        ?on_complete:(if sync then None else Some on_complete)
        ~config handler
    in
    (* first signal: begin the graceful drain; a second one while draining
       still exits promptly because drain bounds itself by the deadline *)
    let on_signal = Sys.Signal_handle (fun _ -> raise Shutdown) in
    Sys.set_signal Sys.sigint on_signal;
    Sys.set_signal Sys.sigterm on_signal;
    let finished = ref false in
    let shutdown () =
      if not !finished then begin
        finished := true;
        Server.Daemon.drain ?deadline:drain_deadline daemon;
        (* Flush the observability streams only after the drain: the jobs
           are quiescent, so the exported trace and event log are complete
           and the rename-into-place write cannot race a worker. *)
        (match trace with
        | Some path ->
            Obs.Trace.export_json path;
            Printf.eprintf "wrote trace to %s\n%!" path
        | None -> ());
        if Obs.Events.enabled () then Obs.Events.flush ();
        match report with
        | Some path ->
            Obs.Run_report.write
              (Server.Daemon.run_report daemon)
              path;
            Printf.eprintf "wrote run report to %s\n%!" path
        | None -> ()
      end
    in
    Fun.protect ~finally:shutdown (fun () ->
        let rec loop () =
          match try Some (input_line stdin) with End_of_file -> None with
          | None -> ()
          | Some line -> (
              let line = String.trim line in
              match line with
              | "" -> loop ()
              | "quit" | "exit" -> ()
              | "stats" ->
                  print_json
                    (Server.Daemon.stats_to_json (Server.Daemon.stats daemon));
                  loop ()
              | "stats deep" ->
                  print_json (Server.Daemon.deep_stats_json ~catalog daemon);
                  loop ()
              | "drain" ->
                  Server.Daemon.drain ?deadline:drain_deadline daemon;
                  print_json
                    (Obs.Json.Obj [ ("status", Obs.Json.Str "drained") ]);
                  ()
              | _ -> (
                  match Server.Protocol.parse_request line with
                  | Error msg ->
                      print_error msg;
                      loop ()
                  | Ok request ->
                      (match Server.Daemon.submit daemon request with
                      | Error rej ->
                          print_json (Server.Protocol.rejection_to_json rej)
                      | Ok job ->
                          if sync then
                            print_json
                              (Server.Protocol.response_to_json
                                 (Server.Daemon.await daemon job))
                          else
                            print_json
                              (Obs.Json.Obj
                                 [
                                   ("status", Obs.Json.Str "accepted");
                                   ( "id",
                                     Obs.Json.Int (Server.Daemon.job_id job)
                                   );
                                 ]));
                      loop ()))
        in
        try loop () with Shutdown -> prerr_endline "shutting down")
  in
  if domains <= 0 then run_with None
  else
    Parallel.Pool.with_pool ~size:domains
      ?chaos:(Chaos.get "pool")
      ~policy:{ Resilience.Policy.default with seed }
      (fun p -> run_with (Some p))

let () =
  let domains_arg =
    let doc =
      "Worker domains executing jobs ($(docv) = 0 runs jobs inline during \
       submission — single-client deterministic mode)."
    in
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let max_in_flight_arg =
    let doc = "Jobs allowed to run concurrently." in
    Arg.(value & opt int 2 & info [ "max-in-flight" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Jobs allowed to wait beyond the in-flight budget; further \
       submissions are rejected with a typed overloaded response."
    in
    Arg.(value & opt int 8 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let default_deadline_arg =
    let doc =
      "Per-job deadline in seconds for requests that do not set deadline=; \
       an expired job answers best-so-far with degradation counters."
    in
    Arg.(
      value & opt (some float) None & info [ "default-deadline" ] ~docv:"S" ~doc)
  in
  let max_attempts_arg =
    let doc =
      "Attempts per job before quarantine (retries use seeded backoff)."
    in
    Arg.(value & opt int 3 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Seed for retry backoff jitter and chaos injectors." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"INT" ~doc)
  in
  let chaos_arg =
    let doc = "Fault-injection probability per configured chaos layer." in
    Arg.(value & opt (some float) None & info [ "chaos" ] ~docv:"P" ~doc)
  in
  let chaos_layers_arg =
    let doc =
      "Comma-separated chaos layers (pool, csv, sampling, memo, \
       checkpoint, server — or 'all')."
    in
    Arg.(
      value & opt (some string) None & info [ "chaos-layers" ] ~docv:"LAYERS" ~doc)
  in
  let chaos_kill_arg =
    let doc = "Worker-kill probability (pool layer only)." in
    Arg.(value & opt (some float) None & info [ "chaos-kill" ] ~docv:"P" ~doc)
  in
  let drain_deadline_arg =
    let doc =
      "Seconds to wait for in-flight jobs on shutdown/drain before \
       cancelling their budgets (they then answer best-so-far)."
    in
    Arg.(
      value & opt (some float) None & info [ "drain-deadline" ] ~docv:"S" ~doc)
  in
  let report_arg =
    let doc = "Write the Obs run report (stats, latency percentiles) to \
               $(docv) on shutdown." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc =
      "Enable span tracing and write the Chrome trace JSON to $(docv) on \
       shutdown (after the drain); each job's learner spans are tagged \
       with its job id."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let events_arg =
    let doc =
      "Enable the structured wide-event log and write it (one JSON object \
       per line) to $(docv) on shutdown."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let sync_arg =
    let doc =
      "Answer each request in place before reading the next line (single- \
       client deterministic mode) instead of acknowledging and streaming \
       results as they finish."
    in
    Arg.(value & flag & info [ "sync" ] ~doc)
  in
  let doc = "learning-as-a-service daemon (line protocol on stdin/stdout)" in
  let info = Cmd.info "autobias_server" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const serve $ domains_arg $ max_in_flight_arg $ max_queue_arg
      $ default_deadline_arg $ max_attempts_arg $ seed_arg $ chaos_arg
      $ chaos_layers_arg $ chaos_kill_arg $ drain_deadline_arg $ report_arg
      $ trace_arg $ events_arg $ sync_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
