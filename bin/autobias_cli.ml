(* Command-line interface to the AutoBias reproduction.

     autobias learn    -- learn a definition (optionally k-fold CV)
     autobias bias     -- induce and print a language bias / type graph
     autobias data     -- generate a dataset, print stats, dump CSVs
     autobias predict  -- learn, then materialize the predicted relation

   Everything is deterministic given --seed. *)

open Cmdliner

(* ---------------- shared arguments ---------------- *)

let dataset_of_name ~scale ~seed = function
  | "uw" -> Datasets.Uw.generate ~seed ~scale ()
  | "imdb" -> Datasets.Imdb.generate ~seed ~scale ()
  | "hiv" -> Datasets.Hiv.generate ~seed ~scale ()
  | "flt" -> Datasets.Flt.generate ~seed ~scale ()
  | "sys" -> Datasets.Sys_data.generate ~seed ~scale ()
  | s -> invalid_arg ("unknown dataset: " ^ s)

let dataset_arg =
  let doc = "Dataset: uw, imdb, hiv, flt or sys." in
  Arg.(value & opt string "uw" & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let method_arg =
  let doc = "Bias method: castor, noconst, manual, aleph or autobias." in
  Arg.(value & opt string "autobias" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let strategy_arg =
  let doc = "Sampling strategy: naive, random or stratified." in
  Arg.(value & opt string "naive" & info [ "s"; "sampling" ] ~docv:"STRATEGY" ~doc)

let scale_arg =
  let doc = "Dataset scale multiplier (1.0 = default size)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FLOAT" ~doc)

let seed_arg =
  let doc = "Random seed (generation and learning are deterministic given it)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc)

let timeout_arg =
  let doc = "Learning timeout in seconds (per run/fold)." in
  Arg.(value & opt float 120. & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let deadline_arg =
  let doc =
    "Global wall-clock deadline for the whole command in seconds. The \
     learner is anytime: when the deadline passes it stops dispatching \
     work, returns the definition accumulated so far, and reports the \
     degradation (beam rounds cut, candidates abandoned, ...)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let domains_arg =
  let doc =
    "Worker domains for parallel coverage testing (0 = sequential; \
     default picks one per spare core when --chaos forces a pool)."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let chaos_arg =
  let doc =
    "Fault-injection probability for pool workers (testing): each queued \
     job is killed with probability $(docv) under a seeded RNG. The run \
     must still terminate with a valid definition; dropped jobs show up \
     in the pool stats and the worker-fault counter."
  in
  Arg.(value & opt (some float) None & info [ "chaos" ] ~docv:"P" ~doc)

let config ?(coverage_cache = true) ?(compiled_eval = true) ~strategy ~timeout
    () =
  {
    Autobias.default_config with
    strategy = Sampling.Strategy.of_string strategy;
    timeout = Some timeout;
    coverage_cache;
    compiled_eval;
  }

let trace_arg =
  let doc =
    "Record a span trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (load in chrome://tracing or ui.perfetto.dev). A \
     plain-text per-phase summary is printed after the run. Tracing never \
     touches any RNG, so the learned definition is identical with and \
     without it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a machine-readable run report to $(docv) as JSON: run \
     configuration, degradation counters, the metrics snapshot \
     (counters/gauges/latency histograms) and per-phase timings."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Enable the tracer when asked, run the command, then export the trace and
   the run report — also on exceptions, so a run cut by Ctrl-C still leaves
   its observability artifacts behind. The continuation receives
   [~note_degradation] to attach the run's budget accounting to the report. *)
let with_observability ~trace ~metrics ~name ~config k =
  if trace <> None then Obs.Trace.enable ();
  let degradation = ref None in
  let finish () =
    (match trace with
    | Some path ->
        Fmt.pr "%s" (Obs.Trace.summary_string ());
        Obs.Trace.export_json path;
        Fmt.pr "wrote trace to %s@." path
    | None -> ());
    match metrics with
    | Some path ->
        let report =
          Obs.Run_report.make ~name ~config ?degradation:!degradation ()
        in
        Obs.Run_report.write report path;
        Fmt.pr "wrote run report to %s@." path
    | None -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      k ~note_degradation:(fun d -> degradation := Some d))

let no_cache_arg =
  let doc =
    "Disable the coverage-verdict memo table (A/B measurement). Verdicts \
     are pure, so the learned definition is bit-identical with and without \
     the cache on a fixed seed; only the amount of subsumption work \
     changes."
  in
  Arg.(value & flag & info [ "no-coverage-cache" ] ~doc)

let no_compiled_arg =
  let doc =
    "Fall back to the symbolic frontier evaluator instead of the int-coded \
     compiled kernel (escape hatch / A/B baseline). The compiled engine is \
     bit-identical — same verdicts, witnesses and truncation accounting — \
     so the learned definition does not change; only the evaluation speed \
     does."
  in
  Arg.(value & flag & info [ "no-compiled-eval" ] ~doc)

(* Build the budget / pool a command asked for and pass them down; the pool
   is shut down (domains joined) before returning, also on exceptions. *)
let with_resources ~seed ~deadline ~domains ~chaos k =
  let budget = Option.map (fun s -> Budget.create ~deadline:s ()) deadline in
  let fault = Option.map (fun p -> Parallel.Fault.create ~p_fault:p ~seed ()) chaos in
  match (domains, fault) with
  | (None | Some 0), None -> k ~budget None
  | size, _ ->
      let size = match size with Some n when n > 0 -> Some n | _ -> None in
      Parallel.Pool.with_pool ?size ?chaos:fault (fun p -> k ~budget (Some p))

let report_run ~budget pool =
  (match pool with
  | Some p ->
      let s = Parallel.Pool.stats p in
      Fmt.pr "pool: %d domains, %d tasks run, %d faults dropped@."
        s.Parallel.Pool.size s.Parallel.Pool.tasks_run s.Parallel.Pool.dropped
  | None -> ());
  Option.iter
    (fun b -> Fmt.pr "budget: %a@." Budget.pp_degradation (Budget.degradation b))
    budget

(* ---------------- learn ---------------- *)

let save_definition path definition =
  let oc = open_out path in
  output_string oc "# learned by autobias; one clause per line\n";
  output_string oc (Logic.Clause.definition_to_string definition);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote definition to %s@." path

let load_definition path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Logic.Parser.definition contents

let learn_cmd =
  let run dataset_name method_name strategy scale seed timeout deadline domains
      chaos no_cache no_compiled cv show_bias output trace metrics =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let method_ = Autobias.method_of_string method_name in
    let report_config =
      Obs.Json.
        [
          ("dataset", Str dataset_name);
          ("method", Str method_name);
          ("strategy", Str strategy);
          ("scale", Float scale);
          ("seed", Int seed);
          ("timeout_s", Float timeout);
          ("cv", Bool cv);
          ( "domains",
            match domains with Some d -> Int d | None -> Null );
        ]
    in
    with_observability ~trace ~metrics ~name:("learn:" ^ dataset_name)
      ~config:report_config
    @@ fun ~note_degradation ->
    with_resources ~seed ~deadline ~domains ~chaos @@ fun ~budget pool ->
    let config =
      { (config ~coverage_cache:(not no_cache) ~compiled_eval:(not no_compiled)
           ~strategy ~timeout ())
        with budget; pool }
    in
    Fmt.pr "%a" Datasets.Dataset.summary dataset;
    if cv then begin
      let result = Autobias.cross_validate ~config method_ dataset ~seed in
      Fmt.pr "%s on %s (%d-fold CV): %a@."
        (Autobias.method_to_string method_)
        dataset_name
        (List.length result.Evaluation.Cross_validation.folds)
        Evaluation.Cross_validation.pp_result result;
      Option.iter (fun b -> note_degradation (Budget.degradation b)) budget;
      report_run ~budget pool
    end
    else begin
      let rng = Random.State.make [| seed |] in
      let r =
        Autobias.learn_once ~config method_ dataset ~rng
          ~train_pos:dataset.Datasets.Dataset.positives
          ~train_neg:dataset.Datasets.Dataset.negatives
      in
      if show_bias then
        Fmt.pr "--- language bias (%d definitions) ---@.%a@.---@."
          (Bias.Language.size r.Autobias.bias_info.Autobias.bias)
          Bias.Language.pp r.Autobias.bias_info.Autobias.bias;
      Fmt.pr "learned %d clauses in %.2fs%s:@.%a@."
        (List.length r.Autobias.definition)
        r.Autobias.learn_time
        (if r.Autobias.timed_out then " (timed out)" else "")
        Logic.Clause.pp_definition r.Autobias.definition;
      Option.iter
        (fun d ->
          note_degradation d;
          Fmt.pr "degradation: %a@." Budget.pp_degradation d)
        r.Autobias.degradation;
      report_run ~budget:None pool;
      let cov =
        Autobias.coverage_context config dataset
          r.Autobias.bias_info.Autobias.bias ~rng
      in
      let m =
        Evaluation.Metrics.evaluate cov r.Autobias.definition
          ~positives:dataset.Datasets.Dataset.positives
          ~negatives:dataset.Datasets.Dataset.negatives
      in
      Fmt.pr "training-set fit: %a@." Evaluation.Metrics.pp_row m;
      Option.iter (fun path -> save_definition path r.Autobias.definition) output
    end
  in
  let cv_arg =
    let doc = "Run the dataset's cross-validation protocol." in
    Arg.(value & flag & info [ "cv" ] ~doc)
  in
  let show_bias_arg =
    let doc = "Print the language bias before learning." in
    Arg.(value & flag & info [ "show-bias" ] ~doc)
  in
  let output_arg =
    let doc = "Write the learned definition to $(docv) (re-loadable by\n\
               $(b,predict --definition))." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"learn a Horn definition of a dataset's target")
    Term.(
      const run $ dataset_arg $ method_arg $ strategy_arg $ scale_arg $ seed_arg
      $ timeout_arg $ deadline_arg $ domains_arg $ chaos_arg $ no_cache_arg
      $ no_compiled_arg $ cv_arg $ show_bias_arg $ output_arg $ trace_arg
      $ metrics_arg)

(* ---------------- bias ---------------- *)

let bias_cmd =
  let run dataset_name scale seed dot threshold =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let result =
      Discovery.Generate.induce
        ~threshold:(Discovery.Generate.Relative threshold)
        dataset.Datasets.Dataset.db ~target:dataset.Datasets.Dataset.target
        ~positive_examples:dataset.Datasets.Dataset.positives
    in
    Fmt.pr "# %d INDs discovered in %.3fs (α ≤ %.2f kept)@."
      (List.length result.Discovery.Generate.inds)
      result.Discovery.Generate.ind_time
      Discovery.Ind.default_config.Discovery.Ind.max_error;
    List.iter
      (fun ind -> Fmt.pr "#   %s@." (Discovery.Ind.to_string ind))
      result.Discovery.Generate.inds;
    if dot then
      Fmt.pr "%s@." (Discovery.Type_graph.to_dot result.Discovery.Generate.graph)
    else begin
      Fmt.pr "%a@." Discovery.Type_graph.pp result.Discovery.Generate.graph;
      Fmt.pr "%a@." Bias.Language.pp result.Discovery.Generate.bias
    end
  in
  let dot_arg =
    let doc = "Emit the type graph as Graphviz DOT instead of text." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let threshold_arg =
    let doc = "Relative constant-threshold (the paper uses 0.18)." in
    Arg.(value & opt float 0.18 & info [ "constant-threshold" ] ~docv:"RATIO" ~doc)
  in
  Cmd.v
    (Cmd.info "bias"
       ~doc:"induce and print the language bias and type graph for a dataset")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ dot_arg $ threshold_arg)

(* ---------------- data ---------------- *)

let data_cmd =
  let run dataset_name scale seed dump stats =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    Fmt.pr "%a" Datasets.Dataset.summary dataset;
    Relational.Database.stats Format.std_formatter dataset.Datasets.Dataset.db;
    if stats then
      Relational.Stats.pp Format.std_formatter
        (Relational.Stats.database dataset.Datasets.Dataset.db);
    (match dump with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        List.iter
          (fun rel ->
            let path =
              Filename.concat dir (Relational.Relation.name rel ^ ".csv")
            in
            Relational.Csv.save rel path;
            Fmt.pr "wrote %s (%d tuples)@." path
              (Relational.Relation.cardinality rel))
          (Relational.Database.relations dataset.Datasets.Dataset.db);
        let dump_examples name examples =
          let path = Filename.concat dir (name ^ ".csv") in
          let rel =
            Relational.Relation.of_tuples dataset.Datasets.Dataset.target
              (List.rev examples)
          in
          Relational.Csv.save rel path;
          Fmt.pr "wrote %s (%d examples)@." path (List.length examples)
        in
        dump_examples "positive_examples" dataset.Datasets.Dataset.positives;
        dump_examples "negative_examples" dataset.Datasets.Dataset.negatives)
  in
  let dump_arg =
    let doc = "Dump every relation and the examples as CSV into $(docv)." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"DIR" ~doc)
  in
  let stats_arg =
    let doc = "Print per-column statistics (distinct ratios, frequency skew)." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  Cmd.v
    (Cmd.info "data" ~doc:"generate a synthetic dataset; print stats, dump CSVs")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ dump_arg $ stats_arg)

(* ---------------- predict ---------------- *)

let predict_cmd =
  let run dataset_name method_name strategy scale seed timeout limit definition_file =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let definition =
      match definition_file with
      | Some path ->
          let d = load_definition path in
          Fmt.pr "loaded %d clauses from %s@." (List.length d) path;
          d
      | None ->
          let method_ = Autobias.method_of_string method_name in
          let config = config ~strategy ~timeout () in
          let rng = Random.State.make [| seed |] in
          let r =
            Autobias.learn_once ~config method_ dataset ~rng
              ~train_pos:dataset.Datasets.Dataset.positives
              ~train_neg:dataset.Datasets.Dataset.negatives
          in
          Fmt.pr "learned:@.%a@." Logic.Clause.pp_definition r.Autobias.definition;
          r.Autobias.definition
    in
    let derived =
      Learning.Inference.derive_definition dataset.Datasets.Dataset.db
        definition
    in
    Fmt.pr "derived %d tuples of %s:@." (List.length derived)
      dataset.Datasets.Dataset.target.Relational.Schema.rel_name;
    List.iteri
      (fun i t ->
        if i < limit then
          Fmt.pr "  %s@." (Relational.Relation.tuple_to_string t))
      derived;
    if List.length derived > limit then
      Fmt.pr "  ... (%d more; raise --limit)@." (List.length derived - limit)
  in
  let limit_arg =
    let doc = "Print at most $(docv) derived tuples." in
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let definition_arg =
    let doc = "Skip learning; load the definition from $(docv)\n\
               (as written by $(b,learn --output))." in
    Arg.(value & opt (some string) None & info [ "definition" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"learn (or load a definition), then materialize the predictions")
    Term.(
      const run $ dataset_arg $ method_arg $ strategy_arg $ scale_arg $ seed_arg
      $ timeout_arg $ limit_arg $ definition_arg)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let run dataset_name method_name scale seed timeout limit =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let method_ = Autobias.method_of_string method_name in
    let config = config ~strategy:"naive" ~timeout () in
    let rng = Random.State.make [| seed |] in
    let r =
      Autobias.learn_once ~config method_ dataset ~rng
        ~train_pos:dataset.Datasets.Dataset.positives
        ~train_neg:dataset.Datasets.Dataset.negatives
    in
    Fmt.pr "learned:@.%a@.@." Logic.Clause.pp_definition r.Autobias.definition;
    let cov =
      Autobias.coverage_context config dataset r.Autobias.bias_info.Autobias.bias
        ~rng
    in
    let explain_some label examples =
      Fmt.pr "--- %s ---@." label;
      List.iteri
        (fun i e ->
          if i < limit then
            Fmt.pr "%s: %a@.@."
              (Relational.Relation.tuple_to_string e)
              Learning.Explain.pp_definition_result
              (Learning.Explain.explain_definition cov r.Autobias.definition e))
        examples
    in
    explain_some "positive examples" dataset.Datasets.Dataset.positives;
    explain_some "negative examples" dataset.Datasets.Dataset.negatives
  in
  let limit_arg =
    let doc = "Explain at most $(docv) examples of each class." in
    Arg.(value & opt int 3 & info [ "limit" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"learn, then explain the definition's decision on examples")
    Term.(
      const run $ dataset_arg $ method_arg $ scale_arg $ seed_arg $ timeout_arg
      $ limit_arg)

(* ---------------- group ---------------- *)

let () =
  let doc = "relational learning with automatic language bias (SIGMOD '21)" in
  let info = Cmd.info "autobias" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ learn_cmd; bias_cmd; data_cmd; predict_cmd; explain_cmd ]))
