(* Command-line interface to the AutoBias reproduction.

     autobias learn    -- learn a definition (optionally k-fold CV)
     autobias bias     -- induce and print a language bias / type graph
     autobias data     -- generate a dataset, print stats, dump CSVs
     autobias predict  -- learn, then materialize the predicted relation

   Everything is deterministic given --seed. *)

open Cmdliner

(* ---------------- shared arguments ---------------- *)

let dataset_of_name ~scale ~seed = function
  | "uw" -> Datasets.Uw.generate ~seed ~scale ()
  | "imdb" -> Datasets.Imdb.generate ~seed ~scale ()
  | "hiv" -> Datasets.Hiv.generate ~seed ~scale ()
  | "flt" -> Datasets.Flt.generate ~seed ~scale ()
  | "sys" -> Datasets.Sys_data.generate ~seed ~scale ()
  | s -> invalid_arg ("unknown dataset: " ^ s)

let dataset_arg =
  let doc = "Dataset: uw, imdb, hiv, flt or sys." in
  Arg.(value & opt string "uw" & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let method_arg =
  let doc = "Bias method: castor, noconst, manual, aleph or autobias." in
  Arg.(value & opt string "autobias" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let strategy_arg =
  let doc = "Sampling strategy: naive, random or stratified." in
  Arg.(value & opt string "naive" & info [ "s"; "sampling" ] ~docv:"STRATEGY" ~doc)

let scale_arg =
  let doc = "Dataset scale multiplier (1.0 = default size)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FLOAT" ~doc)

let seed_arg =
  let doc = "Random seed (generation and learning are deterministic given it)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc)

let timeout_arg =
  let doc = "Learning timeout in seconds (per run/fold)." in
  Arg.(value & opt float 120. & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let deadline_arg =
  let doc =
    "Global wall-clock deadline for the whole command in seconds. The \
     learner is anytime: when the deadline passes it stops dispatching \
     work, returns the definition accumulated so far, and reports the \
     degradation (beam rounds cut, candidates abandoned, ...)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let domains_arg =
  let doc =
    "Worker domains for parallel coverage testing (0 = sequential; \
     default picks one per spare core when --chaos forces a pool)."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let chaos_arg =
  let doc =
    "Fault-injection probability (testing): each probed operation faults \
     with probability $(docv) under a seeded RNG. Without --chaos-layers \
     this injects into pool workers only (the pre-registry behavior); with \
     it, into every named layer. The run must still terminate with a valid \
     definition; injections show up in the pool stats, the degradation \
     counters and the run report's chaos snapshot."
  in
  Arg.(value & opt (some float) None & info [ "chaos" ] ~docv:"P" ~doc)

let chaos_layers_arg =
  let doc =
    "Comma-separated chaos layers to inject into (pool, csv, sampling, \
     memo, checkpoint — or 'all'). Each layer gets its own seeded \
     injector at the --chaos probability; worker kills (--chaos-kill) arm \
     only the pool layer. Equivalent to AUTOBIAS_CHAOS_LAYERS."
  in
  Arg.(value & opt (some string) None & info [ "chaos-layers" ] ~docv:"LAYERS" ~doc)

let chaos_kill_arg =
  let doc =
    "Worker-kill probability (testing): each pool job additionally kills \
     its worker domain with probability $(docv); supervision restarts the \
     domain (bounded, with backoff) and retries or quarantines the job."
  in
  Arg.(value & opt (some float) None & info [ "chaos-kill" ] ~docv:"P" ~doc)

let checkpoint_arg =
  let doc =
    "Write a resumable snapshot of learner progress to $(docv) at clause \
     boundaries (atomic tmp+rename; the previous snapshot survives a torn \
     write). Resume with --resume."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Snapshot every $(docv)-th clause boundary (default 1)." in
  Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let resume_arg =
  let doc =
    "Resume learning from the snapshot at $(docv) (as written by \
     --checkpoint). The dataset/method/seed configuration must match the \
     run that wrote it; the resumed run is bit-identical to an \
     uninterrupted run at the same seed."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let kill_after_arg =
  let doc =
    "Stop the run (cooperative cancellation) after $(docv) checkpoints \
     have been written (testing: simulates a crash at a clause boundary \
     for resume smoke tests). Requires --checkpoint."
  in
  Arg.(value & opt (some int) None & info [ "kill-after-clause" ] ~docv:"K" ~doc)

let config ?(coverage_cache = true) ?(compiled_eval = true) ?(pruning = true)
    ~strategy ~timeout () =
  {
    Autobias.default_config with
    strategy = Sampling.Strategy.of_string strategy;
    timeout = Some timeout;
    coverage_cache;
    compiled_eval;
    pruning;
  }

let trace_arg =
  let doc =
    "Record a span trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (load in chrome://tracing or ui.perfetto.dev). A \
     plain-text per-phase summary is printed after the run. Tracing never \
     touches any RNG, so the learned definition is identical with and \
     without it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a machine-readable run report to $(docv) as JSON: run \
     configuration, degradation counters, the metrics snapshot \
     (counters/gauges/latency histograms), the search funnel and per-phase \
     timings."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let events_arg =
  let doc =
    "Record the structured wide-event log (clause accepted, checkpoint \
     written, chaos injections, ...) and write it to $(docv) as JSON \
     lines after the run — also on Ctrl-C, via an atomic tmp+rename. Like \
     --trace, recording never touches any RNG, so the learned definition \
     is identical with and without it."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

let funnel_arg =
  let doc =
    "Print the search-funnel tree after the run: per beam step, where \
     every generated candidate went (prune-store hit, memo-served, \
     inherited from its parent, really evaluated) and how many entered \
     the beam. Purely observational — results are bit-identical with and \
     without it."
  in
  Arg.(value & flag & info [ "funnel" ] ~doc)

(* Enable the tracer when asked, run the command, then export the trace and
   the run report — also on exceptions, so a run cut by Ctrl-C still leaves
   its observability artifacts behind. The continuation receives
   [~note_degradation] to attach the run's budget accounting to the report
   and [~note_extra] to append further top-level report entries (chaos
   snapshot, pool quarantine, CSV skips, checkpoint info). *)
let with_observability ~trace ~events ~funnel ~metrics ~name ~config k =
  if trace <> None then Obs.Trace.enable ();
  Option.iter Obs.Events.configure events;
  (* a fresh funnel window per run: the registry is process-global *)
  Obs.Funnel.reset ();
  let degradation = ref None in
  let extra = ref [] in
  let finish () =
    (match trace with
    | Some path ->
        Fmt.pr "%s" (Obs.Trace.summary_string ());
        Obs.Trace.export_json path;
        Fmt.pr "wrote trace to %s@." path
    | None -> ());
    if funnel then Fmt.pr "%s" (Obs.Funnel.to_string (Obs.Funnel.snapshot ()));
    (match events with
    | Some path ->
        Obs.Events.flush ();
        Fmt.pr "wrote event log to %s@." path
    | None -> ());
    match metrics with
    | Some path ->
        let report =
          Obs.Run_report.make ~name ~config ?degradation:!degradation
            ~extra:(List.rev !extra) ()
        in
        Obs.Run_report.write report path;
        Fmt.pr "wrote run report to %s@." path
    | None -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      k
        ~note_degradation:(fun d -> degradation := Some d)
        ~note_extra:(fun kv -> extra := kv :: !extra))

let no_cache_arg =
  let doc =
    "Disable the coverage-verdict memo table (A/B measurement). Verdicts \
     are pure, so the learned definition is bit-identical with and without \
     the cache on a fixed seed; only the amount of subsumption work \
     changes."
  in
  Arg.(value & flag & info [ "no-coverage-cache" ] ~doc)

let no_compiled_arg =
  let doc =
    "Fall back to the symbolic frontier evaluator instead of the int-coded \
     compiled kernel (escape hatch / A/B baseline). The compiled engine is \
     bit-identical — same verdicts, witnesses and truncation accounting — \
     so the learned definition does not change; only the evaluation speed \
     does."
  in
  Arg.(value & flag & info [ "no-compiled-eval" ] ~doc)

let no_prune_arg =
  let doc =
    "Disable the failure-constraint pruning store (escape hatch / A/B \
     baseline). Pruning replays exact cached verdicts, so the learned \
     definition is bit-identical with and without it on a fixed seed; only \
     the number of subsumption tries changes."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

(* Build the budget / pool a command asked for and pass them down; the pool
   is shut down (domains joined) before returning, also on exceptions.
   [chaos_layers] installs per-layer injectors first, so the pool picks up
   the registry's "pool" injector when one is configured.

   A budget always exists (unbounded without --deadline) so that SIGINT /
   SIGTERM have something to cancel: the first signal winds the anytime
   learner down cooperatively — best-so-far definition, trace/metrics/run
   report flushed by [with_observability], the last checkpoint intact
   (checkpoint writes are atomic tmp+rename) — instead of dying mid-write.
   A second signal exits immediately. *)
let with_resources ~seed ~deadline ~domains ~chaos ~chaos_layers ~chaos_kill k =
  (match chaos_layers with
  | Some layers ->
      let layers =
        String.split_on_char ',' layers
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      Chaos.configure ?p_kill:chaos_kill
        ~p_fault:(Option.value chaos ~default:0.)
        ~seed layers
  | None -> ());
  let budget = Budget.create ?deadline () in
  let interrupted = ref false in
  let on_signal =
    Sys.Signal_handle
      (fun _ ->
        if !interrupted then exit 130
        else begin
          interrupted := true;
          prerr_endline
            "interrupted: winding down (best-so-far results; interrupt \
             again to exit immediately)";
          Budget.cancel budget
        end)
  in
  Sys.set_signal Sys.sigint on_signal;
  (try Sys.set_signal Sys.sigterm on_signal with Invalid_argument _ -> ());
  let budget = Some budget in
  let fault =
    match Chaos.get "pool" with
    | Some _ as inj -> inj
    | None ->
        Option.map
          (fun p -> Parallel.Fault.create ~p_fault:p ?p_kill:chaos_kill ~seed ())
          chaos
  in
  match (domains, fault) with
  | (None | Some 0), None -> k ~budget None
  | size, _ ->
      let size = match size with Some n when n > 0 -> Some n | _ -> None in
      Parallel.Pool.with_pool ?size ?chaos:fault ?budget (fun p ->
          k ~budget (Some p))

let report_run ~budget pool =
  (match pool with
  | Some p ->
      let s = Parallel.Pool.stats p in
      Fmt.pr
        "pool: %d domains, %d tasks run, %d faults dropped, %d workers \
         restarted, %d jobs quarantined@."
        s.Parallel.Pool.size s.Parallel.Pool.tasks_run s.Parallel.Pool.dropped
        s.Parallel.Pool.restarts s.Parallel.Pool.quarantined
  | None -> ());
  Option.iter
    (fun b -> Fmt.pr "budget: %a@." Budget.pp_degradation (Budget.degradation b))
    budget

(* Run-report extras: one JSON entry per resilience surface, each omitted
   when it has nothing to say. *)
let chaos_extra () =
  match Chaos.snapshot () with
  | [] -> []
  | layers ->
      [
        ( "chaos",
          Obs.Json.Obj
            (List.map
               (fun (name, c) ->
                 ( name,
                   Obs.Json.Obj
                     [
                       ("tickets", Obs.Json.Int c.Chaos.n_tickets);
                       ("injected", Obs.Json.Int c.Chaos.n_injected);
                       ("delayed", Obs.Json.Int c.Chaos.n_delayed);
                       ("killed", Obs.Json.Int c.Chaos.n_killed);
                     ] ))
               layers) );
      ]

let csv_extra () =
  match Relational.Csv.skip_stats () with
  | [] -> []
  | stats ->
      [
        ( "csv_skips",
          Obs.Json.Obj
            (List.map
               (fun (file, s) ->
                 ( file,
                   Obs.Json.Obj
                     (("rows_skipped", Obs.Json.Int s.Relational.Csv.rows_skipped)
                     ::
                     (match s.Relational.Csv.first_bad with
                     | Some (line, msg) ->
                         [
                           ("first_bad_line", Obs.Json.Int line);
                           ("first_bad", Obs.Json.Str msg);
                         ]
                     | None -> [])) ))
               stats) );
      ]

let pool_extra = function
  | None -> []
  | Some p ->
      let s = Parallel.Pool.stats p in
      let quarantine =
        List.map
          (fun (r : Parallel.Pool.quarantine) ->
            Obs.Json.Obj
              [
                ("job_id", Obs.Json.Int r.job_id);
                ("attempts", Obs.Json.Int r.attempts);
                ("exn", Obs.Json.Str r.exn);
                ("backtrace", Obs.Json.Str r.backtrace);
              ])
          (Parallel.Pool.quarantine_records p)
      in
      [
        ( "pool",
          Obs.Json.Obj
            [
              ("size", Obs.Json.Int s.Parallel.Pool.size);
              ("tasks_run", Obs.Json.Int s.Parallel.Pool.tasks_run);
              ("dropped", Obs.Json.Int s.Parallel.Pool.dropped);
              ("restarts", Obs.Json.Int s.Parallel.Pool.restarts);
              ("quarantined", Obs.Json.Int s.Parallel.Pool.quarantined);
              ("quarantine", Obs.Json.List quarantine);
            ] );
      ]

(* ---------------- learn ---------------- *)

let save_definition path definition =
  let oc = open_out path in
  output_string oc "# learned by autobias; one clause per line\n";
  output_string oc (Logic.Clause.definition_to_string definition);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote definition to %s@." path

let load_definition path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Logic.Parser.definition contents

let learn_cmd =
  let run dataset_name method_name strategy scale seed timeout deadline domains
      chaos chaos_layers chaos_kill checkpoint checkpoint_every resume
      kill_after no_cache no_compiled no_prune cv show_bias output trace events
      funnel metrics =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let method_ = Autobias.method_of_string method_name in
    let report_config =
      Obs.Json.
        [
          ("dataset", Str dataset_name);
          ("method", Str method_name);
          ("strategy", Str strategy);
          ("scale", Float scale);
          ("seed", Int seed);
          ("timeout_s", Float timeout);
          ("cv", Bool cv);
          ( "domains",
            match domains with Some d -> Int d | None -> Null );
        ]
    in
    with_observability ~trace ~events ~funnel ~metrics
      ~name:("learn:" ^ dataset_name) ~config:report_config
    @@ fun ~note_degradation ~note_extra ->
    with_resources ~seed ~deadline ~domains ~chaos ~chaos_layers ~chaos_kill
    @@ fun ~budget pool ->
    (* --kill-after-clause cancels through the budget, which
       [with_resources] now always provides (signal handling needs it). *)
    let config =
      { (config ~coverage_cache:(not no_cache) ~compiled_eval:(not no_compiled)
           ~pruning:(not no_prune) ~strategy ~timeout ())
        with budget; pool }
    in
    let note_resilience () =
      List.iter note_extra (chaos_extra () @ pool_extra pool @ csv_extra ())
    in
    Fmt.pr "%a" Datasets.Dataset.summary dataset;
    if cv then begin
      let result = Autobias.cross_validate ~config method_ dataset ~seed in
      Fmt.pr "%s on %s (%d-fold CV): %a@."
        (Autobias.method_to_string method_)
        dataset_name
        (List.length result.Evaluation.Cross_validation.folds)
        Evaluation.Cross_validation.pp_result result;
      Option.iter (fun b -> note_degradation (Budget.degradation b)) budget;
      note_resilience ();
      report_run ~budget pool
    end
    else begin
      let fingerprint =
        Autobias.fingerprint ~dataset:dataset_name ~method_ config ~seed
      in
      let resume_ck =
        match resume with
        | None -> None
        | Some path -> (
            match Resilience.Checkpoint.load path with
            | Error msg ->
                Fmt.epr "cannot resume from %s: %s@." path msg;
                exit 2
            | Ok ck -> (
                match Resilience.Checkpoint.validate ~fingerprint ck with
                | Error msg ->
                    Fmt.epr "cannot resume from %s: %s@." path msg;
                    exit 2
                | Ok () ->
                    Fmt.pr
                      "resuming from %s at clause boundary %d (%d clauses \
                       learned)@."
                      path ck.Resilience.Checkpoint.boundary
                      (List.length ck.Resilience.Checkpoint.definition);
                    Some ck))
      in
      let written = ref 0 in
      let sink =
        Option.map
          (fun path ck ->
            match Resilience.Checkpoint.save ck path with
            | `Written ->
                incr written;
                (match kill_after with
                | Some k when !written >= k ->
                    Fmt.pr
                      "kill-after-clause: cancelling after %d checkpoints@." k;
                    Option.iter Budget.cancel budget
                | _ -> ());
                `Written
            | `Skipped -> `Skipped)
          checkpoint
      in
      let config =
        {
          config with
          checkpoint = sink;
          checkpoint_every = max 1 checkpoint_every;
          fingerprint;
          resume = resume_ck;
        }
      in
      let rng = Random.State.make [| seed |] in
      let r =
        Autobias.learn_once ~config method_ dataset ~rng
          ~train_pos:dataset.Datasets.Dataset.positives
          ~train_neg:dataset.Datasets.Dataset.negatives
      in
      Option.iter
        (fun path ->
          note_extra
            ( "checkpoint",
              Obs.Json.Obj
                [
                  ("path", Obs.Json.Str path);
                  ("written", Obs.Json.Int !written);
                ] ))
        checkpoint;
      if show_bias then
        Fmt.pr "--- language bias (%d definitions) ---@.%a@.---@."
          (Bias.Language.size r.Autobias.bias_info.Autobias.bias)
          Bias.Language.pp r.Autobias.bias_info.Autobias.bias;
      Fmt.pr "learned %d clauses in %.2fs%s:@.%a@."
        (List.length r.Autobias.definition)
        r.Autobias.learn_time
        (if r.Autobias.timed_out then " (timed out)" else "")
        Logic.Clause.pp_definition r.Autobias.definition;
      Option.iter
        (fun d ->
          note_degradation d;
          Fmt.pr "degradation: %a@." Budget.pp_degradation d)
        r.Autobias.degradation;
      Option.iter
        (fun { Learning.Coverage.probes; hits; constraints } ->
          Fmt.pr "pruning: %d constraints learned, %d/%d probes hit@."
            constraints hits probes;
          note_extra
            ( "pruning",
              Obs.Json.Obj
                [
                  ("probes", Obs.Json.Int probes);
                  ("hits", Obs.Json.Int hits);
                  ("constraints", Obs.Json.Int constraints);
                ] ))
        r.Autobias.prune;
      note_resilience ();
      report_run ~budget:None pool;
      let cov =
        Autobias.coverage_context config dataset
          r.Autobias.bias_info.Autobias.bias ~rng
      in
      let m =
        Evaluation.Metrics.evaluate cov r.Autobias.definition
          ~positives:dataset.Datasets.Dataset.positives
          ~negatives:dataset.Datasets.Dataset.negatives
      in
      Fmt.pr "training-set fit: %a@." Evaluation.Metrics.pp_row m;
      Option.iter (fun path -> save_definition path r.Autobias.definition) output
    end
  in
  let cv_arg =
    let doc = "Run the dataset's cross-validation protocol." in
    Arg.(value & flag & info [ "cv" ] ~doc)
  in
  let show_bias_arg =
    let doc = "Print the language bias before learning." in
    Arg.(value & flag & info [ "show-bias" ] ~doc)
  in
  let output_arg =
    let doc = "Write the learned definition to $(docv) (re-loadable by\n\
               $(b,predict --definition))." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"learn a Horn definition of a dataset's target")
    Term.(
      const run $ dataset_arg $ method_arg $ strategy_arg $ scale_arg $ seed_arg
      $ timeout_arg $ deadline_arg $ domains_arg $ chaos_arg $ chaos_layers_arg
      $ chaos_kill_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
      $ kill_after_arg $ no_cache_arg $ no_compiled_arg $ no_prune_arg $ cv_arg
      $ show_bias_arg
      $ output_arg $ trace_arg $ events_arg $ funnel_arg $ metrics_arg)

(* ---------------- bias ---------------- *)

let bias_cmd =
  let run dataset_name scale seed dot threshold =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let result =
      Discovery.Generate.induce
        ~threshold:(Discovery.Generate.Relative threshold)
        dataset.Datasets.Dataset.db ~target:dataset.Datasets.Dataset.target
        ~positive_examples:dataset.Datasets.Dataset.positives
    in
    Fmt.pr "# %d INDs discovered in %.3fs (α ≤ %.2f kept)@."
      (List.length result.Discovery.Generate.inds)
      result.Discovery.Generate.ind_time
      Discovery.Ind.default_config.Discovery.Ind.max_error;
    List.iter
      (fun ind -> Fmt.pr "#   %s@." (Discovery.Ind.to_string ind))
      result.Discovery.Generate.inds;
    if dot then
      Fmt.pr "%s@." (Discovery.Type_graph.to_dot result.Discovery.Generate.graph)
    else begin
      Fmt.pr "%a@." Discovery.Type_graph.pp result.Discovery.Generate.graph;
      Fmt.pr "%a@." Bias.Language.pp result.Discovery.Generate.bias
    end
  in
  let dot_arg =
    let doc = "Emit the type graph as Graphviz DOT instead of text." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let threshold_arg =
    let doc = "Relative constant-threshold (the paper uses 0.18)." in
    Arg.(value & opt float 0.18 & info [ "constant-threshold" ] ~docv:"RATIO" ~doc)
  in
  Cmd.v
    (Cmd.info "bias"
       ~doc:"induce and print the language bias and type graph for a dataset")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ dot_arg $ threshold_arg)

(* ---------------- data ---------------- *)

let data_cmd =
  let run dataset_name scale seed dump stats =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    Fmt.pr "%a" Datasets.Dataset.summary dataset;
    Relational.Database.stats Format.std_formatter dataset.Datasets.Dataset.db;
    if stats then
      Relational.Stats.pp Format.std_formatter
        (Relational.Stats.database dataset.Datasets.Dataset.db);
    (match dump with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        List.iter
          (fun rel ->
            let path =
              Filename.concat dir (Relational.Relation.name rel ^ ".csv")
            in
            Relational.Csv.save rel path;
            Fmt.pr "wrote %s (%d tuples)@." path
              (Relational.Relation.cardinality rel))
          (Relational.Database.relations dataset.Datasets.Dataset.db);
        let dump_examples name examples =
          let path = Filename.concat dir (name ^ ".csv") in
          let rel =
            Relational.Relation.of_tuples dataset.Datasets.Dataset.target
              (List.rev examples)
          in
          Relational.Csv.save rel path;
          Fmt.pr "wrote %s (%d examples)@." path (List.length examples)
        in
        dump_examples "positive_examples" dataset.Datasets.Dataset.positives;
        dump_examples "negative_examples" dataset.Datasets.Dataset.negatives)
  in
  let dump_arg =
    let doc = "Dump every relation and the examples as CSV into $(docv)." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"DIR" ~doc)
  in
  let stats_arg =
    let doc = "Print per-column statistics (distinct ratios, frequency skew)." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  Cmd.v
    (Cmd.info "data" ~doc:"generate a synthetic dataset; print stats, dump CSVs")
    Term.(const run $ dataset_arg $ scale_arg $ seed_arg $ dump_arg $ stats_arg)

(* ---------------- predict ---------------- *)

let predict_cmd =
  let run dataset_name method_name strategy scale seed timeout limit definition_file =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let definition =
      match definition_file with
      | Some path ->
          let d = load_definition path in
          Fmt.pr "loaded %d clauses from %s@." (List.length d) path;
          d
      | None ->
          let method_ = Autobias.method_of_string method_name in
          let config = config ~strategy ~timeout () in
          let rng = Random.State.make [| seed |] in
          let r =
            Autobias.learn_once ~config method_ dataset ~rng
              ~train_pos:dataset.Datasets.Dataset.positives
              ~train_neg:dataset.Datasets.Dataset.negatives
          in
          Fmt.pr "learned:@.%a@." Logic.Clause.pp_definition r.Autobias.definition;
          r.Autobias.definition
    in
    let derived =
      Learning.Inference.derive_definition dataset.Datasets.Dataset.db
        definition
    in
    Fmt.pr "derived %d tuples of %s:@." (List.length derived)
      dataset.Datasets.Dataset.target.Relational.Schema.rel_name;
    List.iteri
      (fun i t ->
        if i < limit then
          Fmt.pr "  %s@." (Relational.Relation.tuple_to_string t))
      derived;
    if List.length derived > limit then
      Fmt.pr "  ... (%d more; raise --limit)@." (List.length derived - limit)
  in
  let limit_arg =
    let doc = "Print at most $(docv) derived tuples." in
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let definition_arg =
    let doc = "Skip learning; load the definition from $(docv)\n\
               (as written by $(b,learn --output))." in
    Arg.(value & opt (some string) None & info [ "definition" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"learn (or load a definition), then materialize the predictions")
    Term.(
      const run $ dataset_arg $ method_arg $ strategy_arg $ scale_arg $ seed_arg
      $ timeout_arg $ limit_arg $ definition_arg)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let run dataset_name method_name scale seed timeout limit =
    let dataset = dataset_of_name ~scale ~seed dataset_name in
    let method_ = Autobias.method_of_string method_name in
    let config = config ~strategy:"naive" ~timeout () in
    let rng = Random.State.make [| seed |] in
    let r =
      Autobias.learn_once ~config method_ dataset ~rng
        ~train_pos:dataset.Datasets.Dataset.positives
        ~train_neg:dataset.Datasets.Dataset.negatives
    in
    Fmt.pr "learned:@.%a@.@." Logic.Clause.pp_definition r.Autobias.definition;
    let cov =
      Autobias.coverage_context config dataset r.Autobias.bias_info.Autobias.bias
        ~rng
    in
    let explain_some label examples =
      Fmt.pr "--- %s ---@." label;
      List.iteri
        (fun i e ->
          if i < limit then
            Fmt.pr "%s: %a@.@."
              (Relational.Relation.tuple_to_string e)
              Learning.Explain.pp_definition_result
              (Learning.Explain.explain_definition cov r.Autobias.definition e))
        examples
    in
    explain_some "positive examples" dataset.Datasets.Dataset.positives;
    explain_some "negative examples" dataset.Datasets.Dataset.negatives
  in
  let limit_arg =
    let doc = "Explain at most $(docv) examples of each class." in
    Arg.(value & opt int 3 & info [ "limit" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"learn, then explain the definition's decision on examples")
    Term.(
      const run $ dataset_arg $ method_arg $ scale_arg $ seed_arg $ timeout_arg
      $ limit_arg)

(* ---------------- group ---------------- *)

let () =
  Chaos.from_env ();
  let doc = "relational learning with automatic language bias (SIGMOD '21)" in
  let info = Cmd.info "autobias" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ learn_cmd; bias_cmd; data_cmd; predict_cmd; explain_cmd ]))
