(* SYS scenario: a single wide relation, constants, and positive-only
   learning with closed-world negatives.

   malicious(p) holds iff process p both writes into a system area and
   executes a shell — two events that are individually common among benign
   processes, so the definition is a conjunction with constants:

       malicious(X) :- event(X,write,system,T), event(X,exec,shell,U)

   The walkthrough also shows what a user does when they have no labelled
   negatives: generate type-correct ones under the closed-world assumption.

   Run with: dune exec examples/sys_security.exe *)

let () =
  let dataset = Datasets.Sys_data.generate ~scale:0.7 () in
  Fmt.pr "%a@." Datasets.Dataset.summary dataset;
  let config = { Autobias.default_config with timeout = Some 45. } in
  let rng = Random.State.make [| 9 |] in

  (* 1. With the dataset's labelled negatives. *)
  let r =
    Autobias.learn_once ~config Autobias.Auto_bias dataset ~rng
      ~train_pos:dataset.Datasets.Dataset.positives
      ~train_neg:dataset.Datasets.Dataset.negatives
  in
  Fmt.pr "--- with labelled negatives (%.1fs) ---@.%a@.@." r.Autobias.learn_time
    Logic.Clause.pp_definition r.Autobias.definition;

  (* 2. Positive-only: discard the labels and synthesize negatives under the
     closed-world assumption, typed by the induced bias. *)
  let bias = r.Autobias.bias_info.Autobias.bias in
  let cwa_negatives =
    Evaluation.Closed_world.negatives bias dataset.Datasets.Dataset.db ~rng
      ~positives:dataset.Datasets.Dataset.positives
      ~count:(2 * List.length dataset.Datasets.Dataset.positives)
  in
  Fmt.pr "synthesized %d closed-world negatives, e.g. %s@."
    (List.length cwa_negatives)
    (match cwa_negatives with
    | t :: _ -> Relational.Relation.tuple_to_string t
    | [] -> "(none)");
  let r2 =
    Autobias.learn_once ~config Autobias.Auto_bias dataset ~rng
      ~train_pos:dataset.Datasets.Dataset.positives ~train_neg:cwa_negatives
  in
  Fmt.pr "--- with closed-world negatives (%.1fs) ---@.%a@.@."
    r2.Autobias.learn_time Logic.Clause.pp_definition r2.Autobias.definition;

  (* 3. Score both against the real labels. *)
  let cov = Autobias.coverage_context config dataset bias ~rng in
  List.iter
    (fun (label, def) ->
      let m =
        Evaluation.Metrics.evaluate cov def
          ~positives:dataset.Datasets.Dataset.positives
          ~negatives:dataset.Datasets.Dataset.negatives
      in
      Fmt.pr "%-28s %a@." label Evaluation.Metrics.pp_row m)
    [
      ("labelled negatives:", r.Autobias.definition);
      ("closed-world negatives:", r2.Autobias.definition);
    ]
