(* FLT scenario: pure join structure and the three sampling strategies.

   sameSourceVia(f1,f2) holds iff two flights share both their source and
   their via airport:

       sameSourceVia(X,Y) :- flight(X,S,L), flight(Y,S,L)

   No constants are involved — the signal is variable coupling across two
   literals, which bottom-up generalization recovers and greedy top-down
   search (Aleph/FOIL) cannot. The example also runs the three bottom-clause
   sampling strategies of Section 4 side by side.

   Run with: dune exec examples/flight_routes.exe *)

let () =
  let dataset = Datasets.Flt.generate ~scale:0.5 () in
  Fmt.pr "%a@." Datasets.Dataset.summary dataset;
  let base_config = { Autobias.default_config with timeout = Some 90. } in
  (* AutoBias with each sampling strategy. *)
  List.iter
    (fun strategy ->
      let rng = Random.State.make [| 3 |] in
      let config = { base_config with strategy } in
      let r =
        Autobias.learn_once ~config Autobias.Auto_bias dataset ~rng
          ~train_pos:dataset.Datasets.Dataset.positives
          ~train_neg:dataset.Datasets.Dataset.negatives
      in
      let cov =
        Autobias.coverage_context config dataset r.Autobias.bias_info.Autobias.bias
          ~rng
      in
      let m =
        Evaluation.Metrics.evaluate cov r.Autobias.definition
          ~positives:dataset.Datasets.Dataset.positives
          ~negatives:dataset.Datasets.Dataset.negatives
      in
      Fmt.pr "--- autobias + %s sampling (%.2fs) ---@.%a@.fit: %a@.@."
        (Sampling.Strategy.to_string strategy)
        r.Autobias.learn_time Logic.Clause.pp_definition r.Autobias.definition
        Evaluation.Metrics.pp_row m)
    Sampling.Strategy.all;
  (* The top-down baseline for contrast. *)
  let rng = Random.State.make [| 3 |] in
  let r =
    Autobias.learn_once ~config:base_config Autobias.Foil dataset ~rng
      ~train_pos:dataset.Datasets.Dataset.positives
      ~train_neg:dataset.Datasets.Dataset.negatives
  in
  Fmt.pr "--- aleph/FOIL (top-down, %.2fs) ---@.%a@.(greedy gain cannot couple the two flight literals)@."
    r.Autobias.learn_time Logic.Clause.pp_definition r.Autobias.definition
