(* IMDb scenario: learning a definition that needs a constant.

   dramaDirector(d) holds iff d directed a drama movie — the accurate
   definition must mention the constant 'drama', so the mode language needs a
   [#] on the genre attribute. AutoBias finds it by itself: the genre column
   has few distinct values relative to the relation size, so the
   constant-threshold marks it constant-able. Castor-NoConst, by
   construction, cannot express the rule.

   Run with: dune exec examples/imdb_genre.exe *)

let () =
  let dataset = Datasets.Imdb.generate ~scale:0.5 () in
  Fmt.pr "%a@." Datasets.Dataset.summary dataset;
  let rng = Random.State.make [| 1 |] in
  let config = { Autobias.default_config with timeout = Some 60. } in
  List.iter
    (fun method_ ->
      let r =
        Autobias.learn_once ~config method_ dataset ~rng
          ~train_pos:dataset.Datasets.Dataset.positives
          ~train_neg:dataset.Datasets.Dataset.negatives
      in
      let cov =
        Autobias.coverage_context config dataset r.Autobias.bias_info.Autobias.bias
          ~rng
      in
      let m =
        Evaluation.Metrics.evaluate cov r.Autobias.definition
          ~positives:dataset.Datasets.Dataset.positives
          ~negatives:dataset.Datasets.Dataset.negatives
      in
      Fmt.pr "--- %s (bias: %d definitions, %.2fs to learn) ---@.%a@.fit: %a@.@."
        (Autobias.method_to_string method_)
        (Bias.Language.size r.Autobias.bias_info.Autobias.bias)
        r.Autobias.learn_time Logic.Clause.pp_definition r.Autobias.definition
        Evaluation.Metrics.pp_row m)
    [ Autobias.No_const; Autobias.Manual; Autobias.Auto_bias ];
  Fmt.pr
    "NoConst cannot name the 'drama' constant, so its definition (if any)@.\
     over-generalizes; Manual and AutoBias both learn@.\
     dramaDirector(X) :- directedBy(Y,X), genre(Y,drama).@."
