examples/imdb_genre.ml: Autobias Bias Datasets Evaluation Fmt List Logic Random
