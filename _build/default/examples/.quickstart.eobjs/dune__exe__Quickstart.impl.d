examples/quickstart.ml: Bias Datasets Discovery Fmt Learning Logic Random Relational
