examples/sys_security.mli:
