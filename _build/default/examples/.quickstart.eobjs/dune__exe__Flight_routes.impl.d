examples/flight_routes.ml: Autobias Datasets Evaluation Fmt List Logic Random Sampling
