examples/custom_dataset.mli:
