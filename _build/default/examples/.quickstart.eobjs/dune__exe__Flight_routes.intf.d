examples/flight_routes.mli:
