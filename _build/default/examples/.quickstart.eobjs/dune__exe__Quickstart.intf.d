examples/quickstart.mli:
