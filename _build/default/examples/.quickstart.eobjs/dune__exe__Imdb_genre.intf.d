examples/imdb_genre.mli:
