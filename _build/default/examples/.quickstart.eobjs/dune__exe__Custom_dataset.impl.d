examples/custom_dataset.ml: Bias Discovery Evaluation Fmt Learning List Logic Random Relational
