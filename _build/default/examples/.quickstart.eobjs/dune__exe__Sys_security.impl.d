examples/sys_security.ml: Autobias Datasets Evaluation Fmt List Logic Random Relational
