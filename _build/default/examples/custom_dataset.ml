(* Bringing your own data: load relations from CSV, let AutoBias induce the
   language bias, and learn a definition — the workflow a downstream user
   follows with their own database.

   The toy domain: a music label. The target playlisted(track) holds iff the
   track is by an artist signed to the label AND appears on some album of
   genre 'lofi'. The rule needs one join and one constant; nobody writes a
   bias by hand here.

   Run with: dune exec examples/custom_dataset.exe *)

module Schema = Relational.Schema

let tracks_csv =
  "t1,a1\nt2,a1\nt3,a2\nt4,a3\nt5,a2\nt6,a4\nt7,a4\nt8,a5\nt9,a5\nt10,a3"

let on_album_csv =
  "t1,alb1\nt2,alb2\nt3,alb1\nt4,alb3\nt5,alb4\nt6,alb4\nt7,alb5\nt8,alb5\nt9,alb2\nt10,alb3"

let album_genre_csv =
  "alb1,lofi\nalb2,rock\nalb3,lofi\nalb4,jazz\nalb5,rock"

let signed_csv = "a1\na2\na3"

let () =
  (* 1. Load the relations (here from strings; Csv.load reads files). *)
  let track_schema = Schema.relation "track" [| "tid"; "artist" |] in
  let on_album_schema = Schema.relation "onAlbum" [| "tid"; "album" |] in
  let genre_schema = Schema.relation "albumGenre" [| "album"; "genre" |] in
  let signed_schema = Schema.relation "signed" [| "artist" |] in
  let db =
    Relational.Database.of_relations
      [
        Relational.Csv.parse_string ~schema:track_schema tracks_csv;
        Relational.Csv.parse_string ~schema:on_album_schema on_album_csv;
        Relational.Csv.parse_string ~schema:genre_schema album_genre_csv;
        Relational.Csv.parse_string ~schema:signed_schema signed_csv;
      ]
  in
  Fmt.pr "=== Database ===@.%a@." (fun ppf -> Relational.Database.stats ppf) db;

  (* 2. Labelled examples of the new target relation. *)
  let target = Schema.relation "playlisted" [| "tid" |] in
  let e name = [| Relational.Value.str name |] in
  (* by-signed-artist AND on a lofi album: t1 (a1,alb1), t3 (a2,alb1),
     t4 (a3,alb3), t10 (a3,alb3). *)
  let positives = [ e "t1"; e "t3"; e "t4"; e "t10" ] in
  let negatives = [ e "t2"; e "t5"; e "t6"; e "t7"; e "t8"; e "t9" ] in

  (* 3. AutoBias: INDs → type graph → predicate defs; cardinalities → modes.
     The absolute constant-threshold suits a toy-sized database. *)
  let induced =
    Discovery.Generate.induce ~threshold:(Discovery.Generate.Absolute 5) db
      ~target ~positive_examples:positives
  in
  Fmt.pr "=== Induced bias (%d definitions, %d INDs, %.3fs) ===@.%a@.@."
    (Bias.Language.size induced.Discovery.Generate.bias)
    (List.length induced.Discovery.Generate.inds)
    induced.Discovery.Generate.ind_time Bias.Language.pp
    induced.Discovery.Generate.bias;
  Fmt.pr "=== Type graph (DOT, paste into graphviz) ===@.%s@."
    (Discovery.Type_graph.to_dot induced.Discovery.Generate.graph);

  (* 4. Learn. *)
  let rng = Random.State.make [| 8 |] in
  let cov = Learning.Coverage.create db induced.Discovery.Generate.bias ~rng in
  let result =
    Learning.Learn.learn
      ~config:
        { Learning.Learn.default_config with min_positives = 2; min_precision = 0.9 }
      cov ~rng ~positives ~negatives
  in
  Fmt.pr "=== Learned definition ===@.%a@."
    Logic.Clause.pp_definition result.Learning.Learn.definition;
  let m = Evaluation.Metrics.evaluate cov result.Learning.Learn.definition
      ~positives ~negatives
  in
  Fmt.pr "training fit: %a@." Evaluation.Metrics.pp_row m
