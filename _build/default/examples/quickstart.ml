(* Quickstart: the paper's running example, end to end.

   Builds the UW fragment of Table 4, writes the Table 3 language bias by
   hand, constructs the bottom clause of Example 2.5, and learns a definition
   of advisedBy — then does the same with AutoBias inducing the bias
   automatically, which is the paper's point: no hand-written bias needed.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A database: the exact fragment of Table 4. *)
  let db = Datasets.Uw.table4_fragment () in
  Fmt.pr "=== Database (Table 4 fragment) ===@.%a@."
    (fun ppf db -> Relational.Database.stats ppf db)
    db;

  (* 2. A hand-written language bias in the paper's concrete syntax. *)
  let bias =
    Bias.Language.parse ~schema:Datasets.Uw.schemas
      ~target:Datasets.Uw.target_schema
      {|advisedBy(T1,T3)
student(T1)
inPhase(T1,T2)
professor(T3)
hasPosition(T3,T4)
publication(T5,T1)
publication(T5,T3)
student(+)
inPhase(+,-)
inPhase(+,#)
professor(+)
hasPosition(+,-)
publication(-,+)
|}
  in
  assert (Bias.Language.validate bias = []);
  Fmt.pr "=== Language bias (Table 3) ===@.%a@.@." Bias.Language.pp bias;

  (* 3. The bottom clause of Example 2.5: most specific clause covering
     advisedBy(juan, sarita). *)
  let rng = Random.State.make [| 2021 |] in
  let example = [| Relational.Value.str "juan"; Relational.Value.str "sarita" |] in
  let bc =
    Learning.Bottom_clause.build
      ~config:
        { Learning.Bottom_clause.default_config with depth = 1; sample_size = 50 }
      db bias ~rng ~example
  in
  Fmt.pr "=== Bottom clause of Example 2.5 ===@.%a@.@."
    Logic.Clause.pp_multiline bc;

  (* 4. Learn a definition from both advised pairs. *)
  let positives =
    [ example; [| Relational.Value.str "john"; Relational.Value.str "mary" |] ]
  in
  let negatives =
    [
      [| Relational.Value.str "juan"; Relational.Value.str "mary" |];
      [| Relational.Value.str "john"; Relational.Value.str "sarita" |];
    ]
  in
  let cov = Learning.Coverage.create db bias ~rng in
  let result =
    Learning.Learn.learn
      ~config:{ Learning.Learn.default_config with min_positives = 2 }
      cov ~rng ~positives ~negatives
  in
  Fmt.pr "=== Learned definition (manual bias) ===@.%a@.@."
    Logic.Clause.pp_definition result.Learning.Learn.definition;

  (* 5. Now let AutoBias induce the bias instead (Section 3): INDs → type
     graph → predicate definitions; cardinalities → mode definitions. *)
  let induced =
    Discovery.Generate.induce
      ~threshold:(Discovery.Generate.Absolute 4) (* tiny data: absolute bound *)
      db ~target:Datasets.Uw.target_schema ~positive_examples:positives
  in
  Fmt.pr "=== AutoBias type graph ===@.%a@." Discovery.Type_graph.pp
    induced.Discovery.Generate.graph;
  Fmt.pr "=== AutoBias-induced bias (%d definitions) ===@.%a@.@."
    (Bias.Language.size induced.Discovery.Generate.bias)
    Bias.Language.pp induced.Discovery.Generate.bias;
  let cov_auto = Learning.Coverage.create db induced.Discovery.Generate.bias ~rng in
  let result_auto =
    Learning.Learn.learn
      ~config:{ Learning.Learn.default_config with min_positives = 2 }
      cov_auto ~rng ~positives ~negatives
  in
  Fmt.pr "=== Learned definition (AutoBias) ===@.%a@."
    Logic.Clause.pp_definition result_auto.Learning.Learn.definition
