(* Tests for the logic substrate: terms, literals, substitutions, clauses,
   parsing, and both subsumption engines. *)

module Value = Relational.Value
module Term = Logic.Term
module Literal = Logic.Literal
module Substitution = Logic.Substitution
module Clause = Logic.Clause
module Parser = Logic.Parser
module Subsumption = Logic.Subsumption

let v = Value.str
let lit s = Parser.literal s
let clause s = Parser.clause s

let term_tests =
  [
    Alcotest.test_case "var names are parse-able and stable" `Quick (fun () ->
        Alcotest.(check string) "0" "X" (Term.var_name 0);
        Alcotest.(check string) "6" "W" (Term.var_name 6);
        Alcotest.(check string) "9" "V9" (Term.var_name 9));
    Alcotest.test_case "var generator is sequential" `Quick (fun () ->
        let g = Term.Var_gen.create () in
        Alcotest.(check bool) "v0" true (Term.equal (Term.Var_gen.fresh g) (Term.Var 0));
        Alcotest.(check bool) "v1" true (Term.equal (Term.Var_gen.fresh g) (Term.Var 1));
        Alcotest.(check int) "count" 2 (Term.Var_gen.count g));
  ]

let literal_tests =
  [
    Alcotest.test_case "vars in first-occurrence order, deduplicated" `Quick
      (fun () ->
        let l = lit "p(X,Y,X,juan)" in
        Alcotest.(check (list int)) "vars" [ 0; 1 ] (Literal.vars l));
    Alcotest.test_case "constants extracted in order" `Quick (fun () ->
        let l = lit "p(X,juan,sarita)" in
        Alcotest.(check (list string)) "consts" [ "juan"; "sarita" ]
          (List.map Value.to_string (Literal.constants l)));
    Alcotest.test_case "tuple round-trip for ground literals" `Quick (fun () ->
        let l = lit "p(juan,sarita)" in
        Alcotest.(check bool) "ground" true (Literal.is_ground l);
        let l2 = Literal.of_tuple "p" (Literal.to_tuple l) in
        Alcotest.(check bool) "same" true (Literal.equal l l2));
    Alcotest.test_case "to_tuple rejects variables" `Quick (fun () ->
        Alcotest.check_raises "nonground"
          (Invalid_argument "Literal.to_tuple: non-ground literal") (fun () ->
            ignore (Literal.to_tuple (lit "p(X)"))));
    Alcotest.test_case "shares_var" `Quick (fun () ->
        let l = lit "p(X,Y)" in
        let set = Hashtbl.create 4 in
        Hashtbl.replace set 1 ();
        Alcotest.(check bool) "shares Y" true (Literal.shares_var l set);
        Hashtbl.reset set;
        Hashtbl.replace set 5 ();
        Alcotest.(check bool) "no V5" false (Literal.shares_var l set));
  ]

let substitution_tests =
  [
    Alcotest.test_case "extend is consistent" `Quick (fun () ->
        let s = Substitution.empty in
        let s = Option.get (Substitution.extend s 0 (v "a")) in
        Alcotest.(check bool) "same rebind ok" true
          (Option.is_some (Substitution.extend s 0 (v "a")));
        Alcotest.(check bool) "conflicting rebind fails" true
          (Option.is_none (Substitution.extend s 0 (v "b"))));
    Alcotest.test_case "match_literal binds pattern onto ground" `Quick
      (fun () ->
        let pattern = lit "p(X,Y,X)" in
        let ground = lit "p(a,b,a)" in
        match Substitution.match_literal Substitution.empty pattern ground with
        | None -> Alcotest.fail "should match"
        | Some s ->
            Alcotest.(check int) "two bindings" 2 (Substitution.cardinal s));
    Alcotest.test_case "match_literal rejects inconsistent repeats" `Quick
      (fun () ->
        let pattern = lit "p(X,X)" in
        let ground = lit "p(a,b)" in
        Alcotest.(check bool) "no match" true
          (Option.is_none
             (Substitution.match_literal Substitution.empty pattern ground)));
    Alcotest.test_case "match_literal rejects wrong predicate or arity" `Quick
      (fun () ->
        Alcotest.(check bool) "pred" true
          (Option.is_none
             (Substitution.match_literal Substitution.empty (lit "p(X)") (lit "q(a)")));
        Alcotest.(check bool) "arity" true
          (Option.is_none
             (Substitution.match_literal Substitution.empty (lit "p(X)") (lit "p(a,b)"))));
    Alcotest.test_case "apply_literal substitutes bound variables" `Quick
      (fun () ->
        let s = Option.get (Substitution.extend Substitution.empty 0 (v "a")) in
        let l = Substitution.apply_literal s (lit "p(X,Y)") in
        Alcotest.(check string) "applied" "p(a,Y)" (Literal.to_string l));
  ]

let clause_tests =
  [
    Alcotest.test_case "head-connected pruning drops islands" `Quick (fun () ->
        (* q(Z,T) is not connected to the head through any chain. *)
        let c = clause "h(X) :- p(X,Y), q(Z,T)" in
        let pruned = Clause.prune_head_connected c in
        Alcotest.(check int) "one literal" 1 (Clause.size pruned);
        Alcotest.(check string) "kept p" "p"
          (Literal.pred (List.hd (Clause.body pruned))));
    Alcotest.test_case "pruning keeps chains regardless of order" `Quick
      (fun () ->
        (* r connects to the head only through q, which appears later. *)
        let c = clause "h(X) :- r(Z,T), q(X,Z), s(U,V)" in
        let pruned = Clause.prune_head_connected c in
        Alcotest.(check int) "two kept" 2 (Clause.size pruned);
        Alcotest.(check (list string)) "order preserved" [ "r"; "q" ]
          (List.map Literal.pred (Clause.body pruned)));
    Alcotest.test_case "printing round-trips through the parser" `Quick
      (fun () ->
        let c = clause "h(X,Y) :- p(X,Z), q(Z,Y), r(Z,drama)" in
        let c2 = Parser.clause (Clause.to_string c) in
        Alcotest.(check string) "same rendering" (Clause.to_string c)
          (Clause.to_string c2));
  ]

let parser_tests =
  [
    Alcotest.test_case "variables interned left to right" `Quick (fun () ->
        let c = clause "h(A,B) :- p(B,A)" in
        Alcotest.(check string) "alpha-normal" "h(X,Y) :- p(Y,X)"
          (Clause.to_string c));
    Alcotest.test_case "quoted constants may start uppercase" `Quick (fun () ->
        let l = lit "p('Drama')" in
        Alcotest.(check string) "const" "p(Drama)" (Literal.to_string l));
    Alcotest.test_case "integers become integer values" `Quick (fun () ->
        let l = lit "p(42)" in
        match (Literal.args l).(0) with
        | Term.Const (Value.Int 42) -> ()
        | _ -> Alcotest.fail "expected Int 42");
    Alcotest.test_case "facts have empty bodies" `Quick (fun () ->
        let c = clause "h(a,b)." in
        Alcotest.(check int) "no body" 0 (Clause.size c));
    Alcotest.test_case "definition parses multiple lines with comments" `Quick
      (fun () ->
        let d =
          Parser.definition "# comment\nh(X) :- p(X)\n\nh(X) :- q(X)\n"
        in
        Alcotest.(check int) "two clauses" 2 (List.length d));
    Alcotest.test_case "malformed input raises Parse_error" `Quick (fun () ->
        List.iter
          (fun s ->
            match Parser.clause s with
            | exception Parser.Parse_error _ -> ()
            | _ -> Alcotest.fail ("should not parse: " ^ s))
          [ "h(X" ; "h(X) :- "; "h(X) p(Y)"; "(X)" ]);
  ]

(* A small ground clause used by the subsumption tests: the co-authorship
   neighbourhood from the paper's running example. *)
let ground_uw () =
  Subsumption.ground_of_literals
    (List.map lit
       [
         "student(juan)";
         "professor(sarita)";
         "inPhase(juan,post_quals)";
         "hasPosition(sarita,assistant_prof)";
         "publication(p1,juan)";
         "publication(p1,sarita)";
         "publication(p2,juan)";
       ])

let subsumption_tests =
  [
    Alcotest.test_case "positive subsumption with shared variable" `Quick
      (fun () ->
        let c = clause "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)" in
        Alcotest.(check bool) "subsumes" true (Subsumption.subsumes c (ground_uw ())));
    Alcotest.test_case "negative subsumption when join value differs" `Quick
      (fun () ->
        let c = clause "advisedBy(X,Y) :- publication(Z,X), inPhase(Z,Y)" in
        Alcotest.(check bool) "no" false (Subsumption.subsumes c (ground_uw ())));
    Alcotest.test_case "constants must match exactly" `Quick (fun () ->
        let yes = clause "h(X) :- inPhase(X,post_quals)" in
        let no = clause "h(X) :- inPhase(X,pre_quals)" in
        Alcotest.(check bool) "yes" true (Subsumption.subsumes yes (ground_uw ()));
        Alcotest.(check bool) "no" false (Subsumption.subsumes no (ground_uw ())));
    Alcotest.test_case "initial substitution constrains the head vars" `Quick
      (fun () ->
        let c = clause "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)" in
        let subst =
          Option.get (Substitution.extend Substitution.empty 0 (v "sarita"))
        in
        (* X := sarita: needs a co-author of sarita, fine (juan). But binding
           X to a non-author fails. *)
        Alcotest.(check bool) "sarita ok" true
          (Option.is_some (Subsumption.subsumes_subst ~subst c (ground_uw ())));
        let subst_bad =
          Option.get (Substitution.extend Substitution.empty 0 (v "nobody"))
        in
        Alcotest.(check bool) "nobody fails" false
          (Option.is_some
             (Subsumption.subsumes_subst ~subst:subst_bad c (ground_uw ()))));
    Alcotest.test_case "empty body subsumes trivially" `Quick (fun () ->
        Alcotest.(check bool) "trivial" true
          (Subsumption.subsumes (clause "h(X)") (ground_uw ())));
    Alcotest.test_case "prefix evaluator agrees on the blocking atom" `Quick
      (fun () ->
        let c =
          clause
            "h(X) :- publication(Z,X), publication(Z,Y), hasPosition(Y,full_prof)"
        in
        (* literals 1-2 are satisfiable (Z=p1, X=juan, Y=sarita), literal 3
           is not: blocking atom is 3. *)
        match Subsumption.eval_prefix ~subst:Substitution.empty c (ground_uw ()) with
        | Subsumption.Blocked 3 -> ()
        | Subsumption.Blocked i -> Alcotest.failf "blocked at %d, expected 3" i
        | Subsumption.Covered _ -> Alcotest.fail "should not be covered");
    Alcotest.test_case "ground_of_literals rejects variables" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Subsumption.ground_of_literals [ lit "p(X)" ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "ground size and literal recovery" `Quick (fun () ->
        let g = ground_uw () in
        Alcotest.(check int) "size" 7 (Subsumption.ground_size g);
        Alcotest.(check int) "literals" 7 (List.length (Subsumption.ground_literals g)));
  ]

(* Property: the two engines (backtracking and frontier) agree on random
   small instances. *)
let engines_agree =
  let gen =
    QCheck.Gen.(
      let small_lit vars_n preds consts =
        let* p = int_bound (preds - 1) in
        let* a1 = int_bound (vars_n + consts - 1) in
        let* a2 = int_bound (vars_n + consts - 1) in
        let term i =
          if i < vars_n then Term.Var i
          else Term.Const (Value.int (i - vars_n))
        in
        return (Literal.make (Printf.sprintf "p%d" p) [| term a1; term a2 |])
      in
      let* body_n = int_range 1 5 in
      let* body = list_repeat body_n (small_lit 3 2 3) in
      let* ground_n = int_range 1 8 in
      let ground_lit =
        let* p = int_bound 1 in
        let* a1 = int_bound 2 in
        let* a2 = int_bound 2 in
        return
          (Literal.make (Printf.sprintf "p%d" p)
             [| Term.Const (Value.int a1); Term.Const (Value.int a2) |])
      in
      let* ground = list_repeat ground_n ground_lit in
      return (body, ground))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"backtracking and frontier engines agree"
       ~count:300
       (QCheck.make gen)
       (fun (body, ground) ->
         let c = Clause.make (lit "h(X)") body in
         let g = Subsumption.ground_of_literals ground in
         let backtracking = Subsumption.subsumes c g in
         let frontier =
           Subsumption.covers_ground ~cap:64 ~subst:Substitution.empty c g
         in
         (* The frontier engine may under-approximate only when truncation
            kicks in; with cap 64 on these tiny instances it never does, so
            the engines must agree exactly. *)
         backtracking = frontier))

let suite =
  term_tests @ literal_tests @ substitution_tests @ clause_tests @ parser_tests
  @ subsumption_tests @ [ engines_agree ]
