(* Tests for IND discovery (exact + approximate), the type graph
   (Algorithm 3), and bias generation (Section 3). *)

module Value = Relational.Value
module Schema = Relational.Schema
module Relation = Relational.Relation
module Database = Relational.Database
module Ind = Discovery.Ind
module Type_graph = Discovery.Type_graph
module Generate = Discovery.Generate
module String_set = Bias.Util.String_set

let v = Value.str

(* A miniature UW-like database exhibiting the paper's motivating case:
   publication[person] mixes students and professors, so no exact IND links
   it to either, but approximate INDs (error ≤ 0.5) do. *)
let mini_db () =
  let student =
    Relation.of_tuples (Schema.relation "student" [| "stud" |])
      [ [| v "s1" |]; [| v "s2" |]; [| v "s3" |]; [| v "s4" |] ]
  in
  let professor =
    Relation.of_tuples (Schema.relation "professor" [| "prof" |])
      [ [| v "p1" |]; [| v "p2" |] ]
  in
  let in_phase =
    Relation.of_tuples (Schema.relation "inPhase" [| "stud"; "phase" |])
      [ [| v "s1"; v "pre" |]; [| v "s2"; v "post" |]; [| v "s3"; v "pre" |];
        [| v "s4"; v "abd" |] ]
  in
  let publication =
    Relation.of_tuples (Schema.relation "publication" [| "title"; "person" |])
      [ [| v "t1"; v "s1" |]; [| v "t1"; v "p1" |]; [| v "t2"; v "s2" |];
        [| v "t2"; v "p2" |] ]
  in
  Database.of_relations [ student; professor; in_phase; publication ]

let find_ind inds sub sup =
  List.find_opt
    (fun (i : Ind.t) ->
      Schema.equal_attribute i.Ind.sub sub && Schema.equal_attribute i.Ind.sup sup)
    inds

let ind_tests =
  [
    Alcotest.test_case "exact INDs discovered" `Quick (fun () ->
        let inds = Ind.discover (mini_db ()) ~extra:[] in
        (* inPhase[stud] ⊆ student[stud] holds exactly. *)
        match find_ind inds (Schema.attr "inPhase" "stud") (Schema.attr "student" "stud") with
        | Some ind -> Alcotest.(check bool) "exact" true (Ind.is_exact ind)
        | None -> Alcotest.fail "missing exact IND");
    Alcotest.test_case "approximate IND for the mixed person column" `Quick
      (fun () ->
        let inds = Ind.discover (mini_db ()) ~extra:[] in
        (* person = {s1,p1,s2,p2}: half students, half professors. *)
        match
          find_ind inds (Schema.attr "publication" "person") (Schema.attr "student" "stud")
        with
        | Some ind ->
            Alcotest.(check bool) "approximate" false (Ind.is_exact ind);
            Alcotest.(check (float 1e-9)) "error 0.5" 0.5 ind.Ind.error
        | None -> Alcotest.fail "missing approximate IND");
    Alcotest.test_case "disjoint columns produce no IND" `Quick (fun () ->
        let inds = Ind.discover (mini_db ()) ~extra:[] in
        Alcotest.(check bool) "no phase⊆stud" true
          (find_ind inds (Schema.attr "inPhase" "phase") (Schema.attr "student" "stud")
          = None));
    Alcotest.test_case "tighter max_error filters approximate INDs" `Quick
      (fun () ->
        let config = { Ind.default_config with max_error = 0.1 } in
        let inds = Ind.discover ~config (mini_db ()) ~extra:[] in
        Alcotest.(check bool) "no 0.5-error IND" true
          (find_ind inds
             (Schema.attr "publication" "person")
             (Schema.attr "student" "stud")
          = None));
    Alcotest.test_case "extra relations participate (target typing)" `Quick
      (fun () ->
        let advised =
          Relation.of_tuples (Schema.relation "advisedBy" [| "stud"; "prof" |])
            [ [| v "s1"; v "p1" |]; [| v "s2"; v "p2" |] ]
        in
        let inds = Ind.discover (mini_db ()) ~extra:[ advised ] in
        match
          find_ind inds (Schema.attr "advisedBy" "stud") (Schema.attr "student" "stud")
        with
        | Some ind -> Alcotest.(check bool) "exact" true (Ind.is_exact ind)
        | None -> Alcotest.fail "target column not typed");
    Alcotest.test_case "symmetric approximate pairs keep the lower error" `Quick
      (fun () ->
        let a = Schema.attr "r" "a" and b = Schema.attr "s" "b" in
        let inds =
          [
            { Ind.sub = a; sup = b; error = 0.2 };
            { Ind.sub = b; sup = a; error = 0.4 };
          ]
        in
        match Ind.keep_lower_of_symmetric inds with
        | [ kept ] ->
            Alcotest.(check (float 1e-9)) "kept 0.2" 0.2 kept.Ind.error
        | l -> Alcotest.failf "expected 1 IND, got %d" (List.length l));
    Alcotest.test_case "exact INDs never dropped by symmetry rule" `Quick
      (fun () ->
        let a = Schema.attr "r" "a" and b = Schema.attr "s" "b" in
        let inds =
          [
            { Ind.sub = a; sup = b; error = 0. };
            { Ind.sub = b; sup = a; error = 0. };
          ]
        in
        Alcotest.(check int) "both kept" 2
          (List.length (Ind.keep_lower_of_symmetric inds)));
  ]

(* Property: discovery agrees with the direct Ops.ind_error definition. *)
let ind_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"discovered errors match Ops.ind_error" ~count:50
       QCheck.(pair (list_of_size Gen.(int_range 1 30) (int_bound 8))
                 (list_of_size Gen.(int_range 1 30) (int_bound 8)))
       (fun (xs, ys) ->
         let mk name vals =
           Relation.of_tuples (Schema.relation name [| "a" |])
             (List.map (fun x -> [| Value.int x |]) vals)
         in
         let r = mk "r" xs and s = mk "s" ys in
         let db = Database.of_relations [ r; s ] in
         let inds = Ind.discover ~config:{ Ind.default_config with max_error = 1.0; min_overlap = 1 } db ~extra:[] in
         let direct = Relational.Ops.ind_error r 0 s 0 in
         match find_ind inds (Schema.attr "r" "a") (Schema.attr "s" "a") with
         | Some ind -> abs_float (ind.Ind.error -. direct) < 1e-9
         | None -> direct > 1.0 (* never: max_error 1.0 accepts everything *)))

let type_graph_tests =
  [
    Alcotest.test_case "sink nodes get fresh types" `Quick (fun () ->
        let a = Schema.attr "r" "a" and b = Schema.attr "s" "b" in
        let g =
          Type_graph.build ~attributes:[ a; b ]
            [ { Ind.sub = a; sup = b; error = 0. } ]
        in
        let tb = Type_graph.types_of g b in
        Alcotest.(check int) "b typed" 1 (String_set.cardinal tb));
    Alcotest.test_case "types propagate against edge direction" `Quick (fun () ->
        let a = Schema.attr "r" "a" and b = Schema.attr "s" "b" in
        let g =
          Type_graph.build ~attributes:[ a; b ]
            [ { Ind.sub = a; sup = b; error = 0. } ]
        in
        Alcotest.(check bool) "a inherits b's type" true
          (String_set.equal (Type_graph.types_of g a) (Type_graph.types_of g b)));
    Alcotest.test_case "chains propagate transitively over exact edges" `Quick
      (fun () ->
        let a = Schema.attr "r" "a"
        and b = Schema.attr "s" "b"
        and c = Schema.attr "t" "c" in
        let g =
          Type_graph.build ~attributes:[ a; b; c ]
            [
              { Ind.sub = a; sup = b; error = 0. };
              { Ind.sub = b; sup = c; error = 0. };
            ]
        in
        Alcotest.(check bool) "a gets c's type" true
          (String_set.subset (Type_graph.types_of g c) (Type_graph.types_of g a)));
    Alcotest.test_case "cycles share one type" `Quick (fun () ->
        let a = Schema.attr "r" "a" and b = Schema.attr "s" "b" in
        let g =
          Type_graph.build ~attributes:[ a; b ]
            [
              { Ind.sub = a; sup = b; error = 0. };
              { Ind.sub = b; sup = a; error = 0. };
            ]
        in
        Alcotest.(check bool) "same types" true
          (String_set.equal (Type_graph.types_of g a) (Type_graph.types_of g b));
        Alcotest.(check bool) "nonempty" false
          (String_set.is_empty (Type_graph.types_of g a)));
    Alcotest.test_case "types cross at most one approximate edge" `Quick
      (fun () ->
        (* a ┄⊆┄ b ┄⊆┄ c: c's type reaches b (one approximate hop) but must
           not continue to a. *)
        let a = Schema.attr "r" "a"
        and b = Schema.attr "s" "b"
        and c = Schema.attr "t" "c" in
        let g =
          Type_graph.build ~attributes:[ a; b; c ]
            [
              { Ind.sub = a; sup = b; error = 0.3 };
              { Ind.sub = b; sup = c; error = 0.3 };
            ]
        in
        let ta = Type_graph.types_of g a
        and tc = Type_graph.types_of g c in
        Alcotest.(check bool) "b has c's type" true
          (String_set.subset tc (Type_graph.types_of g b));
        Alcotest.(check bool) "a does not" false (String_set.subset tc ta));
    Alcotest.test_case "approximate-then-exact still propagates" `Quick
      (fun () ->
        (* a ⊆ b (exact), b ┄⊆┄ c: c's type crosses the approximate edge to
           b, then the exact edge to a. *)
        let a = Schema.attr "r" "a"
        and b = Schema.attr "s" "b"
        and c = Schema.attr "t" "c" in
        let g =
          Type_graph.build ~attributes:[ a; b; c ]
            [
              { Ind.sub = a; sup = b; error = 0. };
              { Ind.sub = b; sup = c; error = 0.3 };
            ]
        in
        Alcotest.(check bool) "a gets c's type" true
          (String_set.subset (Type_graph.types_of g c) (Type_graph.types_of g a)));
    Alcotest.test_case "the paper's publication[person] case" `Quick (fun () ->
        (* Figure 1: person approximately included in both student[stud] and
           professor[prof]; it must inherit both types. *)
        let person = Schema.attr "publication" "person"
        and stud = Schema.attr "student" "stud"
        and prof = Schema.attr "professor" "prof" in
        let g =
          Type_graph.build ~attributes:[ person; stud; prof ]
            [
              { Ind.sub = person; sup = stud; error = 0.4 };
              { Ind.sub = person; sup = prof; error = 0.5 };
            ]
        in
        let expected =
          String_set.union (Type_graph.types_of g stud) (Type_graph.types_of g prof)
        in
        Alcotest.(check bool) "person has both" true
          (String_set.subset expected (Type_graph.types_of g person));
        Alcotest.(check int) "stud and prof differ" 2
          (String_set.cardinal expected));
    Alcotest.test_case "DOT rendering mentions every node and edge style" `Quick
      (fun () ->
        let a = Schema.attr "r" "a" and b = Schema.attr "s" "b" in
        let g =
          Type_graph.build ~attributes:[ a; b ]
            [ { Ind.sub = a; sup = b; error = 0.25 } ]
        in
        let dot = Type_graph.to_dot g in
        let contains needle haystack =
          let nl = String.length needle and hl = String.length haystack in
          let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "node" true (contains "r[a]" dot);
        Alcotest.(check bool) "dashed" true (contains "style=dashed" dot));
  ]

let generate_tests =
  [
    Alcotest.test_case "constant_positions honours absolute threshold" `Quick
      (fun () ->
        let rel =
          Relation.of_tuples (Schema.relation "r" [| "id"; "tag" |])
            (List.init 20 (fun i ->
                 [| v (Printf.sprintf "id%d" i); v (if i mod 2 = 0 then "a" else "b") |]))
        in
        Alcotest.(check (list int)) "tag only" [ 1 ]
          (Generate.constant_positions ~threshold:(Generate.Absolute 5) rel));
    Alcotest.test_case "constant_positions honours relative threshold" `Quick
      (fun () ->
        let rel =
          Relation.of_tuples (Schema.relation "r" [| "id"; "tag" |])
            (List.init 20 (fun i ->
                 [| v (Printf.sprintf "id%d" i); v (if i mod 2 = 0 then "a" else "b") |]))
        in
        (* tag: 2 distinct / 20 = 0.1 < 0.18; id: 20/20 = 1.0 *)
        Alcotest.(check (list int)) "tag only" [ 1 ]
          (Generate.constant_positions ~threshold:(Generate.Relative 0.18) rel));
    Alcotest.test_case "predicate defs are the Cartesian product of types"
      `Quick (fun () ->
        (* publication(title:{T5}, person:{T1,T3}) must yield exactly the
           paper's two definitions. *)
        let person = Schema.attr "publication" "person"
        and title = Schema.attr "publication" "title"
        and stud = Schema.attr "student" "stud"
        and prof = Schema.attr "professor" "prof" in
        let g =
          Type_graph.build ~attributes:[ person; title; stud; prof ]
            [
              { Ind.sub = person; sup = stud; error = 0.4 };
              { Ind.sub = person; sup = prof; error = 0.5 };
            ]
        in
        let defs =
          Generate.predicate_defs ~graph:g
            [ Schema.relation "publication" [| "title"; "person" |] ]
        in
        Alcotest.(check int) "two defs" 2 (List.length defs));
    Alcotest.test_case "full induction on the mini UW database" `Quick
      (fun () ->
        let db = mini_db () in
        let target = Schema.relation "advisedBy" [| "stud"; "prof" |] in
        let result =
          (* the mini database is tiny, so use an absolute constant
             threshold: phase has 3 distinct values *)
          Generate.induce ~threshold:(Generate.Absolute 4) db ~target
            ~positive_examples:[ [| v "s1"; v "p1" |]; [| v "s2"; v "p2" |] ]
        in
        let bias = result.Generate.bias in
        Alcotest.(check (list string)) "bias validates" []
          (Bias.Language.validate bias);
        (* The motivating join must be enabled: student[stud] and
           publication[person] share a type. *)
        Alcotest.(check bool) "stud ~ person" true
          (Bias.Language.share_type bias "student" 0 "publication" 1);
        (* phase is low-cardinality: some mode allows it as a constant. *)
        Alcotest.(check bool) "phase constant" true
          (Bias.Language.constant_allowed bias "inPhase" 1));
    Alcotest.test_case "ablation: no approximate INDs loses the mixed join"
      `Quick (fun () ->
        let db = mini_db () in
        let target = Schema.relation "advisedBy" [| "stud"; "prof" |] in
        let result =
          Generate.induce
            ~ind_config:{ Ind.default_config with max_error = 0. } db ~target
            ~positive_examples:[ [| v "s1"; v "p1" |] ]
        in
        Alcotest.(check bool) "stud !~ person" false
          (Bias.Language.share_type result.Generate.bias "student" 0 "publication" 1));
  ]

let suite = ind_tests @ [ ind_property ] @ type_graph_tests @ generate_tests

let overlap_tests =
  [
    Alcotest.test_case "overlap typing fuses unrelated domains (the [34] flaw)"
      `Quick (fun () ->
        (* A junk column holding one student id and one phase name: under
           single-element-overlap typing it fuses the student and phase
           domains into one type, letting inPhase[phase] join student[stud].
           AutoBias's approximate INDs reject the weak inclusions in the
           phase direction, so the domains stay apart. *)
        let note =
          Relation.of_tuples (Schema.relation "note" [| "code" |])
            [ [| v "s1" |]; [| v "pre" |] ]
        in
        let db = mini_db () in
        Database.add_relation db note;
        let target = Schema.relation "advisedBy" [| "stud"; "prof" |] in
        let pos = [ [| v "s1"; v "p1" |] ] in
        let overlap =
          Discovery.Overlap_bias.induce ~threshold:(Generate.Absolute 4) db
            ~target ~positive_examples:pos
        in
        Alcotest.(check bool) "stud ~ phase under overlap" true
          (Bias.Language.share_type overlap "student" 0 "inPhase" 1);
        let auto =
          (Generate.induce ~threshold:(Generate.Absolute 4) db ~target
             ~positive_examples:pos).Generate.bias
        in
        Alcotest.(check bool) "stud !~ phase under AutoBias" false
          (Bias.Language.share_type auto "student" 0 "inPhase" 1);
        (* and the overlap hypothesis space is at least as large overall *)
        Alcotest.(check bool) "no fewer joinable pairs" true
          (Discovery.Overlap_bias.joinable_pairs overlap
          >= Discovery.Overlap_bias.joinable_pairs auto));
    Alcotest.test_case "overlap typing is deterministic and complete" `Quick
      (fun () ->
        let db = mini_db () in
        let t1 = Discovery.Overlap_bias.type_components db ~extra:[] in
        let t2 = Discovery.Overlap_bias.type_components db ~extra:[] in
        Alcotest.(check bool) "same" true (t1 = t2);
        Alcotest.(check int) "all 6 attributes typed" 6 (List.length t1));
  ]

let suite = suite @ overlap_tests

(* Property tests over random IND sets. *)
let graph_properties =
  let attr_gen =
    QCheck.Gen.(
      let* r = int_bound 3 in
      let* a = int_bound 1 in
      return (Schema.attr (Printf.sprintf "r%d" r) (Printf.sprintf "a%d" a)))
  in
  let ind_gen =
    QCheck.Gen.(
      let* sub = attr_gen in
      let* sup = attr_gen in
      let* exact = bool in
      return { Ind.sub; sup; error = (if exact then 0. else 0.3) })
  in
  let inds_gen = QCheck.Gen.(list_size (int_range 0 10) ind_gen) in
  let attrs =
    List.concat_map
      (fun r ->
        List.map
          (fun a -> Schema.attr (Printf.sprintf "r%d" r) (Printf.sprintf "a%d" a))
          [ 0; 1 ])
      [ 0; 1; 2; 3 ]
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"sink attributes are always typed; exact-only graphs type all"
         ~count:200 (QCheck.make inds_gen)
         (fun inds ->
           (* A node can legitimately end up untyped when its only route to a
              seed crosses two approximate edges (the single-hop rule); with
              exact edges only, every node reaches a sink or cycle and is
              typed. Sinks are typed unconditionally. *)
           let inds =
             List.filter (fun i -> not (Schema.equal_attribute i.Ind.sub i.Ind.sup)) inds
           in
           let g = Type_graph.build ~attributes:attrs inds in
           let has_outgoing a =
             List.exists (fun e -> Schema.equal_attribute e.Type_graph.src a)
               (Type_graph.edges g)
           in
           let sinks_typed =
             List.for_all
               (fun a ->
                 has_outgoing a
                 || not (String_set.is_empty (Type_graph.types_of g a)))
               attrs
           in
           let exact_only =
             List.map (fun i -> { i with Ind.error = 0. }) inds
           in
           let g2 = Type_graph.build ~attributes:attrs exact_only in
           let all_typed_exact =
             List.for_all
               (fun a -> not (String_set.is_empty (Type_graph.types_of g2 a)))
               attrs
           in
           sinks_typed && all_typed_exact));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"type-graph construction is deterministic"
         ~count:100 (QCheck.make inds_gen)
         (fun inds ->
           let inds =
             List.filter (fun i -> not (Schema.equal_attribute i.Ind.sub i.Ind.sup)) inds
           in
           let g1 = Type_graph.build ~attributes:attrs inds in
           let g2 = Type_graph.build ~attributes:attrs inds in
           List.for_all
             (fun a ->
               String_set.equal (Type_graph.types_of g1 a) (Type_graph.types_of g2 a))
             attrs));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"exact-IND subsets propagate the supertype (local soundness)"
         ~count:200 (QCheck.make ind_gen)
         (fun ind ->
           QCheck.assume (not (Schema.equal_attribute ind.Ind.sub ind.Ind.sup));
           let ind = { ind with Ind.error = 0. } in
           let g = Type_graph.build ~attributes:attrs [ ind ] in
           String_set.subset
             (Type_graph.types_of g ind.Ind.sup)
             (Type_graph.types_of g ind.Ind.sub)));
  ]

let suite = suite @ graph_properties
