(* Tests for the synthetic dataset generators: schema shapes, label
   semantics of the planted rules, scaling, determinism, and the shipped
   manual biases. *)

module Value = Relational.Value
module Relation = Relational.Relation
module Database = Relational.Database
module Dataset = Datasets.Dataset

let generators =
  [
    ("uw", fun ~seed ~scale () -> Datasets.Uw.generate ~seed ~scale ());
    ("imdb", fun ~seed ~scale () -> Datasets.Imdb.generate ~seed ~scale ());
    ("hiv", fun ~seed ~scale () -> Datasets.Hiv.generate ~seed ~scale ());
    ("flt", fun ~seed ~scale () -> Datasets.Flt.generate ~seed ~scale ());
    ("sys", fun ~seed ~scale () -> Datasets.Sys_data.generate ~seed ~scale ());
  ]

let generic_tests =
  List.concat_map
    (fun (name, gen) ->
      [
        Alcotest.test_case (name ^ ": examples are disjoint and non-empty")
          `Quick (fun () ->
            let d = gen ~seed:3 ~scale:0.2 () in
            Alcotest.(check bool) "has positives" true (d.Dataset.positives <> []);
            Alcotest.(check bool) "has negatives" true (d.Dataset.negatives <> []);
            let pos = List.sort_uniq compare d.Dataset.positives in
            let neg = List.sort_uniq compare d.Dataset.negatives in
            Alcotest.(check int) "positives unique"
              (List.length d.Dataset.positives) (List.length pos);
            List.iter
              (fun p ->
                Alcotest.(check bool) "not also negative" false (List.mem p neg))
              pos);
        Alcotest.test_case (name ^ ": manual bias validates against the schema")
          `Quick (fun () ->
            let d = gen ~seed:3 ~scale:0.2 () in
            Alcotest.(check (list string)) "no problems" []
              (Bias.Language.validate d.Dataset.manual_bias));
        Alcotest.test_case (name ^ ": examples match the target arity") `Quick
          (fun () ->
            let d = gen ~seed:3 ~scale:0.2 () in
            let arity = Relational.Schema.arity d.Dataset.target in
            List.iter
              (fun e -> Alcotest.(check int) "arity" arity (Array.length e))
              (d.Dataset.positives @ d.Dataset.negatives));
        Alcotest.test_case (name ^ ": generation is deterministic per seed")
          `Quick (fun () ->
            let d1 = gen ~seed:11 ~scale:0.2 () in
            let d2 = gen ~seed:11 ~scale:0.2 () in
            Alcotest.(check int) "same tuples"
              (Database.total_tuples d1.Dataset.db)
              (Database.total_tuples d2.Dataset.db);
            Alcotest.(check bool) "same positives" true
              (d1.Dataset.positives = d2.Dataset.positives));
        Alcotest.test_case (name ^ ": scale grows the database") `Quick
          (fun () ->
            let small = gen ~seed:3 ~scale:0.2 () in
            let large = gen ~seed:3 ~scale:0.6 () in
            Alcotest.(check bool) "bigger" true
              (Database.total_tuples large.Dataset.db
              > Database.total_tuples small.Dataset.db));
      ])
    generators

(* Label-semantics checks: the planted rule must hold for (most) positives
   and fail for (most) negatives, with the documented noise rates. *)

let uw_semantics =
  Alcotest.test_case "uw: most positives have a trace, few negatives do"
    `Quick (fun () ->
      let d = Datasets.Uw.generate ~seed:3 ~scale:1.0 () in
      let db = d.Dataset.db in
      let publication = Database.find db "publication" in
      let ta = Database.find db "ta" in
      let taught_by = Database.find db "taughtBy" in
      (* co-authorship: a (title, s) tuple whose title also appears with p *)
      let co_pub s p =
        List.exists
          (fun t ->
            List.exists
              (fun t' -> Value.equal t'.(1) p)
              (Relation.lookup publication 0 t.(0)))
          (Relation.lookup publication 1 s)
      in
      let taship s p =
        List.exists
          (fun t ->
            List.exists
              (fun t' -> Value.equal t'.(1) p)
              (Relation.lookup taught_by 0 t.(0)))
          (Relation.lookup ta 1 s)
      in
      let frac examples =
        let n = List.length examples in
        let hits =
          List.length
            (List.filter (fun e -> co_pub e.(0) e.(1) || taship e.(0) e.(1)) examples)
        in
        float_of_int hits /. float_of_int (max 1 n)
      in
      let pos_frac = frac d.Dataset.positives in
      let neg_frac = frac d.Dataset.negatives in
      Alcotest.(check bool)
        (Printf.sprintf "pos %.2f > 0.45" pos_frac) true (pos_frac > 0.45);
      Alcotest.(check bool)
        (Printf.sprintf "neg %.2f < 0.25" neg_frac) true (neg_frac < 0.25))

let imdb_semantics =
  Alcotest.test_case "imdb: positives directed a drama, negatives did not"
    `Quick (fun () ->
      let d = Datasets.Imdb.generate ~seed:3 ~scale:0.5 () in
      let db = d.Dataset.db in
      let directed_by = Database.find db "directedBy" in
      let genre = Database.find db "genre" in
      let directs_drama dir =
        List.exists
          (fun t ->
            List.exists
              (fun g -> Value.equal g.(1) (Value.str "drama"))
              (Relation.lookup genre 0 t.(0)))
          (Relation.lookup directed_by 1 dir)
      in
      List.iter
        (fun e ->
          Alcotest.(check bool) "positive has drama" true (directs_drama e.(0)))
        d.Dataset.positives;
      List.iter
        (fun e ->
          Alcotest.(check bool) "negative has none" false (directs_drama e.(0)))
        d.Dataset.negatives)

let hiv_semantics =
  Alcotest.test_case "hiv: pharmacophore separates the classes noisily" `Quick
    (fun () ->
      let d = Datasets.Hiv.generate ~seed:3 ~scale:0.5 () in
      let db = d.Dataset.db in
      let atm = Database.find db "atm" in
      let bond = Database.find db "bond" in
      let has_group comp =
        let atoms_of e =
          List.filter
            (fun t -> Value.equal t.(2) (Value.str e))
            (Relation.lookup atm 0 comp)
        in
        let ns = atoms_of "n" and os = atoms_of "o" in
        List.exists
          (fun b ->
            Value.equal b.(3) (Value.str "double")
            && List.exists (fun t -> Value.equal t.(1) b.(1)) ns
            && List.exists (fun t -> Value.equal t.(1) b.(2)) os)
          (Relation.lookup bond 0 comp)
      in
      let frac examples =
        float_of_int
          (List.length (List.filter (fun e -> has_group e.(0)) examples))
        /. float_of_int (max 1 (List.length examples))
      in
      let pos = frac d.Dataset.positives and neg = frac d.Dataset.negatives in
      Alcotest.(check bool) (Printf.sprintf "pos %.2f > 0.8" pos) true (pos > 0.8);
      Alcotest.(check bool) (Printf.sprintf "neg %.2f < 0.15" neg) true (neg < 0.15))

let flt_semantics =
  Alcotest.test_case "flt: positives share src and dst, negatives do not"
    `Quick (fun () ->
      let d = Datasets.Flt.generate ~seed:3 ~scale:0.5 () in
      let flight = Database.find d.Dataset.db "flight" in
      let route f =
        match Relation.lookup flight 0 f with
        | [ t ] -> (t.(1), t.(2))
        | _ -> Alcotest.fail "flight ids unique"
      in
      List.iter
        (fun e -> Alcotest.(check bool) "same route" true (route e.(0) = route e.(1)))
        d.Dataset.positives;
      List.iter
        (fun e ->
          Alcotest.(check bool) "different route" false (route e.(0) = route e.(1)))
        d.Dataset.negatives)

let sys_semantics =
  Alcotest.test_case "sys: two-event pattern has high precision, partial recall"
    `Quick (fun () ->
      let d = Datasets.Sys_data.generate ~seed:3 ~scale:1.0 () in
      let event = Database.find d.Dataset.db "event" in
      let has p op cls =
        List.exists
          (fun t ->
            Value.equal t.(1) (Value.str op) && Value.equal t.(2) (Value.str cls))
          (Relation.lookup event 0 p)
      in
      let pattern p = has p "write" "system" && has p "exec" "shell" in
      let tp = List.length (List.filter (fun e -> pattern e.(0)) d.Dataset.positives) in
      let fp = List.length (List.filter (fun e -> pattern e.(0)) d.Dataset.negatives) in
      let recall = float_of_int tp /. float_of_int (List.length d.Dataset.positives) in
      let precision = float_of_int tp /. float_of_int (max 1 (tp + fp)) in
      Alcotest.(check bool) (Printf.sprintf "recall %.2f in [0.4,0.7]" recall)
        true (recall >= 0.4 && recall <= 0.7);
      Alcotest.(check bool) (Printf.sprintf "precision %.2f > 0.75" precision)
        true (precision > 0.75))

let table4_tests =
  [
    Alcotest.test_case "table4 fragment matches the paper" `Quick (fun () ->
        let db = Datasets.Uw.table4_fragment () in
        Alcotest.(check int) "9 relations" 9
          (List.length (Database.relations db));
        Alcotest.(check int) "12 tuples" 12 (Database.total_tuples db);
        let pub = Database.find db "publication" in
        Alcotest.(check int) "p1 authors" 2
          (List.length (Relation.lookup pub 0 (Value.str "p1"))));
  ]

let suite =
  generic_tests
  @ [ uw_semantics; imdb_semantics; hiv_semantics; flt_semantics; sys_semantics ]
  @ table4_tests

let noise_tests =
  [
    Alcotest.test_case "flip_labels preserves totals and moves the fraction"
      `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.5 () in
        let rng = Random.State.make [| 7 |] in
        let noisy = Datasets.Dataset.flip_labels ~rng ~fraction:0.2 d in
        Alcotest.(check int) "total preserved"
          (List.length d.Dataset.positives + List.length d.Dataset.negatives)
          (List.length noisy.Dataset.positives + List.length noisy.Dataset.negatives);
        let moved =
          List.length
            (List.filter
               (fun e -> List.mem e d.Dataset.negatives)
               noisy.Dataset.positives)
        in
        Alcotest.(check int) "20% of negatives now positive"
          (int_of_float (0.2 *. float_of_int (List.length d.Dataset.negatives)))
          moved);
    Alcotest.test_case "zero noise is a permutation" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.5 () in
        let rng = Random.State.make [| 7 |] in
        let same = Datasets.Dataset.flip_labels ~rng ~fraction:0.0 d in
        Alcotest.(check bool) "same positive set" true
          (List.sort compare same.Dataset.positives
          = List.sort compare d.Dataset.positives));
  ]

let suite = suite @ noise_tests
