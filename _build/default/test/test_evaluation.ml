(* Tests for metrics, cross-validation, and the FOIL baseline. *)

module Value = Relational.Value
module Metrics = Evaluation.Metrics
module Cross_validation = Evaluation.Cross_validation

let v = Value.str

let metrics_tests =
  [
    Alcotest.test_case "precision/recall/F from counts" `Quick (fun () ->
        let m = Metrics.of_counts ~true_positives:8 ~covered:10 ~positives:16 in
        Alcotest.(check (float 1e-9)) "P" 0.8 m.Metrics.precision;
        Alcotest.(check (float 1e-9)) "R" 0.5 m.Metrics.recall;
        Alcotest.(check (float 1e-6)) "F" (2. *. 0.8 *. 0.5 /. 1.3)
          m.Metrics.f_measure);
    Alcotest.test_case "degenerate cases give zero, not NaN" `Quick (fun () ->
        let m = Metrics.of_counts ~true_positives:0 ~covered:0 ~positives:0 in
        Alcotest.(check (float 0.)) "P" 0. m.Metrics.precision;
        Alcotest.(check (float 0.)) "R" 0. m.Metrics.recall;
        Alcotest.(check (float 0.)) "F" 0. m.Metrics.f_measure);
    Alcotest.test_case "mean averages componentwise" `Quick (fun () ->
        let a = Metrics.of_counts ~true_positives:1 ~covered:1 ~positives:1 in
        let b = Metrics.of_counts ~true_positives:0 ~covered:1 ~positives:1 in
        let m = Metrics.mean [ a; b ] in
        Alcotest.(check (float 1e-9)) "P" 0.5 m.Metrics.precision);
    Alcotest.test_case "mean of nothing is zero" `Quick (fun () ->
        Alcotest.(check bool) "zero" true (Metrics.equal (Metrics.mean []) Metrics.zero));
  ]

let format_tests =
  [
    Alcotest.test_case "format_time uses the paper's units" `Quick (fun () ->
        Alcotest.(check string) "s" "6.6s" (Cross_validation.format_time 6.6);
        Alcotest.(check string) "m" "2.70m" (Cross_validation.format_time 162.);
        Alcotest.(check string) "h" "10.0h" (Cross_validation.format_time 36000.));
  ]

(* Cross-validation mechanics checked with a mock learner that memorizes its
   training positives: each fold's test examples must never be covered, and
   every example must appear in exactly one test fold. *)
let cv_tests =
  [
    Alcotest.test_case "folds partition the examples" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.4 () in
        let positives = d.Datasets.Dataset.positives in
        let negatives = d.Datasets.Dataset.negatives in
        let seen_train : (Relational.Relation.tuple, int) Hashtbl.t =
          Hashtbl.create 64
        in
        let learner =
          {
            Cross_validation.name = "memorizer";
            run =
              (fun ~rng:_ ~train_pos ~train_neg ->
                ignore train_neg;
                List.iter
                  (fun e ->
                    let c = try Hashtbl.find seen_train e with Not_found -> 0 in
                    Hashtbl.replace seen_train e (c + 1))
                  train_pos;
                ([], false));
          }
        in
        let rng = Random.State.make [| 4 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let result =
          Cross_validation.run ~k:5 learner cov ~rng ~positives ~negatives
        in
        Alcotest.(check int) "five folds" 5
          (List.length result.Cross_validation.folds);
        (* Every positive appears in training exactly k-1 = 4 times. *)
        List.iter
          (fun e ->
            Alcotest.(check int) "4 of 5 folds" 4 (Hashtbl.find seen_train e))
          positives;
        (* The empty definition scores zero. *)
        Alcotest.(check (float 0.)) "zero F" 0.
          result.Cross_validation.mean_metrics.Metrics.f_measure);
    Alcotest.test_case "k is clamped to the number of positives" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.4 () in
        let learner =
          { Cross_validation.name = "noop"; run = (fun ~rng:_ ~train_pos:_ ~train_neg:_ -> ([], false)) }
        in
        let rng = Random.State.make [| 4 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let result =
          Cross_validation.run ~k:50 learner cov ~rng
            ~positives:[ [| v "a"; v "b" |]; [| v "c"; v "d" |]; [| v "e"; v "f" |] ]
            ~negatives:[]
        in
        Alcotest.(check int) "clamped to 3" 3
          (List.length result.Cross_validation.folds));
    Alcotest.test_case "timeouts are surfaced" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.4 () in
        let learner =
          { Cross_validation.name = "slow"; run = (fun ~rng:_ ~train_pos:_ ~train_neg:_ -> ([], true)) }
        in
        let rng = Random.State.make [| 4 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let result =
          Cross_validation.run ~k:3 learner cov ~rng
            ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        Alcotest.(check bool) "flag" true result.Cross_validation.any_timed_out);
  ]

let foil_tests =
  [
    Alcotest.test_case "FOIL learns the drama rule (needs a constant)" `Slow
      (fun () ->
        let d = Datasets.Imdb.generate ~scale:0.3 () in
        let rng = Random.State.make [| 6 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Baselines.Foil.learn
            ~config:{ Baselines.Foil.default_config with timeout = Some 60. }
            cov ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        let rendered = Logic.Clause.definition_to_string r.Baselines.Foil.definition in
        let contains needle =
          let nl = String.length needle and hl = String.length rendered in
          let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "mentions drama" true (contains "drama"));
    Alcotest.test_case "FOIL cannot couple variables on FLT" `Slow (fun () ->
        (* The same-source-same-via rule needs two flight literals that only
           pay off together; greedy gain never takes the first step, so FOIL
           may fit noise (carrier constants) but never finds the coupled
           join — the mechanism behind Aleph's 0/0 row in Table 5. *)
        let d = Datasets.Flt.generate ~scale:0.2 () in
        let rng = Random.State.make [| 6 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Baselines.Foil.learn
            ~config:{ Baselines.Foil.default_config with timeout = Some 60. }
            cov ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        let coupled clause =
          let flights =
            List.filter
              (fun l -> Logic.Literal.pred l = "flight")
              (Logic.Clause.body clause)
          in
          List.exists
            (fun a ->
              List.exists
                (fun b ->
                  (not (a == b))
                  && Logic.Term.equal (Logic.Literal.args a).(1) (Logic.Literal.args b).(1)
                  && Logic.Term.equal (Logic.Literal.args a).(2) (Logic.Literal.args b).(2))
                flights)
            flights
        in
        Alcotest.(check bool) "no coupled flight pair" false
          (List.exists coupled r.Baselines.Foil.definition));
    Alcotest.test_case "FOIL gain is positive only for informative literals"
      `Quick (fun () ->
        let g = Baselines.Foil.foil_gain ~p0:10 ~n0:10 ~p1:10 ~n1:0 in
        Alcotest.(check bool) "informative" true (g > 0.);
        let g2 = Baselines.Foil.foil_gain ~p0:10 ~n0:10 ~p1:5 ~n1:5 in
        Alcotest.(check bool) "uninformative" true (g2 <= 0.);
        let g3 = Baselines.Foil.foil_gain ~p0:10 ~n0:10 ~p1:0 ~n1:0 in
        Alcotest.(check bool) "dead" true (g3 = neg_infinity));
  ]

let autobias_tests =
  [
    Alcotest.test_case "method name round-trip" `Quick (fun () ->
        List.iter
          (fun m ->
            Alcotest.(check bool) "eq" true
              (Autobias.equal_method_ m
                 (Autobias.method_of_string (Autobias.method_to_string m))))
          Autobias.all_methods);
    Alcotest.test_case "end-to-end AutoBias learn_once on UW" `Slow (fun () ->
        let d = Datasets.Uw.generate ~scale:0.5 () in
        let rng = Random.State.make [| 42 |] in
        let config = { Autobias.default_config with timeout = Some 90. } in
        let r =
          Autobias.learn_once ~config Autobias.Auto_bias d ~rng
            ~train_pos:d.Datasets.Dataset.positives
            ~train_neg:d.Datasets.Dataset.negatives
        in
        Alcotest.(check bool) "bias induced" true
          (Option.is_some r.Autobias.bias_info.Autobias.induction);
        Alcotest.(check bool) "learned" true (r.Autobias.definition <> []);
        let cov =
          Autobias.coverage_context config d r.Autobias.bias_info.Autobias.bias ~rng
        in
        let m =
          Metrics.evaluate cov r.Autobias.definition
            ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        Alcotest.(check bool) "training F > 0.4" true (m.Metrics.f_measure > 0.4));
    Alcotest.test_case "bias_for matches each method's shape" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let config = Autobias.default_config in
        let castor = Autobias.bias_for Autobias.Castor config d ~train_pos:d.Datasets.Dataset.positives in
        let noconst = Autobias.bias_for Autobias.No_const config d ~train_pos:d.Datasets.Dataset.positives in
        let manual = Autobias.bias_for Autobias.Manual config d ~train_pos:d.Datasets.Dataset.positives in
        Alcotest.(check bool) "castor allows constants" true
          (Bias.Language.constant_allowed castor.Autobias.bias "inPhase" 1);
        Alcotest.(check bool) "noconst does not" false
          (Bias.Language.constant_allowed noconst.Autobias.bias "inPhase" 1);
        Alcotest.(check bool) "manual is the dataset's bias" true
          (manual.Autobias.bias == d.Datasets.Dataset.manual_bias));
  ]

let suite = metrics_tests @ format_tests @ cv_tests @ foil_tests @ autobias_tests

let closed_world_tests =
  [
    Alcotest.test_case "closed-world negatives are typed and disjoint" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.4 () in
        let rng = Random.State.make [| 3 |] in
        let negs =
          Evaluation.Closed_world.negatives d.Datasets.Dataset.manual_bias
            d.Datasets.Dataset.db ~rng
            ~positives:d.Datasets.Dataset.positives ~count:30
        in
        Alcotest.(check int) "count" 30 (List.length negs);
        (* The stud argument draws from T1-typed columns: student[stud],
           inPhase/ta/yearsInProgram[stud] and publication[person] (which
           the bias types with both T1 and T3). *)
        let stud_domain =
          List.fold_left
            (fun acc (rel, col) ->
              Relational.Value.Set.union acc
                (Relational.Relation.project
                   (Relational.Database.find d.Datasets.Dataset.db rel)
                   col))
            Relational.Value.Set.empty
            [ ("student", 0); ("publication", 1) ]
        in
        List.iter
          (fun t ->
            Alcotest.(check bool) "not a positive" false
              (List.mem t d.Datasets.Dataset.positives);
            Alcotest.(check bool) "stud argument is T1-typed" true
              (Relational.Value.Set.mem t.(0) stud_domain))
          negs);
    Alcotest.test_case "closed-world generation is deterministic" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.4 () in
        let gen () =
          Evaluation.Closed_world.negatives d.Datasets.Dataset.manual_bias
            d.Datasets.Dataset.db
            ~rng:(Random.State.make [| 3 |])
            ~positives:d.Datasets.Dataset.positives ~count:15
        in
        Alcotest.(check bool) "same" true (gen () = gen ()));
    Alcotest.test_case "exhausted domains return fewer negatives" `Quick
      (fun () ->
        (* a tiny world where positives nearly cover the typed product *)
        let db = Datasets.Uw.table4_fragment () in
        let bias =
          Bias.Language.parse ~schema:Datasets.Uw.schemas
            ~target:Datasets.Uw.target_schema
            "advisedBy(T1,T3)\nstudent(T1)\nprofessor(T3)\nstudent(+)\nprofessor(+)"
        in
        let positives =
          [
            [| Relational.Value.str "juan"; Relational.Value.str "sarita" |];
            [| Relational.Value.str "john"; Relational.Value.str "mary" |];
            [| Relational.Value.str "juan"; Relational.Value.str "mary" |];
          ]
        in
        let negs =
          Evaluation.Closed_world.negatives bias db
            ~rng:(Random.State.make [| 1 |])
            ~positives ~count:10
        in
        (* only (john, sarita) remains in the 2×2 typed product *)
        Alcotest.(check int) "one left" 1 (List.length negs));
  ]

let bias_io_tests =
  [
    Alcotest.test_case "bias save/load round-trips" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let path = Filename.temp_file "bias" ".txt" in
        Bias.Language.save d.Datasets.Dataset.manual_bias path;
        let loaded =
          Bias.Language.load ~schema:Datasets.Uw.schemas
            ~target:Datasets.Uw.target_schema path
        in
        Sys.remove path;
        Alcotest.(check int) "same size"
          (Bias.Language.size d.Datasets.Dataset.manual_bias)
          (Bias.Language.size loaded);
        Alcotest.(check (list string)) "valid" [] (Bias.Language.validate loaded));
  ]

let suite = suite @ closed_world_tests @ bias_io_tests

let determinism_tests =
  [
    Alcotest.test_case "end-to-end learning is deterministic per seed" `Slow
      (fun () ->
        let run () =
          let d = Datasets.Imdb.generate ~seed:5 ~scale:0.3 () in
          let rng = Random.State.make [| 21 |] in
          let r =
            Autobias.learn_once
              ~config:{ Autobias.default_config with timeout = Some 30. }
              Autobias.Auto_bias d ~rng
              ~train_pos:d.Datasets.Dataset.positives
              ~train_neg:d.Datasets.Dataset.negatives
          in
          Logic.Clause.definition_to_string r.Autobias.definition
        in
        Alcotest.(check string) "same definition" (run ()) (run ()));
    Alcotest.test_case "cross_validate is deterministic per seed" `Slow
      (fun () ->
        let d = Datasets.Imdb.generate ~seed:5 ~scale:0.3 () in
        let run () =
          let r =
            Autobias.cross_validate
              ~config:{ Autobias.default_config with timeout = Some 30. }
              ~k:2 Autobias.Manual d ~seed:9
          in
          r.Cross_validation.mean_metrics
        in
        Alcotest.(check bool) "same metrics" true (Metrics.equal (run ()) (run ())));
  ]

let suite = suite @ determinism_tests
