(* Regression tests for specific defects found while building the system —
   each encodes a behaviour that silently degraded learning when broken. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Relation = Relational.Relation
module Literal = Logic.Literal
module Term = Logic.Term
module Clause = Logic.Clause

let v = Value.str

(* Regression 1 (FLT): Algorithm 2's known-constant set M must be
   snapshotted per round. When later modes in the same round saw constants
   added by earlier modes, the per-mode sample diluted away from the
   example's own tuples and the gold join pattern vanished from the bottom
   clause. *)
let round_snapshot_test =
  Alcotest.test_case
    "BC round 1 samples only from the example's own constants" `Quick
    (fun () ->
      let d = Datasets.Flt.generate ~scale:0.5 () in
      let rng = Random.State.make [| 11 |] in
      let e =
        match d.Datasets.Dataset.positives with
        | e :: _ -> e
        | [] -> Alcotest.fail "no positives"
      in
      let bc =
        Learning.Bottom_clause.build d.Datasets.Dataset.db
          d.Datasets.Dataset.manual_bias ~rng ~example:e
      in
      (* Head vars X (id 0) and Y (id 1) are the two flights; the body must
         contain a generic flight literal for each of them — round 1's only
         known fids are the example's own. *)
      let flight_literal_on var =
        List.exists
          (fun l ->
            Literal.pred l = "flight"
            && Term.equal (Literal.args l).(0) (Term.Var var)
            && Term.is_var (Literal.args l).(1)
            && Term.is_var (Literal.args l).(2))
          (Clause.body bc)
      in
      Alcotest.(check bool) "flight(X,_,_) present" true (flight_literal_on 0);
      Alcotest.(check bool) "flight(Y,_,_) present" true (flight_literal_on 1);
      (* And because the two flights share src and dst, the shared variables
         couple the two literals — the learnable gold pattern. *)
      let coupled =
        List.exists
          (fun a ->
            Literal.pred a = "flight"
            && Term.equal (Literal.args a).(0) (Term.Var 0)
            && List.exists
                 (fun b ->
                   Literal.pred b = "flight"
                   && Term.equal (Literal.args b).(0) (Term.Var 1)
                   && Term.equal (Literal.args a).(1) (Literal.args b).(1)
                   && Term.equal (Literal.args a).(2) (Literal.args b).(2))
                 (Clause.body bc))
          (Clause.body bc)
      in
      Alcotest.(check bool) "coupled flight pair in BC" true coupled)

(* Regression 2 (HIV): frontier truncation must preserve binding diversity.
   Taking the lexicographic head of the sorted frontier made every surviving
   chain share its early-variable bindings, falsely blocking any later
   literal that needed a different one. The stride-truncation keeps a spread.
   Construct: 60 p-chains for A; only the chains with high-sorting A values
   satisfy q(A, hit). *)
let stride_diversity_test =
  Alcotest.test_case "frontier truncation keeps diverse bindings" `Quick
    (fun () ->
      let ground =
        List.concat
          (List.init 60 (fun i ->
               let a = Printf.sprintf "z%02d" i in
               (* q only for the last few values, which lexicographic-head
                  truncation at cap 16 would never keep *)
               Logic.Parser.literal (Printf.sprintf "p(x,%s)" a)
               :: (if i >= 55 then
                     [ Logic.Parser.literal (Printf.sprintf "q(%s,hit)" a) ]
                   else [])))
      in
      let g = Logic.Subsumption.ground_of_literals ground in
      let c = Logic.Parser.clause "h(X) :- p(X,A), q(A,hit)" in
      let subst =
        Option.get (Logic.Substitution.extend Logic.Substitution.empty 0 (v "x"))
      in
      Alcotest.(check bool) "covered despite cap" true
        (Logic.Subsumption.covers_ground ~cap:16 ~subst c g))

(* Regression 3 (SYS): mode ordering. Selective #-modes must contribute
   their literals before generic modes, or the frontier diffuses before the
   constants can anchor it. *)
let mode_ordering_test =
  Alcotest.test_case "constant-mode literals precede generic ones in the BC"
    `Quick (fun () ->
      let d = Datasets.Sys_data.generate ~scale:0.3 () in
      let rng = Random.State.make [| 11 |] in
      let bc =
        Learning.Bottom_clause.build d.Datasets.Dataset.db
          d.Datasets.Dataset.manual_bias ~rng
          ~example:(List.hd d.Datasets.Dataset.positives)
      in
      let body = Clause.body bc in
      let first_generic =
        List.to_seq body
        |> Seq.mapi (fun i l -> (i, l))
        |> Seq.filter (fun (_, l) -> Literal.constants l = [])
        |> Seq.map fst
        |> Seq.fold_left min max_int
      in
      (* Ordering is per round: within round 1 the two-constant mode's
         literals precede the generic mode's. *)
      let first_two_const =
        List.to_seq body
        |> Seq.mapi (fun i l -> (i, l))
        |> Seq.filter (fun (_, l) -> List.length (Literal.constants l) >= 2)
        |> Seq.map fst
        |> Seq.fold_left min max_int
      in
      Alcotest.(check bool) "has both kinds" true
        (first_generic < max_int && first_two_const < max_int);
      Alcotest.(check bool) "two-constant literals start before generics" true
        (first_two_const < first_generic))

(* Regression 4: the bottom clause itself can be the best clause on tiny
   example sets; it must be truly evaluated before the acceptance gate, not
   trusted to cover only its seed. *)
let bottom_acceptance_test =
  Alcotest.test_case "bottom clause accepted when it genuinely generalizes"
    `Quick (fun () ->
      let db = Datasets.Uw.table4_fragment () in
      let bias =
        Bias.Language.parse ~schema:Datasets.Uw.schemas
          ~target:Datasets.Uw.target_schema
          "advisedBy(T1,T3)\npublication(T5,T1)\npublication(T5,T3)\npublication(-,+)"
      in
      let rng = Random.State.make [| 3 |] in
      let cov = Learning.Coverage.create db bias ~rng in
      let positives =
        [ [| v "juan"; v "sarita" |]; [| v "john"; v "mary" |] ]
      in
      let negatives =
        [ [| v "juan"; v "mary" |]; [| v "john"; v "sarita" |] ]
      in
      let r = Learning.Learn.learn cov ~rng ~positives ~negatives in
      Alcotest.(check bool) "learned" true (r.Learning.Learn.definition <> []))

(* Regression 5: per-clause time budget must not abort the whole run — a
   slow seed is skipped, later seeds still run. *)
let clause_timeout_test =
  Alcotest.test_case "clause_timeout bounds one seed, not the run" `Quick
    (fun () ->
      let d = Datasets.Uw.generate ~scale:0.4 () in
      let rng = Random.State.make [| 3 |] in
      let cov =
        Learning.Coverage.create d.Datasets.Dataset.db
          d.Datasets.Dataset.manual_bias ~rng
      in
      let config =
        { Learning.Learn.default_config with
          clause_timeout = Some 0.5;
          timeout = Some 60. }
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Learning.Learn.learn ~config cov ~rng
          ~positives:d.Datasets.Dataset.positives
          ~negatives:d.Datasets.Dataset.negatives
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "no global timeout" false
        r.Learning.Learn.stats.Learning.Learn.timed_out;
      Alcotest.(check bool) "finished well under the global budget" true
        (elapsed < 55.))

let suite =
  [
    round_snapshot_test;
    stride_diversity_test;
    mode_ordering_test;
    bottom_acceptance_test;
    clause_timeout_test;
  ]
