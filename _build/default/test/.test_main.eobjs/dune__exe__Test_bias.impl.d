test/test_bias.ml: Alcotest Bias List Relational
