test/test_regressions.ml: Alcotest Array Bias Datasets Learning List Logic Option Printf Random Relational Seq Unix
