test/test_evaluation.ml: Alcotest Array Autobias Baselines Bias Datasets Evaluation Filename Hashtbl Learning List Logic Option Random Relational String Sys
