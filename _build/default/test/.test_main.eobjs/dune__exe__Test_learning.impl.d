test/test_learning.ml: Alcotest Array Bias Datasets Learning List Logic Option Random Relational String
