test/test_datasets.ml: Alcotest Array Bias Datasets List Printf Random Relational
