test/test_properties.ml: Array Datasets Gen Learning List Logic Printf QCheck QCheck_alcotest Random Relational Sampling
