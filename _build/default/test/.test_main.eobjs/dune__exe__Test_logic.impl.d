test/test_logic.ml: Alcotest Array Hashtbl List Logic Option Printf QCheck QCheck_alcotest Relational
