test/test_sampling.ml: Alcotest Array Datasets List Printf Random Relational Sampling
