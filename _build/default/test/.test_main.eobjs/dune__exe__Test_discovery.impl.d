test/test_discovery.ml: Alcotest Bias Discovery Gen List Printf QCheck QCheck_alcotest Relational String
