test/test_relational.ml: Alcotest Array Gen List QCheck QCheck_alcotest Relational
