test/test_query.ml: Alcotest Baselines Bias Datasets Learning List Logic Random Relational String
