(* Tests for the three sampling strategies (Section 4) and the semi-join
   tree. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Relation = Relational.Relation
module Strategy = Sampling.Strategy

let v = Value.str
let rng () = Random.State.make [| 123 |]

(* A relation with a skewed join column: value "hot" appears 50 times,
   "cold1".."cold5" once each. *)
let skewed () =
  let rows =
    List.init 50 (fun i -> [| v "hot"; v (Printf.sprintf "h%d" i) |])
    @ List.init 5 (fun i -> [| v (Printf.sprintf "cold%d" i); v "c" |])
  in
  Relation.of_tuples (Schema.relation "r" [| "k"; "payload" |]) rows

let all_keys () =
  Value.Set.of_list (v "hot" :: List.init 5 (fun i -> v (Printf.sprintf "cold%d" i)))

let basic strategy =
  [
    Alcotest.test_case
      (Strategy.to_string strategy ^ ": only matching tuples, within size")
      `Quick
      (fun () ->
        let rel = skewed () in
        let known = Value.Set.of_list [ v "hot"; v "cold1"; v "nope" ] in
        let sample =
          Strategy.sample strategy ~rng:(rng ()) ~rel ~pos:0 ~known ~size:10
            ~constant_positions:[]
        in
        Alcotest.(check bool) "≤ size (naive) or bounded" true
          (List.length sample <= 20);
        List.iter
          (fun t ->
            Alcotest.(check bool) "matches" true
              (Value.Set.mem t.(0) known))
          sample);
    Alcotest.test_case
      (Strategy.to_string strategy ^ ": deterministic under a fixed seed")
      `Quick
      (fun () ->
        let rel = skewed () in
        let known = all_keys () in
        let s1 =
          Strategy.sample strategy ~rng:(Random.State.make [| 7 |]) ~rel ~pos:0
            ~known ~size:8 ~constant_positions:[ 0 ]
        in
        let s2 =
          Strategy.sample strategy ~rng:(Random.State.make [| 7 |]) ~rel ~pos:0
            ~known ~size:8 ~constant_positions:[ 0 ]
        in
        Alcotest.(check bool) "equal" true (s1 = s2));
    Alcotest.test_case
      (Strategy.to_string strategy ^ ": empty known set yields nothing") `Quick
      (fun () ->
        let sample =
          Strategy.sample strategy ~rng:(rng ()) ~rel:(skewed ()) ~pos:0
            ~known:Value.Set.empty ~size:10 ~constant_positions:[]
        in
        Alcotest.(check int) "empty" 0 (List.length sample));
  ]

let naive_tests =
  [
    Alcotest.test_case "naive returns everything when size exceeds matches"
      `Quick (fun () ->
        let rel = skewed () in
        let known = Value.Set.singleton (v "cold1") in
        let sample =
          Strategy.sample Strategy.Naive ~rng:(rng ()) ~rel ~pos:0 ~known
            ~size:10 ~constant_positions:[]
        in
        Alcotest.(check int) "one" 1 (List.length sample));
    Alcotest.test_case "naive sample size is exactly the cap when abundant"
      `Quick (fun () ->
        let sample =
          Strategy.sample Strategy.Naive ~rng:(rng ()) ~rel:(skewed ()) ~pos:0
            ~known:(all_keys ()) ~size:12 ~constant_positions:[]
        in
        Alcotest.(check int) "12" 12 (List.length sample));
  ]

let random_tests =
  [
    Alcotest.test_case
      "random (Olken) is uniform over the semi-join output" `Quick (fun () ->
        (* Values are drawn uniformly from the distinct key set, then a
           matching tuple is accepted with probability m(a)/M — Olken's
           correction — so every tuple of the semi-join result is equally
           likely. The five cold tuples together hold 5/55 ≈ 9% of the
           output; their observed share must sit near that, not near the
           1/6-per-value rate (≈ 17% each, 83% total) an uncorrected
           value-uniform sampler would give. *)
        let rel = skewed () in
        let known = all_keys () in
        let st = rng () in
        let cold = ref 0 and total = ref 0 in
        for _ = 1 to 400 do
          let sample =
            Strategy.sample Strategy.Random ~rng:st ~rel ~pos:0 ~known ~size:4
              ~constant_positions:[]
          in
          List.iter
            (fun t ->
              incr total;
              if not (Value.equal t.(0) (v "hot")) then incr cold)
            sample
        done;
        let ratio = float_of_int !cold /. float_of_int !total in
        Alcotest.(check bool)
          (Printf.sprintf "cold share %.3f within [0.02, 0.25]" ratio)
          true (ratio >= 0.02 && ratio <= 0.25));
    Alcotest.test_case "random acceptance never loops forever" `Quick (fun () ->
        (* A known set whose values mostly miss the relation forces many
           rejections; the attempt bound must still terminate. *)
        let rel = skewed () in
        let known =
          Value.Set.of_list (List.init 50 (fun i -> v (Printf.sprintf "miss%d" i)))
        in
        let sample =
          Strategy.sample Strategy.Random ~rng:(rng ()) ~rel ~pos:0 ~known
            ~size:5 ~constant_positions:[]
        in
        Alcotest.(check int) "nothing matched" 0 (List.length sample));
  ]

let stratified_tests =
  [
    Alcotest.test_case "stratified keeps every stratum represented" `Quick
      (fun () ->
        (* Constant-able column 0: strata = {hot} ∪ {cold1..cold5}. Every
           stratum must contribute at least one tuple, however small the
           per-stratum size. *)
        let rel = skewed () in
        let sample =
          Strategy.sample Strategy.Stratified ~rng:(rng ()) ~rel ~pos:0
            ~known:(all_keys ()) ~size:1 ~constant_positions:[ 0 ]
        in
        let keys =
          List.fold_left (fun acc t -> Value.Set.add t.(0) acc) Value.Set.empty sample
        in
        Alcotest.(check int) "six strata" 6 (Value.Set.cardinal keys));
    Alcotest.test_case "stratified without constant attributes = one stratum"
      `Quick (fun () ->
        let rel = skewed () in
        let sample =
          Strategy.sample Strategy.Stratified ~rng:(rng ()) ~rel ~pos:0
            ~known:(all_keys ()) ~size:4 ~constant_positions:[]
        in
        Alcotest.(check int) "four" 4 (List.length sample));
  ]

let strategy_misc =
  [
    Alcotest.test_case "strategy string round-trip" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) "eq" true
              (Strategy.equal s (Strategy.of_string (Strategy.to_string s))))
          Strategy.all);
    Alcotest.test_case "of_string rejects unknown names" `Quick (fun () ->
        Alcotest.check_raises "bad" (Invalid_argument "Strategy.of_string: bogus")
          (fun () -> ignore (Strategy.of_string "bogus")));
  ]

let semi_join_tree_tests =
  [
    Alcotest.test_case "tree expands the UW bias joins" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.2 () in
        let tree = Sampling.Semi_join_tree.build d.Datasets.Dataset.manual_bias ~depth:1 in
        let root = Sampling.Semi_join_tree.root tree in
        Alcotest.(check string) "root" "advisedBy" root.Sampling.Semi_join_tree.relation;
        (* advisedBy(stud,prof) reaches student, inPhase, yearsInProgram, ta
           via stud and professor, hasPosition, taughtBy, publication via
           prof/stud types. *)
        let children =
          List.map (fun n -> n.Sampling.Semi_join_tree.relation)
            root.Sampling.Semi_join_tree.children
          |> List.sort_uniq compare
        in
        Alcotest.(check bool) "student reachable" true (List.mem "student" children);
        Alcotest.(check bool) "publication reachable" true
          (List.mem "publication" children);
        Alcotest.(check bool) "courseLevel not directly reachable" false
          (List.mem "courseLevel" children));
    Alcotest.test_case "deeper trees strictly grow" `Quick (fun () ->
        let d = Datasets.Uw.generate ~scale:0.2 () in
        let t1 = Sampling.Semi_join_tree.build d.Datasets.Dataset.manual_bias ~depth:1 in
        let t2 = Sampling.Semi_join_tree.build d.Datasets.Dataset.manual_bias ~depth:2 in
        Alcotest.(check bool) "t2 bigger" true
          (Sampling.Semi_join_tree.node_count t2 > Sampling.Semi_join_tree.node_count t1));
  ]

let suite =
  basic Strategy.Naive @ basic Strategy.Random @ basic Strategy.Stratified
  @ naive_tests @ random_tests @ stratified_tests @ strategy_misc
  @ semi_join_tree_tests

let stratified_tree_tests =
  [
    Alcotest.test_case "Algorithm 4 collects a stratified relevant set" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let rng = Random.State.make [| 5 |] in
        let collected =
          Sampling.Stratified_tree.collect d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
            ~example:(List.hd d.Datasets.Dataset.positives)
        in
        Alcotest.(check bool) "non-empty" true (collected <> []);
        (* every collected tuple really belongs to its relation *)
        List.iter
          (fun (rel_name, t) ->
            let rel = Relational.Database.find d.Datasets.Dataset.db rel_name in
            Alcotest.(check bool) "member" true
              (List.exists (fun t' -> t' = t) (Relational.Relation.lookup rel 0 t.(0))))
          collected);
    Alcotest.test_case
      "Algorithm 4 reaches the example's direct neighbourhood" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let rng = Random.State.make [| 5 |] in
        let e = List.hd d.Datasets.Dataset.positives in
        let collected =
          Sampling.Stratified_tree.collect d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng ~example:e
        in
        (* the student's own student/inPhase tuples must be present *)
        Alcotest.(check bool) "student tuple" true
          (List.exists
             (fun (r, t) -> r = "student" && Relational.Value.equal t.(0) e.(0))
             collected));
    Alcotest.test_case "per-stratum size bounds the leaf samples" `Quick
      (fun () ->
        let d = Datasets.Uw.generate ~scale:0.3 () in
        let rng = Random.State.make [| 5 |] in
        let small =
          Sampling.Stratified_tree.collect
            ~config:{ Sampling.Stratified_tree.default_config with per_stratum = 1 }
            d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
            ~example:(List.hd d.Datasets.Dataset.positives)
        in
        let big =
          Sampling.Stratified_tree.collect
            ~config:{ Sampling.Stratified_tree.default_config with per_stratum = 50 }
            d.Datasets.Dataset.db d.Datasets.Dataset.manual_bias ~rng
            ~example:(List.hd d.Datasets.Dataset.positives)
        in
        Alcotest.(check bool) "monotone in s" true
          (List.length small <= List.length big));
  ]

let suite = suite @ stratified_tree_tests
