(* Tests for the language-bias library: predicate definitions, modes, bias
   parsing/validation, and the built-in Castor/NoConst biases. *)

module Schema = Relational.Schema
module Mode = Bias.Mode
module Predicate_def = Bias.Predicate_def
module Language = Bias.Language

let uw_schema =
  Schema.
    [
      relation "student" [| "stud" |];
      relation "inPhase" [| "stud"; "phase" |];
      relation "publication" [| "title"; "person" |];
    ]

let target = Schema.relation "advisedBy" [| "stud"; "prof" |]

let mode_tests =
  [
    Alcotest.test_case "mode printing matches the paper's syntax" `Quick
      (fun () ->
        let m = Mode.make "inPhase" [| Mode.Input; Mode.Constant |] in
        Alcotest.(check string) "syntax" "inPhase(+,#)" (Mode.to_string m));
    Alcotest.test_case "symbol round-trip" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string) s s
              (Mode.symbol_to_string (Mode.symbol_of_string s)))
          [ "+"; "-"; "#" ]);
    Alcotest.test_case "input and constant positions" `Quick (fun () ->
        let m = Mode.make "r" [| Mode.Output; Mode.Input; Mode.Constant |] in
        Alcotest.(check (list int)) "inputs" [ 1 ] (Mode.input_positions m);
        Alcotest.(check (list int)) "consts" [ 2 ] (Mode.constant_positions m);
        Alcotest.(check bool) "has input" true (Mode.has_input m));
  ]

let predicate_def_tests =
  [
    Alcotest.test_case "types union across definitions" `Quick (fun () ->
        let defs =
          [
            Predicate_def.make "publication" [| "T5"; "T1" |];
            Predicate_def.make "publication" [| "T5"; "T3" |];
          ]
        in
        let types = Predicate_def.types_of defs "publication" 1 in
        Alcotest.(check (list string)) "both" [ "T1"; "T3" ]
          (Bias.Util.String_set.elements types));
    Alcotest.test_case "unknown attribute has empty type set" `Quick (fun () ->
        Alcotest.(check bool) "empty" true
          (Bias.Util.String_set.is_empty
             (Predicate_def.types_of [] "nope" 0)));
  ]

let bias_text =
  {|# the Table 3 fragment
student(T1)
inPhase(T1,T2)
publication(T5,T1)
advisedBy(T1,T3)
student(+)
inPhase(+,-)
inPhase(+,#)
publication(-,+)
|}

let parse_tests =
  [
    Alcotest.test_case "parse separates predicate and mode definitions" `Quick
      (fun () ->
        let b = Language.parse ~schema:uw_schema ~target bias_text in
        Alcotest.(check int) "preds" 4 (List.length (Language.predicate_defs b));
        Alcotest.(check int) "modes" 4 (List.length (Language.modes b));
        Alcotest.(check int) "size" 8 (Language.size b));
    Alcotest.test_case "parse/print round-trip" `Quick (fun () ->
        let b = Language.parse ~schema:uw_schema ~target bias_text in
        let b2 = Language.parse ~schema:uw_schema ~target (Language.to_string b) in
        Alcotest.(check int) "same size" (Language.size b) (Language.size b2));
    Alcotest.test_case "share_type follows predicate definitions" `Quick
      (fun () ->
        let b = Language.parse ~schema:uw_schema ~target bias_text in
        Alcotest.(check bool) "stud/person share T1" true
          (Language.share_type b "student" 0 "publication" 1);
        Alcotest.(check bool) "stud/title don't" false
          (Language.share_type b "student" 0 "publication" 0));
    Alcotest.test_case "constant_allowed reflects # modes" `Quick (fun () ->
        let b = Language.parse ~schema:uw_schema ~target bias_text in
        Alcotest.(check bool) "phase yes" true (Language.constant_allowed b "inPhase" 1);
        Alcotest.(check bool) "stud no" false (Language.constant_allowed b "inPhase" 0));
    Alcotest.test_case "malformed lines raise Parse_error" `Quick (fun () ->
        List.iter
          (fun line ->
            match Language.parse ~schema:uw_schema ~target line with
            | exception Language.Parse_error _ -> ()
            | _ -> Alcotest.fail ("should reject: " ^ line))
          [ "student"; "student()"; "student(+" ]);
  ]

let validate_tests =
  [
    Alcotest.test_case "well-formed bias validates cleanly" `Quick (fun () ->
        let b = Language.parse ~schema:uw_schema ~target bias_text in
        Alcotest.(check (list string)) "no problems" [] (Language.validate b));
    Alcotest.test_case "arity mismatches reported" `Quick (fun () ->
        let b = Language.parse ~schema:uw_schema ~target "student(T1,T2)\nstudent(+,+)" in
        Alcotest.(check int) "two problems" 2 (List.length (Language.validate b)));
    Alcotest.test_case "unknown relation reported" `Quick (fun () ->
        let b = Language.parse ~schema:uw_schema ~target "ghost(T1)" in
        Alcotest.(check int) "one problem" 1 (List.length (Language.validate b)));
    Alcotest.test_case "mode without + reported" `Quick (fun () ->
        let b = Language.parse ~schema:uw_schema ~target "inPhase(-,-)" in
        Alcotest.(check int) "one problem" 1 (List.length (Language.validate b)));
  ]

let builtin_tests =
  [
    Alcotest.test_case "modes_for_relation without constants" `Quick (fun () ->
        let modes = Language.modes_for_relation "r" 3 [] in
        (* one + rotation per attribute *)
        Alcotest.(check int) "three" 3 (List.length modes);
        List.iter
          (fun m -> Alcotest.(check bool) "has +" true (Mode.has_input m))
          modes);
    Alcotest.test_case "modes_for_relation with constant attributes" `Quick
      (fun () ->
        let modes = Language.modes_for_relation "r" 3 [ 2 ] in
        (* 3 plain + (subset {2}: + on 0 or 1) = 5 *)
        Alcotest.(check int) "five" 5 (List.length modes);
        let with_const =
          List.filter (fun m -> Mode.constant_positions m <> []) modes
        in
        Alcotest.(check int) "two #" 2 (List.length with_const));
    Alcotest.test_case "castor bias has one universal type" `Quick (fun () ->
        let b = Language.castor ~schema:uw_schema ~target in
        Alcotest.(check bool) "all joinable" true
          (Language.share_type b "student" 0 "publication" 0);
        Alcotest.(check bool) "constants allowed everywhere" true
          (Language.constant_allowed b "inPhase" 1);
        Alcotest.(check (list string)) "valid" [] (Language.validate b));
    Alcotest.test_case "no_const bias forbids constants" `Quick (fun () ->
        let b = Language.no_const ~schema:uw_schema ~target in
        Alcotest.(check bool) "no #" true
          (List.for_all
             (fun (m : Mode.t) -> Mode.constant_positions m = [])
             (Language.modes b));
        Alcotest.(check (list string)) "valid" [] (Language.validate b));
    Alcotest.test_case "power_set respects the cap" `Quick (fun () ->
        let full = Bias.Util.power_set [ 1; 2; 3 ] in
        Alcotest.(check int) "2^3" 8 (List.length full);
        let capped = Bias.Util.power_set ~cap:2 [ 1; 2; 3; 4 ] in
        (* subsets of first 2 (4) + singletons of the rest (2) *)
        Alcotest.(check int) "capped" 6 (List.length capped);
        Alcotest.(check bool) "truncated" true
          (Bias.Util.power_set_truncated ~cap:2 [ 1; 2; 3; 4 ]));
  ]

let suite =
  mode_tests @ predicate_def_tests @ parse_tests @ validate_tests @ builtin_tests
