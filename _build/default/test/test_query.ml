(* Tests for query-based coverage (Section 5's rejected alternative), the
   inference module, and the Progol-style baseline. *)

module Value = Relational.Value
module Query = Learning.Query
module Inference = Learning.Inference

let v = Value.str
let db () = Datasets.Uw.table4_fragment ()

let clause = Logic.Parser.clause

let query_tests =
  [
    Alcotest.test_case "query coverage agrees with the running example" `Quick
      (fun () ->
        let db = db () in
        let c = clause "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)" in
        Alcotest.(check bool) "juan/sarita" true
          (Query.covers db c [| v "juan"; v "sarita" |]);
        Alcotest.(check bool) "juan/mary" false
          (Query.covers db c [| v "juan"; v "mary" |]));
    Alcotest.test_case "query coverage handles constants in the body" `Quick
      (fun () ->
        let db = db () in
        let c = clause "advisedBy(X,Y) :- inPhase(X,post_quals), professor(Y)" in
        Alcotest.(check bool) "covers" true
          (Query.covers db c [| v "juan"; v "sarita" |]);
        let c2 = clause "advisedBy(X,Y) :- inPhase(X,abd), professor(Y)" in
        Alcotest.(check bool) "wrong phase" false
          (Query.covers db c2 [| v "juan"; v "sarita" |]));
    Alcotest.test_case "unknown relations never match" `Quick (fun () ->
        let db = db () in
        let c = clause "advisedBy(X,Y) :- ghost(X)" in
        Alcotest.(check bool) "no" false
          (Query.covers db c [| v "juan"; v "sarita" |]));
    Alcotest.test_case "budget exhaustion reports non-coverage" `Quick
      (fun () ->
        let db = db () in
        let c = clause
            "advisedBy(X,Y) :- publication(A,B), publication(C,D), publication(E,F), publication(G,H)"
        in
        Alcotest.(check bool) "budget 1 fails closed" false
          (Query.covers ~config:{ Query.node_budget = 1 } db c
             [| v "juan"; v "sarita" |]));
    Alcotest.test_case
      "query coverage and subsumption coverage agree on learned clauses"
      `Slow (fun () ->
        (* The two coverage engines answer the same question: subsumption
           works against sampled ground BCs, queries against the full
           database. For selective clauses over the Table 4 fragment (tiny,
           so no sampling loss) they must agree on every example. *)
        let db = db () in
        let bias =
          Bias.Language.parse ~schema:Datasets.Uw.schemas
            ~target:Datasets.Uw.target_schema
            "advisedBy(T1,T3)\nstudent(T1)\nprofessor(T3)\npublication(T5,T1)\npublication(T5,T3)\nstudent(+)\nprofessor(+)\npublication(-,+)\npublication(+,-)"
        in
        let rng = Random.State.make [| 1 |] in
        let cov =
          Learning.Coverage.create
            ~bc_config:
              { Learning.Bottom_clause.default_config with sample_size = 100 }
            db bias ~rng
        in
        let clauses =
          [
            clause "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y)";
            clause "advisedBy(X,Y) :- student(X), professor(Y)";
            clause "advisedBy(X,Y) :- publication(Z,Y), student(X)";
          ]
        in
        let examples =
          [
            [| v "juan"; v "sarita" |]; [| v "juan"; v "mary" |];
            [| v "john"; v "mary" |]; [| v "john"; v "sarita" |];
          ]
        in
        List.iter
          (fun c ->
            List.iter
              (fun e ->
                Alcotest.(check bool)
                  (Logic.Clause.to_string c)
                  (Query.covers db c e)
                  (Learning.Coverage.covers cov c e))
              examples)
          clauses);
  ]

let inference_tests =
  [
    Alcotest.test_case "derive materializes the co-authorship rule" `Quick
      (fun () ->
        let db = db () in
        let c = clause "advisedBy(X,Y) :- student(X), professor(Y), publication(Z,X), publication(Z,Y)" in
        let derived = Inference.derive db c in
        Alcotest.(check int) "two pairs" 2 (List.length derived);
        Alcotest.(check bool) "juan/sarita in" true
          (List.mem [| v "juan"; v "sarita" |] derived);
        Alcotest.(check bool) "john/mary in" true
          (List.mem [| v "john"; v "mary" |] derived));
    Alcotest.test_case "derive_definition unions clause results" `Quick
      (fun () ->
        let db = db () in
        let def =
          [
            clause "advisedBy(X,Y) :- student(X), hasPosition(Y,assistant_prof)";
            clause "advisedBy(X,Y) :- student(X), hasPosition(Y,associate_prof)";
          ]
        in
        (* 2 students × 1 assistant + 2 students × 1 associate = 4 pairs. *)
        Alcotest.(check int) "four" 4
          (List.length (Inference.derive_definition db def)));
    Alcotest.test_case "max_results caps the derivation" `Quick (fun () ->
        let db = db () in
        let c = clause "advisedBy(X,Y) :- student(X), professor(Y)" in
        let derived =
          Inference.derive
            ~config:{ Inference.default_config with max_results = 2 }
            db c
        in
        Alcotest.(check int) "capped" 2 (List.length derived));
    Alcotest.test_case "unbound head variables derive nothing" `Quick
      (fun () ->
        let db = db () in
        let c = clause "advisedBy(X,Y) :- student(X)" in
        (* Y never bound: no ground head tuple may be emitted. *)
        Alcotest.(check int) "empty" 0 (List.length (Inference.derive db c)));
  ]

let progol_tests =
  [
    Alcotest.test_case "Progol-style search learns the drama rule" `Slow
      (fun () ->
        let d = Datasets.Imdb.generate ~scale:0.3 () in
        let rng = Random.State.make [| 6 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Baselines.Progol.learn
            ~config:{ Baselines.Progol.default_config with timeout = Some 60. }
            cov ~rng ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        let rendered =
          Logic.Clause.definition_to_string r.Baselines.Progol.definition
        in
        let contains needle =
          let nl = String.length needle and hl = String.length rendered in
          let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "mentions drama" true (contains "drama"));
    Alcotest.test_case "Progol-style search couples variables on FLT" `Slow
      (fun () ->
        (* Unlike FOIL, candidates come from the bottom clause, where the
           coupled flight literals already exist — so the connected-route
           rule is reachable top-down. *)
        let d = Datasets.Flt.generate ~scale:0.3 () in
        let rng = Random.State.make [| 6 |] in
        let cov =
          Learning.Coverage.create d.Datasets.Dataset.db
            d.Datasets.Dataset.manual_bias ~rng
        in
        let r =
          Baselines.Progol.learn
            ~config:{ Baselines.Progol.default_config with timeout = Some 60. }
            cov ~rng ~positives:d.Datasets.Dataset.positives
            ~negatives:d.Datasets.Dataset.negatives
        in
        Alcotest.(check bool) "learned something" true
          (r.Baselines.Progol.definition <> []));
  ]

let suite = query_tests @ inference_tests @ progol_tests
