(** A complete language bias: predicate plus mode definitions for a database
    schema and target relation — the artifact AutoBias induces automatically
    (Section 3) and an expert writes by hand for the Manual baseline. *)

type t

val make :
  schema:Relational.Schema.t ->
  target:Relational.Schema.relation_schema ->
  predicate_defs:Predicate_def.t list ->
  modes:Mode.t list ->
  t

val schema : t -> Relational.Schema.t
val target : t -> Relational.Schema.relation_schema
val predicate_defs : t -> Predicate_def.t list
val modes : t -> Mode.t list

(** [attribute_types b pred pos] is the type-name set of the attribute
    (empty if the bias never mentions it). *)
val attribute_types : t -> string -> int -> Util.String_set.t

(** [share_type b p1 i1 p2 i2] holds iff the two attributes share a type,
    i.e. a candidate clause may join them. *)
val share_type : t -> string -> int -> string -> int -> bool

(** [modes_of b pred] — every mode definition for relation [pred]. *)
val modes_of : t -> string -> Mode.t list

(** [constant_allowed b pred pos] holds iff some mode of [pred] puts [#] on
    attribute [pos]. *)
val constant_allowed : t -> string -> int -> bool

(** [size b] is the number of predicate plus mode definitions — the paper's
    measure of how much bias an expert had to write. *)
val size : t -> int

(** [validate b] returns the list of problems (empty when well-formed):
    unknown relations, arity mismatches, modes without [+]. *)
val validate : t -> string list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Parsing}

    One definition per line: ["student(T1)"] (predicate definition) or
    ["inPhase(+,#)"] (mode definition — every argument is a symbol). Blank
    lines and [#]-comment lines are skipped. *)

exception Parse_error of string

(** @raise Parse_error on malformed lines; run {!validate} afterwards for
    semantic checks. *)
val parse :
  schema:Relational.Schema.t ->
  target:Relational.Schema.relation_schema ->
  string ->
  t

(** [load ~schema ~target path] parses the bias file at [path].
    @raise Parse_error on malformed lines; [Sys_error] on IO failure. *)
val load :
  schema:Relational.Schema.t ->
  target:Relational.Schema.relation_schema ->
  string ->
  t

(** [save b path] writes [b] in its concrete syntax to [path]; the output
    re-parses with {!load}. *)
val save : t -> string -> unit

(** {1 Built-in biases for the paper's baselines} *)

(** [modes_for_relation ?power_set_cap name arity const_positions] builds the
    shared mode shape of AutoBias/Castor/NoConst: one mode per attribute
    with [+] there and [-] elsewhere, plus, for each non-empty subset of
    [const_positions] (capped power set), the same modes with [#] on the
    subset. *)
val modes_for_relation : ?power_set_cap:int -> string -> int -> int list -> Mode.t list

(** [castor ~schema ~target] — the plain-Castor baseline: one universal
    type; every attribute may be a variable or a constant. *)
val castor :
  schema:Relational.Schema.t ->
  target:Relational.Schema.relation_schema ->
  t

(** [no_const ~schema ~target] — universal type, no [#] anywhere. *)
val no_const :
  schema:Relational.Schema.t ->
  target:Relational.Schema.relation_schema ->
  t
