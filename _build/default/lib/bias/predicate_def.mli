(** Predicate definitions (Section 2.2.1): one type name per attribute of a
    relation, e.g. [publication(T5,T1)]. A relation may have several
    definitions; an attribute's effective type set is the union over them.
    Two attributes can be joined in a candidate clause only if their type
    sets intersect. *)

type t = {
  pred : string;
  types : string array;  (** one type name per attribute, in column order *)
}

val equal : t -> t -> bool
val compare : t -> t -> int
val make : string -> string array -> t
val arity : t -> int

(** [to_string d] is the paper's syntax, e.g. ["publication(T5,T1)"]. *)
val to_string : t -> string

val pp_short : Format.formatter -> t -> unit

(** [types_of defs pred pos] is the set of type names assigned to attribute
    [pos] of relation [pred] across [defs]. *)
val types_of : t list -> string -> int -> Util.String_set.t
