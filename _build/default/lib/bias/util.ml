(** Small shared helpers for the bias library. *)

module String_set = Set.Make (String)
module String_map = Map.Make (String)

(** [power_set ?cap xs] lists every subset of [xs] (including the empty set).
    When [cap] is given and [List.length xs > cap], only subsets of the first
    [cap] elements are produced, plus the singletons of the rest — a guard
    against exponential blow-up on very wide relations; callers report when
    the guard triggers. *)
let power_set ?cap xs =
  let full, extra =
    match cap with
    | Some c when List.length xs > c ->
        let rec split n = function
          | [] -> ([], [])
          | l when n = 0 -> ([], l)
          | x :: tl ->
              let a, b = split (n - 1) tl in
              (x :: a, b)
        in
        split c xs
    | _ -> (xs, [])
  in
  let base =
    List.fold_left
      (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
      [ [] ] full
  in
  base @ List.map (fun x -> [ x ]) extra

(** [capped_power_set_truncated ?cap xs] reports whether [power_set] had to
    truncate. *)
let power_set_truncated ?cap xs =
  match cap with Some c -> List.length xs > c | None -> false
