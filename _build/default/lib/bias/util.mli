(** Small shared helpers for the bias library. *)

module String_set : Set.S with type elt = string
module String_map : Map.S with type key = string

(** [power_set ?cap xs] lists every subset of [xs] (including the empty
    set). With [cap] and more than [cap] elements, only subsets of the first
    [cap] elements are produced, plus the singletons of the rest — a guard
    against exponential blow-up on very wide relations. *)
val power_set : ?cap:int -> 'a list -> 'a list list

(** [power_set_truncated ?cap xs] — whether {!power_set} would truncate. *)
val power_set_truncated : ?cap:int -> 'a list -> bool
