(** Predicate definitions (Section 2.2.1).

    A predicate definition assigns one type name to each attribute of a
    relation, e.g. [publication(T5,T1)]. A relation may have several
    predicate definitions; the effective type set of an attribute is the
    union over them ([publication(T5,T1)] and [publication(T5,T3)] give the
    author attribute both T1 and T3). Two attributes can be joined in a
    candidate clause only if their type sets intersect. *)

type t = {
  pred : string;
  types : string array;  (** one type name per attribute, in column order *)
}
[@@deriving eq, ord, show { with_path = false }]

let make pred types = { pred; types }
let arity d = Array.length d.types

let to_string d =
  d.pred ^ "(" ^ String.concat "," (Array.to_list d.types) ^ ")"

let pp_short ppf d = Fmt.string ppf (to_string d)

(** [types_of defs pred pos] is the set of type names assigned to attribute
    [pos] of relation [pred] across all definitions in [defs]. *)
let types_of defs pred pos =
  List.fold_left
    (fun acc d ->
      if String.equal d.pred pred && pos < arity d then
        Util.String_set.add d.types.(pos) acc
      else acc)
    Util.String_set.empty defs
