(** Mode definitions (Section 2.2.2).

    A mode assigns a symbol to each attribute of a relation:
    [+] (Input) — the term must be an existing variable;
    [-] (Output) — the term may be an existing or a new variable;
    [#] (Constant) — the term must be a constant.

    Each body literal of a candidate clause must satisfy at least one mode. *)

type symbol =
  | Input  (** [+] *)
  | Output  (** [-] *)
  | Constant  (** [#] *)
[@@deriving eq, ord, show { with_path = false }]

let symbol_to_string = function Input -> "+" | Output -> "-" | Constant -> "#"

let symbol_of_string = function
  | "+" -> Input
  | "-" -> Output
  | "#" -> Constant
  | s -> invalid_arg ("Mode.symbol_of_string: " ^ s)

type t = {
  pred : string;
  symbols : symbol array;  (** one per attribute, in column order *)
}
[@@deriving eq, ord, show { with_path = false }]

let make pred symbols = { pred; symbols }
let arity m = Array.length m.symbols

let to_string m =
  m.pred ^ "("
  ^ String.concat "," (Array.to_list (Array.map symbol_to_string m.symbols))
  ^ ")"

let pp_short ppf m = Fmt.string ppf (to_string m)

(** [input_positions m] is the column indexes carrying [+]. *)
let input_positions m =
  let out = ref [] in
  Array.iteri (fun i s -> if s = Input then out := i :: !out) m.symbols;
  List.rev !out

(** [constant_positions m] is the column indexes carrying [#]. *)
let constant_positions m =
  let out = ref [] in
  Array.iteri (fun i s -> if s = Constant then out := i :: !out) m.symbols;
  List.rev !out

(** [has_input m] holds iff some attribute carries [+]. Modes without any [+]
    would introduce Cartesian products (Section 2.2.2) and are rejected by
    {!Language.validate}. *)
let has_input m = Array.exists (( = ) Input) m.symbols
