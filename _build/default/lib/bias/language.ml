(** A complete language bias: predicate definitions plus mode definitions for
    a given database schema and target relation.

    This is the artifact AutoBias induces automatically (Section 3) and an
    expert writes by hand for the Manual baseline. The module also derives
    the lookup tables the learner needs: attribute types, join compatibility,
    per-relation modes, and whether an attribute may appear as a constant. *)

module String_set = Util.String_set

type t = {
  schema : Relational.Schema.t;  (** background relations *)
  target : Relational.Schema.relation_schema;  (** relation being learned *)
  predicate_defs : Predicate_def.t list;
  modes : Mode.t list;
}

let make ~schema ~target ~predicate_defs ~modes =
  { schema; target; predicate_defs; modes }

let schema b = b.schema
let target b = b.target
let predicate_defs b = b.predicate_defs
let modes b = b.modes

(** [attribute_types b pred pos] is the type-name set of attribute [pos] of
    relation [pred] (empty if the bias never mentions it). *)
let attribute_types b pred pos = Predicate_def.types_of b.predicate_defs pred pos

(** [share_type b p1 i1 p2 i2] holds iff the two attributes have a common
    type, i.e. a candidate clause may join them (Section 2.2.1). *)
let share_type b p1 i1 p2 i2 =
  not
    (String_set.is_empty
       (String_set.inter (attribute_types b p1 i1) (attribute_types b p2 i2)))

(** [modes_of b pred] is every mode definition for relation [pred]. *)
let modes_of b pred =
  List.filter (fun m -> String.equal m.Mode.pred pred) b.modes

(** [constant_allowed b pred pos] holds iff some mode of [pred] puts [#] on
    attribute [pos]. *)
let constant_allowed b pred pos =
  List.exists
    (fun m -> pos < Mode.arity m && m.Mode.symbols.(pos) = Mode.Constant)
    (modes_of b pred)

(** [size b] is the number of predicate plus mode definitions — the paper
    reports this as the amount of bias an expert had to write. *)
let size b = List.length b.predicate_defs + List.length b.modes

(** [validate b] checks internal consistency and returns a list of problems
    (empty when the bias is well-formed): unknown relations, arity
    mismatches, modes without any [+] (they would create Cartesian
    products), and body relations with modes but no predicate definition. *)
let validate b =
  let problems = ref [] in
  let problem fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let arity_of pred =
    if String.equal pred b.target.Relational.Schema.rel_name then
      Some (Relational.Schema.arity b.target)
    else
      Option.map Relational.Schema.arity
        (Relational.Schema.find_opt b.schema pred)
  in
  List.iter
    (fun (d : Predicate_def.t) ->
      match arity_of d.Predicate_def.pred with
      | None -> problem "predicate definition for unknown relation %s" d.pred
      | Some a ->
          if a <> Predicate_def.arity d then
            problem "predicate definition %s has arity %d, relation has %d"
              (Predicate_def.to_string d) (Predicate_def.arity d) a)
    b.predicate_defs;
  List.iter
    (fun (m : Mode.t) ->
      match arity_of m.Mode.pred with
      | None -> problem "mode definition for unknown relation %s" m.pred
      | Some a ->
          if a <> Mode.arity m then
            problem "mode definition %s has arity %d, relation has %d"
              (Mode.to_string m) (Mode.arity m) a;
          if not (Mode.has_input m) then
            problem "mode definition %s has no + attribute" (Mode.to_string m))
    b.modes;
  List.rev !problems

let pp ppf b =
  Fmt.pf ppf "@[<v># Predicate definitions@,%a@,# Mode definitions@,%a@]"
    Fmt.(list ~sep:cut (using Predicate_def.to_string string))
    b.predicate_defs
    Fmt.(list ~sep:cut (using Mode.to_string string))
    b.modes

let to_string b = Fmt.str "%a" pp b

(** {1 Parsing}

    The concrete syntax is one definition per line:
    ["student(T1)"] (predicate definition) or ["inPhase(+,#)"] (mode
    definition). Blank lines and [#]-comments are skipped. A line is a mode
    definition iff every argument is one of [+], [-], [#]. *)

exception Parse_error of string

let parse_line line =
  match String.index_opt line '(' with
  | None -> raise (Parse_error ("missing '(' in: " ^ line))
  | Some lp ->
      let pred = String.trim (String.sub line 0 lp) in
      let rp =
        match String.rindex_opt line ')' with
        | Some i when i > lp -> i
        | _ -> raise (Parse_error ("missing ')' in: " ^ line))
      in
      let args =
        String.sub line (lp + 1) (rp - lp - 1)
        |> String.split_on_char ','
        |> List.map String.trim
      in
      if args = [] || List.exists (String.equal "") args then
        raise (Parse_error ("empty argument in: " ^ line));
      let is_symbol a = a = "+" || a = "-" || a = "#" in
      if List.for_all is_symbol args then
        `Mode (Mode.make pred (Array.of_list (List.map Mode.symbol_of_string args)))
      else `Predicate (Predicate_def.make pred (Array.of_list args))

(** [parse ~schema ~target text] parses a bias file. Raises {!Parse_error} on
    malformed lines; use {!validate} afterwards for semantic checks. *)
let parse ~schema ~target text =
  let predicate_defs = ref [] and modes = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           match parse_line line with
           | `Mode m -> modes := m :: !modes
           | `Predicate d -> predicate_defs := d :: !predicate_defs);
  make ~schema ~target ~predicate_defs:(List.rev !predicate_defs)
    ~modes:(List.rev !modes)

(** [load ~schema ~target path] parses the bias file at [path].
    Raises {!Parse_error} or [Sys_error]. *)
let load ~schema ~target path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse ~schema ~target contents

(** [save b path] writes [b] in its concrete syntax to [path]. *)
let save b path =
  let oc = open_out path in
  output_string oc (to_string b);
  output_char oc '\n';
  close_out oc

(** {1 Built-in biases for the paper's baselines} *)

(** Modes giving each attribute in turn the [+] role, [-] elsewhere, plus,
    for each non-empty subset [m] of [const_positions] (capped power set),
    the same modes with [#] on [m]. This is the shared mode shape of
    AutoBias, Castor and NoConst; they differ in [const_positions]. *)
let modes_for_relation ?(power_set_cap = 8) rel_name arity const_positions =
  let subsets =
    Util.power_set ~cap:power_set_cap const_positions
    |> List.filter (fun s -> s <> [])
  in
  let mode_with consts input =
    let symbols =
      Array.init arity (fun i ->
          if List.mem i consts then Mode.Constant
          else if i = input then Mode.Input
          else Mode.Output)
    in
    Mode.make rel_name symbols
  in
  let plain =
    List.init arity (fun i -> mode_with [] i)
  in
  let with_consts =
    List.concat_map
      (fun consts ->
        List.init arity (fun i -> i)
        |> List.filter (fun i -> not (List.mem i consts))
        |> List.map (fun i -> mode_with consts i))
      subsets
  in
  plain @ with_consts

(** [castor ~schema ~target] is the plain-Castor baseline bias of Section 6:
    every attribute of every relation (and of the target) gets one universal
    type, and every attribute may be a variable or a constant. *)
let castor ~schema ~target =
  let universal rs =
    Predicate_def.make rs.Relational.Schema.rel_name
      (Array.make (Relational.Schema.arity rs) "T0")
  in
  let predicate_defs = universal target :: List.map universal schema in
  let modes =
    List.concat_map
      (fun rs ->
        let a = Relational.Schema.arity rs in
        modes_for_relation rs.Relational.Schema.rel_name a
          (List.init a (fun i -> i)))
      schema
  in
  make ~schema ~target ~predicate_defs ~modes

(** [no_const ~schema ~target] is Castor-without-constants: universal type,
    no [#] anywhere. *)
let no_const ~schema ~target =
  let b = castor ~schema ~target in
  let modes =
    List.concat_map
      (fun rs ->
        let a = Relational.Schema.arity rs in
        modes_for_relation rs.Relational.Schema.rel_name a [])
      schema
  in
  { b with modes }
