(** Mode definitions (Section 2.2.2): one symbol per attribute.

    [+] (Input) — must be an existing variable; [-] (Output) — existing or
    new variable; [#] (Constant) — must be a constant. Each body literal of
    a candidate clause must satisfy at least one mode. *)

type symbol =
  | Input  (** [+] *)
  | Output  (** [-] *)
  | Constant  (** [#] *)

val equal_symbol : symbol -> symbol -> bool
val symbol_to_string : symbol -> string

(** @raise Invalid_argument on anything but "+", "-", "#". *)
val symbol_of_string : string -> symbol

type t = {
  pred : string;
  symbols : symbol array;  (** one per attribute, in column order *)
}

val equal : t -> t -> bool
val compare : t -> t -> int
val make : string -> symbol array -> t
val arity : t -> int

(** [to_string m] is the paper's syntax, e.g. ["inPhase(+,#)"]. *)
val to_string : t -> string

val pp_short : Format.formatter -> t -> unit

(** [input_positions m] — column indexes carrying [+]. *)
val input_positions : t -> int list

(** [constant_positions m] — column indexes carrying [#]. *)
val constant_positions : t -> int list

(** [has_input m] — a mode without any [+] would create Cartesian products
    and is rejected by {!Language.validate}. *)
val has_input : t -> bool
