lib/bias/util.pp.ml: List Map Set String
