lib/bias/mode.pp.ml: Array Fmt List Ppx_deriving_runtime String
