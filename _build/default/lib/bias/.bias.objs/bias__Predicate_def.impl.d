lib/bias/predicate_def.pp.ml: Array Fmt List Ppx_deriving_runtime String Util
