lib/bias/mode.pp.mli: Format
