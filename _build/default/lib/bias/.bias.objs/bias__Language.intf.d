lib/bias/language.pp.mli: Format Mode Predicate_def Relational Util
