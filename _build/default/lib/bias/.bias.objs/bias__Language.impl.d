lib/bias/language.pp.ml: Array Fmt Format List Mode Option Predicate_def Relational String Util
