lib/bias/util.pp.mli: Map Set
