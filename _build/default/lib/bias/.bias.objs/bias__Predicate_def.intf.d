lib/bias/predicate_def.pp.mli: Format Util
