lib/relational/relation.pp.mli: Format Schema Value
