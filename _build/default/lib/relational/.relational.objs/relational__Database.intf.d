lib/relational/database.pp.mli: Format Relation Schema
