lib/relational/value.pp.ml: Fmt Hashtbl Map Ppx_deriving_runtime Set
