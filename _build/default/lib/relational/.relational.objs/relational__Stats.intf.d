lib/relational/stats.pp.mli: Database Format Relation Schema Value
