lib/relational/csv.pp.ml: Array Buffer List Printf Relation Schema String Value
