lib/relational/value.pp.mli: Format Hashtbl Map Set
