lib/relational/ops.pp.ml: Array List Relation Value
