lib/relational/database.pp.ml: Fmt Hashtbl List Relation Schema String
