lib/relational/stats.pp.ml: Array Database Fmt List Relation Schema Value
