lib/relational/relation.pp.ml: Array Fmt Hashtbl List Printf Schema Value
