lib/relational/schema.pp.mli: Format Map Set
