lib/relational/ops.pp.mli: Relation Value
