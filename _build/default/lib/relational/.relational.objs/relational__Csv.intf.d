lib/relational/csv.pp.mli: Relation Schema
