lib/relational/schema.pp.ml: Array Fmt Hashtbl List Map Ppx_deriving_runtime Printf Set String
