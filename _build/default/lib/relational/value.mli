(** Database values.

    A value is the content of one attribute of one tuple. Integers and
    strings cover every dataset shape in the paper (identifiers and small
    categorical values). Values are totally ordered and hashable so they can
    key indexes; note that [Int 1] and [Str "1"] are distinct values. *)

type t =
  | Int of int
  | Str of string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

(** [int i] / [str s] — constructors. *)
val int : int -> t

val str : string -> t

(** [hash v] is consistent with {!equal}. *)
val hash : t -> int

(** [to_string v] renders the payload without constructor noise. *)
val to_string : t -> string

(** [of_string s] parses an integer if [s] looks like one, else keeps the
    string; CSV loading and the clause parser use it. *)
val of_string : string -> t

(** [pp_short] prints like {!to_string}. *)
val pp_short : Format.formatter -> t -> unit

(** Hashtbl/Set/Map instances keyed by values. *)
module Key : Hashtbl.HashedType with type t = t

module Table : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
