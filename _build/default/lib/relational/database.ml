(** A database instance: a catalog of named relation instances.

    This is the substrate the learner runs against — the reproduction's
    stand-in for the VoltDB instance Castor uses in the paper. *)

type t = { catalog : (string, Relation.t) Hashtbl.t }

let create () = { catalog = Hashtbl.create 16 }

(** [add_relation db r] registers [r]. Raises [Invalid_argument] if a relation
    with the same name is already present. *)
let add_relation db r =
  let n = Relation.name r in
  if Hashtbl.mem db.catalog n then
    invalid_arg ("Database.add_relation: duplicate relation " ^ n);
  Hashtbl.replace db.catalog n r

(** [of_relations rs] builds a database holding relations [rs]. *)
let of_relations rs =
  let db = create () in
  List.iter (add_relation db) rs;
  db

(** [find db name] is the relation called [name]. Raises [Not_found]. *)
let find db name = Hashtbl.find db.catalog name

let find_opt db name = Hashtbl.find_opt db.catalog name
let mem db name = Hashtbl.mem db.catalog name

(** [relations db] lists all relations, sorted by name so iteration order is
    deterministic across runs. *)
let relations db =
  Hashtbl.fold (fun _ r acc -> r :: acc) db.catalog []
  |> List.sort (fun a b -> String.compare (Relation.name a) (Relation.name b))

(** [schema db] is the database schema derived from the catalog. *)
let schema db : Schema.t = List.map Relation.schema (relations db)

(** [total_tuples db] is the sum of all relation cardinalities. *)
let total_tuples db =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 (relations db)

(** [attribute_position db a] resolves attribute [a] to (relation, column).
    Raises [Not_found] if the relation or attribute is missing. *)
let attribute_position db (a : Schema.attribute) =
  let r = find db a.Schema.relation in
  (r, Schema.position (Relation.schema r) a.Schema.name)

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Relation.pp) (relations db)

(** [stats ppf db] prints one line per relation: name, arity, cardinality. *)
let stats ppf db =
  List.iter
    (fun r ->
      Fmt.pf ppf "%-24s arity=%d tuples=%d@." (Relation.name r) (Relation.arity r)
        (Relation.cardinality r))
    (relations db)
