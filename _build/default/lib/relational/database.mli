(** A database instance: a catalog of named relation instances — the
    reproduction's stand-in for the VoltDB instance Castor uses in the
    paper. *)

type t

val create : unit -> t

(** [add_relation db r] registers [r].
    @raise Invalid_argument on a duplicate relation name. *)
val add_relation : t -> Relation.t -> unit

(** [of_relations rs] builds a database holding relations [rs]. *)
val of_relations : Relation.t list -> t

(** [find db name] is the relation called [name].
    @raise Not_found if absent. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool

(** [relations db] lists all relations sorted by name (deterministic
    iteration order). *)
val relations : t -> Relation.t list

(** [schema db] is the database schema derived from the catalog. *)
val schema : t -> Schema.t

(** [total_tuples db] is the sum of all relation cardinalities. *)
val total_tuples : t -> int

(** [attribute_position db a] resolves attribute [a] to (relation, column).
    @raise Not_found if the relation or attribute is missing. *)
val attribute_position : t -> Schema.attribute -> Relation.t * int

val pp : Format.formatter -> t -> unit

(** [stats ppf db] prints one line per relation: name, arity, cardinality. *)
val stats : Format.formatter -> t -> unit
