(** Relational-algebra operators used by the learner and the samplers — all
    served from hash indexes, so semi-joins are linear in the probing side,
    matching the paper's cost model for its main-memory substrate. *)

(** [semi_join left lpos right rpos] is the right semi-join
    [left ⋉ right] (the paper's R1 ⋊ R2): the tuples of [right] whose column
    [rpos] value appears in column [lpos] of [left]. *)
val semi_join : Relation.t -> int -> Relation.t -> int -> Relation.tuple list

(** [semi_join_values keys right rpos] is the semi-join with the left side
    already reduced to its join-value set — the form bottom-clause
    construction uses (Algorithm 2's known-constants set M). *)
val semi_join_values : Value.Set.t -> Relation.t -> int -> Relation.tuple list

(** [join_count left lpos right rpos] is |left ⋈ right| without
    materializing the join. *)
val join_count : Relation.t -> int -> Relation.t -> int -> int

(** [contains_all sub subpos sup suppos] holds iff the exact unary IND
    sub[subpos] ⊆ sup[suppos] holds. *)
val contains_all : Relation.t -> int -> Relation.t -> int -> bool

(** [ind_error sub subpos sup suppos] is the approximate-IND error: the
    fraction of {e distinct} values of sub[subpos] that must be removed for
    the IND to hold (Section 3.1). 0. on an empty left side. *)
val ind_error : Relation.t -> int -> Relation.t -> int -> float

(** [natural_join_tuples left lpos right rpos] materializes the join pairs;
    for tests and tiny examples only. *)
val natural_join_tuples :
  Relation.t -> int -> Relation.t -> int ->
  (Relation.tuple * Relation.tuple) list
