(** Minimal CSV reader/writer for relation instances.

    Comma-separated, one tuple per line, no header; double quotes protect
    fields containing commas or quotes (doubled quotes escape a quote).
    Values parse with {!Value.of_string} (integers stay integers). *)

(** [parse_string ~schema contents] parses CSV [contents] into an instance of
    [schema].
    @raise Failure on arity mismatch or an unterminated quote. *)
val parse_string : schema:Schema.relation_schema -> string -> Relation.t

(** [load ~schema path] reads the file at [path]. *)
val load : schema:Schema.relation_schema -> string -> Relation.t

(** [to_string r] renders [r] as CSV, oldest tuple first, so save/load
    round-trips preserve order. *)
val to_string : Relation.t -> string

(** [save r path] writes [to_string r] to [path]. *)
val save : Relation.t -> string -> unit
