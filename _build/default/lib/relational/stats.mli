(** Column statistics: distinct counts and ratios (what the
    constant-threshold of Section 3.2 inspects) and frequency skew (what the
    Olken sampler corrects for), packaged for inspection and the CLI. *)

type column = {
  attribute : Schema.attribute;
  cardinality : int;  (** tuples in the relation *)
  distinct : int;
  distinct_ratio : float;  (** distinct / cardinality; 0 on empty relations *)
  max_frequency : int;
  top : (Value.t * int) list;  (** most frequent values, descending *)
}

(** [column ?top_k rel pos] profiles one column ([top_k] defaults to 5). *)
val column : ?top_k:int -> Relation.t -> int -> column

(** [relation ?top_k rel] profiles every column of [rel]. *)
val relation : ?top_k:int -> Relation.t -> column list

(** [database ?top_k db] profiles every column of every relation. *)
val database : ?top_k:int -> Database.t -> column list

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> column list -> unit
