(** In-memory relation instances with per-attribute hash indexes and the
    frequency statistics the Olken-style sampler needs (Section 4.2): the
    frequency m(a) of each value and an upper bound M on any frequency. *)

type tuple = Value.t array

val pp_tuple : Format.formatter -> tuple -> unit
val tuple_to_string : tuple -> string
val equal_tuple : tuple -> tuple -> bool

type t

(** [create schema] is an empty instance of [schema]. *)
val create : Schema.relation_schema -> t

val name : t -> string
val schema : t -> Schema.relation_schema
val arity : t -> int
val cardinality : t -> int

(** [tuples r] lists all tuples, newest first. *)
val tuples : t -> tuple list

(** [add r t] appends tuple [t]; indexes built earlier update incrementally.
    @raise Invalid_argument on arity mismatch. *)
val add : t -> tuple -> unit

val add_all : t -> tuple list -> unit

(** [of_tuples schema ts] builds a relation containing [ts]. *)
val of_tuples : Schema.relation_schema -> tuple list -> t

(** [lookup r pos v] is every tuple whose column [pos] equals [v] — an O(1)
    index probe plus output. The index on [pos] is built on first use. *)
val lookup : t -> int -> Value.t -> tuple list

(** [frequency r pos v] is m(v): tuples holding [v] in column [pos]. *)
val frequency : t -> int -> Value.t -> int

(** [max_frequency r pos] is M: an upper bound on any [frequency r pos _]. *)
val max_frequency : t -> int -> int

(** [distinct_count r pos] is the number of distinct values in column
    [pos]. *)
val distinct_count : t -> int -> int

(** [distinct_values r pos] lists them. *)
val distinct_values : t -> int -> Value.t list

(** [project r pos] is the duplicate-free projection π_pos as a value set. *)
val project : t -> int -> Value.Set.t

(** [select r pos values] is σ_(pos ∈ values)(r), served from the index. *)
val select : t -> int -> Value.Set.t -> tuple list

val fold : ('a -> tuple -> 'a) -> t -> 'a -> 'a
val iter : (tuple -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
