(** Column statistics: the profiling summaries the bias-induction story
    depends on (distinct counts and ratios feed the constant-threshold;
    frequency skew feeds the Olken sampler), packaged for inspection. *)

type column = {
  attribute : Schema.attribute;
  cardinality : int;  (** tuples in the relation *)
  distinct : int;
  distinct_ratio : float;  (** distinct / cardinality; 0 on empty relations *)
  max_frequency : int;
  top : (Value.t * int) list;  (** most frequent values, descending *)
}

(** [column ?top_k rel pos] profiles one column ([top_k] defaults to 5). *)
let column ?(top_k = 5) rel pos =
  let cardinality = Relation.cardinality rel in
  let distinct = Relation.distinct_count rel pos in
  let top =
    Relation.distinct_values rel pos
    |> List.map (fun v -> (v, Relation.frequency rel pos v))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < top_k)
  in
  {
    attribute =
      Schema.attr (Relation.name rel) (Relation.schema rel).Schema.attrs.(pos);
    cardinality;
    distinct;
    distinct_ratio =
      (if cardinality = 0 then 0.
       else float_of_int distinct /. float_of_int cardinality);
    max_frequency = Relation.max_frequency rel pos;
    top;
  }

(** [relation ?top_k rel] profiles every column of [rel]. *)
let relation ?top_k rel =
  List.init (Relation.arity rel) (fun pos -> column ?top_k rel pos)

(** [database ?top_k db] profiles every column of every relation, in the
    catalog's deterministic order. *)
let database ?top_k db =
  List.concat_map (relation ?top_k) (Database.relations db)

let pp_column ppf c =
  Fmt.pf ppf "%-28s distinct=%d/%d (%.1f%%) maxfreq=%d top=[%a]"
    (Schema.attribute_to_string c.attribute)
    c.distinct c.cardinality
    (100. *. c.distinct_ratio)
    c.max_frequency
    Fmt.(
      list ~sep:(any " ") (fun ppf (v, n) ->
          pf ppf "%a×%d" Value.pp_short v n))
    c.top

(** [pp ppf cols] — one line per column. *)
let pp ppf cols =
  List.iter (fun c -> Fmt.pf ppf "%a@." pp_column c) cols
