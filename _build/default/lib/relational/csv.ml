(** Minimal CSV reader/writer for relation instances.

    The format is deliberately simple: comma-separated, one tuple per line,
    double quotes around fields that contain commas or quotes (doubled quotes
    escape a quote). This is enough to round-trip every synthetic dataset and
    to let a user load their own data. *)

let split_line line =
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let n = String.length line in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv: unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(** [parse_string ~schema contents] parses CSV [contents] (no header) into a
    relation with the given schema. Raises [Failure] on arity mismatch. *)
let parse_string ~schema contents =
  let r = Relation.create schema in
  String.split_on_char '\n' contents
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then begin
           let fields = split_line line in
           let t = Array.of_list (List.map Value.of_string fields) in
           if Array.length t <> Schema.arity schema then
             failwith
               (Printf.sprintf "Csv: arity mismatch in %s: %s"
                  schema.Schema.rel_name line);
           Relation.add r t
         end);
  r

(** [load ~schema path] reads the file at [path] as the instance of [schema]. *)
let load ~schema path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse_string ~schema contents

(** [to_string r] renders relation [r] as CSV (no header), oldest tuple
    first so load/save round-trips preserve order. *)
let to_string r =
  let buf = Buffer.create 1024 in
  List.rev (Relation.tuples r)
  |> List.iter (fun t ->
         Array.iteri
           (fun i v ->
             if i > 0 then Buffer.add_char buf ',';
             Buffer.add_string buf (escape_field (Value.to_string v)))
           t;
         Buffer.add_char buf '\n');
  Buffer.contents buf

(** [save r path] writes [to_string r] to [path]. *)
let save r path =
  let oc = open_out path in
  output_string oc (to_string r);
  close_out oc
