(** Relation schemas and database schemas.

    An attribute is globally identified by (relation name, attribute name) —
    the paper's type graph (Algorithm 3) has one node per such pair. *)

type attribute = {
  relation : string;  (** owning relation name *)
  name : string;  (** attribute name within the relation *)
}

val equal_attribute : attribute -> attribute -> bool
val compare_attribute : attribute -> attribute -> int
val pp_attribute : Format.formatter -> attribute -> unit
val show_attribute : attribute -> string

(** [attr rel name] builds the global identifier of attribute [name] of
    relation [rel]. *)
val attr : string -> string -> attribute

(** [attribute_to_string a] is ["rel[name]"], the rendering used throughout
    the paper. *)
val attribute_to_string : attribute -> string

val pp_attribute_short : Format.formatter -> attribute -> unit

type relation_schema = {
  rel_name : string;
  attrs : string array;  (** attribute names, in column order *)
}

val equal_relation_schema : relation_schema -> relation_schema -> bool
val pp_relation_schema : Format.formatter -> relation_schema -> unit
val show_relation_schema : relation_schema -> string

(** [relation name attrs] builds a relation schema.
    @raise Invalid_argument on duplicate attribute names. *)
val relation : string -> string array -> relation_schema

val arity : relation_schema -> int

(** [position rs name] is the column index of attribute [name].
    @raise Not_found if absent. *)
val position : relation_schema -> string -> int

val position_opt : relation_schema -> string -> int option

(** [attributes rs] lists the global attribute identifiers of [rs] in column
    order. *)
val attributes : relation_schema -> attribute list

type t = relation_schema list
(** A database schema is the list of its relation schemas. *)

(** [find schema name] is the schema of relation [name].
    @raise Not_found if absent. *)
val find : t -> string -> relation_schema

val find_opt : t -> string -> relation_schema option

(** [all_attributes schema] lists every attribute of every relation. *)
val all_attributes : t -> attribute list

module Attr_map : Map.S with type key = attribute
module Attr_set : Set.S with type elt = attribute
