(** Relation schemas and database schemas.

    A relation schema is a relation name plus an ordered list of attribute
    names. An attribute is globally identified by the pair (relation name,
    attribute name) — the paper's type graph (Algorithm 3) has one node per
    such pair. *)

type attribute = {
  relation : string;  (** owning relation name *)
  name : string;  (** attribute name within the relation *)
}
[@@deriving eq, ord, show { with_path = false }]

(** [attr rel name] builds the global identifier of attribute [name] of
    relation [rel]. *)
let attr relation name = { relation; name }

let attribute_to_string a = a.relation ^ "[" ^ a.name ^ "]"
let pp_attribute_short ppf a = Fmt.string ppf (attribute_to_string a)

type relation_schema = {
  rel_name : string;
  attrs : string array;  (** attribute names, in column order *)
}
[@@deriving eq, show { with_path = false }]

(** [relation name attrs] builds a relation schema. Raises [Invalid_argument]
    on duplicate attribute names: positions would be ambiguous. *)
let relation rel_name attrs =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      if Hashtbl.mem seen a then
        invalid_arg
          (Printf.sprintf "Schema.relation: duplicate attribute %s in %s" a
             rel_name);
      Hashtbl.add seen a ())
    attrs;
  { rel_name; attrs }

let arity rs = Array.length rs.attrs

(** [position rs name] is the column index of attribute [name].
    Raises [Not_found] if absent. *)
let position rs name =
  let rec go i =
    if i >= Array.length rs.attrs then raise Not_found
    else if String.equal rs.attrs.(i) name then i
    else go (i + 1)
  in
  go 0

let position_opt rs name = try Some (position rs name) with Not_found -> None

(** [attributes rs] lists the global attribute identifiers of [rs] in column
    order. *)
let attributes rs =
  Array.to_list (Array.map (fun a -> attr rs.rel_name a) rs.attrs)

type t = relation_schema list
(** A database schema is the list of its relation schemas. *)

(** [find schema name] is the schema of relation [name].
    Raises [Not_found]. *)
let find (schema : t) name =
  List.find (fun rs -> String.equal rs.rel_name name) schema

let find_opt (schema : t) name =
  List.find_opt (fun rs -> String.equal rs.rel_name name) schema

(** [all_attributes schema] lists every attribute of every relation. *)
let all_attributes (schema : t) = List.concat_map attributes schema

module Attr_map = Map.Make (struct
  type t = attribute

  let compare = compare_attribute
end)

module Attr_set = Set.Make (struct
  type t = attribute

  let compare = compare_attribute
end)
