(** Database values.

    A value is the content of one attribute of one tuple. We support integers
    and strings; every dataset in the paper (UW, HIV, IMDb, FLT, SYS) stores
    identifiers and small categorical values, which these two constructors
    cover. Values are totally ordered and hashable so they can key indexes. *)

type t =
  | Int of int
  | Str of string
[@@deriving eq, ord, show { with_path = false }]

let int i = Int i
let str s = Str s

let hash = function
  | Int i -> Hashtbl.hash (0, i)
  | Str s -> Hashtbl.hash (1, s)

(** [to_string v] renders the payload without constructor noise; used by
    pretty-printers and CSV output. *)
let to_string = function
  | Int i -> string_of_int i
  | Str s -> s

(** [of_string s] parses an integer if [s] looks like one, else keeps the
    string. CSV loading uses this. *)
let of_string s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> Str s

let pp_short ppf v = Fmt.string ppf (to_string v)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Table = Hashtbl.Make (Key)
module Set = Set.Make (Key)
module Map = Map.Make (Key)
