(** Relational-algebra operators used by the learner and the samplers.

    Everything here is served from hash indexes, so semi-joins are linear in
    the size of the probing side, matching the cost model the paper assumes
    for its main-memory substrate. *)

(** [semi_join left lpos right rpos] is the right semi-join
    [left ⋉_{left.lpos = right.rpos} right] (written R1 ⋊ R2 in the paper):
    the tuples of [right] whose column [rpos] value appears in column [lpos]
    of [left]. Output order is deterministic given relation contents. *)
let semi_join left lpos right rpos =
  let keys = Relation.project left lpos in
  Value.Set.fold
    (fun v acc -> List.rev_append (Relation.lookup right rpos v) acc)
    keys []

(** [semi_join_values keys right rpos] is the semi-join where the left side is
    already reduced to its set of join values — the form the bottom-clause
    construction uses (the "known constants" set M of Algorithm 2). *)
let semi_join_values keys right rpos =
  Value.Set.fold
    (fun v acc -> List.rev_append (Relation.lookup right rpos v) acc)
    keys []

(** [join_count left lpos right rpos] is |left ⋈ right| on the given columns,
    computed without materializing the join. *)
let join_count left lpos right rpos =
  Relation.fold
    (fun acc t -> acc + Relation.frequency right rpos t.(lpos))
    left 0

(** [contains_all sub subpos sup suppos] holds iff every distinct value of
    [sub]'s column is a value of [sup]'s column — i.e. the exact unary IND
    sub[subpos] ⊆ sup[suppos] holds. *)
let contains_all sub subpos sup suppos =
  let sup_values = Relation.project sup suppos in
  Value.Set.subset (Relation.project sub subpos) sup_values

(** [ind_error sub subpos sup suppos] is the approximate-IND error: the
    fraction of *distinct* values of sub[subpos] that must be removed for
    sub[subpos] ⊆ sup[suppos] to hold (definition of [1] as used in
    Section 3.1). Returns 0. on an empty left side. *)
let ind_error sub subpos sup suppos =
  let sub_values = Relation.project sub subpos in
  let total = Value.Set.cardinal sub_values in
  if total = 0 then 0.
  else begin
    let sup_values = Relation.project sup suppos in
    let missing =
      Value.Set.cardinal (Value.Set.diff sub_values sup_values)
    in
    float_of_int missing /. float_of_int total
  end

(** [natural_join_tuples left lpos right rpos] materializes the pairs of the
    equi-join; used only by tests and tiny examples, never by the learner. *)
let natural_join_tuples left lpos right rpos =
  Relation.fold
    (fun acc tl ->
      List.fold_left
        (fun acc tr -> (tl, tr) :: acc)
        acc
        (Relation.lookup right rpos tl.(lpos)))
    left []
