(** A FOIL-style top-down learner — the reproduction's stand-in for Aleph
    configured to emulate FOIL (Section 6.1, "Systems").

    Like AutoBias/Castor it runs sequential covering (Algorithm 1), but
    LearnClause works top-down: start from the most general clause (the bare
    head) and greedily append the body literal with the best FOIL gain,

    {v gain(L) = p1 · (log2(p1/(p1+n1)) − log2(p0/(p0+n0))) v}

    where (p0, n0) and (p1, n1) are the positive/negative training examples
    covered before and after adding [L]. Candidate literals are generated
    from the same mode language: [+] positions take existing variables of a
    compatible type, [-] positions fresh variables, [#] positions the most
    frequent constants of the attribute. Top-down greedy search is biased
    toward short clauses — fast, but it misses definitions that only pay off
    after several joins, which is exactly how Aleph behaves in Table 5. *)

module String_set = Bias.Util.String_set

type config = {
  max_body_literals : int;
  constant_candidates : int;  (** [#] candidates per attribute (most frequent) *)
  candidate_cap : int;  (** candidate literals considered per step *)
  min_positives : int;
  min_precision : float;
  max_clauses : int;
  timeout : float option;
}

let default_config =
  {
    max_body_literals = 6;
    constant_candidates = 12;
    candidate_cap = 400;
    min_positives = 2;
    min_precision = 0.7;
    max_clauses = 20;
    timeout = Some 600.;
  }

exception Timed_out

type clause_state = {
  clause : Logic.Clause.t;
  var_types : (int, String_set.t) Hashtbl.t;
  gen : Logic.Term.Var_gen.t;
}

let initial_state bias =
  let target = Bias.Language.target bias in
  let gen = Logic.Term.Var_gen.create () in
  let var_types = Hashtbl.create 16 in
  let args =
    Array.init (Relational.Schema.arity target) (fun i ->
        let v = Logic.Term.Var_gen.fresh gen in
        (match v with
        | Logic.Term.Var id ->
            Hashtbl.replace var_types id
              (Bias.Language.attribute_types bias
                 target.Relational.Schema.rel_name i)
        | Logic.Term.Const _ -> assert false);
        v)
  in
  {
    clause = Logic.Clause.make (Logic.Literal.make target.Relational.Schema.rel_name args) [];
    var_types;
    gen;
  }

(* The most frequent constants of attribute [pos] of [rel]. *)
let frequent_constants db pred pos n =
  match Relational.Database.find_opt db pred with
  | None -> []
  | Some rel ->
      Relational.Relation.distinct_values rel pos
      |> List.map (fun v -> (Relational.Relation.frequency rel pos v, v))
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> List.filteri (fun i _ -> i < n)
      |> List.map snd

(* All candidate literals for extending [state] under [mode], with the
   variable-type table updates they imply. *)
let candidates_of_mode ~config db bias state (mode : Bias.Mode.t) =
  let pred = mode.Bias.Mode.pred in
  let arity = Bias.Mode.arity mode in
  (* For each position, the list of (term, new-variable?) choices. *)
  let choices =
    List.init arity (fun i ->
        let attr_types = Bias.Language.attribute_types bias pred i in
        match mode.Bias.Mode.symbols.(i) with
        | Bias.Mode.Input ->
            Hashtbl.fold
              (fun id types acc ->
                if not (String_set.is_empty (String_set.inter types attr_types))
                then (Logic.Term.Var id, false) :: acc
                else acc)
              state.var_types []
            |> List.sort compare
        | Bias.Mode.Output ->
            (* One fresh variable placeholder; materialized per candidate. *)
            [ (Logic.Term.Var (-1 - i), true) ]
        | Bias.Mode.Constant ->
            frequent_constants db pred i config.constant_candidates
            |> List.map (fun v -> (Logic.Term.Const v, false)))
  in
  if List.exists (fun c -> c = []) choices then []
  else begin
    let combos =
      List.fold_left
        (fun acc choice ->
          List.concat_map (fun prefix -> List.map (fun c -> c :: prefix) choice) acc)
        [ [] ] choices
      |> List.map List.rev
    in
    List.filteri (fun i _ -> i < config.candidate_cap) combos
    |> List.map (fun combo ->
           (* Materialize fresh variables and their types. *)
           let new_vars = ref [] in
           let args =
             List.mapi
               (fun i (term, fresh) ->
                 if fresh then begin
                   let v = Logic.Term.Var_gen.fresh state.gen in
                   (match v with
                   | Logic.Term.Var id ->
                       new_vars :=
                         (id, Bias.Language.attribute_types bias pred i)
                         :: !new_vars
                   | Logic.Term.Const _ -> assert false);
                   v
                 end
                 else term)
               combo
           in
           (Logic.Literal.make pred (Array.of_list args), !new_vars))
  end

let extend_state state (lit, new_vars) =
  let var_types = Hashtbl.copy state.var_types in
  List.iter (fun (id, types) -> Hashtbl.replace var_types id types) new_vars;
  {
    clause =
      Logic.Clause.make (Logic.Clause.head state.clause)
        (Logic.Clause.body state.clause @ [ lit ]);
    var_types;
    gen = state.gen;
  }

let log2 x = log x /. log 2.

let foil_gain ~p0 ~n0 ~p1 ~n1 =
  if p1 = 0 then neg_infinity
  else begin
    let info p n = log2 (float_of_int p /. float_of_int (p + n)) in
    float_of_int p1 *. (info p1 n1 -. info p0 n0)
  end

let learn_one_clause ~config ~cov ~check_deadline db bias ~uncovered ~negatives =
  let count clause =
    ( Learning.Coverage.count cov clause uncovered,
      Learning.Coverage.count cov clause negatives )
  in
  let rec grow state p0 n0 =
    check_deadline ();
    if n0 = 0 || Logic.Clause.size state.clause >= config.max_body_literals then
      (state.clause, p0, n0)
    else begin
      let candidates =
        Bias.Language.modes bias
        |> List.concat_map (fun m -> candidates_of_mode ~config db bias state m)
      in
      let best = ref None in
      List.iter
        (fun cand ->
          check_deadline ();
          let state' = extend_state state cand in
          let p1, n1 = count state'.clause in
          let gain = foil_gain ~p0 ~n0 ~p1 ~n1 in
          if gain > 0. then
            match !best with
            | Some (g, _, _, _) when g >= gain -> ()
            | _ -> best := Some (gain, state', p1, n1))
        candidates;
      match !best with
      | None -> (state.clause, p0, n0)
      | Some (_, state', p1, n1) -> grow state' p1 n1
    end
  in
  let state0 = initial_state bias in
  let p0 = List.length uncovered and n0 = List.length negatives in
  grow state0 p0 n0

type result = {
  definition : Logic.Clause.definition;
  elapsed : float;
  timed_out : bool;
}

(** [learn ?config cov ~positives ~negatives] runs the FOIL covering loop.
    [cov] supplies coverage testing (and hence the ground bottom clauses);
    the bias inside [cov] supplies the mode language. *)
let learn ?(config = default_config) cov ~positives ~negatives =
  let db = Learning.Coverage.database cov in
  let bias = Learning.Coverage.bias cov in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) config.timeout in
  let check_deadline () =
    match deadline with
    | Some d when Unix.gettimeofday () > d -> raise Timed_out
    | _ -> ()
  in
  let definition = ref [] in
  let uncovered = ref positives in
  let timed_out = ref false in
  (try
     let progress = ref true in
     while !progress && !uncovered <> [] && List.length !definition < config.max_clauses do
       let clause, p, n =
         learn_one_clause ~config ~cov ~check_deadline db bias
           ~uncovered:!uncovered ~negatives
       in
       let precision =
         if p + n = 0 then 0. else float_of_int p /. float_of_int (p + n)
       in
       if
         Logic.Clause.size clause > 0
         && p >= config.min_positives
         && precision >= config.min_precision
       then begin
         definition := clause :: !definition;
         let before = List.length !uncovered in
         uncovered :=
           List.filter (fun e -> not (Learning.Coverage.covers cov clause e)) !uncovered;
         if List.length !uncovered = before then progress := false
       end
       else progress := false
     done
   with Timed_out -> timed_out := true);
  {
    definition = List.rev !definition;
    elapsed = Unix.gettimeofday () -. t0;
    timed_out = !timed_out;
  }
