(** A Progol/Aleph-style learner: top-down search {e through the bottom
    clause} (Muggleton's inverse entailment, reference [37] of the paper).

    Aleph's default algorithm — distinct from the FOIL emulation in
    {!Foil} — saturates a seed example into its bottom clause, then searches
    top-down for the best subset of the bottom clause's literals: starting
    from the bare head, it repeatedly adds the head-connected bottom-clause
    literal that maximizes compression

    {v f(C) = p(C) − n(C) − |C| v}

    (positives covered minus negatives covered minus clause length). Because
    candidates are restricted to the bottom clause, the search space is the
    subsumption lattice between the empty clause and ⊥(e) — narrower than
    FOIL's literal schemas, wider than ARMG's example-driven jumps. It is
    included as an extension baseline and for the bench's search-strategy
    ablation. *)

type config = {
  bc : Learning.Bottom_clause.config;
  max_body_literals : int;
  max_expansions : int;  (** open-list pops per clause search *)
  min_positives : int;
  min_precision : float;
  max_clauses : int;
  timeout : float option;
}

let default_config =
  {
    bc = Learning.Bottom_clause.default_config;
    max_body_literals = 6;
    max_expansions = 300;
    min_positives = 2;
    min_precision = 0.7;
    max_clauses = 20;
    timeout = Some 600.;
  }

exception Timed_out

(* Literals of [bottom] addable to [clause]: head-connected w.r.t. the
   clause's current variables and not already present. *)
let addable bottom clause =
  let vars = Logic.Clause.vars clause in
  let body = Logic.Clause.body clause in
  List.filter
    (fun lit ->
      (not (List.exists (Logic.Literal.equal lit) body))
      && Logic.Literal.shares_var lit vars)
    (Logic.Clause.body bottom)

(* Uniform sample without replacement of at most [n] elements. *)
let sample_list rng n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  if len <= n then l
  else begin
    for i = len - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 n)
  end

let learn_one_clause ~config ~cov ~check_deadline ~rng ~uncovered ~negatives =
  match uncovered with
  | [] -> None
  | seed :: _ ->
      let bottom =
        Learning.Bottom_clause.build ~config:config.bc
          (Learning.Coverage.database cov)
          (Learning.Coverage.bias cov)
          ~rng ~example:seed
      in
      let head = Logic.Clause.head bottom in
      (* Search scores run on bounded subsamples (like {!Learning.Learn});
         the caller re-checks acceptance on the full training set. *)
      let eval_pos = seed :: sample_list rng 19 (List.filter (fun e -> e != seed) uncovered) in
      let eval_neg = sample_list rng 30 negatives in
      let score clause =
        check_deadline ();
        let p = Learning.Coverage.count cov clause eval_pos in
        let n = Learning.Coverage.count cov clause eval_neg in
        (p, n)
      in
      (* Best-first search over the subsumption lattice below ⊥(seed), as in
         Aleph: nodes are ordered by the optimistic bound p − |C| (the best
         compression a refinement can reach if it excludes every negative).
         Greedy hill-climbing would stall on plateaus (adding one half of a
         coupled join pair changes no counts); best-first walks through them.
         Scoring is {e lazy}: children are pushed with their parent's p as an
         admissible bound (adding a literal never gains positives) and only
         evaluated when popped, so the open list stays cheap. *)
      let module Node = struct
        type t = {
          clause : Logic.Clause.t;
          scores : (int * int) option;  (** (p, n) once evaluated *)
          parent_p : int;  (** upper bound on p when not yet evaluated *)
        }

        let p_bound node =
          match node.scores with Some (p, _) -> p | None -> node.parent_p

        let bound node = p_bound node - Logic.Clause.size node.clause

        let compression node =
          match node.scores with
          | Some (p, n) -> p - n - Logic.Clause.size node.clause
          | None -> min_int
      end in
      let visited = Hashtbl.create 64 in
      let pop open_list =
        match open_list with
        | [] -> None
        | _ ->
            let best =
              List.fold_left
                (fun acc node ->
                  match acc with
                  | Some b when Node.bound b >= Node.bound node -> acc
                  | _ -> Some node)
                None open_list
            in
            Option.map
              (fun b -> (b, List.filter (fun x -> not (x == b)) open_list))
              best
      in
      let p0 = List.length eval_pos in
      let start =
        { Node.clause = Logic.Clause.make head []; scores = None; parent_p = p0 }
      in
      let best_solution = ref None in
      let better_solution (a : Node.t) =
        match !best_solution with
        | None -> true
        | Some b -> Node.compression a > Node.compression b
      in
      let open_list = ref [ start ] in
      let expansions = ref 0 in
      while !open_list <> [] && !expansions < config.max_expansions do
        incr expansions;
        match pop !open_list with
        | None -> open_list := []
        | Some (node, rest) ->
            open_list := rest;
            let node =
              match node.Node.scores with
              | Some _ -> node
              | None ->
                  let p, n = score node.Node.clause in
                  { node with Node.scores = Some (p, n) }
            in
            let p, n = Option.get node.Node.scores in
            (* A node is an (interim) solution when it meets the precision
               bar on the search sample — insisting on n = 0 would make
               noisy datasets unlearnable. *)
            let precise =
              p > 0
              && float_of_int p /. float_of_int (p + n) >= config.min_precision
            in
            if precise && Logic.Clause.size node.Node.clause > 0
               && better_solution node
            then best_solution := Some node;
            (* Prune: a node whose optimistic bound cannot beat the best
               solution is dead; so are empty nodes and the length limit. *)
            let prune =
              p = 0
              || Logic.Clause.size node.Node.clause >= config.max_body_literals
              ||
              match !best_solution with
              | Some b -> Node.bound node <= Node.compression b
              | None -> false
            in
            if not prune then
              List.iter
                (fun lit ->
                  let clause =
                    Logic.Clause.make head
                      (Logic.Clause.body node.Node.clause @ [ lit ])
                  in
                  let key = Logic.Clause.to_string clause in
                  if not (Hashtbl.mem visited key) then begin
                    Hashtbl.replace visited key ();
                    open_list :=
                      { Node.clause; scores = None; parent_p = p } :: !open_list
                  end)
                (addable bottom node.Node.clause)
      done;
      let result_clause, rp, rn =
        match !best_solution with
        | Some node ->
            let p, n = Option.get node.Node.scores in
            (node.Node.clause, p, n)
        | None -> (Logic.Clause.make head [], p0, List.length eval_neg)
      in
      Some (seed, result_clause, rp, rn)

type result = {
  definition : Logic.Clause.definition;
  elapsed : float;
  timed_out : bool;
}

(** [learn ?config cov ~rng ~positives ~negatives] runs the covering loop
    with bottom-clause-guided top-down clause search. *)
let learn ?(config = default_config) cov ~rng ~positives ~negatives =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) config.timeout in
  let check_deadline () =
    match deadline with
    | Some d when Unix.gettimeofday () > d -> raise Timed_out
    | _ -> ()
  in
  let definition = ref [] in
  let uncovered = ref positives in
  let timed_out = ref false in
  (try
     let continue = ref true in
     while !continue && !uncovered <> [] && List.length !definition < config.max_clauses do
       match
         learn_one_clause ~config ~cov ~check_deadline ~rng
           ~uncovered:!uncovered ~negatives
       with
       | None -> continue := false
       | Some (seed, clause, _, _) ->
           (* Acceptance on the full training set, not the search sample. *)
           let p = Learning.Coverage.count cov clause !uncovered in
           let n = Learning.Coverage.count cov clause negatives in
           let precision =
             if p + n = 0 then 0. else float_of_int p /. float_of_int (p + n)
           in
           if
             Logic.Clause.size clause > 0
             && p >= config.min_positives
             && precision >= config.min_precision
           then begin
             definition := clause :: !definition;
             uncovered :=
               List.filter
                 (fun e -> not (Learning.Coverage.covers cov clause e))
                 !uncovered
           end;
           (* Always retire the seed: either its clause was accepted (and
              covers it), or no acceptable clause generalizes it. *)
           uncovered := List.filter (fun e -> e != seed) !uncovered
     done
   with Timed_out -> timed_out := true);
  {
    definition = List.rev !definition;
    elapsed = Unix.gettimeofday () -. t0;
    timed_out = !timed_out;
  }
