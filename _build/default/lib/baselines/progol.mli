(** A Progol/Aleph-style learner (inverse entailment, the paper's reference
    [37]): saturate a seed example into its bottom clause, then best-first
    search top-down through the bottom clause's literal subsets, ordered by
    the admissible bound p − |C| with lazy node evaluation. Unlike greedy
    FOIL it walks through score plateaus (coupled literal pairs); unlike
    ARMG it refines top-down. Included as an extension baseline and for the
    bench's search-strategy ablation. *)

type config = {
  bc : Learning.Bottom_clause.config;
  max_body_literals : int;
  max_expansions : int;  (** open-list pops per clause search *)
  min_positives : int;
  min_precision : float;
  max_clauses : int;
  timeout : float option;
}

val default_config : config

type result = {
  definition : Logic.Clause.definition;
  elapsed : float;
  timed_out : bool;
}

(** [learn ?config cov ~rng ~positives ~negatives] — covering loop with
    bottom-clause-guided top-down clause search. Search scores run on
    bounded subsamples; acceptance re-checks on the full training sets. *)
val learn :
  ?config:config ->
  Learning.Coverage.t ->
  rng:Random.State.t ->
  positives:Relational.Relation.tuple list ->
  negatives:Relational.Relation.tuple list ->
  result
