(** A FOIL-style top-down learner — the stand-in for Aleph configured to
    emulate FOIL (Section 6.1). Sequential covering where LearnClause grows
    a clause greedily by the body literal with the best FOIL gain; candidate
    literals come from the mode language ([+] = existing typed variable,
    [-] = fresh variable, [#] = frequent constants). Greedy gain is biased
    toward short clauses: fast, but blind to literal pairs that only pay off
    together — the mechanism behind Aleph's 0/0 rows in Table 5. *)

type config = {
  max_body_literals : int;
  constant_candidates : int;  (** [#] candidates per attribute (most frequent) *)
  candidate_cap : int;  (** candidate literals considered per step *)
  min_positives : int;
  min_precision : float;
  max_clauses : int;
  timeout : float option;
}

val default_config : config

(** [foil_gain ~p0 ~n0 ~p1 ~n1] = p1 · (log₂ p1/(p1+n1) − log₂ p0/(p0+n0));
    [neg_infinity] when p1 = 0. *)
val foil_gain : p0:int -> n0:int -> p1:int -> n1:int -> float

type result = {
  definition : Logic.Clause.definition;
  elapsed : float;
  timed_out : bool;
}

(** [learn ?config cov ~positives ~negatives] — the covering loop; [cov]
    supplies coverage testing and the mode language. *)
val learn :
  ?config:config ->
  Learning.Coverage.t ->
  positives:Relational.Relation.tuple list ->
  negatives:Relational.Relation.tuple list ->
  result
