lib/baselines/foil.pp.mli: Learning Logic Relational
