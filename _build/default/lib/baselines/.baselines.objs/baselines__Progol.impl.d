lib/baselines/progol.pp.ml: Array Hashtbl Learning List Logic Option Random Unix
