lib/baselines/foil.pp.ml: Array Bias Hashtbl Learning List Logic Option Relational Unix
