lib/baselines/progol.pp.mli: Learning Logic Random Relational
