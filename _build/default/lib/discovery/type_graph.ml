(** The type graph (Algorithm 3 of the paper).

    Nodes are attributes of the schema (including the target relation's);
    there is an edge [v → u] for every unary IND [v ⊆ u]. Types are seeded at
    nodes without outgoing edges and on cycles (every node of a cycle shares
    one type), then propagated against edge direction — the included
    attribute inherits the including attribute's types — until fixpoint.
    Because approximate-IND error accumulates along paths, a type crosses at
    most one approximate edge: types that arrived over an approximate edge
    are marked and never propagate across another one. *)

module Schema = Relational.Schema
module Attr_map = Schema.Attr_map
module String_set = Bias.Util.String_set

type edge = {
  src : Schema.attribute;  (** the included attribute, R[A] *)
  dst : Schema.attribute;  (** the including attribute, S[B] *)
  exact : bool;
  error : float;
}
[@@deriving show { with_path = false }]

type t = {
  nodes : Schema.attribute list;  (** sorted, deterministic *)
  edges : edge list;
  types : String_set.t Attr_map.t;  (** final type assignment *)
}

let nodes g = g.nodes
let edges g = g.edges

(** [types_of g attr] is the type set assigned to [attr] (empty for unknown
    attributes). *)
let types_of g attr =
  match Attr_map.find_opt attr g.types with
  | Some s -> s
  | None -> String_set.empty

let all_types g =
  Attr_map.fold (fun _ s acc -> String_set.union s acc) g.types String_set.empty

(* Tarjan SCC over the edge list; returns the list of components, each a list
   of attributes. *)
let sccs nodes edges =
  let index = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace index n i) nodes;
  let n = List.length nodes in
  let node_arr = Array.of_list nodes in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      match (Hashtbl.find_opt index e.src, Hashtbl.find_opt index e.dst) with
      | Some i, Some j -> adj.(i) <- j :: adj.(i)
      | _ -> ())
    edges;
  let idx = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    idx.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if idx.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) idx.(w))
      adj.(v);
    if low.(v) = idx.(v) then begin
      let comp = ref [] in
      let rec pop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp := node_arr.(w) :: !comp;
            if w <> v then pop ()
      in
      pop ();
      out := !comp :: !out
    end
  in
  for v = 0 to n - 1 do
    if idx.(v) = -1 then strongconnect v
  done;
  !out

(** [build ~attributes inds] runs Algorithm 3: creates the graph over
    [attributes] with one edge per IND in [inds] (symmetric approximate pairs
    should already be reduced with {!Ind.keep_lower_of_symmetric}), seeds and
    propagates types. Type names are [T1, T2, ...] in deterministic order. *)
let build ~attributes inds =
  let nodes =
    List.sort_uniq Schema.compare_attribute attributes
  in
  (* Deduplicate parallel edges, keeping the lowest error. *)
  let edge_tbl = Hashtbl.create 64 in
  List.iter
    (fun (ind : Ind.t) ->
      let key = (ind.Ind.sub, ind.Ind.sup) in
      match Hashtbl.find_opt edge_tbl key with
      | Some e when e.error <= ind.Ind.error -> ()
      | _ ->
          Hashtbl.replace edge_tbl key
            {
              src = ind.Ind.sub;
              dst = ind.Ind.sup;
              exact = Ind.is_exact ind;
              error = ind.Ind.error;
            })
    inds;
  let edges =
    Hashtbl.fold (fun _ e acc -> e :: acc) edge_tbl []
    |> List.sort (fun a b ->
           compare
             (Schema.attribute_to_string a.src, Schema.attribute_to_string a.dst)
             (Schema.attribute_to_string b.src, Schema.attribute_to_string b.dst))
  in
  (* Seed types. [seeded] maps attribute -> type list with approx-crossing
     flag; the flag is false for seeds. *)
  let counter = ref 0 in
  let fresh () =
    incr counter;
    "T" ^ string_of_int !counter
  in
  let has_outgoing = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace has_outgoing e.src ()) edges;
  (* state: attribute -> type name -> crossed_approx flag (false dominates) *)
  let state : (Schema.attribute, (string, bool) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let tbl_of attr =
    match Hashtbl.find_opt state attr with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace state attr t;
        t
  in
  let add attr ty crossed =
    let t = tbl_of attr in
    match Hashtbl.find_opt t ty with
    | None ->
        Hashtbl.replace t ty crossed;
        true
    | Some old when old && not crossed ->
        Hashtbl.replace t ty false;
        true
    | Some _ -> false
  in
  (* 1. Nodes without outgoing edges get a fresh type. *)
  List.iter
    (fun n ->
      if not (Hashtbl.mem has_outgoing n) then ignore (add n (fresh ()) false))
    nodes;
  (* 2. Every cycle (non-singleton SCC) shares one fresh type. *)
  List.iter
    (fun comp ->
      match comp with
      | [] | [ _ ] -> ()
      | _ ->
          let ty = fresh () in
          List.iter (fun n -> ignore (add n ty false)) comp)
    (sccs nodes edges);
  (* 3. Propagate to fixpoint: over v → u, v inherits u's types. A type that
     already crossed an approximate edge does not cross another one. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        match Hashtbl.find_opt state e.dst with
        | None -> ()
        | Some dst_types ->
            Hashtbl.iter
              (fun ty crossed ->
                let propagate, new_flag =
                  if e.exact then (true, crossed)
                  else ((not crossed), true)
                in
                if propagate && add e.src ty new_flag then changed := true)
              dst_types)
      edges
  done;
  let types =
    List.fold_left
      (fun acc n ->
        let set =
          match Hashtbl.find_opt state n with
          | None -> String_set.empty
          | Some t -> Hashtbl.fold (fun ty _ acc -> String_set.add ty acc) t String_set.empty
        in
        Attr_map.add n set acc)
      Attr_map.empty nodes
  in
  { nodes; edges; types }

(** [to_dot g] renders the graph in Graphviz DOT: solid edges for exact INDs,
    dashed for approximate ones (the style of Figure 1), node labels carrying
    the assigned types. *)
let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph type_graph {\n  rankdir=BT;\n";
  List.iter
    (fun n ->
      let types =
        String_set.elements (types_of g n) |> String.concat ","
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\\n{%s}\"];\n"
           (Schema.attribute_to_string n)
           (Schema.attribute_to_string n)
           types))
    g.nodes;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [style=%s%s];\n"
           (Schema.attribute_to_string e.src)
           (Schema.attribute_to_string e.dst)
           (if e.exact then "solid" else "dashed")
           (if e.exact then ""
            else Printf.sprintf ",label=\"%.2f\"" e.error)))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** [pp ppf g] prints a text rendering: each edge with its kind, then each
    attribute with its types. *)
let pp ppf g =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun e ->
      Fmt.pf ppf "%s %s %s%s@,"
        (Schema.attribute_to_string e.src)
        (if e.exact then "──▶" else "┄┄▶")
        (Schema.attribute_to_string e.dst)
        (if e.exact then "" else Printf.sprintf "  (α=%.2f)" e.error))
    g.edges;
  List.iter
    (fun n ->
      Fmt.pf ppf "types(%s) = {%s}@,"
        (Schema.attribute_to_string n)
        (String.concat ", " (String_set.elements (types_of g n))))
    g.nodes;
  Fmt.pf ppf "@]"
