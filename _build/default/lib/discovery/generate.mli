(** Automatic language-bias generation (Section 3): predicate definitions
    from the type graph, mode definitions from attribute cardinalities. *)

(** The constant-threshold hyper-parameter (Section 3.2). An attribute may
    appear as a constant when its distinct-value count is below [Absolute n]
    or its distinct-to-cardinality ratio is below [Relative r]. The paper's
    experiments use [Relative 0.18]. *)
type threshold =
  | Absolute of int
  | Relative of float

val threshold_to_string : threshold -> string

(** [constant_positions ~threshold rel] — the column indexes of [rel] that
    qualify as constants. *)
val constant_positions : threshold:threshold -> Relational.Relation.t -> int list

(** [predicate_defs ?product_cap ~graph schemas] — per relation, one
    predicate definition per member of the Cartesian product of its
    attributes' type sets (truncated at [product_cap] with a warning).
    Untyped attributes get a private fallback type. *)
val predicate_defs :
  ?product_cap:int ->
  graph:Type_graph.t ->
  Relational.Schema.relation_schema list ->
  Bias.Predicate_def.t list

(** [mode_defs ?power_set_cap ~threshold db] — the Section 3.2 modes: one
    [+]-rotation per relation plus [#]-modes for every non-empty subset of
    the constant-able attributes. *)
val mode_defs :
  ?power_set_cap:int -> threshold:threshold -> Relational.Database.t -> Bias.Mode.t list

type result = {
  bias : Bias.Language.t;
  graph : Type_graph.t;
  inds : Ind.t list;  (** after symmetric-pair reduction *)
  ind_time : float;  (** seconds spent discovering INDs *)
}

(** [induce ?ind_config ?threshold ?power_set_cap ?product_cap db ~target
    ~positive_examples] — the full AutoBias pipeline of Section 3: discover
    exact and approximate INDs over [db] plus the positive-example relation
    (so the target's attributes get typed), reduce symmetric pairs, build
    the type graph, generate predicate and mode definitions. *)
val induce :
  ?ind_config:Ind.config ->
  ?threshold:threshold ->
  ?power_set_cap:int ->
  ?product_cap:int ->
  Relational.Database.t ->
  target:Relational.Schema.relation_schema ->
  positive_examples:Relational.Relation.tuple list ->
  result
