(** Unary inclusion-dependency discovery (Section 3.1), Binder-style [43]:
    each attribute's distinct values are hash-partitioned into buckets and
    candidates are validated bucket by bucket, aborting a candidate the
    moment its error exceeds the threshold. The same pass yields the
    approximate INDs [(A ⊆ B, α)]. *)

type t = {
  sub : Relational.Schema.attribute;  (** the included side, R[A] *)
  sup : Relational.Schema.attribute;  (** the including side, S[B] *)
  error : float;  (** 0.0 for exact INDs *)
}

val equal : t -> t -> bool
val is_exact : t -> bool

(** [to_string ind] is ["R[A] ⊆ S[B]"], with ["(α=…)"] when approximate. *)
val to_string : t -> string

val pp_short : Format.formatter -> t -> unit

type config = {
  buckets : int;  (** hash buckets for divide-and-conquer validation *)
  max_error : float;  (** approximate-IND threshold α (the paper uses 0.5) *)
  min_overlap : int;
      (** approximate candidates whose left side has fewer distinct values
          are dropped — guards against spurious INDs between tiny columns *)
}

val default_config : config

(** [discover ?config db ~extra] finds every non-trivial unary IND (exact
    and approximate up to [max_error]) among the attributes of [db] plus the
    relations in [extra] (pass the positive-example relation so the target's
    columns get typed). Deterministically ordered. *)
val discover :
  ?config:config -> Relational.Database.t -> extra:Relational.Relation.t list -> t list

(** [keep_lower_of_symmetric inds] applies the paper's rule: of two
    approximate INDs in opposite directions only the lower-error one is
    kept; exact INDs are never dropped (two exact directions form a cycle,
    which Algorithm 3 resolves by unifying types). *)
val keep_lower_of_symmetric : t list -> t list
