(** The McCreath & Sharma style bias induction the paper contrasts itself
    with (reference [34], Section 7): two attributes get the same type as
    soon as their value sets {e overlap in at least one element}.

    Overlap is symmetric, so typing collapses to the connected components of
    the overlap graph — which is exactly the paper's criticism: one shared
    junk value fuses two unrelated domains, and the components snowball into
    a significantly under-restricted hypothesis space. AutoBias's
    directional INDs with error thresholds avoid this. Implemented for the
    bench's hypothesis-space ablation. *)

module Value = Relational.Value
module Schema = Relational.Schema

(* Union-find over attribute indexes. *)
let components n edges =
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  List.iter (fun (i, j) -> union i j) edges;
  Array.init n find

(** [type_components db ~extra] computes the overlap-typing: every attribute
    of [db] (plus the relations in [extra]) mapped to a type name; two
    attributes share a type iff they are connected through pairwise value
    overlaps. *)
let type_components db ~extra =
  let rels = Relational.Database.relations db @ extra in
  let columns =
    List.concat_map
      (fun rel ->
        let rs = Relational.Relation.schema rel in
        List.init (Relational.Relation.arity rel) (fun pos ->
            ( Schema.attr rs.Schema.rel_name rs.Schema.attrs.(pos),
              Relational.Relation.project rel pos )))
      rels
  in
  let arr = Array.of_list columns in
  let n = Array.length arr in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let _, vi = arr.(i) and _, vj = arr.(j) in
      if not (Value.Set.is_empty (Value.Set.inter vi vj)) then
        edges := (i, j) :: !edges
    done
  done;
  let comp = components n !edges in
  (* Deterministic type names per component, by smallest member index. *)
  let name_of = Hashtbl.create 16 in
  let counter = ref 0 in
  Array.to_list
    (Array.mapi
       (fun i (attr, _) ->
         let root = comp.(i) in
         let ty =
           match Hashtbl.find_opt name_of root with
           | Some t -> t
           | None ->
               incr counter;
               let t = "O" ^ string_of_int !counter in
               Hashtbl.replace name_of root t;
               t
         in
         (attr, ty))
       arr)

(** [induce ?threshold ?power_set_cap db ~target ~positive_examples] builds
    a complete bias with overlap-typing for the predicate definitions and
    the same cardinality-based mode generation AutoBias uses — isolating the
    typing policy as the only difference. *)
let induce ?(threshold = Generate.Relative 0.18) ?(power_set_cap = 8) db
    ~(target : Schema.relation_schema) ~positive_examples =
  let example_rel = Relational.Relation.of_tuples target positive_examples in
  let typing = type_components db ~extra:[ example_rel ] in
  let type_of attr =
    match
      List.find_opt (fun (a, _) -> Schema.equal_attribute a attr) typing
    with
    | Some (_, t) -> t
    | None -> "O0"
  in
  let schema = Relational.Database.schema db in
  let predicate_defs =
    List.map
      (fun (rs : Schema.relation_schema) ->
        Bias.Predicate_def.make rs.Schema.rel_name
          (Array.map
             (fun a -> type_of (Schema.attr rs.Schema.rel_name a))
             rs.Schema.attrs))
      (target :: schema)
  in
  let modes = Generate.mode_defs ~power_set_cap ~threshold db in
  Bias.Language.make ~schema ~target ~predicate_defs ~modes

(** [joinable_pairs bias] counts the unordered attribute pairs a candidate
    clause may join under [bias] — the hypothesis-space size proxy the
    ablation reports. *)
let joinable_pairs bias =
  let attrs =
    List.concat_map
      (fun (rs : Schema.relation_schema) ->
        List.init (Schema.arity rs) (fun i -> (rs.Schema.rel_name, i)))
      (Bias.Language.target bias :: Bias.Language.schema bias)
  in
  let arr = Array.of_list attrs in
  let count = ref 0 in
  Array.iteri
    (fun i (p1, i1) ->
      Array.iteri
        (fun j (p2, i2) ->
          if j > i && Bias.Language.share_type bias p1 i1 p2 i2 then incr count)
        arr)
    arr;
  !count
