(** The McCreath & Sharma style bias induction the paper contrasts itself
    with (reference [34]): same type as soon as two attributes' value sets
    overlap in one element — i.e. types are the connected components of the
    overlap graph, which snowball into an under-restricted hypothesis space.
    For the bench's hypothesis-space ablation. *)

(** [type_components db ~extra] — every attribute with its component type
    name ([O1], [O2], …, deterministic). *)
val type_components :
  Relational.Database.t ->
  extra:Relational.Relation.t list ->
  (Relational.Schema.attribute * string) list

(** [induce ?threshold ?power_set_cap db ~target ~positive_examples] — a
    complete bias: overlap typing + AutoBias's cardinality-based modes, so
    the typing policy is the only difference from
    {!Generate.induce}. *)
val induce :
  ?threshold:Generate.threshold ->
  ?power_set_cap:int ->
  Relational.Database.t ->
  target:Relational.Schema.relation_schema ->
  positive_examples:Relational.Relation.tuple list ->
  Bias.Language.t

(** [joinable_pairs bias] — unordered attribute pairs a clause may join
    under [bias]; the hypothesis-space size proxy. *)
val joinable_pairs : Bias.Language.t -> int
