(** Unary inclusion-dependency discovery (Section 3.1).

    Exact INDs are found with a Binder-style divide-and-conquer [43]: the
    distinct values of every attribute are partitioned into hash buckets;
    every candidate IND [A ⊆ B] is then validated bucket by bucket — a value
    of A hashed into bucket k can only appear in B's bucket k, so each check
    touches a small, cache-friendly slice, and a candidate is discarded the
    moment one bucket refutes it.

    The same pass measures the {e error} of every failed candidate — the
    fraction of distinct A-values missing from B — which yields the
    approximate INDs [(A ⊆ B, α)] of the paper: candidates whose error is at
    most [max_error] (the paper uses a deliberately loose 50%). *)

module Value = Relational.Value
module Schema = Relational.Schema

type t = {
  sub : Schema.attribute;  (** the included side, R[A] *)
  sup : Schema.attribute;  (** the including side, S[B] *)
  error : float;  (** 0.0 for exact INDs *)
}
[@@deriving eq, show { with_path = false }]

let is_exact ind = ind.error = 0.

let to_string ind =
  if is_exact ind then
    Printf.sprintf "%s ⊆ %s"
      (Schema.attribute_to_string ind.sub)
      (Schema.attribute_to_string ind.sup)
  else
    Printf.sprintf "%s ⊆ %s (α=%.2f)"
      (Schema.attribute_to_string ind.sub)
      (Schema.attribute_to_string ind.sup)
      ind.error

let pp_short ppf ind = Fmt.string ppf (to_string ind)

(* Distinct values of one attribute, partitioned into [buckets] hash
   buckets. *)
type column = {
  attr : Schema.attribute;
  bucket_sets : Value.Set.t array;
  distinct : int;
}

let column_of ~buckets (attr : Schema.attribute) rel pos =
  let bucket_sets = Array.make buckets Value.Set.empty in
  let distinct = ref 0 in
  List.iter
    (fun v ->
      let b = Value.hash v mod buckets in
      if not (Value.Set.mem v bucket_sets.(b)) then begin
        bucket_sets.(b) <- Value.Set.add v bucket_sets.(b);
        incr distinct
      end)
    (Relational.Relation.distinct_values rel pos);
  { attr; bucket_sets; distinct = !distinct }

(* Error of candidate sub ⊆ sup: fraction of sub's distinct values missing
   from sup. Buckets are scanned in order and the scan aborts once the error
   cannot come back under [give_up]. *)
let candidate_error ~give_up sub sup =
  if sub.distinct = 0 then 0.
  else begin
    let total = float_of_int sub.distinct in
    let allowed = int_of_float (Float.ceil (give_up *. total)) in
    let missing = ref 0 in
    (try
       Array.iteri
         (fun i s ->
           let miss = Value.Set.cardinal (Value.Set.diff s sup.bucket_sets.(i)) in
           missing := !missing + miss;
           if !missing > allowed then raise Exit)
         sub.bucket_sets
     with Exit -> ());
    float_of_int !missing /. total
  end

type config = {
  buckets : int;  (** hash buckets for the divide-and-conquer validation *)
  max_error : float;  (** approximate-IND error threshold α (paper: 0.5) *)
  min_overlap : int;
      (** candidates whose left side has fewer distinct values than this are
          kept only if exact — guards against spurious approximate INDs
          between tiny columns *)
}

let default_config = { buckets = 61; max_error = 0.5; min_overlap = 2 }

(** [discover ?config db ~extra] finds every non-trivial unary IND (exact and
    approximate up to [config.max_error]) among all attributes of [db] plus
    the relations in [extra] (the training-example relation is passed here so
    the target's attributes get typed too). Results are sorted by error then
    lexicographically, so output order is deterministic. *)
let discover ?(config = default_config) db ~extra =
  let rels = Relational.Database.relations db @ extra in
  let columns =
    List.concat_map
      (fun rel ->
        let rs = Relational.Relation.schema rel in
        List.mapi
          (fun pos name ->
            column_of ~buckets:config.buckets
              (Schema.attr rs.Schema.rel_name name)
              rel pos)
          (Array.to_list rs.Schema.attrs))
      rels
  in
  let out = ref [] in
  List.iter
    (fun sub ->
      List.iter
        (fun sup ->
          if not (Schema.equal_attribute sub.attr sup.attr) then begin
            let error = candidate_error ~give_up:config.max_error sub sup in
            let acceptable =
              if error = 0. then sub.distinct > 0
              else error <= config.max_error && sub.distinct >= config.min_overlap
            in
            if acceptable then
              out := { sub = sub.attr; sup = sup.attr; error } :: !out
          end)
        columns)
    columns;
  List.sort
    (fun a b ->
      match compare a.error b.error with
      | 0 -> compare (to_string a) (to_string b)
      | c -> c)
    !out

(** [keep_lower_of_symmetric inds] applies the paper's rule for approximate
    INDs that hold in both directions: only the lower-error direction is
    kept. Exact INDs are never dropped (two exact directions form a cycle,
    which Algorithm 3 handles by unifying types). *)
let keep_lower_of_symmetric inds =
  let approx_error = Hashtbl.create 64 in
  List.iter
    (fun ind ->
      if not (is_exact ind) then
        Hashtbl.replace approx_error (ind.sub, ind.sup) ind.error)
    inds;
  List.filter
    (fun ind ->
      is_exact ind
      ||
      match Hashtbl.find_opt approx_error (ind.sup, ind.sub) with
      | Some reverse_error ->
          ind.error < reverse_error
          || (ind.error = reverse_error
             && compare (to_string ind)
                  (to_string { sub = ind.sup; sup = ind.sub; error = reverse_error })
                <= 0)
      | None -> true)
    inds
