lib/discovery/type_graph.pp.ml: Array Bias Buffer Fmt Hashtbl Ind List Ppx_deriving_runtime Printf Relational String
