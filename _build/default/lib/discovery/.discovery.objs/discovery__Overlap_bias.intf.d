lib/discovery/overlap_bias.pp.mli: Bias Generate Relational
