lib/discovery/ind.pp.mli: Format Relational
