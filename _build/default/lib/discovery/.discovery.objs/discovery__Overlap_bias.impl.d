lib/discovery/overlap_bias.pp.ml: Array Bias Generate Hashtbl List Relational
