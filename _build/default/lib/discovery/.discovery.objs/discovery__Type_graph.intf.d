lib/discovery/type_graph.pp.mli: Bias Format Ind Relational
