lib/discovery/ind.pp.ml: Array Float Fmt Hashtbl List Ppx_deriving_runtime Printf Relational
