lib/discovery/generate.pp.mli: Bias Ind Relational Type_graph
