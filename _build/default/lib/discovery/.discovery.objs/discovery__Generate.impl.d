lib/discovery/generate.pp.ml: Array Bias Ind List Logs Printf Relational Type_graph Unix
