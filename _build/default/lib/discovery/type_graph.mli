(** The type graph (Algorithm 3): nodes are attributes, edges are unary INDs
    [v → u] for [v ⊆ u]. Types are seeded at nodes without outgoing edges
    and on cycles (one shared type per cycle), then propagated against edge
    direction to a fixpoint — except that a type crosses at most one
    approximate edge (error would accumulate along paths). *)

type edge = {
  src : Relational.Schema.attribute;  (** the included attribute *)
  dst : Relational.Schema.attribute;  (** the including attribute *)
  exact : bool;
  error : float;
}

val pp_edge : Format.formatter -> edge -> unit

type t

val nodes : t -> Relational.Schema.attribute list
val edges : t -> edge list

(** [types_of g attr] — the final type set of [attr] (empty if unknown). *)
val types_of : t -> Relational.Schema.attribute -> Bias.Util.String_set.t

val all_types : t -> Bias.Util.String_set.t

(** [build ~attributes inds] runs Algorithm 3 over [attributes] with one
    edge per IND (reduce symmetric approximate pairs with
    {!Ind.keep_lower_of_symmetric} first). Type names are [T1, T2, …] in
    deterministic order. *)
val build : attributes:Relational.Schema.attribute list -> Ind.t list -> t

(** [to_dot g] renders Graphviz DOT in the style of the paper's Figure 1:
    solid edges for exact INDs, dashed for approximate. *)
val to_dot : t -> string

(** [pp] — text rendering: edges with their kind, then each attribute's
    types. *)
val pp : Format.formatter -> t -> unit
