lib/datasets/flt.pp.ml: Array Bias Dataset Hashtbl List Printf Random Relational
