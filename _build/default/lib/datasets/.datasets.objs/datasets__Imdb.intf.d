lib/datasets/imdb.pp.mli: Dataset Relational
