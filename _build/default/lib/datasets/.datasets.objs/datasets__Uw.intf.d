lib/datasets/uw.pp.mli: Dataset Relational
