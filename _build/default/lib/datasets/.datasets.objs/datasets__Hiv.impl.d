lib/datasets/hiv.pp.ml: Array Bias Dataset List Printf Random Relational
