lib/datasets/sys_data.pp.mli: Dataset Relational
