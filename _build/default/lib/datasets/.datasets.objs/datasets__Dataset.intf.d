lib/datasets/dataset.pp.mli: Bias Format Random Relational
