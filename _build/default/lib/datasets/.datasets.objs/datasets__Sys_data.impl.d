lib/datasets/sys_data.pp.ml: Bias Dataset List Printf Random Relational
