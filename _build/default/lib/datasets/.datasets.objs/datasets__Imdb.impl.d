lib/datasets/imdb.pp.ml: Bias Dataset Hashtbl List Printf Random Relational
