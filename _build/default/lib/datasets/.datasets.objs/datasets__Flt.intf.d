lib/datasets/flt.pp.mli: Dataset Relational
