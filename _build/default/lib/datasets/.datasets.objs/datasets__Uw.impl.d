lib/datasets/uw.pp.ml: Array Bias Dataset Hashtbl List Printf Random Relational
