lib/datasets/dataset.pp.ml: Array Bias Fmt List Random Relational
