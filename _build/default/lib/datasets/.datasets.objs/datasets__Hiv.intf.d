lib/datasets/hiv.pp.mli: Dataset Relational
