(** Synthetic IMDb (Section 6.1): movies and the people who make them.

    Target: [dramaDirector(did)] — directed a drama movie. The accurate
    definition {e needs the constant} ['drama'], the dataset's defining
    property in Table 5 (Castor-NoConst collapses on it). *)

val schemas : Relational.Schema.t
val target_schema : Relational.Schema.relation_schema
val manual_bias_text : string
val genres : string list

(** [generate ?seed ?scale ()] — deterministic per seed; [scale] multiplies
    entity counts (default 1.0 ≈ 600 movies). *)
val generate : ?seed:int -> ?scale:float -> unit -> Dataset.t
