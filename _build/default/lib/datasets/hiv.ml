(** Synthetic HIV (Section 6.1): chemical compounds as atom/bond graphs.

    Target: [antiHIV(comp)]. The planted pharmacophore is a nitro-like
    substructure — a nitrogen atom double-bonded to an oxygen atom (bond type [double]) — which
    ~90% of the positive compounds contain; ~5% of the negative compounds
    contain it too (noise). The paper's defining properties are reproduced:
    the data is the largest multi-relational one, element frequencies are
    heavily skewed (carbon/hydrogen everywhere, nitrogen/oxygen uncommon,
    trace elements rare), and the target needs a multi-literal join through
    the bond graph — the regime where random semi-join sampling beats naive
    sampling (Table 6). *)

open Dataset

let schemas =
  Relational.Schema.
    [
      relation "compound" [| "comp" |];
      relation "atm" [| "comp"; "atom"; "elem" |];
      relation "bond" [| "comp"; "atom1"; "atom2"; "btype" |];
      relation "atomCharge" [| "atom"; "charge" |];
      relation "compoundWeight" [| "comp"; "weight" |];
    ]

let target_schema = Relational.Schema.relation "antiHIV" [| "comp" |]

let manual_bias_text =
  {|# Predicate definitions
antiHIV(TC)
compound(TC)
atm(TC,TA,TE)
bond(TC,TA,TA,TB)
atomCharge(TA,TH)
compoundWeight(TC,TW)
# Mode definitions
compound(+)
atm(+,-,-)
atm(+,-,#)
atm(-,+,-)
atm(-,+,#)
bond(+,-,-,-)
bond(-,+,-,-)
bond(-,+,-,#)
bond(-,-,+,-)
bond(-,-,+,#)
atomCharge(+,-)
compoundWeight(+,-)
|}

(* Element alphabet with skewed frequencies: c and h dominate; n, o are the
   pharmacophore; the tail is rare. *)
let random_element rng =
  let r = Random.State.float rng 1.0 in
  if r < 0.45 then "c"
  else if r < 0.80 then "h"
  else if r < 0.88 then "o"
  else if r < 0.94 then "n"
  else if r < 0.97 then "s"
  else if r < 0.985 then "cl"
  else if r < 0.995 then "f"
  else "li"

let generate ?(seed = 13) ?(scale = 1.0) () =
  let rng = Random.State.make [| seed; 0x417 |] in
  let n_compounds = scaled scale 300 in
  let find name = List.find (fun rs -> rs.Relational.Schema.rel_name = name) schemas in
  let rel name = Relational.Relation.create (find name) in
  let compound = rel "compound"
  and atm = rel "atm"
  and bond = rel "bond"
  and atom_charge = rel "atomCharge"
  and compound_weight = rel "compoundWeight" in
  let atom_counter = ref 0 in
  let fresh_atom () =
    incr atom_counter;
    v_str (Printf.sprintf "a%d" !atom_counter)
  in
  let positives = ref [] and negatives = ref [] in
  for ci = 0 to n_compounds - 1 do
    let comp = v_str (Printf.sprintf "comp%d" ci) in
    Relational.Relation.add compound [| comp |];
    let is_positive = ci mod 3 = 0 in
    (* 1:2 positive:negative, as in the paper. *)
    let n_atoms = 10 + Random.State.int rng 15 in
    let atoms =
      List.init n_atoms (fun _ ->
          let a = fresh_atom () in
          let e = random_element rng in
          Relational.Relation.add atm [| comp; a; v_str e |];
          Relational.Relation.add atom_charge
            [| a; v_int (Random.State.int rng 5 - 2) |];
          (a, e))
    in
    (* A random connected-ish skeleton: each atom bonds to a previous one. *)
    let arr = Array.of_list atoms in
    for i = 1 to Array.length arr - 1 do
      let j = Random.State.int rng i in
      let a1, _ = arr.(i) and a2, _ = arr.(j) in
      (* Background double bonds (mostly C=C/C=O) keep the bond type alone
         from separating the classes: the learner must conjoin the nitrogen
         and oxygen atom literals with the double bond. *)
      let r = Random.State.float rng 1.0 in
      let btype =
        if r < 0.72 then "single" else if r < 0.92 then "aromatic" else "double"
      in
      Relational.Relation.add bond [| comp; a1; a2; v_str btype |]
    done;
    (* Plant the pharmacophore: n =2= o. 90% of positives, 5% of
       negatives. *)
    let plant =
      (is_positive && flip rng 0.9) || ((not is_positive) && flip rng 0.05)
    in
    if plant then begin
      let n_atom = fresh_atom () and o_atom = fresh_atom () in
      Relational.Relation.add atm [| comp; n_atom; v_str "n" |];
      Relational.Relation.add atm [| comp; o_atom; v_str "o" |];
      Relational.Relation.add atom_charge [| n_atom; v_int 1 |];
      Relational.Relation.add atom_charge [| o_atom; v_int (-1) |];
      Relational.Relation.add bond [| comp; n_atom; o_atom; v_str "double" |];
      (* Attach the group to the skeleton. *)
      let anchor, _ = arr.(Random.State.int rng (Array.length arr)) in
      Relational.Relation.add bond [| comp; anchor; n_atom; v_str "single" |]
    end;
    Relational.Relation.add compound_weight
      [| comp; v_int (100 + Random.State.int rng 400) |];
    if is_positive then positives := [| comp |] :: !positives
    else negatives := [| comp |] :: !negatives
  done;
  let db =
    Relational.Database.of_relations
      [ compound; atm; bond; atom_charge; compound_weight ]
  in
  let manual_bias =
    Bias.Language.parse ~schema:schemas ~target:target_schema manual_bias_text
  in
  {
    name = "hiv";
    description =
      "synthetic anti-HIV compounds; target antiHIV(comp), planted N=O pharmacophore";
    db;
    target = target_schema;
    positives = shuffle rng !positives;
    negatives = shuffle rng !negatives;
    manual_bias;
    folds = 10;
  }
