(** Synthetic IMDb (Section 6.1): movies and the people who make them.

    Target: [dramaDirector(dir)] — the director directed a drama movie. The
    defining property of this dataset in the paper is that the accurate
    definition {e needs a constant} ([genre = drama]), which is why
    Castor-NoConst collapses on it while Manual and AutoBias reach F-measure
    ≈ 0.99 (Table 5). The schema is a representative subset of IMDb's 46
    relations: enough join structure for decoys, with the genre attribute
    comfortably under the constant-threshold. *)

open Dataset

let schemas =
  Relational.Schema.
    [
      relation "movie" [| "mid" |];
      relation "director" [| "did" |];
      relation "actor" [| "aid" |];
      relation "directedBy" [| "mid"; "did" |];
      relation "castMember" [| "mid"; "aid" |];
      relation "genre" [| "mid"; "gname" |];
      relation "releaseYear" [| "mid"; "year" |];
      relation "country" [| "mid"; "cname" |];
      relation "rating" [| "mid"; "stars" |];
    ]

let target_schema = Relational.Schema.relation "dramaDirector" [| "did" |]

let manual_bias_text =
  {|# Predicate definitions
dramaDirector(TD)
movie(TM)
director(TD)
actor(TA)
directedBy(TM,TD)
castMember(TM,TA)
genre(TM,TG)
releaseYear(TM,TY)
country(TM,TC)
rating(TM,TR)
# Mode definitions
movie(+)
director(+)
actor(+)
directedBy(+,-)
directedBy(-,+)
castMember(+,-)
castMember(-,+)
genre(+,-)
genre(+,#)
releaseYear(+,-)
country(+,-)
country(+,#)
rating(+,-)
|}

let genres =
  [ "drama"; "comedy"; "action"; "thriller"; "horror"; "documentary"; "romance" ]

let generate ?(seed = 11) ?(scale = 1.0) () =
  let rng = Random.State.make [| seed; 0x1Db |] in
  (* ~2 movies per director and a modest per-movie drama probability keep
     drama directors a minority, so the positive:negative ratio lands near
     the paper's 1:2. *)
  let n_movies = scaled scale 600 in
  let n_directors = scaled scale 300 in
  let n_actors = scaled scale 500 in
  let movies = List.init n_movies (fun i -> v_str (Printf.sprintf "m%d" i)) in
  let directors = List.init n_directors (fun i -> v_str (Printf.sprintf "d%d" i)) in
  let actors = List.init n_actors (fun i -> v_str (Printf.sprintf "a%d" i)) in
  let countries = List.map v_str [ "us"; "uk"; "fr"; "in"; "jp"; "de" ] in
  let find name = List.find (fun rs -> rs.Relational.Schema.rel_name = name) schemas in
  let rel name = Relational.Relation.create (find name) in
  let movie = rel "movie"
  and director = rel "director"
  and actor = rel "actor"
  and directed_by = rel "directedBy"
  and cast_member = rel "castMember"
  and genre = rel "genre"
  and release_year = rel "releaseYear"
  and country = rel "country"
  and rating = rel "rating" in
  List.iter (fun m -> Relational.Relation.add movie [| m |]) movies;
  List.iter (fun d -> Relational.Relation.add director [| d |]) directors;
  List.iter (fun a -> Relational.Relation.add actor [| a |]) actors;
  let drama_directors = Hashtbl.create 64 in
  List.iter
    (fun m ->
      let d = pick rng directors in
      Relational.Relation.add directed_by [| m; d |];
      (* Movies carry 1–2 genres; drama with ~30% probability. *)
      let gs =
        let g1 = pick rng (List.map v_str genres) in
        if flip rng 0.3 then
          let g2 = pick rng (List.map v_str genres) in
          if g1 = g2 then [ g1 ] else [ g1; g2 ]
        else [ g1 ]
      in
      List.iter (fun g -> Relational.Relation.add genre [| m; g |]) gs;
      if List.mem (v_str "drama") gs then Hashtbl.replace drama_directors d ();
      Relational.Relation.add release_year
        [| m; v_int (1960 + Random.State.int rng 60) |];
      Relational.Relation.add country [| m; pick rng countries |];
      Relational.Relation.add rating [| m; v_int (1 + Random.State.int rng 10) |];
      for _ = 1 to 2 + Random.State.int rng 4 do
        Relational.Relation.add cast_member [| m; pick rng actors |]
      done)
    movies;
  let db =
    Relational.Database.of_relations
      [ movie; director; actor; directed_by; cast_member; genre; release_year;
        country; rating ]
  in
  let positives, negatives =
    List.partition (fun d -> Hashtbl.mem drama_directors d) directors
  in
  let positives = List.map (fun d -> [| d |]) positives in
  let negatives = List.map (fun d -> [| d |]) negatives in
  (* Balance roughly 1:2 as in the paper. *)
  let negatives =
    let wanted = 2 * List.length positives in
    List.filteri (fun i _ -> i < wanted) negatives
  in
  let manual_bias =
    Bias.Language.parse ~schema:schemas ~target:target_schema manual_bias_text
  in
  {
    name = "imdb";
    description = "synthetic IMDb; target dramaDirector(did), needs constant 'drama'";
    db;
    target = target_schema;
    positives = shuffle rng positives;
    negatives = shuffle rng negatives;
    manual_bias;
    folds = 10;
  }
