(** A learning task: database, target relation, labelled examples, and the
    expert-written ("manual") language bias for the Manual baseline.

    The paper's datasets are real (UW-CSE) or proprietary (FLT, SYS) or too
    large to ship (HIV, IMDb); each generator in this library synthesizes a
    database with the same schema shape and a {e planted} target rule plus
    controlled noise, so the relative behaviour of bias-setting methods and
    samplers is preserved (see DESIGN.md, "Substitutions"). *)

type t = {
  name : string;
  description : string;
  db : Relational.Database.t;
  target : Relational.Schema.relation_schema;
  positives : Relational.Relation.tuple list;
  negatives : Relational.Relation.tuple list;
  manual_bias : Bias.Language.t;
  folds : int;  (** cross-validation folds the paper uses for this dataset *)
}

let summary ppf d =
  Fmt.pf ppf "%s: %d relations, %d tuples, %d+/%d- examples, target %s@."
    d.name
    (List.length (Relational.Database.relations d.db))
    (Relational.Database.total_tuples d.db)
    (List.length d.positives) (List.length d.negatives)
    d.target.Relational.Schema.rel_name

(** Shared helpers for the generators. *)

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(** [pick rng l] is a uniform element of non-empty list [l]. *)
let pick rng l = List.nth l (Random.State.int rng (List.length l))

(** [flip rng p] is true with probability [p]. *)
let flip rng p = Random.State.float rng 1.0 < p

(** [scaled scale n] is [n] scaled and clamped to at least 2, so tiny test
    scales still produce workable instances. *)
let scaled scale n = max 2 (int_of_float (float_of_int n *. scale))

(** [flip_labels ~rng ~fraction d] injects label noise: a [fraction] of the
    positives and of the negatives swap sides (the tuples are unchanged —
    only their labels lie). Used by the robustness ablation; evaluate
    against the {e original} dataset's labels to measure the damage. *)
let flip_labels ~rng ~fraction d =
  let split l =
    let flips = int_of_float (fraction *. float_of_int (List.length l)) in
    let shuffled = shuffle rng l in
    let rec go n acc = function
      | [] -> (acc, [])
      | rest when n = 0 -> (acc, rest)
      | x :: tl -> go (n - 1) (x :: acc) tl
    in
    go flips [] shuffled
  in
  let pos_to_neg, pos_kept = split d.positives in
  let neg_to_pos, neg_kept = split d.negatives in
  {
    d with
    positives = shuffle rng (pos_kept @ neg_to_pos);
    negatives = shuffle rng (neg_kept @ pos_to_neg);
  }

let v_str = Relational.Value.str
let v_int = Relational.Value.int
