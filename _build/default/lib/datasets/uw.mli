(** Synthetic UW-CSE (the paper's running example; Tables 2–4).

    Target: [advisedBy(stud, prof)]. Planted signals: roughly half the
    advised pairs co-author a publication and a fifth TA a course their
    advisor teaches, so recall tops out around the paper's ~0.5; spurious
    co-authorships cap precision. *)

val schemas : Relational.Schema.t
val target_schema : Relational.Schema.relation_schema

(** The expert bias in the concrete syntax of Table 3. *)
val manual_bias_text : string

(** [table4_fragment ()] is the exact database fragment of Table 4, used by
    the quickstart example and the Example 2.5 regression test. *)
val table4_fragment : unit -> Relational.Database.t

(** [generate ?seed ?scale ()] builds the dataset; deterministic per seed.
    [scale] multiplies entity counts (default 1.0 ≈ 60 students). *)
val generate : ?seed:int -> ?scale:float -> unit -> Dataset.t
