(** Synthetic HIV (Section 6.1): compounds as atom/bond graphs with heavily
    skewed element frequencies.

    Target: [antiHIV(comp)]. Planted pharmacophore: a nitrogen double-bonded
    to an oxygen (~90% of positives, ~5% of negatives); background double
    bonds keep the bond type alone from separating the classes, so the rule
    needs a multi-literal join through the bond graph. *)

val schemas : Relational.Schema.t
val target_schema : Relational.Schema.relation_schema
val manual_bias_text : string

(** [generate ?seed ?scale ()] — deterministic per seed; [scale] multiplies
    the compound count (default 1.0 = 300 compounds ≈ 25k tuples). *)
val generate : ?seed:int -> ?scale:float -> unit -> Dataset.t
