(** Synthetic FLT (Section 6.1): flights and airports (the paper's version
    came from a funded project and is proprietary).

    Target: [sameSourceVia(f1, f2)] — two flights leave the same airport and
    pass through the same location, i.e.

    {v sameSourceVia(x,y) :- flight(x,s,l), flight(y,s,l) v}

    The defining property is pure join structure with {e repeated variables
    across two literals and no constants}: a bottom-up learner finds it from
    the bottom clause, while a greedy top-down learner gets zero gain from
    either literal alone — reproducing Aleph's 0/0 row for FLT in Table 5. *)

open Dataset

let schemas =
  Relational.Schema.
    [
      relation "flight" [| "fid"; "src"; "dst" |];
      relation "airport" [| "code"; "city" |];
      relation "carrier" [| "fid"; "airline" |];
    ]

let target_schema = Relational.Schema.relation "sameSourceVia" [| "f1"; "f2" |]

let manual_bias_text =
  {|# Predicate definitions
sameSourceVia(TF,TF)
flight(TF,TP,TP)
airport(TP,TCITY)
carrier(TF,TAIR)
# Mode definitions
flight(+,-,-)
flight(-,+,-)
flight(-,-,+)
airport(+,-)
carrier(+,-)
carrier(+,#)
|}

let generate ?(seed = 17) ?(scale = 1.0) () =
  let rng = Random.State.make [| seed; 0xF17 |] in
  let n_airports = scaled scale 40 in
  let n_flights = scaled scale 2500 in
  let airports = List.init n_airports (fun i -> v_str (Printf.sprintf "ap%d" i)) in
  let airlines = List.map v_str [ "aa"; "bb"; "cc"; "dd"; "ee" ] in
  let cities = List.init n_airports (fun i -> v_str (Printf.sprintf "city%d" i)) in
  let find name = List.find (fun rs -> rs.Relational.Schema.rel_name = name) schemas in
  let rel name = Relational.Relation.create (find name) in
  let flight = rel "flight"
  and airport = rel "airport"
  and carrier = rel "carrier" in
  List.iteri
    (fun i ap -> Relational.Relation.add airport [| ap; List.nth cities i |])
    airports;
  let flights = ref [] in
  for i = 0 to n_flights - 1 do
    let fid = v_str (Printf.sprintf "f%d" i) in
    let src = pick rng airports in
    let dst = ref (pick rng airports) in
    while !dst = src do dst := pick rng airports done;
    Relational.Relation.add flight [| fid; src; !dst |];
    Relational.Relation.add carrier [| fid; pick rng airlines |];
    flights := (fid, src, !dst) :: !flights
  done;
  let db = Relational.Database.of_relations [ flight; airport; carrier ] in
  (* Positives: pairs sharing src and dst. Group flights by (src, dst). *)
  let by_route = Hashtbl.create 256 in
  List.iter
    (fun (fid, s, d) ->
      let k = (s, d) in
      let l = try Hashtbl.find by_route k with Not_found -> [] in
      Hashtbl.replace by_route k (fid :: l))
    !flights;
  let positives = ref [] in
  Hashtbl.iter
    (fun _ fids ->
      match fids with
      | f1 :: f2 :: _ -> positives := [| f1; f2 |] :: !positives
      | _ -> ())
    by_route;
  let positives =
    shuffle rng !positives |> List.filteri (fun i _ -> i < scaled scale 200)
  in
  (* Negatives: random flight pairs on different routes. *)
  let flight_arr = Array.of_list !flights in
  let negatives = ref [] in
  let wanted = 3 * List.length positives in
  let attempts = ref 0 in
  while List.length !negatives < wanted && !attempts < wanted * 20 do
    incr attempts;
    let f1, s1, d1 = flight_arr.(Random.State.int rng (Array.length flight_arr)) in
    let f2, s2, d2 = flight_arr.(Random.State.int rng (Array.length flight_arr)) in
    if f1 <> f2 && not (s1 = s2 && d1 = d2) then
      negatives := [| f1; f2 |] :: !negatives
  done;
  let manual_bias =
    Bias.Language.parse ~schema:schemas ~target:target_schema manual_bias_text
  in
  {
    name = "flt";
    description =
      "synthetic flights; target sameSourceVia(f1,f2) = same source and same via";
    db;
    target = target_schema;
    positives;
    negatives = !negatives;
    manual_bias;
    folds = 10;
  }
