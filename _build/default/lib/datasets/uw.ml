(** Synthetic UW-CSE (Section 1 / Table 2): a computer-science department.

    Target: [advisedBy(stud, prof)]. Planted generators of the label:
    roughly half of the advised pairs co-author a publication, and a fifth
    have the student TA a course the professor teaches — so a learner can
    explain only part of the positives (the paper's Table 5 reports recall
    around 0.5 for every method on UW). Noise: some non-advised pairs also
    co-author, which caps precision. *)

open Dataset

let schemas =
  Relational.Schema.
    [
      relation "student" [| "stud" |];
      relation "professor" [| "prof" |];
      relation "inPhase" [| "stud"; "phase" |];
      relation "hasPosition" [| "prof"; "position" |];
      relation "yearsInProgram" [| "stud"; "years" |];
      relation "taughtBy" [| "course"; "prof"; "term" |];
      relation "ta" [| "course"; "stud"; "term" |];
      relation "courseLevel" [| "course"; "level" |];
      relation "publication" [| "title"; "person" |];
    ]

let target_schema = Relational.Schema.relation "advisedBy" [| "stud"; "prof" |]

let manual_bias_text =
  {|# Predicate definitions (expert-written, after Table 3)
advisedBy(T1,T3)
student(T1)
professor(T3)
inPhase(T1,T2)
hasPosition(T3,T4)
yearsInProgram(T1,T6)
taughtBy(T7,T3,T8)
ta(T7,T1,T8)
courseLevel(T7,T9)
publication(T5,T1)
publication(T5,T3)
# Mode definitions
student(+)
professor(+)
inPhase(+,-)
inPhase(+,#)
hasPosition(+,-)
hasPosition(+,#)
yearsInProgram(+,-)
taughtBy(+,-,-)
taughtBy(-,+,-)
ta(+,-,-)
ta(-,+,-)
courseLevel(+,-)
publication(+,-)
publication(-,+)
|}

(** [table4_fragment ()] is the exact database fragment of Table 4 of the
    paper, used by the quickstart example and the Example 2.5 regression
    test: two students, two professors, phases, positions, and the
    publications that make [advisedBy(juan, sarita)] learnable. *)
let table4_fragment () =
  let find name = List.find (fun rs -> rs.Relational.Schema.rel_name = name) schemas in
  let of_rows name rows =
    Relational.Relation.of_tuples (find name)
      (List.map (fun row -> Array.of_list (List.map v_str row)) rows)
  in
  Relational.Database.of_relations
    [
      of_rows "student" [ [ "juan" ]; [ "john" ] ];
      of_rows "professor" [ [ "sarita" ]; [ "mary" ] ];
      of_rows "inPhase" [ [ "juan"; "post_quals" ]; [ "john"; "post_quals" ] ];
      of_rows "hasPosition"
        [ [ "sarita"; "assistant_prof" ]; [ "mary"; "associate_prof" ] ];
      of_rows "publication"
        [ [ "p1"; "juan" ]; [ "p1"; "sarita" ]; [ "p2"; "john" ]; [ "p2"; "mary" ] ];
      of_rows "yearsInProgram" [];
      of_rows "taughtBy" [];
      of_rows "ta" [];
      of_rows "courseLevel" [];
    ]

let generate ?(seed = 7) ?(scale = 1.0) () =
  let rng = Random.State.make [| seed; 0x07 |] in
  let n_students = scaled scale 60 in
  let n_profs = scaled scale 20 in
  let n_courses = scaled scale 30 in
  let students = List.init n_students (fun i -> v_str (Printf.sprintf "s%d" i)) in
  let profs = List.init n_profs (fun i -> v_str (Printf.sprintf "p%d" i)) in
  let courses = List.init n_courses (fun i -> v_str (Printf.sprintf "c%d" i)) in
  let terms = List.map v_str [ "autumn"; "winter"; "spring" ] in
  let phases = List.map v_str [ "pre_quals"; "post_quals"; "abd" ] in
  let positions =
    List.map v_str [ "assistant_prof"; "associate_prof"; "full_prof" ]
  in
  let levels = List.map v_str [ "level300"; "level400"; "level500" ] in
  let find name = List.find (fun rs -> rs.Relational.Schema.rel_name = name) schemas in
  let rel name = Relational.Relation.create (find name) in
  let student = rel "student"
  and professor = rel "professor"
  and in_phase = rel "inPhase"
  and has_position = rel "hasPosition"
  and years = rel "yearsInProgram"
  and taught_by = rel "taughtBy"
  and ta = rel "ta"
  and course_level = rel "courseLevel"
  and publication = rel "publication" in
  List.iter (fun s -> Relational.Relation.add student [| s |]) students;
  List.iter (fun p -> Relational.Relation.add professor [| p |]) profs;
  List.iter
    (fun s ->
      Relational.Relation.add in_phase [| s; pick rng phases |];
      Relational.Relation.add years [| s; v_int (1 + Random.State.int rng 7) |])
    students;
  List.iter
    (fun p -> Relational.Relation.add has_position [| p; pick rng positions |])
    profs;
  (* Courses: each taught by one professor, each gets a level. *)
  let teacher_of = Hashtbl.create 32 in
  List.iter
    (fun c ->
      let p = pick rng profs in
      Hashtbl.replace teacher_of c p;
      Relational.Relation.add taught_by [| c; p; pick rng terms |];
      Relational.Relation.add course_level [| c; pick rng levels |])
    courses;
  (* Advising: each student is advised by one professor. *)
  let pub_counter = ref 0 in
  let fresh_pub () =
    incr pub_counter;
    v_str (Printf.sprintf "pub%d" !pub_counter)
  in
  let co_publish a b =
    let t = fresh_pub () in
    Relational.Relation.add publication [| t; a |];
    Relational.Relation.add publication [| t; b |]
  in
  let advised = ref [] in
  List.iter
    (fun s ->
      let p = pick rng profs in
      advised := (s, p) :: !advised;
      (* ~55% of advised pairs co-author; ~20% have a TA relationship with a
         course the advisor teaches. The rest leave no learnable trace. *)
      if flip rng 0.55 then co_publish s p;
      if flip rng 0.20 then begin
        let advisor_courses =
          List.filter (fun c -> Hashtbl.find teacher_of c = p) courses
        in
        match advisor_courses with
        | [] -> ()
        | cs -> Relational.Relation.add ta [| pick rng cs; s; pick rng terms |]
      end)
    students;
  (* Noise: solo-ish publications and spurious co-authorships. *)
  List.iter
    (fun s -> if flip rng 0.3 then co_publish s (pick rng students))
    students;
  List.iter
    (fun p -> if flip rng 0.5 then co_publish p (pick rng profs))
    profs;
  (* Random TAs unrelated to advising. *)
  List.iter
    (fun s -> if flip rng 0.15 then Relational.Relation.add ta [| pick rng courses; s; pick rng terms |])
    students;
  let db =
    Relational.Database.of_relations
      [ student; professor; in_phase; has_position; years; taught_by; ta;
        course_level; publication ]
  in
  let positives = List.rev_map (fun (s, p) -> [| s; p |]) !advised in
  (* Negatives: non-advised (student, professor) pairs; ~8% get a spurious
     co-publication so precision stays below 1. *)
  let advised_set = Hashtbl.create 64 in
  List.iter (fun (s, p) -> Hashtbl.replace advised_set (s, p) ()) !advised;
  let negatives = ref [] in
  let wanted = 2 * List.length positives in
  let attempts = ref 0 in
  while List.length !negatives < wanted && !attempts < wanted * 20 do
    incr attempts;
    let s = pick rng students and p = pick rng profs in
    if not (Hashtbl.mem advised_set (s, p)) then begin
      Hashtbl.replace advised_set (s, p) ();
      if flip rng 0.08 then co_publish s p;
      negatives := [| s; p |] :: !negatives
    end
  done;
  let manual_bias =
    Bias.Language.parse ~schema:schemas ~target:target_schema manual_bias_text
  in
  {
    name = "uw";
    description = "synthetic UW-CSE department; target advisedBy(stud,prof)";
    db;
    target = target_schema;
    positives = shuffle rng positives;
    negatives = shuffle rng !negatives;
    manual_bias;
    folds = 5;
  }
