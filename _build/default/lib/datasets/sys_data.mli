(** Synthetic SYS (Section 6.1; the original came from a private company):
    process activity in a single wide relation.

    Target: [malicious(proc)] — the process both writes into a system area
    and executes a shell; each half alone is common among benign processes
    (greedy top-down gain stalls), and the definition needs constants on the
    low-cardinality op/objclass attributes (NoConst cannot express it). *)

val schemas : Relational.Schema.t
val target_schema : Relational.Schema.relation_schema
val manual_bias_text : string
val ops : string list
val classes : string list

(** [generate ?seed ?scale ()] — deterministic per seed; [scale] multiplies
    the process count (default 1.0 = 700 processes ≈ 18k events). *)
val generate : ?seed:int -> ?scale:float -> unit -> Dataset.t
