(** Synthetic FLT (Section 6.1; the original is proprietary): flights and
    airports.

    Target: [sameSourceVia(f1, f2)] — two flights with the same source that
    pass through the same location:
    [sameSourceVia(X,Y) :- flight(X,S,L), flight(Y,S,L)]. Pure join
    structure with repeated variables and no constants — bottom-up
    generalization finds it, greedy top-down gain cannot (Aleph's 0/0 row). *)

val schemas : Relational.Schema.t
val target_schema : Relational.Schema.relation_schema
val manual_bias_text : string

(** [generate ?seed ?scale ()] — deterministic per seed; [scale] multiplies
    flight/airport counts (default 1.0 = 2500 flights). *)
val generate : ?seed:int -> ?scale:float -> unit -> Dataset.t
