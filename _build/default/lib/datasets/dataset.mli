(** A learning task: database, target relation, labelled examples, and the
    expert-written ("manual") language bias.

    The paper's datasets are real, proprietary, or too large to ship; each
    generator synthesizes a database with the same schema shape and a
    {e planted} target rule plus controlled noise, so the relative behaviour
    of bias-setting methods and samplers is preserved (DESIGN.md,
    "Substitutions"). *)

type t = {
  name : string;
  description : string;
  db : Relational.Database.t;
  target : Relational.Schema.relation_schema;
  positives : Relational.Relation.tuple list;
  negatives : Relational.Relation.tuple list;
  manual_bias : Bias.Language.t;
  folds : int;  (** cross-validation folds the paper uses for this dataset *)
}

(** [summary ppf d] — one line: relations, tuples, examples, target. *)
val summary : Format.formatter -> t -> unit

(** {1 Helpers shared by the generators} *)

val shuffle : Random.State.t -> 'a list -> 'a list

(** [pick rng l] — a uniform element of non-empty [l]. *)
val pick : Random.State.t -> 'a list -> 'a

(** [flip rng p] — true with probability [p]. *)
val flip : Random.State.t -> float -> bool

(** [scaled scale n] — [n·scale], clamped to ≥ 2. *)
val scaled : float -> int -> int

(** [flip_labels ~rng ~fraction d] injects label noise: a [fraction] of each
    class swaps sides. Evaluate against the original labels to measure the
    damage. *)
val flip_labels : rng:Random.State.t -> fraction:float -> t -> t

val v_str : string -> Relational.Value.t
val v_int : int -> Relational.Value.t
