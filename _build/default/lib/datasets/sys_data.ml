(** Synthetic SYS (Section 6.1): process activity on a server, in a single
    wide relation (the paper's version came from a private software company).

    Target: [malicious(proc)]. A malicious process both {e writes into a
    system area} and {e executes a shell} — two events that are individually
    common among benign processes, so a greedy top-down learner gets no gain
    from either alone (Aleph's 0/0 row in Table 5), while bottom-up
    generalization recovers the conjunction

    {v malicious(x) :- event(x,write,system,_), event(x,exec,shell,_) v}

    The definition needs constants on the low-cardinality [op] and
    [objclass] attributes, so Castor-NoConst cannot express it either.
    Everything lives in one relation, the regime where the paper found naive
    sampling to beat random and stratified (Table 6). *)

open Dataset

let schemas =
  Relational.Schema.[ relation "event" [| "proc"; "op"; "objclass"; "hour" |] ]

let target_schema = Relational.Schema.relation "malicious" [| "proc" |]

let manual_bias_text =
  {|# Predicate definitions
malicious(TP)
event(TP,TO,TC,TH)
# Mode definitions
event(+,-,-,-)
event(+,#,-,-)
event(+,-,#,-)
event(+,#,#,-)
|}

let ops = [ "read"; "write"; "exec"; "open"; "close" ]
let classes = [ "system"; "shell"; "user"; "tmp"; "net" ]

let generate ?(seed = 23) ?(scale = 1.0) () =
  let rng = Random.State.make [| seed; 0x5F5 |] in
  let n_procs = scaled scale 700 in
  let events_per_proc = 25 in
  let find name = List.find (fun rs -> rs.Relational.Schema.rel_name = name) schemas in
  let event = Relational.Relation.create (find "event") in
  let add_event p op cls =
    Relational.Relation.add event
      [| p; v_str op; v_str cls; v_int (Random.State.int rng 24) |]
  in
  (* Background events avoid the two signature (op, class) combinations so
     their joint occurrence is controlled by the role logic below, not by
     chance. *)
  let add_background p =
    let rec go () =
      let op = pick rng ops and cls = pick rng classes in
      if (op = "write" && cls = "system") || (op = "exec" && cls = "shell")
      then go ()
      else add_event p op cls
    in
    go ()
  in
  let positives = ref [] and negatives = ref [] in
  for i = 0 to n_procs - 1 do
    let p = v_str (Printf.sprintf "proc%d" i) in
    (* The paper's SYS is heavily imbalanced (150+/2000−); we use ~1:6. *)
    let is_malicious = i mod 7 = 0 in
    for _ = 1 to events_per_proc do
      add_background p
    done;
    if is_malicious then begin
      (* ~55% of malicious processes exhibit the full two-event pattern
         (recall on SYS is ~0.51 in Table 5); the rest leave only one
         half. *)
      if flip rng 0.55 then begin
        add_event p "write" "system";
        add_event p "exec" "shell"
      end
      else if flip rng 0.5 then add_event p "write" "system"
      else add_event p "exec" "shell"
    end
    else begin
      (* Benign roles: maintenance daemons write to the system area,
         interactive sessions run shells; a small fraction does both
         (noise capping precision near the paper's 0.9). *)
      let r = Random.State.float rng 1.0 in
      if r < 0.35 then add_event p "write" "system"
      else if r < 0.70 then add_event p "exec" "shell"
      else if r < 0.72 then begin
        add_event p "write" "system";
        add_event p "exec" "shell"
      end
    end;
    if is_malicious then positives := [| p |] :: !positives
    else negatives := [| p |] :: !negatives
  done;
  let db = Relational.Database.of_relations [ event ] in
  let manual_bias =
    Bias.Language.parse ~schema:schemas ~target:target_schema manual_bias_text
  in
  {
    name = "sys";
    description =
      "synthetic server events, single relation; target malicious(proc)";
    db;
    target = target_schema;
    positives = shuffle rng !positives;
    negatives = shuffle rng !negatives;
    manual_bias;
    folds = 10;
  }
