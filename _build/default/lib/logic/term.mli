(** First-order terms: variables (interned by integer id) and constants
    (database values). *)

type t =
  | Var of int
  | Const of Relational.Value.t

val equal : t -> t -> bool
val compare : t -> t -> int
val is_var : t -> bool
val is_const : t -> bool

(** [var_name i] renders variable [i] in the Datalog convention (uppercase,
    so printed clauses re-parse): small ids map to X, Y, Z, T, U, V, W —
    the letter sequence of the paper's running examples — then V7, V8, … *)
val var_name : int -> string

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Fresh-variable generator; one per clause-construction context. *)
module Var_gen : sig
  type term := t
  type t

  val create : unit -> t

  (** [fresh g] is a variable with the next unused id. *)
  val fresh : t -> term

  (** [count g] is how many variables have been produced. *)
  val count : t -> int
end
