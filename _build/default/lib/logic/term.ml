(** First-order terms: variables and constants.

    Constants carry database values ([Relational.Value.t]); variables are
    interned by integer id so substitutions can be dense arrays or maps with
    cheap comparison. Fresh variables come from a counter local to each
    clause-construction context ([Var_gen]). *)

type t =
  | Var of int
  | Const of Relational.Value.t
[@@deriving eq, ord]

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Var _ -> false | Const _ -> true

(** Variable names follow the Datalog convention (uppercase = variable) so
    printed clauses re-parse with {!Parser}. Small ids map to the letter
    sequence the paper uses in its running examples (x, y, z, t, u, v, w),
    capitalized. *)
let var_name i =
  let letters = [| "X"; "Y"; "Z"; "T"; "U"; "V"; "W" |] in
  if i >= 0 && i < Array.length letters then letters.(i)
  else "V" ^ string_of_int i

let to_string = function
  | Var i -> var_name i
  | Const v -> Relational.Value.to_string v

let pp ppf t = Fmt.string ppf (to_string t)

(** Fresh-variable generator. One per bottom-clause construction. *)
module Var_gen = struct
  type nonrec t = { mutable next : int }

  let create () = { next = 0 }

  let fresh g =
    let i = g.next in
    g.next <- i + 1;
    Var i

  (** [count g] is how many variables have been produced. *)
  let count g = g.next
end
