(** θ-subsumption testing (Section 5 of the paper).

    Clause [c] θ-subsumes ground clause [g] iff there is a substitution θ
    with body(c)θ ⊆ body(g). Deciding this is NP-hard; two approximate
    engines are provided, both erring toward answering "no" (coverage is
    under-approximated, never over-approximated):

    - a budgeted backtracking search with value-indexed candidate filtering,
      fail-first ordering, unit propagation and randomized restarts (after
      the paper's reference [29], Kuzelka & Zelezny);
    - a left-to-right {e substitution-frontier} evaluator whose per-literal
      frontier is capped — linear-time, and the engine the learner uses,
      because it reports the paper's {e blocking atom} for free. *)

type ground
(** A ground clause body, pre-grouped by relation symbol and indexed by
    (predicate, position, value). *)

(** [ground_of_literals ls] indexes ground literals [ls].
    @raise Invalid_argument if some literal is not ground. *)
val ground_of_literals : Literal.t list -> ground

val ground_size : ground -> int
val ground_literals : ground -> Literal.t list

type config = {
  node_budget : int;  (** backtracking nodes allowed per try *)
  restarts : int;  (** randomized retries after the first try *)
}

val default_config : config

(** [subsumes_subst ?config ?rng ~subst c g] tests whether the body of [c]
    maps into [g] by some extension of [subst] (coverage testing binds the
    head from the example first). Returns the witnessing substitution. *)
val subsumes_subst :
  ?config:config ->
  ?rng:Random.State.t ->
  subst:Substitution.t ->
  Clause.t ->
  ground ->
  Substitution.t option

(** [subsumes ?config ?rng c g] is {!subsumes_subst} from the empty
    substitution. *)
val subsumes : ?config:config -> ?rng:Random.State.t -> Clause.t -> ground -> bool

(** {1 Prefix evaluation with substitution frontiers} *)

type verdict =
  | Covered of Substitution.t  (** a witness substitution *)
  | Blocked of int
      (** 1-based index of the blocking body literal (Section 2.3.2) *)

val default_frontier_cap : int

(** [step_frontier ?cap g frontier lit] advances the frontier across one
    body literal: all extensions mapping [lit] into [g], deduplicated,
    stride-capped at [cap] (preserving binding diversity), and rotated.
    An empty result means [lit] blocks. *)
val step_frontier :
  ?cap:int -> ground -> Substitution.t list -> Literal.t -> Substitution.t list

(** [eval_prefix ?cap ~subst c g] evaluates the body of [c] left to right
    from [subst], one {!step_frontier} per literal. *)
val eval_prefix :
  ?cap:int -> subst:Substitution.t -> Clause.t -> ground -> verdict

(** [covers_ground ?cap ~subst c g] is the boolean form of {!eval_prefix}. *)
val covers_ground : ?cap:int -> subst:Substitution.t -> Clause.t -> ground -> bool
