(** Horn clauses and Horn definitions (Definitions 2.1–2.2 of the paper). *)

type t = {
  head : Literal.t;
  body : Literal.t list;  (** in construction order *)
}
[@@deriving eq]

let make head body = { head; body }
let head c = c.head
let body c = c.body
let size c = List.length c.body

(** [vars c] is the set (as a hashtable) of variable ids appearing anywhere in
    [c]. *)
let vars c =
  let tbl = Hashtbl.create 32 in
  let add l = List.iter (fun i -> Hashtbl.replace tbl i ()) (Literal.vars l) in
  add c.head;
  List.iter add c.body;
  tbl

(** [head_connected_body c] keeps only the body literals transitively
    connected to the head through shared variables. Literals that lose their
    connection (e.g. after ARMG drops a blocking atom) carry no information
    about the example and are removed, as in Section 2.3.2. *)
let head_connected_body c =
  let connected = Hashtbl.create 32 in
  List.iter (fun i -> Hashtbl.replace connected i ()) (Literal.vars c.head);
  (* Fixpoint: a literal is kept once it shares a variable with the connected
     set; its variables then join the set. Repeated passes handle literals
     that appear before the literal that connects them. *)
  let remaining = ref c.body and kept = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    let still = ref [] in
    List.iter
      (fun l ->
        if Literal.shares_var l connected then begin
          List.iter (fun i -> Hashtbl.replace connected i ()) (Literal.vars l);
          kept := l :: !kept;
          changed := true
        end
        else still := l :: !still)
      !remaining;
    remaining := List.rev !still
  done;
  (* Restore construction order. *)
  let keep = Hashtbl.create 32 in
  List.iter (fun l -> Hashtbl.replace keep l ()) !kept;
  List.filter (fun l -> Hashtbl.mem keep l) c.body

(** [prune_head_connected c] is [c] with non-head-connected body literals
    dropped. *)
let prune_head_connected c = { c with body = head_connected_body c }

let apply subst c =
  {
    head = Substitution.apply_literal subst c.head;
    body = List.map (Substitution.apply_literal subst) c.body;
  }

let to_string c =
  let body =
    match c.body with
    | [] -> "true"
    | ls -> String.concat ", " (List.map Literal.to_string ls)
  in
  Literal.to_string c.head ^ " :- " ^ body

let pp ppf c = Fmt.string ppf (to_string c)

(** [pp_multiline ppf c] prints the head on its own line and each body literal
    indented, which is how long bottom clauses stay readable. *)
let pp_multiline ppf c =
  Fmt.pf ppf "@[<v2>%a :-@,%a@]" Literal.pp c.head
    Fmt.(list ~sep:(any ",@,") Literal.pp)
    c.body

type definition = t list
(** A Horn definition: clauses sharing a head relation (Definition 2.2). *)

let pp_definition ppf (d : definition) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) d

let definition_to_string d =
  String.concat "\n" (List.map to_string d)
