(** Substitutions θ: finite maps from variable ids to constant values.
    Subsumption only ever binds variables to constants (the target clause is
    ground), so the codomain is {!Relational.Value.t}. *)

type t

val empty : t
val compare : t -> t -> int
val find_opt : int -> t -> Relational.Value.t option
val bind : int -> Relational.Value.t -> t -> t
val mem : int -> t -> bool
val cardinal : t -> int
val bindings : t -> (int * Relational.Value.t) list

(** [extend s v value] is [Some] of [s] with [v ↦ value] added, or [None]
    when [v] is already bound to a different value. *)
val extend : t -> int -> Relational.Value.t -> t option

(** [apply_term s t] replaces a bound variable with its constant. *)
val apply_term : t -> Term.t -> Term.t

(** [apply_literal s l] applies [s] to every argument of [l]. *)
val apply_literal : t -> Literal.t -> Literal.t

(** [match_literal s pattern ground] extends [s] so that [pattern] becomes
    [ground], or [None] if impossible.
    @raise Invalid_argument when [ground] is not ground. *)
val match_literal : t -> Literal.t -> Literal.t -> t option

val pp : Format.formatter -> t -> unit
