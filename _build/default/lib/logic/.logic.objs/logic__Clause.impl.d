lib/logic/clause.pp.ml: Fmt Hashtbl List Literal Ppx_deriving_runtime String Substitution
