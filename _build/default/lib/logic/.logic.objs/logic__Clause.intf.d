lib/logic/clause.pp.mli: Format Hashtbl Literal Substitution
