lib/logic/literal.pp.ml: Array Fmt Hashtbl List Ppx_deriving_runtime Relational String Term
