lib/logic/parser.pp.ml: Array Clause Hashtbl List Literal Printf Relational String Term
