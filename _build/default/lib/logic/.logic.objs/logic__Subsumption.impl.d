lib/logic/subsumption.pp.ml: Array Clause Hashtbl List Literal Random Relational Substitution Term
