lib/logic/parser.pp.mli: Clause Literal
