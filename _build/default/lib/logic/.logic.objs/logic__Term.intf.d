lib/logic/term.pp.mli: Format Relational
