lib/logic/term.pp.ml: Array Fmt Ppx_deriving_runtime Relational
