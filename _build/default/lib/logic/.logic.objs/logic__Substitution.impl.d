lib/logic/substitution.pp.ml: Array Fmt Int Literal Map Relational String Term
