lib/logic/literal.pp.mli: Format Hashtbl Relational Term
