lib/logic/subsumption.pp.mli: Clause Literal Random Substitution
