lib/logic/substitution.pp.mli: Format Literal Relational Term
