(** Parser for clauses and literals in Datalog syntax.

    Identifiers starting with an uppercase letter or ['_'] are variables
    (Prolog convention); everything else is a constant. Quoted constants
    (['drama']) allow leading capitals. Variables are interned left to
    right, so re-parsing a printed clause gives an alpha-equivalent one. *)

exception Parse_error of string

(** [literal s] parses one literal, e.g. ["inPhase(X, post_quals)"].
    @raise Parse_error on malformed input. *)
val literal : string -> Literal.t

(** [clause s] parses a clause, e.g.
    ["advisedBy(X,Y) :- student(X), professor(Y)."]. A clause without
    [":-"] is a fact (empty body).
    @raise Parse_error on malformed input. *)
val clause : string -> Clause.t

(** [definition s] parses one clause per non-empty line; [#]-lines are
    comments. *)
val definition : string -> Clause.definition
