(** A small parser for clauses and literals in Datalog syntax.

    Grammar (whitespace-insensitive):

    {v
      clause  ::= literal [ ":-" literal { "," literal } ] [ "." ]
      literal ::= ident "(" term { "," term } ")"
      term    ::= VARIABLE | IDENT | INTEGER | 'quoted constant'
    v}

    Identifiers starting with an uppercase letter or ['_'] are variables
    (Prolog convention); everything else is a constant. Quoted constants
    (['drama'] or ["drama"]) allow leading capitals and special characters.
    Variables are interned left to right, so re-parsing a printed clause gives
    an alpha-equivalent clause. *)

exception Parse_error of string

type token =
  | Ident of string
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile
  | Dot

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !i)) in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (toks := Lparen :: !toks; incr i)
    else if c = ')' then (toks := Rparen :: !toks; incr i)
    else if c = ',' then (toks := Comma :: !toks; incr i)
    else if c = '.' then (toks := Dot :: !toks; incr i)
    else if c = ':' then
      if !i + 1 < n && s.[!i + 1] = '-' then (toks := Turnstile :: !toks; i := !i + 2)
      else fail "expected ':-'"
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> quote do incr j done;
      if !j >= n then fail "unterminated quote";
      toks := Quoted (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
      i := !j + 1
    end
    else begin
      let is_ident_char c =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = '-'
      in
      if not (is_ident_char c) then fail (Printf.sprintf "unexpected '%c'" c);
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := Ident (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
  done;
  List.rev !toks

let is_variable_name name =
  String.length name > 0
  && (name.[0] = '_' || (name.[0] >= 'A' && name.[0] <= 'Z'))

type state = {
  mutable toks : token list;
  vars : (string, int) Hashtbl.t;
  gen : Term.Var_gen.t;
}

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> raise (Parse_error "unexpected end of input")
  | t :: rest ->
      st.toks <- rest;
      t

let expect st tok what =
  if next st <> tok then raise (Parse_error ("expected " ^ what))

let parse_term st =
  match next st with
  | Quoted s -> Term.Const (Relational.Value.of_string s)
  | Ident name ->
      if is_variable_name name then begin
        match Hashtbl.find_opt st.vars name with
        | Some id -> Term.Var id
        | None ->
            let v = Term.Var_gen.fresh st.gen in
            (match v with
            | Term.Var id -> Hashtbl.replace st.vars name id
            | Term.Const _ -> assert false);
            v
      end
      else Term.Const (Relational.Value.of_string name)
  | _ -> raise (Parse_error "expected a term")

let parse_literal st =
  match next st with
  | Ident pred when not (is_variable_name pred) ->
      expect st Lparen "'('";
      let rec args acc =
        let t = parse_term st in
        match next st with
        | Comma -> args (t :: acc)
        | Rparen -> List.rev (t :: acc)
        | _ -> raise (Parse_error "expected ',' or ')'")
      in
      Literal.make pred (Array.of_list (args []))
  | _ -> raise (Parse_error "expected a predicate name")

(** [literal s] parses one literal. Raises {!Parse_error}. *)
let literal s =
  let st = { toks = tokenize s; vars = Hashtbl.create 8; gen = Term.Var_gen.create () } in
  let l = parse_literal st in
  (match peek st with
  | None | Some Dot -> ()
  | Some _ -> raise (Parse_error "trailing input after literal"));
  l

(** [clause s] parses a clause, e.g.
    ["advisedBy(X,Y) :- student(X), professor(Y)."]. A headless body is not
    allowed; a bodyless clause is a fact. Raises {!Parse_error}. *)
let clause s =
  let st = { toks = tokenize s; vars = Hashtbl.create 8; gen = Term.Var_gen.create () } in
  let head = parse_literal st in
  let body =
    match peek st with
    | Some Turnstile ->
        ignore (next st);
        let rec go acc =
          let l = parse_literal st in
          match peek st with
          | Some Comma ->
              ignore (next st);
              go (l :: acc)
          | _ -> List.rev (l :: acc)
        in
        go []
    | _ -> []
  in
  (match peek st with
  | None | Some Dot -> ()
  | Some _ -> raise (Parse_error "trailing input after clause"));
  Clause.make head body

(** [definition s] parses newline- or dot-separated clauses into a Horn
    definition. Blank lines and [#]-comments are ignored. *)
let definition s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || (String.length line > 0 && line.[0] = '#') then None
         else Some (clause line))
