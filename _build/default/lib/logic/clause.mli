(** Horn clauses and Horn definitions (Definitions 2.1–2.2 of the paper). *)

type t

val equal : t -> t -> bool
val make : Literal.t -> Literal.t list -> t
val head : t -> Literal.t

(** [body c] lists the body literals in construction order — the order the
    blocking-atom semantics of ARMG (Section 2.3.2) is defined over. *)
val body : t -> Literal.t list

(** [size c] is the number of body literals. *)
val size : t -> int

(** [vars c] is the set (as a unit hashtable) of variable ids in [c]. *)
val vars : t -> (int, unit) Hashtbl.t

(** [head_connected_body c] keeps only the body literals transitively
    connected to the head through shared variables (any chain, regardless of
    literal order). *)
val head_connected_body : t -> Literal.t list

(** [prune_head_connected c] is [c] with non-head-connected body literals
    dropped — what ARMG does after removing a blocking atom. *)
val prune_head_connected : t -> t

(** [apply subst c] applies a substitution to head and body. *)
val apply : Substitution.t -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [pp_multiline] prints the head on its own line and each body literal
    indented — readable for long bottom clauses. *)
val pp_multiline : Format.formatter -> t -> unit

type definition = t list
(** A Horn definition: clauses sharing a head relation. *)

val pp_definition : Format.formatter -> definition -> unit
val definition_to_string : definition -> string
