(** Literals (atoms): a relation symbol applied to terms. The learner only
    manipulates positive literals — learned definitions are non-recursive
    Datalog without negation (Section 2.1). *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val make : string -> Term.t array -> t
val arity : t -> int
val pred : t -> string
val args : t -> Term.t array

(** [vars l] lists the distinct variable ids of [l], first occurrence
    first. *)
val vars : t -> int list

(** [constants l] lists the constant values of [l] in position order
    (duplicates kept). *)
val constants : t -> Relational.Value.t list

val is_ground : t -> bool

(** [shares_var l set] holds iff some argument of [l] is a variable whose id
    is a key of [set]; used for head-connectivity checks. *)
val shares_var : t -> (int, unit) Hashtbl.t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [of_tuple pred tuple] turns a database tuple into a ground literal. *)
val of_tuple : string -> Relational.Relation.tuple -> t

(** [to_tuple l] inverts [of_tuple].
    @raise Invalid_argument when [l] has variables. *)
val to_tuple : t -> Relational.Relation.tuple
