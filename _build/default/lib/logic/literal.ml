(** Literals (atoms): a relation symbol applied to terms.

    The learner only manipulates positive literals — learned definitions are
    non-recursive Datalog without negation, as in the paper (Section 2.1). *)

type t = {
  pred : string;  (** relation symbol *)
  args : Term.t array;
}
[@@deriving eq, ord]

let make pred args = { pred; args }
let arity l = Array.length l.args
let pred l = l.pred
let args l = l.args

(** [vars l] lists the distinct variable ids of [l], in first-occurrence
    order. *)
let vars l =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (function
      | Term.Var i when not (Hashtbl.mem seen i) ->
          Hashtbl.add seen i ();
          out := i :: !out
      | Term.Var _ | Term.Const _ -> ())
    l.args;
  List.rev !out

(** [constants l] lists the constant values of [l] in position order
    (duplicates kept). *)
let constants l =
  Array.to_list l.args
  |> List.filter_map (function Term.Const v -> Some v | Term.Var _ -> None)

let is_ground l = Array.for_all Term.is_const l.args

(** [shares_var l vars] holds iff some argument of [l] is a variable in the
    id set [vars]; used for head-connectivity checks. *)
let shares_var l var_set =
  Array.exists
    (function Term.Var i -> Hashtbl.mem var_set i | Term.Const _ -> false)
    l.args

let to_string l =
  l.pred ^ "("
  ^ String.concat "," (Array.to_list (Array.map Term.to_string l.args))
  ^ ")"

let pp ppf l = Fmt.string ppf (to_string l)

(** [of_tuple pred tuple] turns a database tuple into a ground literal. *)
let of_tuple pred (t : Relational.Relation.tuple) =
  { pred; args = Array.map (fun v -> Term.Const v) t }

(** [to_tuple l] is the inverse of [of_tuple] for ground literals.
    Raises [Invalid_argument] when [l] has variables. *)
let to_tuple l =
  Array.map
    (function
      | Term.Const v -> v
      | Term.Var _ -> invalid_arg "Literal.to_tuple: non-ground literal")
    l.args
