(** Substitutions θ: finite maps from variable ids to constant values.

    Subsumption only ever binds variables to constants (the target clause is
    ground), so the codomain is [Relational.Value.t] rather than arbitrary
    terms. *)

module Int_map = Map.Make (Int)

type t = Relational.Value.t Int_map.t

let empty : t = Int_map.empty
let compare (a : t) b = Int_map.compare Relational.Value.compare a b
let find_opt v (s : t) = Int_map.find_opt v s
let bind v value (s : t) : t = Int_map.add v value s
let mem v (s : t) = Int_map.mem v s
let cardinal (s : t) = Int_map.cardinal s
let bindings (s : t) = Int_map.bindings s

(** [extend s v value] is [Some] of [s] with [v ↦ value] added, or [None] if
    [v] is already bound to a different value. *)
let extend (s : t) v value =
  match Int_map.find_opt v s with
  | None -> Some (Int_map.add v value s)
  | Some existing ->
      if Relational.Value.equal existing value then Some s else None

(** [apply_term s t] replaces a bound variable with its constant, leaving
    unbound variables and constants untouched. *)
let apply_term (s : t) = function
  | Term.Const _ as c -> c
  | Term.Var i as v -> (
      match Int_map.find_opt i s with
      | Some value -> Term.Const value
      | None -> v)

(** [apply_literal s l] applies [s] to every argument of [l]. *)
let apply_literal (s : t) (l : Literal.t) =
  Literal.make (Literal.pred l) (Array.map (apply_term s) (Literal.args l))

(** [match_literal s pattern ground] extends [s] so that [pattern] becomes
    [ground], or returns [None] if impossible. [ground] must be ground. *)
let match_literal (s : t) (pattern : Literal.t) (ground : Literal.t) =
  if
    (not (String.equal (Literal.pred pattern) (Literal.pred ground)))
    || Literal.arity pattern <> Literal.arity ground
  then None
  else begin
    let pa = Literal.args pattern and ga = Literal.args ground in
    let rec go i s =
      if i >= Array.length pa then Some s
      else
        match (pa.(i), ga.(i)) with
        | Term.Const c, Term.Const g ->
            if Relational.Value.equal c g then go (i + 1) s else None
        | Term.Var v, Term.Const g -> (
            match extend s v g with
            | Some s -> go (i + 1) s
            | None -> None)
        | _, Term.Var _ -> invalid_arg "Substitution.match_literal: non-ground"
    in
    go 0 s
  end

let pp ppf (s : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (v, value) ->
          pf ppf "%s ↦ %a" (Term.var_name v) Relational.Value.pp_short value))
    (bindings s)
