(** Bottom-clause construction (Algorithm 2, guided by the language bias of
    Section 2.3.1).

    Each of the [depth] iterations walks every mode definition: known
    constants whose types match a mode's [+] attribute feed the semi-join
    σ_(A ∈ M)(R); the sampling strategy picks at most [sample_size] matching
    tuples; each picked tuple becomes one literal per satisfying mode —
    [+]/[-] positions become variables (fresh for new constants), [#]
    positions stay constants. New constants found during a round only feed
    the {e next} round, and within a round modes with more [#] symbols are
    processed first (selective literals early keep prefix evaluation
    anchored). *)

type config = {
  depth : int;  (** iterations d of Algorithm 2 *)
  sample_size : int;  (** tuples kept per mode per iteration (paper: 20) *)
  strategy : Sampling.Strategy.t;
  max_body_literals : int;
      (** hard cap on the body size — an under-restricted bias (plain
          Castor) can otherwise produce clauses beyond what subsumption can
          process within budget *)
}

val default_config : config

(** [build ?config ?ground db bias ~rng ~example] constructs the bottom
    clause of [example]: head = target literal with example constants
    replaced by variables; body as above. With [ground:true] body constants
    are kept (the ground bottom clause of Section 5).
    @raise Invalid_argument on an example/target arity mismatch. *)
val build :
  ?config:config ->
  ?ground:bool ->
  Relational.Database.t ->
  Bias.Language.t ->
  rng:Random.State.t ->
  example:Relational.Relation.tuple ->
  Logic.Clause.t

(** [build_ground ?config db bias ~rng ~example] = [build ~ground:true]. *)
val build_ground :
  ?config:config ->
  Relational.Database.t ->
  Bias.Language.t ->
  rng:Random.State.t ->
  example:Relational.Relation.tuple ->
  Logic.Clause.t
