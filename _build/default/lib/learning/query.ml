(** Coverage testing as query execution (the alternative Section 5 rejects).

    A clause body is a conjunctive query over the database: clause [C] covers
    example [e] iff the Select-Project-Join query [∃ body(C)θ0] — with θ0
    binding the head variables to [e]'s constants — is satisfiable over the
    {e full} database instance. This module evaluates that query directly
    with index-backed backtracking:

    - at each step the remaining literal with the fewest candidate tuples is
      chosen (fail-first, like a DBMS picking the most selective join next);
    - candidates come from the relation's hash index on a bound column, so
      each probe is O(matches) — the clause may still require exploring
      exponentially many partial joins, which is exactly why the paper
      prefers θ-subsumption against sampled ground bottom clauses;
    - a node budget bounds the blow-up; an exhausted budget reports
      non-coverage (same under-approximation direction as the subsumption
      engine).

    The bench harness compares this engine against {!Coverage} to regenerate
    the Section 5 motivation. *)

module Value = Relational.Value
module Relation = Relational.Relation
module Database = Relational.Database

exception Budget_exhausted

type config = { node_budget : int }

let default_config = { node_budget = 200_000 }

(* Candidate tuples of [rel] compatible with [lit] under [subst]: probe the
   index on the most selective bound column, or scan when nothing is
   bound. *)
let candidates db subst lit =
  match Database.find_opt db (Logic.Literal.pred lit) with
  | None -> []
  | Some rel ->
      let args = Logic.Literal.args lit in
      let best = ref None in
      Array.iteri
        (fun i t ->
          let bound =
            match t with
            | Logic.Term.Const v -> Some v
            | Logic.Term.Var x -> Logic.Substitution.find_opt x subst
          in
          match bound with
          | None -> ()
          | Some v -> (
              let n = Relation.frequency rel i v in
              match !best with
              | Some (bn, _, _) when bn <= n -> ()
              | _ -> best := Some (n, i, v)))
        args;
      let tuples =
        match !best with
        | Some (_, i, v) -> Relation.lookup rel i v
        | None -> Relation.tuples rel
      in
      List.filter_map
        (fun tuple ->
          Logic.Substitution.match_literal subst lit
            (Logic.Literal.of_tuple (Logic.Literal.pred lit) tuple))
        tuples

(* Cheap selectivity estimate used for literal ordering: the size of the
   index bucket on the most selective bound column (or the relation's
   cardinality when nothing is bound). *)
let estimate db subst lit =
  match Database.find_opt db (Logic.Literal.pred lit) with
  | None -> 0
  | Some rel ->
      let args = Logic.Literal.args lit in
      let best = ref (Relation.cardinality rel) in
      Array.iteri
        (fun i t ->
          let bound =
            match t with
            | Logic.Term.Const v -> Some v
            | Logic.Term.Var x -> Logic.Substitution.find_opt x subst
          in
          match bound with
          | None -> ()
          | Some v ->
              let n = Relation.frequency rel i v in
              if n < !best then best := n)
        args;
      !best

(** [satisfiable ?config db ~subst body] decides whether the conjunctive
    query [body] has a solution over [db] extending [subst]. Returns the
    witnessing substitution. Raises {!Budget_exhausted} when the node budget
    runs out. *)
let satisfiable ?(config = default_config) db ~subst body =
  let nodes = ref 0 in
  let tick () =
    incr nodes;
    if !nodes > config.node_budget then raise Budget_exhausted
  in
  let rec search remaining subst =
    tick ();
    match remaining with
    | [] -> Some subst
    | _ ->
        let sorted =
          List.map (fun l -> (estimate db subst l, l)) remaining
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        (match sorted with
        | [] -> Some subst
        | (_, lit) :: tl ->
            let rest = List.map snd tl in
            let rec try_candidates = function
              | [] -> None
              | s :: more -> (
                  match search rest s with
                  | Some _ as ok -> ok
                  | None -> try_candidates more)
            in
            try_candidates (candidates db subst lit))
  in
  search body subst

(** [covers ?config db clause example] runs the clause as a
    Select-Project-Join query with the head bound to [example]. An exhausted
    budget counts as non-coverage. *)
let covers ?config db clause example =
  match Coverage.head_subst clause example with
  | None -> false
  | Some subst -> (
      try
        match satisfiable ?config db ~subst (Logic.Clause.body clause) with
        | Some _ -> true
        | None -> false
      with Budget_exhausted -> false)

(** [definition_covers ?config db def example] — disjunction over clauses. *)
let definition_covers ?config db def example =
  List.exists (fun c -> covers ?config db c example) def

(** [count ?config db clause examples] — number of covered examples. *)
let count ?config db clause examples =
  List.fold_left
    (fun acc e -> if covers ?config db clause e then acc + 1 else acc)
    0 examples
