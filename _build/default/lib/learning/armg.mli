(** The asymmetric relative minimal generalization operator (Section 2.3.2):
    repeatedly remove the {e blocking atom} — the least-indexed body literal
    whose prefix fails to cover the example — until the example is covered,
    then drop literals that lost head-connectedness. Implemented as a single
    incremental frontier sweep: one {!Logic.Subsumption.step_frontier} per
    surviving literal. *)

(** [generalize cov clause ~example] applies ARMG. [None] when the clause
    head cannot be bound to [example]. The result covers [example]
    (approximately — frontier caps under-approximate) and is never larger
    than [clause]. *)
val generalize :
  Coverage.t ->
  Logic.Clause.t ->
  example:Relational.Relation.tuple ->
  Logic.Clause.t option
