(** Applying a learned Horn definition to a database: bottom-up derivation of
    every target tuple the definition entails.

    Learned definitions are non-recursive Datalog without negation
    (Section 2.1), so one pass per clause suffices: enumerate the solutions
    of the body query and project each witness onto the head arguments. This
    is what a user does with AutoBias's output — materialize the predicted
    relation, or stream predictions. Budgets bound both the search and the
    result set so an over-general clause cannot blow up the caller. *)

module Value = Relational.Value

type config = {
  node_budget : int;  (** backtracking nodes per clause *)
  max_results : int;  (** derived head tuples per clause *)
}

let default_config = { node_budget = 2_000_000; max_results = 100_000 }

exception Done

(* Enumerate solutions of [body] over [db], calling [emit] on each witness
   substitution. Uses the same index-backed fail-first ordering as
   {!Query}. *)
let enumerate ~config db body emit =
  let nodes = ref 0 in
  let tick () =
    incr nodes;
    if !nodes > config.node_budget then raise Done
  in
  let rec search remaining subst =
    tick ();
    match remaining with
    | [] -> emit subst
    | _ -> (
        let sorted =
          List.map (fun l -> (Query.estimate db subst l, l)) remaining
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        match sorted with
        | [] -> emit subst
        | (_, lit) :: tl ->
            let rest = List.map snd tl in
            List.iter
              (fun s -> search rest s)
              (Query.candidates db subst lit))
  in
  try search body Logic.Substitution.empty with Done -> ()

(** [derive ?config db clause] is the set of ground head tuples [clause]
    derives over [db], sorted and duplicate-free. Head variables that the
    body does not bind make the head non-ground; such witnesses are
    skipped (a learned clause is always head-connected, so this only happens
    for degenerate hand-written clauses). *)
let derive ?(config = default_config) db clause =
  let head = Logic.Clause.head clause in
  let out = Hashtbl.create 256 in
  let emit subst =
    if Hashtbl.length out >= config.max_results then raise Done;
    let args =
      Array.map
        (fun t -> Logic.Substitution.apply_term subst t)
        (Logic.Literal.args head)
    in
    if Array.for_all Logic.Term.is_const args then begin
      let tuple =
        Array.map
          (function Logic.Term.Const v -> v | Logic.Term.Var _ -> assert false)
          args
      in
      Hashtbl.replace out tuple ()
    end
  in
  (try enumerate ~config db (Logic.Clause.body clause) emit with Done -> ());
  Hashtbl.fold (fun t () acc -> t :: acc) out [] |> List.sort compare

(** [derive_definition ?config db def] is the union of {!derive} over the
    clauses of [def]. *)
let derive_definition ?config db def =
  List.concat_map (fun c -> derive ?config db c) def
  |> List.sort_uniq compare

(** [predict ?config db def example] tests one tuple by query execution —
    equivalent to {!Query.definition_covers} but named for the prediction
    use-case. *)
let predict ?config db def example =
  ignore config;
  Query.definition_covers db def example
