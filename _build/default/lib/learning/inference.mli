(** Applying a learned Horn definition to a database: bottom-up derivation
    of the target tuples it entails (learned definitions are non-recursive
    Datalog without negation, so one pass per clause suffices). *)

type config = {
  node_budget : int;  (** backtracking nodes per clause *)
  max_results : int;  (** derived head tuples per clause *)
}

val default_config : config

(** [derive ?config db clause] — the ground head tuples [clause] derives
    over [db], sorted and duplicate-free. Witnesses that leave a head
    variable unbound are skipped. *)
val derive :
  ?config:config -> Relational.Database.t -> Logic.Clause.t ->
  Relational.Relation.tuple list

(** [derive_definition ?config db def] — union over the clauses. *)
val derive_definition :
  ?config:config -> Relational.Database.t -> Logic.Clause.definition ->
  Relational.Relation.tuple list

(** [predict ?config db def example] — one-tuple query-based test. *)
val predict :
  ?config:config -> Relational.Database.t -> Logic.Clause.definition ->
  Relational.Relation.tuple -> bool
