(** Coverage testing via θ-subsumption against ground bottom clauses
    (Section 5).

    A clause [C] covers example [e] iff, after binding [C]'s head variables
    to [e]'s constants, the body of [C] θ-subsumes the ground bottom clause
    of [e]. Ground BCs are built once per example — with the same sampling
    strategy used for bottom clauses, as the paper prescribes — and cached
    here for the many coverage tests generalization performs. *)

module Value = Relational.Value

type t = {
  db : Relational.Database.t;
  bias : Bias.Language.t;
  bc_config : Bottom_clause.config;
  sub_config : Logic.Subsumption.config;
  rng : Random.State.t;
  grounds : (Relational.Relation.tuple, Logic.Subsumption.ground) Hashtbl.t;
}

let create ?(sub_config = Logic.Subsumption.default_config)
    ?(bc_config = Bottom_clause.default_config) db bias ~rng =
  { db; bias; bc_config; sub_config; rng; grounds = Hashtbl.create 256 }

let bias t = t.bias
let database t = t.db

(** [ground_of t example] is the cached ground bottom clause of [example]. *)
let ground_of t example =
  match Hashtbl.find_opt t.grounds example with
  | Some g -> g
  | None ->
      let clause =
        Bottom_clause.build_ground ~config:t.bc_config t.db t.bias ~rng:t.rng
          ~example
      in
      let g = Logic.Subsumption.ground_of_literals (Logic.Clause.body clause) in
      Hashtbl.replace t.grounds example g;
      g

(** [warm t examples] precomputes ground BCs for [examples] (the paper builds
    them once, up front). *)
let warm t examples = List.iter (fun e -> ignore (ground_of t e)) examples

(** [head_subst clause example] binds the head of [clause] to [example]:
    variables map to the example's constants; constant head arguments must
    match. [None] when the head cannot produce the example. *)
let head_subst clause (example : Relational.Relation.tuple) =
  let head = Logic.Clause.head clause in
  let args = Logic.Literal.args head in
  if Array.length args <> Array.length example then None
  else begin
    let rec go i subst =
      if i >= Array.length args then Some subst
      else
        match args.(i) with
        | Logic.Term.Const c ->
            if Value.equal c example.(i) then go (i + 1) subst else None
        | Logic.Term.Var v -> (
            match Logic.Substitution.extend subst v example.(i) with
            | Some subst -> go (i + 1) subst
            | None -> None)
    in
    go 0 Logic.Substitution.empty
  end

(** [eval t clause example] evaluates [clause] against [example] with the
    substitution-set prefix evaluator: [Covered w] with a witness, or
    [Blocked i] with the 1-based index of the blocking body literal — the
    primitive ARMG needs (Section 2.3.2). [Blocked 0] means the head itself
    cannot be bound to the example. *)
let eval t clause example =
  match head_subst clause example with
  | None -> Logic.Subsumption.Blocked 0
  | Some subst ->
      let g = ground_of t example in
      Logic.Subsumption.eval_prefix ~subst clause g

(** [covers t clause example] tests whether [clause] covers [example]. *)
let covers t clause example =
  match eval t clause example with
  | Logic.Subsumption.Covered _ -> true
  | Logic.Subsumption.Blocked _ -> false

(** [covers_prefix t clause k example] is [covers] restricted to the first
    [k] body literals. *)
let covers_prefix t clause k example =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let prefix =
    Logic.Clause.make (Logic.Clause.head clause)
      (take k (Logic.Clause.body clause))
  in
  covers t prefix example

(** [covered t clause examples] is the sublist of [examples] covered by
    [clause]. *)
let covered t clause examples = List.filter (covers t clause) examples

(** [count t clause examples] is [List.length (covered t clause examples)]. *)
let count t clause examples =
  List.fold_left (fun acc e -> if covers t clause e then acc + 1 else acc) 0 examples

(** [definition_covers t def example] holds iff some clause of [def] covers
    [example] (Horn-definition coverage, Definition 2.4). *)
let definition_covers t def example =
  List.exists (fun c -> covers t c example) def
